/root/repo/target/release/deps/stats-6c308b4f31f8c652.d: crates/stats/src/lib.rs crates/stats/src/boxplot.rs crates/stats/src/cluster.rs crates/stats/src/ecdf.rs crates/stats/src/hist.rs crates/stats/src/ks.rs crates/stats/src/moving.rs crates/stats/src/quantile.rs crates/stats/src/regress.rs

/root/repo/target/release/deps/libstats-6c308b4f31f8c652.rlib: crates/stats/src/lib.rs crates/stats/src/boxplot.rs crates/stats/src/cluster.rs crates/stats/src/ecdf.rs crates/stats/src/hist.rs crates/stats/src/ks.rs crates/stats/src/moving.rs crates/stats/src/quantile.rs crates/stats/src/regress.rs

/root/repo/target/release/deps/libstats-6c308b4f31f8c652.rmeta: crates/stats/src/lib.rs crates/stats/src/boxplot.rs crates/stats/src/cluster.rs crates/stats/src/ecdf.rs crates/stats/src/hist.rs crates/stats/src/ks.rs crates/stats/src/moving.rs crates/stats/src/quantile.rs crates/stats/src/regress.rs

crates/stats/src/lib.rs:
crates/stats/src/boxplot.rs:
crates/stats/src/cluster.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/hist.rs:
crates/stats/src/ks.rs:
crates/stats/src/moving.rs:
crates/stats/src/quantile.rs:
crates/stats/src/regress.rs:
