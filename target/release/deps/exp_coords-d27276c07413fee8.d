/root/repo/target/release/deps/exp_coords-d27276c07413fee8.d: crates/bench/src/bin/exp_coords.rs

/root/repo/target/release/deps/exp_coords-d27276c07413fee8: crates/bench/src/bin/exp_coords.rs

crates/bench/src/bin/exp_coords.rs:
