/root/repo/target/release/deps/tcpsim-48fff5cb30d02477.d: crates/tcpsim/src/lib.rs crates/tcpsim/src/cubic.rs crates/tcpsim/src/endpoint.rs crates/tcpsim/src/net.rs crates/tcpsim/src/opts.rs crates/tcpsim/src/segment.rs crates/tcpsim/src/trace.rs

/root/repo/target/release/deps/libtcpsim-48fff5cb30d02477.rlib: crates/tcpsim/src/lib.rs crates/tcpsim/src/cubic.rs crates/tcpsim/src/endpoint.rs crates/tcpsim/src/net.rs crates/tcpsim/src/opts.rs crates/tcpsim/src/segment.rs crates/tcpsim/src/trace.rs

/root/repo/target/release/deps/libtcpsim-48fff5cb30d02477.rmeta: crates/tcpsim/src/lib.rs crates/tcpsim/src/cubic.rs crates/tcpsim/src/endpoint.rs crates/tcpsim/src/net.rs crates/tcpsim/src/opts.rs crates/tcpsim/src/segment.rs crates/tcpsim/src/trace.rs

crates/tcpsim/src/lib.rs:
crates/tcpsim/src/cubic.rs:
crates/tcpsim/src/endpoint.rs:
crates/tcpsim/src/net.rs:
crates/tcpsim/src/opts.rs:
crates/tcpsim/src/segment.rs:
crates/tcpsim/src/trace.rs:
