/root/repo/target/release/deps/exp_instant-ef184fac5ac56e06.d: crates/bench/src/bin/exp_instant.rs

/root/repo/target/release/deps/exp_instant-ef184fac5ac56e06: crates/bench/src/bin/exp_instant.rs

crates/bench/src/bin/exp_instant.rs:
