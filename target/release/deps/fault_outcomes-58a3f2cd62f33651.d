/root/repo/target/release/deps/fault_outcomes-58a3f2cd62f33651.d: tests/fault_outcomes.rs

/root/repo/target/release/deps/fault_outcomes-58a3f2cd62f33651: tests/fault_outcomes.rs

tests/fault_outcomes.rs:
