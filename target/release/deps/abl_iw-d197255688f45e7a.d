/root/repo/target/release/deps/abl_iw-d197255688f45e7a.d: crates/bench/src/bin/abl_iw.rs

/root/repo/target/release/deps/abl_iw-d197255688f45e7a: crates/bench/src/bin/abl_iw.rs

crates/bench/src/bin/abl_iw.rs:
