/root/repo/target/release/deps/cdnsim-c8287526a0540066.d: crates/cdnsim/src/lib.rs crates/cdnsim/src/dns.rs crates/cdnsim/src/fe.rs crates/cdnsim/src/service.rs crates/cdnsim/src/spec.rs crates/cdnsim/src/world.rs

/root/repo/target/release/deps/libcdnsim-c8287526a0540066.rlib: crates/cdnsim/src/lib.rs crates/cdnsim/src/dns.rs crates/cdnsim/src/fe.rs crates/cdnsim/src/service.rs crates/cdnsim/src/spec.rs crates/cdnsim/src/world.rs

/root/repo/target/release/deps/libcdnsim-c8287526a0540066.rmeta: crates/cdnsim/src/lib.rs crates/cdnsim/src/dns.rs crates/cdnsim/src/fe.rs crates/cdnsim/src/service.rs crates/cdnsim/src/spec.rs crates/cdnsim/src/world.rs

crates/cdnsim/src/lib.rs:
crates/cdnsim/src/dns.rs:
crates/cdnsim/src/fe.rs:
crates/cdnsim/src/service.rs:
crates/cdnsim/src/spec.rs:
crates/cdnsim/src/world.rs:
