/root/repo/target/release/deps/exp_whatif-e9c881c3f01629c2.d: crates/bench/src/bin/exp_whatif.rs

/root/repo/target/release/deps/exp_whatif-e9c881c3f01629c2: crates/bench/src/bin/exp_whatif.rs

crates/bench/src/bin/exp_whatif.rs:
