/root/repo/target/release/deps/fecdn-1c4eb5cfcedf10c6.d: src/lib.rs

/root/repo/target/release/deps/libfecdn-1c4eb5cfcedf10c6.rlib: src/lib.rs

/root/repo/target/release/deps/libfecdn-1c4eb5cfcedf10c6.rmeta: src/lib.rs

src/lib.rs:
