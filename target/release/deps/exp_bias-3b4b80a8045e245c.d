/root/repo/target/release/deps/exp_bias-3b4b80a8045e245c.d: crates/bench/src/bin/exp_bias.rs

/root/repo/target/release/deps/exp_bias-3b4b80a8045e245c: crates/bench/src/bin/exp_bias.rs

crates/bench/src/bin/exp_bias.rs:
