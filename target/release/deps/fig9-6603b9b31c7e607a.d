/root/repo/target/release/deps/fig9-6603b9b31c7e607a.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-6603b9b31c7e607a: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
