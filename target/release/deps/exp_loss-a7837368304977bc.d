/root/repo/target/release/deps/exp_loss-a7837368304977bc.d: crates/bench/src/bin/exp_loss.rs

/root/repo/target/release/deps/exp_loss-a7837368304977bc: crates/bench/src/bin/exp_loss.rs

crates/bench/src/bin/exp_loss.rs:
