/root/repo/target/release/deps/fig4-45f707968a370ce0.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-45f707968a370ce0: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
