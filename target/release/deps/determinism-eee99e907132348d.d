/root/repo/target/release/deps/determinism-eee99e907132348d.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-eee99e907132348d: tests/determinism.rs

tests/determinism.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
