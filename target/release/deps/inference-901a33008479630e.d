/root/repo/target/release/deps/inference-901a33008479630e.d: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/bounds.rs crates/core/src/caching.rs crates/core/src/coords.rs crates/core/src/factoring.rs crates/core/src/model.rs crates/core/src/params.rs crates/core/src/threshold.rs

/root/repo/target/release/deps/libinference-901a33008479630e.rlib: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/bounds.rs crates/core/src/caching.rs crates/core/src/coords.rs crates/core/src/factoring.rs crates/core/src/model.rs crates/core/src/params.rs crates/core/src/threshold.rs

/root/repo/target/release/deps/libinference-901a33008479630e.rmeta: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/bounds.rs crates/core/src/caching.rs crates/core/src/coords.rs crates/core/src/factoring.rs crates/core/src/model.rs crates/core/src/params.rs crates/core/src/threshold.rs

crates/core/src/lib.rs:
crates/core/src/aggregate.rs:
crates/core/src/bounds.rs:
crates/core/src/caching.rs:
crates/core/src/coords.rs:
crates/core/src/factoring.rs:
crates/core/src/model.rs:
crates/core/src/params.rs:
crates/core/src/threshold.rs:
