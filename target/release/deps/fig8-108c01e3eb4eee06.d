/root/repo/target/release/deps/fig8-108c01e3eb4eee06.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-108c01e3eb4eee06: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
