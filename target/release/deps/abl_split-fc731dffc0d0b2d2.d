/root/repo/target/release/deps/abl_split-fc731dffc0d0b2d2.d: crates/bench/src/bin/abl_split.rs

/root/repo/target/release/deps/abl_split-fc731dffc0d0b2d2: crates/bench/src/bin/abl_split.rs

crates/bench/src/bin/abl_split.rs:
