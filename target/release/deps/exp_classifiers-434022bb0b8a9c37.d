/root/repo/target/release/deps/exp_classifiers-434022bb0b8a9c37.d: crates/bench/src/bin/exp_classifiers.rs

/root/repo/target/release/deps/exp_classifiers-434022bb0b8a9c37: crates/bench/src/bin/exp_classifiers.rs

crates/bench/src/bin/exp_classifiers.rs:
