/root/repo/target/release/deps/abl_cubic-eeab4e93d3e0b3e0.d: crates/bench/src/bin/abl_cubic.rs

/root/repo/target/release/deps/abl_cubic-eeab4e93d3e0b3e0: crates/bench/src/bin/abl_cubic.rs

crates/bench/src/bin/abl_cubic.rs:
