/root/repo/target/release/deps/fig3-9404316a54fa1b10.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-9404316a54fa1b10: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
