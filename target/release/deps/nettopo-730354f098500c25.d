/root/repo/target/release/deps/nettopo-730354f098500c25.d: crates/nettopo/src/lib.rs crates/nettopo/src/faults.rs crates/nettopo/src/geo.rs crates/nettopo/src/metro.rs crates/nettopo/src/path.rs crates/nettopo/src/placement.rs crates/nettopo/src/sites.rs crates/nettopo/src/vantage.rs

/root/repo/target/release/deps/libnettopo-730354f098500c25.rlib: crates/nettopo/src/lib.rs crates/nettopo/src/faults.rs crates/nettopo/src/geo.rs crates/nettopo/src/metro.rs crates/nettopo/src/path.rs crates/nettopo/src/placement.rs crates/nettopo/src/sites.rs crates/nettopo/src/vantage.rs

/root/repo/target/release/deps/libnettopo-730354f098500c25.rmeta: crates/nettopo/src/lib.rs crates/nettopo/src/faults.rs crates/nettopo/src/geo.rs crates/nettopo/src/metro.rs crates/nettopo/src/path.rs crates/nettopo/src/placement.rs crates/nettopo/src/sites.rs crates/nettopo/src/vantage.rs

crates/nettopo/src/lib.rs:
crates/nettopo/src/faults.rs:
crates/nettopo/src/geo.rs:
crates/nettopo/src/metro.rs:
crates/nettopo/src/path.rs:
crates/nettopo/src/placement.rs:
crates/nettopo/src/sites.rs:
crates/nettopo/src/vantage.rs:
