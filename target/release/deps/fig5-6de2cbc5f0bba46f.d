/root/repo/target/release/deps/fig5-6de2cbc5f0bba46f.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-6de2cbc5f0bba46f: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
