/root/repo/target/release/deps/bench-225ec2ed3612ff58.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-225ec2ed3612ff58.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-225ec2ed3612ff58.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
