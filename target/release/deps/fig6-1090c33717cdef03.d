/root/repo/target/release/deps/fig6-1090c33717cdef03.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-1090c33717cdef03: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
