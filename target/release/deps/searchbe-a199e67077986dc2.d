/root/repo/target/release/deps/searchbe-a199e67077986dc2.d: crates/searchbe/src/lib.rs crates/searchbe/src/datacenter.rs crates/searchbe/src/instant.rs crates/searchbe/src/keywords.rs crates/searchbe/src/proctime.rs crates/searchbe/src/response.rs

/root/repo/target/release/deps/libsearchbe-a199e67077986dc2.rlib: crates/searchbe/src/lib.rs crates/searchbe/src/datacenter.rs crates/searchbe/src/instant.rs crates/searchbe/src/keywords.rs crates/searchbe/src/proctime.rs crates/searchbe/src/response.rs

/root/repo/target/release/deps/libsearchbe-a199e67077986dc2.rmeta: crates/searchbe/src/lib.rs crates/searchbe/src/datacenter.rs crates/searchbe/src/instant.rs crates/searchbe/src/keywords.rs crates/searchbe/src/proctime.rs crates/searchbe/src/response.rs

crates/searchbe/src/lib.rs:
crates/searchbe/src/datacenter.rs:
crates/searchbe/src/instant.rs:
crates/searchbe/src/keywords.rs:
crates/searchbe/src/proctime.rs:
crates/searchbe/src/response.rs:
