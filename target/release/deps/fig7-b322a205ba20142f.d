/root/repo/target/release/deps/fig7-b322a205ba20142f.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-b322a205ba20142f: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
