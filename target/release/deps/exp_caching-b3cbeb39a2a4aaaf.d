/root/repo/target/release/deps/exp_caching-b3cbeb39a2a4aaaf.d: crates/bench/src/bin/exp_caching.rs

/root/repo/target/release/deps/exp_caching-b3cbeb39a2a4aaaf: crates/bench/src/bin/exp_caching.rs

crates/bench/src/bin/exp_caching.rs:
