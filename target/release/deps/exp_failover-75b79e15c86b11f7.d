/root/repo/target/release/deps/exp_failover-75b79e15c86b11f7.d: crates/bench/src/bin/exp_failover.rs

/root/repo/target/release/deps/exp_failover-75b79e15c86b11f7: crates/bench/src/bin/exp_failover.rs

crates/bench/src/bin/exp_failover.rs:
