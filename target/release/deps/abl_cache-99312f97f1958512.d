/root/repo/target/release/deps/abl_cache-99312f97f1958512.d: crates/bench/src/bin/abl_cache.rs

/root/repo/target/release/deps/abl_cache-99312f97f1958512: crates/bench/src/bin/abl_cache.rs

crates/bench/src/bin/abl_cache.rs:
