/root/repo/target/release/deps/capture-9ab74d09612bc11b.d: crates/capture/src/lib.rs crates/capture/src/classify.rs crates/capture/src/cluster_view.rs crates/capture/src/content.rs crates/capture/src/dump.rs crates/capture/src/errors.rs crates/capture/src/session.rs crates/capture/src/timeline.rs crates/capture/src/validate.rs

/root/repo/target/release/deps/libcapture-9ab74d09612bc11b.rlib: crates/capture/src/lib.rs crates/capture/src/classify.rs crates/capture/src/cluster_view.rs crates/capture/src/content.rs crates/capture/src/dump.rs crates/capture/src/errors.rs crates/capture/src/session.rs crates/capture/src/timeline.rs crates/capture/src/validate.rs

/root/repo/target/release/deps/libcapture-9ab74d09612bc11b.rmeta: crates/capture/src/lib.rs crates/capture/src/classify.rs crates/capture/src/cluster_view.rs crates/capture/src/content.rs crates/capture/src/dump.rs crates/capture/src/errors.rs crates/capture/src/session.rs crates/capture/src/timeline.rs crates/capture/src/validate.rs

crates/capture/src/lib.rs:
crates/capture/src/classify.rs:
crates/capture/src/cluster_view.rs:
crates/capture/src/content.rs:
crates/capture/src/dump.rs:
crates/capture/src/errors.rs:
crates/capture/src/session.rs:
crates/capture/src/timeline.rs:
crates/capture/src/validate.rs:
