/root/repo/target/release/deps/httpsim-c86d628bd57609e5.d: crates/httpsim/src/lib.rs crates/httpsim/src/msg.rs crates/httpsim/src/progress.rs

/root/repo/target/release/deps/libhttpsim-c86d628bd57609e5.rlib: crates/httpsim/src/lib.rs crates/httpsim/src/msg.rs crates/httpsim/src/progress.rs

/root/repo/target/release/deps/libhttpsim-c86d628bd57609e5.rmeta: crates/httpsim/src/lib.rs crates/httpsim/src/msg.rs crates/httpsim/src/progress.rs

crates/httpsim/src/lib.rs:
crates/httpsim/src/msg.rs:
crates/httpsim/src/progress.rs:
