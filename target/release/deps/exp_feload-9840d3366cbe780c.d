/root/repo/target/release/deps/exp_feload-9840d3366cbe780c.d: crates/bench/src/bin/exp_feload.rs

/root/repo/target/release/deps/exp_feload-9840d3366cbe780c: crates/bench/src/bin/exp_feload.rs

crates/bench/src/bin/exp_feload.rs:
