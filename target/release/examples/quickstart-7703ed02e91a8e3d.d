/root/repo/target/release/examples/quickstart-7703ed02e91a8e3d.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-7703ed02e91a8e3d: examples/quickstart.rs

examples/quickstart.rs:
