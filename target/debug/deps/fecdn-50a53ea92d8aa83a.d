/root/repo/target/debug/deps/fecdn-50a53ea92d8aa83a.d: src/lib.rs

/root/repo/target/debug/deps/fecdn-50a53ea92d8aa83a: src/lib.rs

src/lib.rs:
