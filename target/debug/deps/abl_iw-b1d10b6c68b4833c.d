/root/repo/target/debug/deps/abl_iw-b1d10b6c68b4833c.d: crates/bench/src/bin/abl_iw.rs Cargo.toml

/root/repo/target/debug/deps/libabl_iw-b1d10b6c68b4833c.rmeta: crates/bench/src/bin/abl_iw.rs Cargo.toml

crates/bench/src/bin/abl_iw.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
