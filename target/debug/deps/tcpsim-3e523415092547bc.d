/root/repo/target/debug/deps/tcpsim-3e523415092547bc.d: crates/tcpsim/src/lib.rs crates/tcpsim/src/cubic.rs crates/tcpsim/src/endpoint.rs crates/tcpsim/src/net.rs crates/tcpsim/src/opts.rs crates/tcpsim/src/segment.rs crates/tcpsim/src/trace.rs

/root/repo/target/debug/deps/libtcpsim-3e523415092547bc.rlib: crates/tcpsim/src/lib.rs crates/tcpsim/src/cubic.rs crates/tcpsim/src/endpoint.rs crates/tcpsim/src/net.rs crates/tcpsim/src/opts.rs crates/tcpsim/src/segment.rs crates/tcpsim/src/trace.rs

/root/repo/target/debug/deps/libtcpsim-3e523415092547bc.rmeta: crates/tcpsim/src/lib.rs crates/tcpsim/src/cubic.rs crates/tcpsim/src/endpoint.rs crates/tcpsim/src/net.rs crates/tcpsim/src/opts.rs crates/tcpsim/src/segment.rs crates/tcpsim/src/trace.rs

crates/tcpsim/src/lib.rs:
crates/tcpsim/src/cubic.rs:
crates/tcpsim/src/endpoint.rs:
crates/tcpsim/src/net.rs:
crates/tcpsim/src/opts.rs:
crates/tcpsim/src/segment.rs:
crates/tcpsim/src/trace.rs:
