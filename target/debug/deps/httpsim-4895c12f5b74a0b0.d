/root/repo/target/debug/deps/httpsim-4895c12f5b74a0b0.d: crates/httpsim/src/lib.rs crates/httpsim/src/msg.rs crates/httpsim/src/progress.rs

/root/repo/target/debug/deps/httpsim-4895c12f5b74a0b0: crates/httpsim/src/lib.rs crates/httpsim/src/msg.rs crates/httpsim/src/progress.rs

crates/httpsim/src/lib.rs:
crates/httpsim/src/msg.rs:
crates/httpsim/src/progress.rs:
