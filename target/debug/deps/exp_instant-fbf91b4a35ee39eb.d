/root/repo/target/debug/deps/exp_instant-fbf91b4a35ee39eb.d: crates/bench/src/bin/exp_instant.rs Cargo.toml

/root/repo/target/debug/deps/libexp_instant-fbf91b4a35ee39eb.rmeta: crates/bench/src/bin/exp_instant.rs Cargo.toml

crates/bench/src/bin/exp_instant.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
