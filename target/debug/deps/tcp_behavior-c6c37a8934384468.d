/root/repo/target/debug/deps/tcp_behavior-c6c37a8934384468.d: tests/tcp_behavior.rs Cargo.toml

/root/repo/target/debug/deps/libtcp_behavior-c6c37a8934384468.rmeta: tests/tcp_behavior.rs Cargo.toml

tests/tcp_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
