/root/repo/target/debug/deps/httpsim-8ddc8d3010488740.d: crates/httpsim/src/lib.rs crates/httpsim/src/msg.rs crates/httpsim/src/progress.rs

/root/repo/target/debug/deps/libhttpsim-8ddc8d3010488740.rlib: crates/httpsim/src/lib.rs crates/httpsim/src/msg.rs crates/httpsim/src/progress.rs

/root/repo/target/debug/deps/libhttpsim-8ddc8d3010488740.rmeta: crates/httpsim/src/lib.rs crates/httpsim/src/msg.rs crates/httpsim/src/progress.rs

crates/httpsim/src/lib.rs:
crates/httpsim/src/msg.rs:
crates/httpsim/src/progress.rs:
