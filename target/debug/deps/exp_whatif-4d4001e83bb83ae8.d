/root/repo/target/debug/deps/exp_whatif-4d4001e83bb83ae8.d: crates/bench/src/bin/exp_whatif.rs

/root/repo/target/debug/deps/exp_whatif-4d4001e83bb83ae8: crates/bench/src/bin/exp_whatif.rs

crates/bench/src/bin/exp_whatif.rs:
