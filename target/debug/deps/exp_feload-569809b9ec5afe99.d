/root/repo/target/debug/deps/exp_feload-569809b9ec5afe99.d: crates/bench/src/bin/exp_feload.rs Cargo.toml

/root/repo/target/debug/deps/libexp_feload-569809b9ec5afe99.rmeta: crates/bench/src/bin/exp_feload.rs Cargo.toml

crates/bench/src/bin/exp_feload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
