/root/repo/target/debug/deps/inference_pipeline-3afcee95328e6117.d: tests/inference_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libinference_pipeline-3afcee95328e6117.rmeta: tests/inference_pipeline.rs Cargo.toml

tests/inference_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
