/root/repo/target/debug/deps/fig6-66cf3d2d1de21d40.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-66cf3d2d1de21d40: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
