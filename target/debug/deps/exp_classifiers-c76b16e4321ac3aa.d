/root/repo/target/debug/deps/exp_classifiers-c76b16e4321ac3aa.d: crates/bench/src/bin/exp_classifiers.rs

/root/repo/target/debug/deps/exp_classifiers-c76b16e4321ac3aa: crates/bench/src/bin/exp_classifiers.rs

crates/bench/src/bin/exp_classifiers.rs:
