/root/repo/target/debug/deps/exp_instant-25c7f77690a743f6.d: crates/bench/src/bin/exp_instant.rs Cargo.toml

/root/repo/target/debug/deps/libexp_instant-25c7f77690a743f6.rmeta: crates/bench/src/bin/exp_instant.rs Cargo.toml

crates/bench/src/bin/exp_instant.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
