/root/repo/target/debug/deps/stats-2846dd351c8fe7ca.d: crates/stats/src/lib.rs crates/stats/src/boxplot.rs crates/stats/src/cluster.rs crates/stats/src/ecdf.rs crates/stats/src/hist.rs crates/stats/src/ks.rs crates/stats/src/moving.rs crates/stats/src/quantile.rs crates/stats/src/regress.rs

/root/repo/target/debug/deps/stats-2846dd351c8fe7ca: crates/stats/src/lib.rs crates/stats/src/boxplot.rs crates/stats/src/cluster.rs crates/stats/src/ecdf.rs crates/stats/src/hist.rs crates/stats/src/ks.rs crates/stats/src/moving.rs crates/stats/src/quantile.rs crates/stats/src/regress.rs

crates/stats/src/lib.rs:
crates/stats/src/boxplot.rs:
crates/stats/src/cluster.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/hist.rs:
crates/stats/src/ks.rs:
crates/stats/src/moving.rs:
crates/stats/src/quantile.rs:
crates/stats/src/regress.rs:
