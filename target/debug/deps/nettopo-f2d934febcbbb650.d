/root/repo/target/debug/deps/nettopo-f2d934febcbbb650.d: crates/nettopo/src/lib.rs crates/nettopo/src/faults.rs crates/nettopo/src/geo.rs crates/nettopo/src/metro.rs crates/nettopo/src/path.rs crates/nettopo/src/placement.rs crates/nettopo/src/sites.rs crates/nettopo/src/vantage.rs Cargo.toml

/root/repo/target/debug/deps/libnettopo-f2d934febcbbb650.rmeta: crates/nettopo/src/lib.rs crates/nettopo/src/faults.rs crates/nettopo/src/geo.rs crates/nettopo/src/metro.rs crates/nettopo/src/path.rs crates/nettopo/src/placement.rs crates/nettopo/src/sites.rs crates/nettopo/src/vantage.rs Cargo.toml

crates/nettopo/src/lib.rs:
crates/nettopo/src/faults.rs:
crates/nettopo/src/geo.rs:
crates/nettopo/src/metro.rs:
crates/nettopo/src/path.rs:
crates/nettopo/src/placement.rs:
crates/nettopo/src/sites.rs:
crates/nettopo/src/vantage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
