/root/repo/target/debug/deps/exp_bias-c287669d450ebcf8.d: crates/bench/src/bin/exp_bias.rs

/root/repo/target/debug/deps/exp_bias-c287669d450ebcf8: crates/bench/src/bin/exp_bias.rs

crates/bench/src/bin/exp_bias.rs:
