/root/repo/target/debug/deps/fault_outcomes-6a63b2b94729e6f9.d: tests/fault_outcomes.rs

/root/repo/target/debug/deps/fault_outcomes-6a63b2b94729e6f9: tests/fault_outcomes.rs

tests/fault_outcomes.rs:
