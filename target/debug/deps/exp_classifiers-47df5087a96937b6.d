/root/repo/target/debug/deps/exp_classifiers-47df5087a96937b6.d: crates/bench/src/bin/exp_classifiers.rs Cargo.toml

/root/repo/target/debug/deps/libexp_classifiers-47df5087a96937b6.rmeta: crates/bench/src/bin/exp_classifiers.rs Cargo.toml

crates/bench/src/bin/exp_classifiers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
