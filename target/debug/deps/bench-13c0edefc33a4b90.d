/root/repo/target/debug/deps/bench-13c0edefc33a4b90.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-13c0edefc33a4b90.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-13c0edefc33a4b90.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
