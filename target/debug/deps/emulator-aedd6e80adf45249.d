/root/repo/target/debug/deps/emulator-aedd6e80adf45249.d: crates/emulator/src/lib.rs crates/emulator/src/caching_probe.rs crates/emulator/src/campaign.rs crates/emulator/src/dataset_a.rs crates/emulator/src/dataset_b.rs crates/emulator/src/instant.rs crates/emulator/src/output.rs crates/emulator/src/report.rs crates/emulator/src/runner.rs crates/emulator/src/scenarios.rs

/root/repo/target/debug/deps/emulator-aedd6e80adf45249: crates/emulator/src/lib.rs crates/emulator/src/caching_probe.rs crates/emulator/src/campaign.rs crates/emulator/src/dataset_a.rs crates/emulator/src/dataset_b.rs crates/emulator/src/instant.rs crates/emulator/src/output.rs crates/emulator/src/report.rs crates/emulator/src/runner.rs crates/emulator/src/scenarios.rs

crates/emulator/src/lib.rs:
crates/emulator/src/caching_probe.rs:
crates/emulator/src/campaign.rs:
crates/emulator/src/dataset_a.rs:
crates/emulator/src/dataset_b.rs:
crates/emulator/src/instant.rs:
crates/emulator/src/output.rs:
crates/emulator/src/report.rs:
crates/emulator/src/runner.rs:
crates/emulator/src/scenarios.rs:
