/root/repo/target/debug/deps/httpsim-9c0ebe4da5cd2340.d: crates/httpsim/src/lib.rs crates/httpsim/src/msg.rs crates/httpsim/src/progress.rs Cargo.toml

/root/repo/target/debug/deps/libhttpsim-9c0ebe4da5cd2340.rmeta: crates/httpsim/src/lib.rs crates/httpsim/src/msg.rs crates/httpsim/src/progress.rs Cargo.toml

crates/httpsim/src/lib.rs:
crates/httpsim/src/msg.rs:
crates/httpsim/src/progress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
