/root/repo/target/debug/deps/abl_cubic-679d4f27bd98d16e.d: crates/bench/src/bin/abl_cubic.rs Cargo.toml

/root/repo/target/debug/deps/libabl_cubic-679d4f27bd98d16e.rmeta: crates/bench/src/bin/abl_cubic.rs Cargo.toml

crates/bench/src/bin/abl_cubic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
