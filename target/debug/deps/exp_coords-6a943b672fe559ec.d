/root/repo/target/debug/deps/exp_coords-6a943b672fe559ec.d: crates/bench/src/bin/exp_coords.rs

/root/repo/target/debug/deps/exp_coords-6a943b672fe559ec: crates/bench/src/bin/exp_coords.rs

crates/bench/src/bin/exp_coords.rs:
