/root/repo/target/debug/deps/abl_cubic-b76a7229d85c5455.d: crates/bench/src/bin/abl_cubic.rs

/root/repo/target/debug/deps/abl_cubic-b76a7229d85c5455: crates/bench/src/bin/abl_cubic.rs

crates/bench/src/bin/abl_cubic.rs:
