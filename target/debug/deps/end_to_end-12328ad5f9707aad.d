/root/repo/target/debug/deps/end_to_end-12328ad5f9707aad.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-12328ad5f9707aad: tests/end_to_end.rs

tests/end_to_end.rs:
