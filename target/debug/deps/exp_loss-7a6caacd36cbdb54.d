/root/repo/target/debug/deps/exp_loss-7a6caacd36cbdb54.d: crates/bench/src/bin/exp_loss.rs Cargo.toml

/root/repo/target/debug/deps/libexp_loss-7a6caacd36cbdb54.rmeta: crates/bench/src/bin/exp_loss.rs Cargo.toml

crates/bench/src/bin/exp_loss.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
