/root/repo/target/debug/deps/emulator-2ec1609fb6e9b71c.d: crates/emulator/src/lib.rs crates/emulator/src/caching_probe.rs crates/emulator/src/campaign.rs crates/emulator/src/dataset_a.rs crates/emulator/src/dataset_b.rs crates/emulator/src/instant.rs crates/emulator/src/output.rs crates/emulator/src/report.rs crates/emulator/src/runner.rs crates/emulator/src/scenarios.rs Cargo.toml

/root/repo/target/debug/deps/libemulator-2ec1609fb6e9b71c.rmeta: crates/emulator/src/lib.rs crates/emulator/src/caching_probe.rs crates/emulator/src/campaign.rs crates/emulator/src/dataset_a.rs crates/emulator/src/dataset_b.rs crates/emulator/src/instant.rs crates/emulator/src/output.rs crates/emulator/src/report.rs crates/emulator/src/runner.rs crates/emulator/src/scenarios.rs Cargo.toml

crates/emulator/src/lib.rs:
crates/emulator/src/caching_probe.rs:
crates/emulator/src/campaign.rs:
crates/emulator/src/dataset_a.rs:
crates/emulator/src/dataset_b.rs:
crates/emulator/src/instant.rs:
crates/emulator/src/output.rs:
crates/emulator/src/report.rs:
crates/emulator/src/runner.rs:
crates/emulator/src/scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
