/root/repo/target/debug/deps/tcp_behavior-f8050a44961a654d.d: tests/tcp_behavior.rs

/root/repo/target/debug/deps/tcp_behavior-f8050a44961a654d: tests/tcp_behavior.rs

tests/tcp_behavior.rs:
