/root/repo/target/debug/deps/cdnsim-ad89f9bebd77f5d6.d: crates/cdnsim/src/lib.rs crates/cdnsim/src/dns.rs crates/cdnsim/src/fe.rs crates/cdnsim/src/service.rs crates/cdnsim/src/spec.rs crates/cdnsim/src/world.rs

/root/repo/target/debug/deps/cdnsim-ad89f9bebd77f5d6: crates/cdnsim/src/lib.rs crates/cdnsim/src/dns.rs crates/cdnsim/src/fe.rs crates/cdnsim/src/service.rs crates/cdnsim/src/spec.rs crates/cdnsim/src/world.rs

crates/cdnsim/src/lib.rs:
crates/cdnsim/src/dns.rs:
crates/cdnsim/src/fe.rs:
crates/cdnsim/src/service.rs:
crates/cdnsim/src/spec.rs:
crates/cdnsim/src/world.rs:
