/root/repo/target/debug/deps/exp_bias-71b69dbf57643e56.d: crates/bench/src/bin/exp_bias.rs Cargo.toml

/root/repo/target/debug/deps/libexp_bias-71b69dbf57643e56.rmeta: crates/bench/src/bin/exp_bias.rs Cargo.toml

crates/bench/src/bin/exp_bias.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
