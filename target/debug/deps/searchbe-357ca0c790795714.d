/root/repo/target/debug/deps/searchbe-357ca0c790795714.d: crates/searchbe/src/lib.rs crates/searchbe/src/datacenter.rs crates/searchbe/src/instant.rs crates/searchbe/src/keywords.rs crates/searchbe/src/proctime.rs crates/searchbe/src/response.rs

/root/repo/target/debug/deps/libsearchbe-357ca0c790795714.rlib: crates/searchbe/src/lib.rs crates/searchbe/src/datacenter.rs crates/searchbe/src/instant.rs crates/searchbe/src/keywords.rs crates/searchbe/src/proctime.rs crates/searchbe/src/response.rs

/root/repo/target/debug/deps/libsearchbe-357ca0c790795714.rmeta: crates/searchbe/src/lib.rs crates/searchbe/src/datacenter.rs crates/searchbe/src/instant.rs crates/searchbe/src/keywords.rs crates/searchbe/src/proctime.rs crates/searchbe/src/response.rs

crates/searchbe/src/lib.rs:
crates/searchbe/src/datacenter.rs:
crates/searchbe/src/instant.rs:
crates/searchbe/src/keywords.rs:
crates/searchbe/src/proctime.rs:
crates/searchbe/src/response.rs:
