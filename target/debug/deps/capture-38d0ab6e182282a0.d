/root/repo/target/debug/deps/capture-38d0ab6e182282a0.d: crates/capture/src/lib.rs crates/capture/src/classify.rs crates/capture/src/cluster_view.rs crates/capture/src/content.rs crates/capture/src/dump.rs crates/capture/src/errors.rs crates/capture/src/session.rs crates/capture/src/timeline.rs crates/capture/src/validate.rs

/root/repo/target/debug/deps/capture-38d0ab6e182282a0: crates/capture/src/lib.rs crates/capture/src/classify.rs crates/capture/src/cluster_view.rs crates/capture/src/content.rs crates/capture/src/dump.rs crates/capture/src/errors.rs crates/capture/src/session.rs crates/capture/src/timeline.rs crates/capture/src/validate.rs

crates/capture/src/lib.rs:
crates/capture/src/classify.rs:
crates/capture/src/cluster_view.rs:
crates/capture/src/content.rs:
crates/capture/src/dump.rs:
crates/capture/src/errors.rs:
crates/capture/src/session.rs:
crates/capture/src/timeline.rs:
crates/capture/src/validate.rs:
