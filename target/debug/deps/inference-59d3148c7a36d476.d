/root/repo/target/debug/deps/inference-59d3148c7a36d476.d: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/bounds.rs crates/core/src/caching.rs crates/core/src/coords.rs crates/core/src/factoring.rs crates/core/src/model.rs crates/core/src/params.rs crates/core/src/threshold.rs Cargo.toml

/root/repo/target/debug/deps/libinference-59d3148c7a36d476.rmeta: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/bounds.rs crates/core/src/caching.rs crates/core/src/coords.rs crates/core/src/factoring.rs crates/core/src/model.rs crates/core/src/params.rs crates/core/src/threshold.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/aggregate.rs:
crates/core/src/bounds.rs:
crates/core/src/caching.rs:
crates/core/src/coords.rs:
crates/core/src/factoring.rs:
crates/core/src/model.rs:
crates/core/src/params.rs:
crates/core/src/threshold.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
