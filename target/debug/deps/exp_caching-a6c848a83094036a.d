/root/repo/target/debug/deps/exp_caching-a6c848a83094036a.d: crates/bench/src/bin/exp_caching.rs

/root/repo/target/debug/deps/exp_caching-a6c848a83094036a: crates/bench/src/bin/exp_caching.rs

crates/bench/src/bin/exp_caching.rs:
