/root/repo/target/debug/deps/fecdn-5d333a0546adc307.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfecdn-5d333a0546adc307.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
