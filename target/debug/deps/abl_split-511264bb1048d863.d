/root/repo/target/debug/deps/abl_split-511264bb1048d863.d: crates/bench/src/bin/abl_split.rs Cargo.toml

/root/repo/target/debug/deps/libabl_split-511264bb1048d863.rmeta: crates/bench/src/bin/abl_split.rs Cargo.toml

crates/bench/src/bin/abl_split.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
