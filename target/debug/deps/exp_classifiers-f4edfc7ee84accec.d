/root/repo/target/debug/deps/exp_classifiers-f4edfc7ee84accec.d: crates/bench/src/bin/exp_classifiers.rs

/root/repo/target/debug/deps/exp_classifiers-f4edfc7ee84accec: crates/bench/src/bin/exp_classifiers.rs

crates/bench/src/bin/exp_classifiers.rs:
