/root/repo/target/debug/deps/determinism-d48423bb1d17ae03.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-d48423bb1d17ae03: tests/determinism.rs

tests/determinism.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
