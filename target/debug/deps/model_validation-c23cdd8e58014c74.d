/root/repo/target/debug/deps/model_validation-c23cdd8e58014c74.d: tests/model_validation.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_validation-c23cdd8e58014c74.rmeta: tests/model_validation.rs Cargo.toml

tests/model_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
