/root/repo/target/debug/deps/abl_iw-2265d0e499582810.d: crates/bench/src/bin/abl_iw.rs Cargo.toml

/root/repo/target/debug/deps/libabl_iw-2265d0e499582810.rmeta: crates/bench/src/bin/abl_iw.rs Cargo.toml

crates/bench/src/bin/abl_iw.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
