/root/repo/target/debug/deps/bench-14a09d1b86398ebc.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-14a09d1b86398ebc.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
