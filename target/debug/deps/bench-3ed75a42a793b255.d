/root/repo/target/debug/deps/bench-3ed75a42a793b255.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-3ed75a42a793b255: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
