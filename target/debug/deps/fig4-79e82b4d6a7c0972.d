/root/repo/target/debug/deps/fig4-79e82b4d6a7c0972.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-79e82b4d6a7c0972: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
