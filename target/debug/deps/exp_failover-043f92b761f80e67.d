/root/repo/target/debug/deps/exp_failover-043f92b761f80e67.d: crates/bench/src/bin/exp_failover.rs Cargo.toml

/root/repo/target/debug/deps/libexp_failover-043f92b761f80e67.rmeta: crates/bench/src/bin/exp_failover.rs Cargo.toml

crates/bench/src/bin/exp_failover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
