/root/repo/target/debug/deps/abl_split-3863620f0d24119e.d: crates/bench/src/bin/abl_split.rs Cargo.toml

/root/repo/target/debug/deps/libabl_split-3863620f0d24119e.rmeta: crates/bench/src/bin/abl_split.rs Cargo.toml

crates/bench/src/bin/abl_split.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
