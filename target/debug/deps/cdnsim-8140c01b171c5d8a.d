/root/repo/target/debug/deps/cdnsim-8140c01b171c5d8a.d: crates/cdnsim/src/lib.rs crates/cdnsim/src/dns.rs crates/cdnsim/src/fe.rs crates/cdnsim/src/service.rs crates/cdnsim/src/spec.rs crates/cdnsim/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libcdnsim-8140c01b171c5d8a.rmeta: crates/cdnsim/src/lib.rs crates/cdnsim/src/dns.rs crates/cdnsim/src/fe.rs crates/cdnsim/src/service.rs crates/cdnsim/src/spec.rs crates/cdnsim/src/world.rs Cargo.toml

crates/cdnsim/src/lib.rs:
crates/cdnsim/src/dns.rs:
crates/cdnsim/src/fe.rs:
crates/cdnsim/src/service.rs:
crates/cdnsim/src/spec.rs:
crates/cdnsim/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
