/root/repo/target/debug/deps/searchbe-4212918d2edea9b2.d: crates/searchbe/src/lib.rs crates/searchbe/src/datacenter.rs crates/searchbe/src/instant.rs crates/searchbe/src/keywords.rs crates/searchbe/src/proctime.rs crates/searchbe/src/response.rs

/root/repo/target/debug/deps/searchbe-4212918d2edea9b2: crates/searchbe/src/lib.rs crates/searchbe/src/datacenter.rs crates/searchbe/src/instant.rs crates/searchbe/src/keywords.rs crates/searchbe/src/proctime.rs crates/searchbe/src/response.rs

crates/searchbe/src/lib.rs:
crates/searchbe/src/datacenter.rs:
crates/searchbe/src/instant.rs:
crates/searchbe/src/keywords.rs:
crates/searchbe/src/proctime.rs:
crates/searchbe/src/response.rs:
