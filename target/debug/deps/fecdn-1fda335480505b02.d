/root/repo/target/debug/deps/fecdn-1fda335480505b02.d: src/lib.rs

/root/repo/target/debug/deps/libfecdn-1fda335480505b02.rlib: src/lib.rs

/root/repo/target/debug/deps/libfecdn-1fda335480505b02.rmeta: src/lib.rs

src/lib.rs:
