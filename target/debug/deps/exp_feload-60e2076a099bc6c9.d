/root/repo/target/debug/deps/exp_feload-60e2076a099bc6c9.d: crates/bench/src/bin/exp_feload.rs

/root/repo/target/debug/deps/exp_feload-60e2076a099bc6c9: crates/bench/src/bin/exp_feload.rs

crates/bench/src/bin/exp_feload.rs:
