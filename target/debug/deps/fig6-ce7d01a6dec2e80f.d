/root/repo/target/debug/deps/fig6-ce7d01a6dec2e80f.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-ce7d01a6dec2e80f: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
