/root/repo/target/debug/deps/inference_pipeline-ae3c6c8e88051916.d: tests/inference_pipeline.rs

/root/repo/target/debug/deps/inference_pipeline-ae3c6c8e88051916: tests/inference_pipeline.rs

tests/inference_pipeline.rs:
