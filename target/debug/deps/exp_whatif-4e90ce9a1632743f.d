/root/repo/target/debug/deps/exp_whatif-4e90ce9a1632743f.d: crates/bench/src/bin/exp_whatif.rs

/root/repo/target/debug/deps/exp_whatif-4e90ce9a1632743f: crates/bench/src/bin/exp_whatif.rs

crates/bench/src/bin/exp_whatif.rs:
