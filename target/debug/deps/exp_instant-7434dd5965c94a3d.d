/root/repo/target/debug/deps/exp_instant-7434dd5965c94a3d.d: crates/bench/src/bin/exp_instant.rs

/root/repo/target/debug/deps/exp_instant-7434dd5965c94a3d: crates/bench/src/bin/exp_instant.rs

crates/bench/src/bin/exp_instant.rs:
