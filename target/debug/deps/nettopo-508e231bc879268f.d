/root/repo/target/debug/deps/nettopo-508e231bc879268f.d: crates/nettopo/src/lib.rs crates/nettopo/src/faults.rs crates/nettopo/src/geo.rs crates/nettopo/src/metro.rs crates/nettopo/src/path.rs crates/nettopo/src/placement.rs crates/nettopo/src/sites.rs crates/nettopo/src/vantage.rs

/root/repo/target/debug/deps/libnettopo-508e231bc879268f.rlib: crates/nettopo/src/lib.rs crates/nettopo/src/faults.rs crates/nettopo/src/geo.rs crates/nettopo/src/metro.rs crates/nettopo/src/path.rs crates/nettopo/src/placement.rs crates/nettopo/src/sites.rs crates/nettopo/src/vantage.rs

/root/repo/target/debug/deps/libnettopo-508e231bc879268f.rmeta: crates/nettopo/src/lib.rs crates/nettopo/src/faults.rs crates/nettopo/src/geo.rs crates/nettopo/src/metro.rs crates/nettopo/src/path.rs crates/nettopo/src/placement.rs crates/nettopo/src/sites.rs crates/nettopo/src/vantage.rs

crates/nettopo/src/lib.rs:
crates/nettopo/src/faults.rs:
crates/nettopo/src/geo.rs:
crates/nettopo/src/metro.rs:
crates/nettopo/src/path.rs:
crates/nettopo/src/placement.rs:
crates/nettopo/src/sites.rs:
crates/nettopo/src/vantage.rs:
