/root/repo/target/debug/deps/fig5-5c240758d94e5b82.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-5c240758d94e5b82: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
