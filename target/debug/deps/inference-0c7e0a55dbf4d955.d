/root/repo/target/debug/deps/inference-0c7e0a55dbf4d955.d: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/bounds.rs crates/core/src/caching.rs crates/core/src/coords.rs crates/core/src/factoring.rs crates/core/src/model.rs crates/core/src/params.rs crates/core/src/threshold.rs

/root/repo/target/debug/deps/libinference-0c7e0a55dbf4d955.rlib: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/bounds.rs crates/core/src/caching.rs crates/core/src/coords.rs crates/core/src/factoring.rs crates/core/src/model.rs crates/core/src/params.rs crates/core/src/threshold.rs

/root/repo/target/debug/deps/libinference-0c7e0a55dbf4d955.rmeta: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/bounds.rs crates/core/src/caching.rs crates/core/src/coords.rs crates/core/src/factoring.rs crates/core/src/model.rs crates/core/src/params.rs crates/core/src/threshold.rs

crates/core/src/lib.rs:
crates/core/src/aggregate.rs:
crates/core/src/bounds.rs:
crates/core/src/caching.rs:
crates/core/src/coords.rs:
crates/core/src/factoring.rs:
crates/core/src/model.rs:
crates/core/src/params.rs:
crates/core/src/threshold.rs:
