/root/repo/target/debug/deps/exp_coords-2d0d6718267d948a.d: crates/bench/src/bin/exp_coords.rs Cargo.toml

/root/repo/target/debug/deps/libexp_coords-2d0d6718267d948a.rmeta: crates/bench/src/bin/exp_coords.rs Cargo.toml

crates/bench/src/bin/exp_coords.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
