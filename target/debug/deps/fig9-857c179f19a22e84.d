/root/repo/target/debug/deps/fig9-857c179f19a22e84.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-857c179f19a22e84: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
