/root/repo/target/debug/deps/exp_failover-2ed5ef4cb0317326.d: crates/bench/src/bin/exp_failover.rs

/root/repo/target/debug/deps/exp_failover-2ed5ef4cb0317326: crates/bench/src/bin/exp_failover.rs

crates/bench/src/bin/exp_failover.rs:
