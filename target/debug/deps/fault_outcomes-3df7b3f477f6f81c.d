/root/repo/target/debug/deps/fault_outcomes-3df7b3f477f6f81c.d: tests/fault_outcomes.rs Cargo.toml

/root/repo/target/debug/deps/libfault_outcomes-3df7b3f477f6f81c.rmeta: tests/fault_outcomes.rs Cargo.toml

tests/fault_outcomes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
