/root/repo/target/debug/deps/abl_iw-b210db5faecf9ec8.d: crates/bench/src/bin/abl_iw.rs

/root/repo/target/debug/deps/abl_iw-b210db5faecf9ec8: crates/bench/src/bin/abl_iw.rs

crates/bench/src/bin/abl_iw.rs:
