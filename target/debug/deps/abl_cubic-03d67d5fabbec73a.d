/root/repo/target/debug/deps/abl_cubic-03d67d5fabbec73a.d: crates/bench/src/bin/abl_cubic.rs Cargo.toml

/root/repo/target/debug/deps/libabl_cubic-03d67d5fabbec73a.rmeta: crates/bench/src/bin/abl_cubic.rs Cargo.toml

crates/bench/src/bin/abl_cubic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
