/root/repo/target/debug/deps/exp_whatif-157a26a61e38c64e.d: crates/bench/src/bin/exp_whatif.rs Cargo.toml

/root/repo/target/debug/deps/libexp_whatif-157a26a61e38c64e.rmeta: crates/bench/src/bin/exp_whatif.rs Cargo.toml

crates/bench/src/bin/exp_whatif.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
