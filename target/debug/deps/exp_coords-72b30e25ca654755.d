/root/repo/target/debug/deps/exp_coords-72b30e25ca654755.d: crates/bench/src/bin/exp_coords.rs

/root/repo/target/debug/deps/exp_coords-72b30e25ca654755: crates/bench/src/bin/exp_coords.rs

crates/bench/src/bin/exp_coords.rs:
