/root/repo/target/debug/deps/nettopo-a096da8f2ab74ae1.d: crates/nettopo/src/lib.rs crates/nettopo/src/faults.rs crates/nettopo/src/geo.rs crates/nettopo/src/metro.rs crates/nettopo/src/path.rs crates/nettopo/src/placement.rs crates/nettopo/src/sites.rs crates/nettopo/src/vantage.rs

/root/repo/target/debug/deps/nettopo-a096da8f2ab74ae1: crates/nettopo/src/lib.rs crates/nettopo/src/faults.rs crates/nettopo/src/geo.rs crates/nettopo/src/metro.rs crates/nettopo/src/path.rs crates/nettopo/src/placement.rs crates/nettopo/src/sites.rs crates/nettopo/src/vantage.rs

crates/nettopo/src/lib.rs:
crates/nettopo/src/faults.rs:
crates/nettopo/src/geo.rs:
crates/nettopo/src/metro.rs:
crates/nettopo/src/path.rs:
crates/nettopo/src/placement.rs:
crates/nettopo/src/sites.rs:
crates/nettopo/src/vantage.rs:
