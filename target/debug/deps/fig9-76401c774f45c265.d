/root/repo/target/debug/deps/fig9-76401c774f45c265.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-76401c774f45c265: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
