/root/repo/target/debug/deps/fig3-689ec599187351af.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-689ec599187351af: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
