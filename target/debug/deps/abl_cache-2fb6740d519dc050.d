/root/repo/target/debug/deps/abl_cache-2fb6740d519dc050.d: crates/bench/src/bin/abl_cache.rs Cargo.toml

/root/repo/target/debug/deps/libabl_cache-2fb6740d519dc050.rmeta: crates/bench/src/bin/abl_cache.rs Cargo.toml

crates/bench/src/bin/abl_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
