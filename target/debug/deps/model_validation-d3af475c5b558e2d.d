/root/repo/target/debug/deps/model_validation-d3af475c5b558e2d.d: tests/model_validation.rs

/root/repo/target/debug/deps/model_validation-d3af475c5b558e2d: tests/model_validation.rs

tests/model_validation.rs:
