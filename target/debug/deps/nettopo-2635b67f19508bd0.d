/root/repo/target/debug/deps/nettopo-2635b67f19508bd0.d: crates/nettopo/src/lib.rs crates/nettopo/src/faults.rs crates/nettopo/src/geo.rs crates/nettopo/src/metro.rs crates/nettopo/src/path.rs crates/nettopo/src/placement.rs crates/nettopo/src/sites.rs crates/nettopo/src/vantage.rs Cargo.toml

/root/repo/target/debug/deps/libnettopo-2635b67f19508bd0.rmeta: crates/nettopo/src/lib.rs crates/nettopo/src/faults.rs crates/nettopo/src/geo.rs crates/nettopo/src/metro.rs crates/nettopo/src/path.rs crates/nettopo/src/placement.rs crates/nettopo/src/sites.rs crates/nettopo/src/vantage.rs Cargo.toml

crates/nettopo/src/lib.rs:
crates/nettopo/src/faults.rs:
crates/nettopo/src/geo.rs:
crates/nettopo/src/metro.rs:
crates/nettopo/src/path.rs:
crates/nettopo/src/placement.rs:
crates/nettopo/src/sites.rs:
crates/nettopo/src/vantage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
