/root/repo/target/debug/deps/exp_feload-5b7bc38138cab788.d: crates/bench/src/bin/exp_feload.rs

/root/repo/target/debug/deps/exp_feload-5b7bc38138cab788: crates/bench/src/bin/exp_feload.rs

crates/bench/src/bin/exp_feload.rs:
