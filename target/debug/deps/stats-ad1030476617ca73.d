/root/repo/target/debug/deps/stats-ad1030476617ca73.d: crates/stats/src/lib.rs crates/stats/src/boxplot.rs crates/stats/src/cluster.rs crates/stats/src/ecdf.rs crates/stats/src/hist.rs crates/stats/src/ks.rs crates/stats/src/moving.rs crates/stats/src/quantile.rs crates/stats/src/regress.rs Cargo.toml

/root/repo/target/debug/deps/libstats-ad1030476617ca73.rmeta: crates/stats/src/lib.rs crates/stats/src/boxplot.rs crates/stats/src/cluster.rs crates/stats/src/ecdf.rs crates/stats/src/hist.rs crates/stats/src/ks.rs crates/stats/src/moving.rs crates/stats/src/quantile.rs crates/stats/src/regress.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/boxplot.rs:
crates/stats/src/cluster.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/hist.rs:
crates/stats/src/ks.rs:
crates/stats/src/moving.rs:
crates/stats/src/quantile.rs:
crates/stats/src/regress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
