/root/repo/target/debug/deps/abl_iw-ccba4cce46fda272.d: crates/bench/src/bin/abl_iw.rs

/root/repo/target/debug/deps/abl_iw-ccba4cce46fda272: crates/bench/src/bin/abl_iw.rs

crates/bench/src/bin/abl_iw.rs:
