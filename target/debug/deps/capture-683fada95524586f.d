/root/repo/target/debug/deps/capture-683fada95524586f.d: crates/capture/src/lib.rs crates/capture/src/classify.rs crates/capture/src/cluster_view.rs crates/capture/src/content.rs crates/capture/src/dump.rs crates/capture/src/errors.rs crates/capture/src/session.rs crates/capture/src/timeline.rs crates/capture/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libcapture-683fada95524586f.rmeta: crates/capture/src/lib.rs crates/capture/src/classify.rs crates/capture/src/cluster_view.rs crates/capture/src/content.rs crates/capture/src/dump.rs crates/capture/src/errors.rs crates/capture/src/session.rs crates/capture/src/timeline.rs crates/capture/src/validate.rs Cargo.toml

crates/capture/src/lib.rs:
crates/capture/src/classify.rs:
crates/capture/src/cluster_view.rs:
crates/capture/src/content.rs:
crates/capture/src/dump.rs:
crates/capture/src/errors.rs:
crates/capture/src/session.rs:
crates/capture/src/timeline.rs:
crates/capture/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
