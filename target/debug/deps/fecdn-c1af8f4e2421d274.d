/root/repo/target/debug/deps/fecdn-c1af8f4e2421d274.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfecdn-c1af8f4e2421d274.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
