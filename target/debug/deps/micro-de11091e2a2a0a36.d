/root/repo/target/debug/deps/micro-de11091e2a2a0a36.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-de11091e2a2a0a36.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
