/root/repo/target/debug/deps/fig8-19a9315c531373e0.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-19a9315c531373e0: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
