/root/repo/target/debug/deps/exp_loss-4cee2177e65f013c.d: crates/bench/src/bin/exp_loss.rs

/root/repo/target/debug/deps/exp_loss-4cee2177e65f013c: crates/bench/src/bin/exp_loss.rs

crates/bench/src/bin/exp_loss.rs:
