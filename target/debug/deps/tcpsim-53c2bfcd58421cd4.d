/root/repo/target/debug/deps/tcpsim-53c2bfcd58421cd4.d: crates/tcpsim/src/lib.rs crates/tcpsim/src/cubic.rs crates/tcpsim/src/endpoint.rs crates/tcpsim/src/net.rs crates/tcpsim/src/opts.rs crates/tcpsim/src/segment.rs crates/tcpsim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libtcpsim-53c2bfcd58421cd4.rmeta: crates/tcpsim/src/lib.rs crates/tcpsim/src/cubic.rs crates/tcpsim/src/endpoint.rs crates/tcpsim/src/net.rs crates/tcpsim/src/opts.rs crates/tcpsim/src/segment.rs crates/tcpsim/src/trace.rs Cargo.toml

crates/tcpsim/src/lib.rs:
crates/tcpsim/src/cubic.rs:
crates/tcpsim/src/endpoint.rs:
crates/tcpsim/src/net.rs:
crates/tcpsim/src/opts.rs:
crates/tcpsim/src/segment.rs:
crates/tcpsim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
