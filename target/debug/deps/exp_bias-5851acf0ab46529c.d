/root/repo/target/debug/deps/exp_bias-5851acf0ab46529c.d: crates/bench/src/bin/exp_bias.rs

/root/repo/target/debug/deps/exp_bias-5851acf0ab46529c: crates/bench/src/bin/exp_bias.rs

crates/bench/src/bin/exp_bias.rs:
