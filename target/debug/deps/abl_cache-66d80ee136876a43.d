/root/repo/target/debug/deps/abl_cache-66d80ee136876a43.d: crates/bench/src/bin/abl_cache.rs

/root/repo/target/debug/deps/abl_cache-66d80ee136876a43: crates/bench/src/bin/abl_cache.rs

crates/bench/src/bin/abl_cache.rs:
