/root/repo/target/debug/deps/fig7-11ce4b979523085e.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-11ce4b979523085e: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
