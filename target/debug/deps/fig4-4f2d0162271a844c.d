/root/repo/target/debug/deps/fig4-4f2d0162271a844c.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-4f2d0162271a844c: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
