/root/repo/target/debug/deps/proptests-eca3cc8ed1f3b004.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-eca3cc8ed1f3b004: tests/proptests.rs

tests/proptests.rs:
