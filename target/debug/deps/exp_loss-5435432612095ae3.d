/root/repo/target/debug/deps/exp_loss-5435432612095ae3.d: crates/bench/src/bin/exp_loss.rs

/root/repo/target/debug/deps/exp_loss-5435432612095ae3: crates/bench/src/bin/exp_loss.rs

crates/bench/src/bin/exp_loss.rs:
