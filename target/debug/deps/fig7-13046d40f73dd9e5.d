/root/repo/target/debug/deps/fig7-13046d40f73dd9e5.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-13046d40f73dd9e5: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
