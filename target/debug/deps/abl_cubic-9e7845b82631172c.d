/root/repo/target/debug/deps/abl_cubic-9e7845b82631172c.d: crates/bench/src/bin/abl_cubic.rs

/root/repo/target/debug/deps/abl_cubic-9e7845b82631172c: crates/bench/src/bin/abl_cubic.rs

crates/bench/src/bin/abl_cubic.rs:
