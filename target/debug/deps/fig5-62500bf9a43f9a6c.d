/root/repo/target/debug/deps/fig5-62500bf9a43f9a6c.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-62500bf9a43f9a6c: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
