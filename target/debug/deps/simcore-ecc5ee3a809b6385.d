/root/repo/target/debug/deps/simcore-ecc5ee3a809b6385.d: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/simcore-ecc5ee3a809b6385: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/dist.rs:
crates/simcore/src/queue.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/time.rs:
