/root/repo/target/debug/deps/exp_feload-0580c5f7862f5874.d: crates/bench/src/bin/exp_feload.rs Cargo.toml

/root/repo/target/debug/deps/libexp_feload-0580c5f7862f5874.rmeta: crates/bench/src/bin/exp_feload.rs Cargo.toml

crates/bench/src/bin/exp_feload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
