/root/repo/target/debug/deps/abl_cache-5081ce424892c11d.d: crates/bench/src/bin/abl_cache.rs

/root/repo/target/debug/deps/abl_cache-5081ce424892c11d: crates/bench/src/bin/abl_cache.rs

crates/bench/src/bin/abl_cache.rs:
