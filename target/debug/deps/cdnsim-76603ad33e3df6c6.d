/root/repo/target/debug/deps/cdnsim-76603ad33e3df6c6.d: crates/cdnsim/src/lib.rs crates/cdnsim/src/dns.rs crates/cdnsim/src/fe.rs crates/cdnsim/src/service.rs crates/cdnsim/src/spec.rs crates/cdnsim/src/world.rs

/root/repo/target/debug/deps/libcdnsim-76603ad33e3df6c6.rlib: crates/cdnsim/src/lib.rs crates/cdnsim/src/dns.rs crates/cdnsim/src/fe.rs crates/cdnsim/src/service.rs crates/cdnsim/src/spec.rs crates/cdnsim/src/world.rs

/root/repo/target/debug/deps/libcdnsim-76603ad33e3df6c6.rmeta: crates/cdnsim/src/lib.rs crates/cdnsim/src/dns.rs crates/cdnsim/src/fe.rs crates/cdnsim/src/service.rs crates/cdnsim/src/spec.rs crates/cdnsim/src/world.rs

crates/cdnsim/src/lib.rs:
crates/cdnsim/src/dns.rs:
crates/cdnsim/src/fe.rs:
crates/cdnsim/src/service.rs:
crates/cdnsim/src/spec.rs:
crates/cdnsim/src/world.rs:
