/root/repo/target/debug/deps/searchbe-72583affb31e74a7.d: crates/searchbe/src/lib.rs crates/searchbe/src/datacenter.rs crates/searchbe/src/instant.rs crates/searchbe/src/keywords.rs crates/searchbe/src/proctime.rs crates/searchbe/src/response.rs Cargo.toml

/root/repo/target/debug/deps/libsearchbe-72583affb31e74a7.rmeta: crates/searchbe/src/lib.rs crates/searchbe/src/datacenter.rs crates/searchbe/src/instant.rs crates/searchbe/src/keywords.rs crates/searchbe/src/proctime.rs crates/searchbe/src/response.rs Cargo.toml

crates/searchbe/src/lib.rs:
crates/searchbe/src/datacenter.rs:
crates/searchbe/src/instant.rs:
crates/searchbe/src/keywords.rs:
crates/searchbe/src/proctime.rs:
crates/searchbe/src/response.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
