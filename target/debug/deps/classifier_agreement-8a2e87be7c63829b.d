/root/repo/target/debug/deps/classifier_agreement-8a2e87be7c63829b.d: tests/classifier_agreement.rs Cargo.toml

/root/repo/target/debug/deps/libclassifier_agreement-8a2e87be7c63829b.rmeta: tests/classifier_agreement.rs Cargo.toml

tests/classifier_agreement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
