/root/repo/target/debug/deps/abl_split-193537ff571ae498.d: crates/bench/src/bin/abl_split.rs

/root/repo/target/debug/deps/abl_split-193537ff571ae498: crates/bench/src/bin/abl_split.rs

crates/bench/src/bin/abl_split.rs:
