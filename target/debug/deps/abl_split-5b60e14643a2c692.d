/root/repo/target/debug/deps/abl_split-5b60e14643a2c692.d: crates/bench/src/bin/abl_split.rs

/root/repo/target/debug/deps/abl_split-5b60e14643a2c692: crates/bench/src/bin/abl_split.rs

crates/bench/src/bin/abl_split.rs:
