/root/repo/target/debug/deps/exp_caching-6ef1e28d147ca282.d: crates/bench/src/bin/exp_caching.rs

/root/repo/target/debug/deps/exp_caching-6ef1e28d147ca282: crates/bench/src/bin/exp_caching.rs

crates/bench/src/bin/exp_caching.rs:
