/root/repo/target/debug/deps/exp_failover-f21e8d8c71dd2818.d: crates/bench/src/bin/exp_failover.rs

/root/repo/target/debug/deps/exp_failover-f21e8d8c71dd2818: crates/bench/src/bin/exp_failover.rs

crates/bench/src/bin/exp_failover.rs:
