/root/repo/target/debug/deps/tcpsim-e7bb2c471488cf28.d: crates/tcpsim/src/lib.rs crates/tcpsim/src/cubic.rs crates/tcpsim/src/endpoint.rs crates/tcpsim/src/net.rs crates/tcpsim/src/opts.rs crates/tcpsim/src/segment.rs crates/tcpsim/src/trace.rs

/root/repo/target/debug/deps/tcpsim-e7bb2c471488cf28: crates/tcpsim/src/lib.rs crates/tcpsim/src/cubic.rs crates/tcpsim/src/endpoint.rs crates/tcpsim/src/net.rs crates/tcpsim/src/opts.rs crates/tcpsim/src/segment.rs crates/tcpsim/src/trace.rs

crates/tcpsim/src/lib.rs:
crates/tcpsim/src/cubic.rs:
crates/tcpsim/src/endpoint.rs:
crates/tcpsim/src/net.rs:
crates/tcpsim/src/opts.rs:
crates/tcpsim/src/segment.rs:
crates/tcpsim/src/trace.rs:
