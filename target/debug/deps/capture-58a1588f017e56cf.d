/root/repo/target/debug/deps/capture-58a1588f017e56cf.d: crates/capture/src/lib.rs crates/capture/src/classify.rs crates/capture/src/cluster_view.rs crates/capture/src/content.rs crates/capture/src/dump.rs crates/capture/src/errors.rs crates/capture/src/session.rs crates/capture/src/timeline.rs crates/capture/src/validate.rs

/root/repo/target/debug/deps/libcapture-58a1588f017e56cf.rlib: crates/capture/src/lib.rs crates/capture/src/classify.rs crates/capture/src/cluster_view.rs crates/capture/src/content.rs crates/capture/src/dump.rs crates/capture/src/errors.rs crates/capture/src/session.rs crates/capture/src/timeline.rs crates/capture/src/validate.rs

/root/repo/target/debug/deps/libcapture-58a1588f017e56cf.rmeta: crates/capture/src/lib.rs crates/capture/src/classify.rs crates/capture/src/cluster_view.rs crates/capture/src/content.rs crates/capture/src/dump.rs crates/capture/src/errors.rs crates/capture/src/session.rs crates/capture/src/timeline.rs crates/capture/src/validate.rs

crates/capture/src/lib.rs:
crates/capture/src/classify.rs:
crates/capture/src/cluster_view.rs:
crates/capture/src/content.rs:
crates/capture/src/dump.rs:
crates/capture/src/errors.rs:
crates/capture/src/session.rs:
crates/capture/src/timeline.rs:
crates/capture/src/validate.rs:
