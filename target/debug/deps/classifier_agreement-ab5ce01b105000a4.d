/root/repo/target/debug/deps/classifier_agreement-ab5ce01b105000a4.d: tests/classifier_agreement.rs

/root/repo/target/debug/deps/classifier_agreement-ab5ce01b105000a4: tests/classifier_agreement.rs

tests/classifier_agreement.rs:
