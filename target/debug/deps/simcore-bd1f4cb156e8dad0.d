/root/repo/target/debug/deps/simcore-bd1f4cb156e8dad0.d: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libsimcore-bd1f4cb156e8dad0.rmeta: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/queue.rs crates/simcore/src/rng.rs crates/simcore/src/time.rs Cargo.toml

crates/simcore/src/lib.rs:
crates/simcore/src/dist.rs:
crates/simcore/src/queue.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
