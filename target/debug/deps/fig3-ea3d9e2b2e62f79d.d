/root/repo/target/debug/deps/fig3-ea3d9e2b2e62f79d.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-ea3d9e2b2e62f79d: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
