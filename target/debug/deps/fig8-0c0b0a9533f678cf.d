/root/repo/target/debug/deps/fig8-0c0b0a9533f678cf.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-0c0b0a9533f678cf: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
