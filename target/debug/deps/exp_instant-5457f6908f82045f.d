/root/repo/target/debug/deps/exp_instant-5457f6908f82045f.d: crates/bench/src/bin/exp_instant.rs

/root/repo/target/debug/deps/exp_instant-5457f6908f82045f: crates/bench/src/bin/exp_instant.rs

crates/bench/src/bin/exp_instant.rs:
