/root/repo/target/debug/examples/loss_tradeoff-c20ef6efc2555cc1.d: examples/loss_tradeoff.rs Cargo.toml

/root/repo/target/debug/examples/libloss_tradeoff-c20ef6efc2555cc1.rmeta: examples/loss_tradeoff.rs Cargo.toml

examples/loss_tradeoff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
