/root/repo/target/debug/examples/placement_whatif-8ca24aa9d5a50cf6.d: examples/placement_whatif.rs Cargo.toml

/root/repo/target/debug/examples/libplacement_whatif-8ca24aa9d5a50cf6.rmeta: examples/placement_whatif.rs Cargo.toml

examples/placement_whatif.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
