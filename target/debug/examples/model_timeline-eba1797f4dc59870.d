/root/repo/target/debug/examples/model_timeline-eba1797f4dc59870.d: examples/model_timeline.rs

/root/repo/target/debug/examples/model_timeline-eba1797f4dc59870: examples/model_timeline.rs

examples/model_timeline.rs:
