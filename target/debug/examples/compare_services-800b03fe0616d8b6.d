/root/repo/target/debug/examples/compare_services-800b03fe0616d8b6.d: examples/compare_services.rs Cargo.toml

/root/repo/target/debug/examples/libcompare_services-800b03fe0616d8b6.rmeta: examples/compare_services.rs Cargo.toml

examples/compare_services.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
