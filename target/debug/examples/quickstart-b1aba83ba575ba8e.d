/root/repo/target/debug/examples/quickstart-b1aba83ba575ba8e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b1aba83ba575ba8e: examples/quickstart.rs

examples/quickstart.rs:
