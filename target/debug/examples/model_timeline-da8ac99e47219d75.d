/root/repo/target/debug/examples/model_timeline-da8ac99e47219d75.d: examples/model_timeline.rs Cargo.toml

/root/repo/target/debug/examples/libmodel_timeline-da8ac99e47219d75.rmeta: examples/model_timeline.rs Cargo.toml

examples/model_timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
