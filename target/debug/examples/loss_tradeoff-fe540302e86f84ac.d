/root/repo/target/debug/examples/loss_tradeoff-fe540302e86f84ac.d: examples/loss_tradeoff.rs

/root/repo/target/debug/examples/loss_tradeoff-fe540302e86f84ac: examples/loss_tradeoff.rs

examples/loss_tradeoff.rs:
