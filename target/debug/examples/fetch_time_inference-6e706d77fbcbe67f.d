/root/repo/target/debug/examples/fetch_time_inference-6e706d77fbcbe67f.d: examples/fetch_time_inference.rs

/root/repo/target/debug/examples/fetch_time_inference-6e706d77fbcbe67f: examples/fetch_time_inference.rs

examples/fetch_time_inference.rs:
