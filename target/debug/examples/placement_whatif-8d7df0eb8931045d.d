/root/repo/target/debug/examples/placement_whatif-8d7df0eb8931045d.d: examples/placement_whatif.rs

/root/repo/target/debug/examples/placement_whatif-8d7df0eb8931045d: examples/placement_whatif.rs

examples/placement_whatif.rs:
