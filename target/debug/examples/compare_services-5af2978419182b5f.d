/root/repo/target/debug/examples/compare_services-5af2978419182b5f.d: examples/compare_services.rs

/root/repo/target/debug/examples/compare_services-5af2978419182b5f: examples/compare_services.rs

examples/compare_services.rs:
