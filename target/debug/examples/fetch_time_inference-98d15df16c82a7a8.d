/root/repo/target/debug/examples/fetch_time_inference-98d15df16c82a7a8.d: examples/fetch_time_inference.rs Cargo.toml

/root/repo/target/debug/examples/libfetch_time_inference-98d15df16c82a7a8.rmeta: examples/fetch_time_inference.rs Cargo.toml

examples/fetch_time_inference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
