#!/bin/sh
# Local CI: formatting, lints, tier-1 verify (ROADMAP.md), all offline.
# Usage: scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release --workspace --offline

echo "==> tier-1: cargo test -q"
cargo test --workspace -q --offline

echo "==> campaign determinism suite at FECDN_THREADS=1 and 4"
FECDN_THREADS=1 cargo test -q --offline --test determinism
FECDN_THREADS=4 cargo test -q --offline --test determinism
FECDN_THREADS=4 cargo test -q --offline --test fault_outcomes

echo "==> overload conformance: golden invariance (policies disabled/inert) + chaos, at FECDN_THREADS=1 and 4"
FECDN_THREADS=1 cargo test -q --offline --test overload
FECDN_THREADS=4 cargo test -q --offline --test overload

echo "==> cache-model conformance: policy semantics + installed-but-inert golden, at FECDN_THREADS=1 and 4"
FECDN_THREADS=1 cargo test -q --offline --test cache_model
FECDN_THREADS=4 cargo test -q --offline --test cache_model

echo "==> workload determinism: churned-Zipf session campaigns, at FECDN_THREADS=1 and 4"
FECDN_THREADS=1 cargo test -q --offline --test workload
FECDN_THREADS=4 cargo test -q --offline --test workload

echo "==> telemetry conformance suite at FECDN_THREADS=1 and 4"
FECDN_THREADS=1 cargo test -q --offline --test telemetry
FECDN_THREADS=4 cargo test -q --offline --test telemetry

echo "==> telemetry compiled out: same goldens, same conformance suite"
cargo test -q --offline --features telemetry-off --test telemetry --test determinism

echo "==> campaign smoke: exp_whatif serial vs 4 workers (streaming result path)"
FECDN_THREADS=1 ./target/release/exp_whatif > /tmp/ci_whatif_t1.tsv 2> /tmp/ci_whatif_t1.log
FECDN_THREADS=4 FECDN_METRICS_JSON=BENCH_metrics.json \
  ./target/release/exp_whatif > /tmp/ci_whatif_t4.tsv 2> /tmp/ci_whatif_t4.log
cmp /tmp/ci_whatif_t1.tsv /tmp/ci_whatif_t4.tsv || {
  echo "exp_whatif stdout differs between thread counts" >&2; exit 1;
}
echo "    exp_whatif stdout identical at FECDN_THREADS=1 and 4"
grep -q "^run	metric	kind" /tmp/ci_whatif_t4.log || {
  echo "exp_whatif stderr is missing the metrics.tsv document" >&2; exit 1;
}
echo "    exp_whatif stderr carries the metrics.tsv document"

echo "==> overload smoke: exp_overload shapes + exp_metastable hysteresis tripwire"
# exp_overload's own shape checks (load-model overhead curve, admission
# shedding, determinism) gate via its exit status.
./target/release/exp_overload > /tmp/ci_exp_overload.tsv 2> /tmp/ci_exp_overload.log
FECDN_THREADS=4 ./target/release/exp_metastable --out BENCH_overload.json \
  > /tmp/ci_exp_metastable.tsv 2> /tmp/ci_exp_metastable.log
python3 - <<'EOF'
import json, sys
cur = json.load(open("BENCH_overload.json"))
naive, budgeted = cur["recovery_ratio_naive"], cur["recovery_ratio_budgeted"]
print(f"    post/pre goodput: naive {naive:.2f} (stuck), budgeted {budgeted:.2f} (recovered)")
fail = []
# The metastable-failure tripwire: with budgeted retries the post-step
# goodput must recover to >= 90% of the pre-step level, while naive
# retries must demonstrate the hysteresis (stuck below half).
if budgeted < 0.9:
    fail.append(f"budgeted recovery {budgeted:.2f} < 0.90: retry budget no longer breaks the storm")
if naive >= 0.5:
    fail.append(f"naive recovery {naive:.2f} >= 0.50: the metastable regime vanished")
for msg in fail:
    print(f"exp_metastable: {msg}", file=sys.stderr)
sys.exit(1 if fail else 0)
EOF

echo "==> popularity smoke: exp_popularity policy crossover + 10^5-session slab memory contract"
# The binary internally re-runs its end-to-end arms at FECDN_THREADS=1
# and 4 and byte-compares the TSVs, so one invocation covers the thread
# matrix; its exit status gates the crossover shape and the memory
# contract. The memory phase here is the CI-sized smoke (10^4 -> 10^5
# sessions); FECDN_SCALE=paper runs the full 10^5 -> 10^6 contract.
./target/release/exp_popularity --out BENCH_popularity.json \
  > /tmp/ci_exp_popularity.tsv 2> /tmp/ci_exp_popularity.log
python3 - <<'EOF'
import json, sys
cur = json.load(open("BENCH_popularity.json"))
lru, lfu, ttl = cur["hit_lru"], cur["hit_lfu"], cur["hit_ttl"]
growth = cur["retained_growth_factor"]
print(f"    static Zipf: lfu {lfu[0]:.3f} vs lru {lru[0]:.3f}; "
      f"fastest churn: lru {lru[-1]:.3f} / ttl {ttl[-1]:.3f} vs lfu {lfu[-1]:.3f}")
print(f"    slab memory: {cur['sessions_base']:,} -> {cur['sessions_10x']:,} sessions, "
      f"retained growth {growth:.2f}x, pending growth {cur['pending_growth_factor']:.2f}x")
fail = []
# The paper-shaped crossover: frequency wins under a static law, loses
# under fast churn to both recency and freshness.
if not lfu[0] > lru[0]:
    fail.append(f"static Zipf: LFU {lfu[0]:.3f} no longer beats LRU {lru[0]:.3f}")
if not (lru[-1] > lfu[-1] and ttl[-1] > lfu[-1]):
    fail.append(f"fast churn: LFU {lfu[-1]:.3f} not beaten by LRU {lru[-1]:.3f} and TTL {ttl[-1]:.3f}")
if cur["crossover_churn"] is None:
    fail.append("no crossover churn rate found")
# Peak-memory tripwire: 10x the sessions, <= 1.5x the footprint.
if growth > 1.5:
    fail.append(f"retained growth {growth:.2f}x > 1.5x at 10x sessions")
if cur["pending_growth_factor"] > 1.5:
    fail.append(f"pending-event growth {cur['pending_growth_factor']:.2f}x > 1.5x at 10x sessions")
for msg in fail:
    print(f"exp_popularity: {msg}", file=sys.stderr)
sys.exit(1 if fail else 0)
EOF

echo "==> campaign memory: bench_campaign (collect vs stream, plus 10x-query smoke)"
# The binary itself runs the streaming sink at 10x the query count and
# fails if peak retained bytes grow: reintroducing unbounded buffering
# anywhere on the streaming path (runner, merge, sink) trips it here.
./target/release/bench_campaign --smoke --out BENCH_campaign.json \
  2> /tmp/ci_bench_campaign.log
python3 - <<'EOF'
import json, sys
cur = json.load(open("BENCH_campaign.json"))
base = json.load(open("BENCH_campaign.baseline.json"))
red, growth = cur["retained_reduction_factor"], cur["stream_10x_growth_factor"]
peak, base_peak = cur["peak_retained_stream_bytes"], base["peak_retained_stream_bytes"]
print(f"    retained: collect {cur['peak_retained_collect_bytes']:,} B vs "
      f"stream {peak:,} B ({red:.1f}x less), 10x-query growth {growth:.2f}x")
# Acceptance floor for the streaming result path: >= 5x less retained
# than collect-everything, near-flat memory at 10x the query count, and
# no creep past 1.5x the committed baseline's streaming footprint.
# Retained bytes are deterministic (capacity of bounded reducers), so
# unlike the wall-clock benches no noise margin is needed.
fail = []
if red < 5.0:
    fail.append(f"retained-bytes reduction {red:.2f}x < 5x")
if growth > 1.5:
    fail.append(f"10x-query growth {growth:.2f}x > 1.5x: unbounded buffering?")
if peak > 1.5 * base_peak:
    fail.append(f"stream peak {peak} B > 1.5x baseline {base_peak} B")
for msg in fail:
    print(f"bench_campaign: {msg}", file=sys.stderr)
sys.exit(1 if fail else 0)
EOF

echo "==> packet hot-path throughput: bench_tcpsim (smoke mode)"
./target/release/bench_tcpsim --smoke --out BENCH_tcpsim.json \
  2> /tmp/ci_bench_tcpsim.log
python3 - <<'EOF'
import json, sys
cur = json.load(open("BENCH_tcpsim.json"))
base = json.load(open("BENCH_tcpsim.baseline.json"))
key = "events_per_sec_tracing_on"
ratio = cur[key] / base[key]
print(f"    tracing-on {cur[key]:,} ev/s vs baseline {base[key]:,} "
      f"({ratio:.2f}x), tracing-off {cur['events_per_sec_tracing_off']:,} ev/s")
fail = []
# Coarse tripwire: the shared container's run-to-run noise is ~±19%,
# so only a drop past 30% is treated as a regression.
if ratio < 0.70:
    fail.append(f"{key} dropped >30% below baseline")
# Telemetry overhead tripwire: the paired-median estimator converges to
# ~±4% on this host, so a reading at or past 5% means the record path
# grew real work (ISSUE budget: <2% measured, <5% enforced).
overhead = cur["telemetry_overhead_pct"]
print(f"    telemetry overhead {overhead:+.2f}% "
      f"(off {cur['events_per_sec_telemetry_off']:,} ev/s, "
      f"on {cur['events_per_sec_telemetry_on']:,} ev/s)")
if overhead >= 5.0:
    fail.append(f"telemetry overhead {overhead:.2f}% >= 5%")
for msg in fail:
    print(f"bench_tcpsim: {msg}", file=sys.stderr)
sys.exit(1 if fail else 0)
EOF

echo "==> bench artifact schema check (BENCH_*.json and baselines)"
python3 - <<'EOF'
import json, sys

NUM, STR, LST, OBJ = (int, float), str, list, dict
SCHEMAS = {
    "BENCH_tcpsim": {
        "bench": STR, "mode": STR, "repeats": NUM,
        "events_per_sec_tracing_off": NUM, "events_per_sec_tracing_on": NUM,
        "recorded_pkts_per_sec": NUM,
        "events_per_sec_telemetry_off": NUM, "events_per_sec_telemetry_on": NUM,
        "telemetry_overhead_pct": NUM, "cells": LST,
    },
    "BENCH_campaign": {
        "binary": STR, "threads": NUM, "queries_base": NUM, "queries_10x": NUM,
        "wall_collect_ms": NUM, "wall_stream_ms": NUM, "wall_stream_10x_ms": NUM,
        "peak_retained_collect_bytes": NUM, "peak_retained_stream_bytes": NUM,
        "peak_retained_stream_10x_bytes": NUM,
        "retained_reduction_factor": NUM, "stream_10x_growth_factor": NUM,
    },
    "BENCH_overload": {
        "binary": STR, "trigger_start_ms": NUM, "trigger_end_ms": NUM,
        "queries_per_arm": NUM,
        "pre_goodput_naive": NUM, "trigger_goodput_naive": NUM,
        "post_goodput_naive": NUM,
        "pre_goodput_budgeted": NUM, "trigger_goodput_budgeted": NUM,
        "post_goodput_budgeted": NUM,
        "recovery_ratio_naive": NUM, "recovery_ratio_budgeted": NUM,
    },
    "BENCH_popularity": {
        "binary": STR, "catalog": NUM, "trace_lookups": NUM,
        "capacity_bytes": NUM, "churn_levels": LST,
        "hit_lru": LST, "hit_lfu": LST, "hit_ttl": LST,
        "crossover_churn": NUM,
        "e2e_sessions": NUM, "e2e_lru_hits": NUM, "e2e_lru_evictions": NUM,
        "sessions_base": NUM, "sessions_10x": NUM,
        "peak_retained_base_bytes": NUM, "peak_retained_10x_bytes": NUM,
        "retained_growth_factor": NUM,
        "peak_pending_base": NUM, "peak_pending_10x": NUM,
        "pending_growth_factor": NUM,
    },
}
fail = []
for stem, schema in SCHEMAS.items():
    for path in (f"{stem}.json", f"{stem}.baseline.json"):
        try:
            doc = json.load(open(path))
        except Exception as e:
            fail.append(f"{path}: unreadable ({e})")
            continue
        for k, ty in schema.items():
            if k not in doc:
                fail.append(f"{path}: missing required key {k!r}")
            elif not isinstance(doc[k], ty) or isinstance(doc[k], bool):
                fail.append(f"{path}: key {k!r} has type "
                            f"{type(doc[k]).__name__}, want {ty}")

# The merged telemetry artifact (written by the exp_whatif smoke above):
# a flat object of metrics, each an object with a known kind and numeric
# fields only.
try:
    doc = json.load(open("BENCH_metrics.json"))
    if not isinstance(doc, dict):
        fail.append("BENCH_metrics.json: top level is not an object")
    else:
        for name, m in doc.items():
            if not isinstance(m, dict) or m.get("kind") not in ("counter", "gauge", "hist"):
                fail.append(f"BENCH_metrics.json: {name!r} has bad kind")
                continue
            for k, v in m.items():
                if k != "kind" and (isinstance(v, bool) or not isinstance(v, (int, float))):
                    fail.append(f"BENCH_metrics.json: {name}.{k} is not numeric")
except Exception as e:
    fail.append(f"BENCH_metrics.json: unreadable ({e})")

for msg in fail:
    print(f"schema: {msg}", file=sys.stderr)
if not fail:
    n = len(SCHEMAS) * 2 + 1
    print(f"    {n} artifacts conform")
sys.exit(1 if fail else 0)
EOF

echo "CI OK"
