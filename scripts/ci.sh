#!/bin/sh
# Local CI: formatting, lints, tier-1 verify (ROADMAP.md), all offline.
# Usage: scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release --workspace --offline

echo "==> tier-1: cargo test -q"
cargo test --workspace -q --offline

echo "==> campaign determinism suite at FECDN_THREADS=1 and 4"
FECDN_THREADS=1 cargo test -q --offline --test determinism
FECDN_THREADS=4 cargo test -q --offline --test determinism
FECDN_THREADS=4 cargo test -q --offline --test fault_outcomes

echo "==> campaign smoke: exp_whatif serial vs 4 workers"
now_ms() { echo $(( $(date +%s%N) / 1000000 )); }
t0=$(now_ms)
FECDN_THREADS=1 ./target/release/exp_whatif > /tmp/ci_whatif_t1.tsv 2> /tmp/ci_whatif_t1.log
t1=$(now_ms)
FECDN_THREADS=4 ./target/release/exp_whatif > /tmp/ci_whatif_t4.tsv 2> /tmp/ci_whatif_t4.log
t2=$(now_ms)
serial_ms=$(( t1 - t0 ))
parallel_ms=$(( t2 - t1 ))
cmp /tmp/ci_whatif_t1.tsv /tmp/ci_whatif_t4.tsv || {
  echo "exp_whatif stdout differs between thread counts" >&2; exit 1;
}
# The runner's own overlap factor (sum of shard walls / campaign wall)
# from the 4-worker run: the wall-clock speedup an unloaded multi-core
# host sees; on a saturated or single-core host end-to-end wall stays
# flat while this factor shows the shards interleaving.
speedup=$(sed -n 's/.*speedup \([0-9.]*\)x.*/\1/p' /tmp/ci_whatif_t4.log)
cat > BENCH_campaign.json <<EOF
{
  "binary": "exp_whatif",
  "runs_in_campaign": 4,
  "threads": 4,
  "wall_serial_ms": ${serial_ms},
  "wall_threads4_ms": ${parallel_ms},
  "speedup": ${speedup:-1.0},
  "speedup_metric": "sum of per-shard wall clocks / campaign wall clock, as reported by the 4-worker run",
  "stdout_identical_across_thread_counts": true
}
EOF
echo "    serial ${serial_ms} ms, 4 workers ${parallel_ms} ms, overlap factor ${speedup:-?}x (BENCH_campaign.json)"

echo "==> packet hot-path throughput: bench_tcpsim (smoke mode)"
./target/release/bench_tcpsim --smoke --out BENCH_tcpsim.json \
  2> /tmp/ci_bench_tcpsim.log
python3 - <<'EOF'
import json, sys
cur = json.load(open("BENCH_tcpsim.json"))
base = json.load(open("BENCH_tcpsim.baseline.json"))
key = "events_per_sec_tracing_on"
ratio = cur[key] / base[key]
print(f"    tracing-on {cur[key]:,} ev/s vs baseline {base[key]:,} "
      f"({ratio:.2f}x), tracing-off {cur['events_per_sec_tracing_off']:,} ev/s")
# Coarse tripwire: the shared container's run-to-run noise is ~±19%,
# so only a drop past 30% is treated as a regression.
if ratio < 0.70:
    print(f"bench_tcpsim: {key} dropped >30% below baseline", file=sys.stderr)
    sys.exit(1)
EOF

echo "CI OK"
