#!/bin/sh
# Local CI: formatting, lints, tier-1 verify (ROADMAP.md), all offline.
# Usage: scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release --workspace --offline

echo "==> tier-1: cargo test -q"
cargo test --workspace -q --offline

echo "CI OK"
