#!/usr/bin/env bash
# Refreshes the committed golden campaign traces under tests/golden/.
#
# Run this only when an output change is *intentional* (simulator
# behaviour, seed derivation, or TSV format changed on purpose), then
# review the diff like any other code change.
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p tests/golden
UPDATE_GOLDEN=1 cargo test --offline --test determinism golden_ -- --nocapture
git --no-pager diff --stat -- tests/golden || true
