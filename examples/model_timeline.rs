//! The paper's Fig. 2 made concrete: run one query, dump the client's
//! packet trace tcpdump-style, and annotate the model's landmarks
//! (tb, t1, t2, t3, t4, t5, te) on it.
//!
//! ```sh
//! cargo run --release --example model_timeline
//! ```

use capture::dump;
use fecdn::prelude::*;

fn main() {
    let scenario = Scenario::small(42);
    let mut sim = scenario.bing_sim();
    sim.with(|w, net| {
        let fe = w.default_fe(0);
        let be = w.be_of_fe(fe);
        w.prewarm(net, fe, be, 2);
        w.schedule_query(
            net,
            SimDuration::from_millis(3_000),
            QuerySpec {
                client: 0,
                keyword: 1,
                fixed_fe: Some(fe),
                instant_followup: false,
            },
        );
    });
    let mut raw: Option<CompletedQuery> = None;
    let _ = run_collect_with(&mut sim, &Classifier::ByMarker, |cq| {
        raw = Some(cq.clone());
    });
    let cq = raw.expect("query completed");
    let client = ServiceWorld::client_node(cq.client);
    let tl = Timeline::extract(&cq.trace, client, &Classifier::ByMarker).unwrap();

    println!("=== client-side packet trace (tcpdump analogue) ===");
    print!("{}", dump::render_client_view(&cq.trace, client).unwrap());

    let rel = |t: SimTime| t.saturating_since(tl.tb).as_millis_f64();
    println!();
    println!("=== the Fig. 2 model landmarks (ms since the SYN) ===");
    println!("tb  = {:>9.3}  first SYN sent", 0.0);
    println!("t1  = {:>9.3}  HTTP GET sent", rel(tl.t1));
    println!("t2  = {:>9.3}  first ACK of the GET received", rel(tl.t2));
    println!("t3  = {:>9.3}  first static-content packet", rel(tl.t3));
    println!("t4  = {:>9.3}  last static-content packet", rel(tl.t4));
    println!("t5  = {:>9.3}  first dynamic-content packet", rel(tl.t5));
    println!("te  = {:>9.3}  last packet of the response", rel(tl.te));
    println!();
    println!("RTT (handshake)        = {:>9.3} ms", tl.rtt_ms);
    println!("Tstatic  := t4 − t2    = {:>9.3} ms", tl.t_static_ms());
    println!("Tdynamic := t5 − t2    = {:>9.3} ms", tl.t_dynamic_ms());
    println!("Tdelta   := t5 − t4    = {:>9.3} ms", tl.t_delta_ms());
    println!();
    println!(
        "Eq. (1):  Tdelta ({:.1}) ≤ Tfetch (true: {:.1}) ≤ Tdynamic ({:.1})",
        tl.t_delta_ms(),
        cq.true_fetch_ms().unwrap_or(f64::NAN),
        tl.t_dynamic_ms()
    );
}
