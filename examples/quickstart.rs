//! Quickstart: issue one search query against each service and print
//! the paper's measurement vector next to the simulator's ground truth.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fecdn::prelude::*;

fn one_query(name: &str, scenario: &Scenario, cfg: ServiceConfig) {
    let world = ServiceWorld::new(cfg, scenario.vantages.clone(), scenario.corpus.clone());
    let mut sim = Sim::new(scenario.seed, world);
    sim.net().trace_mut().set_enabled(true);
    sim.with(|w, net| {
        w.schedule_query(
            net,
            SimDuration::from_millis(1),
            QuerySpec {
                client: 0,
                keyword: 3,
                fixed_fe: None,
                instant_followup: false,
            },
        );
    });
    let queries = run_collect(&mut sim, &Classifier::ByMarker);
    let q = &queries[0];
    println!("== {name} ==");
    println!(
        "  vantage 0 → default FE, RTT (handshake est.)  {:>8.2} ms",
        q.params.rtt_ms
    );
    println!(
        "  Tstatic  (t4 − t2)                            {:>8.2} ms",
        q.params.t_static_ms
    );
    println!(
        "  Tdynamic (t5 − t2)                            {:>8.2} ms",
        q.params.t_dynamic_ms
    );
    println!(
        "  Tdelta   (t5 − t4)                            {:>8.2} ms",
        q.params.t_delta_ms
    );
    println!(
        "  overall  (te − tb)                            {:>8.2} ms",
        q.params.overall_ms
    );
    let bounds = FetchBounds::from_params(&q.params);
    println!(
        "  fetch-time bracket (eq. 1)              [{:>7.2}, {:>7.2}] ms",
        bounds.lower_ms, bounds.upper_ms
    );
    if let Some(truth) = q.true_fetch_ms {
        println!(
            "  true fetch time (simulator ground truth)      {:>8.2} ms  → in bracket: {}",
            truth,
            bounds.contains(truth, 12.0)
        );
    }
    println!(
        "  true BE processing time                        {:>8.2} ms",
        q.proc_ms
    );
    println!();
}

fn main() {
    let scenario = Scenario::small(42);
    one_query(
        "bing-like (Akamai FE, public FE↔BE transit)",
        &scenario,
        ServiceConfig::bing_like(scenario.seed),
    );
    one_query(
        "google-like (own FE, private WAN)",
        &scenario,
        ServiceConfig::google_like(scenario.seed),
    );
    println!("The directly unobservable FE↔BE fetch time is bracketed by the");
    println!("two client-side observables — the paper's Eq. (1) at work.");
}
