//! Placement what-if: sweep a single client's FE distance and watch the
//! paper's regimes switch — the concrete version of "there is a distance
//! threshold within which placing FE servers further closer to users is
//! no longer helpful".
//!
//! For one vantage we query every FE in the fleet (a super-Dataset-B)
//! and print `Tstatic` / `Tdynamic` / `Tdelta` against the RTT to that
//! FE, alongside the abstract model's prediction.
//!
//! ```sh
//! cargo run --release --example placement_whatif
//! ```

use capture::Classifier;
use emulator::runner::run_collect;
use fecdn::prelude::*;

fn main() {
    let scenario = Scenario::with_size(42, 20, 200);
    let cfg = ServiceConfig::google_like(scenario.seed);
    let mut sim = scenario.build_sim(cfg.clone());
    let fe_count = sim.with(|w, _| w.fe_count());
    let client = 0usize;
    sim.with(|w, net| {
        for fe in 0..fe_count {
            let be = w.be_of_fe(fe);
            w.prewarm(net, fe, be, 1);
            for r in 0..6u64 {
                w.schedule_query(
                    net,
                    SimDuration::from_millis(1 + r * 9_000 + fe as u64 * 311),
                    QuerySpec {
                        client,
                        keyword: 0,
                        fixed_fe: Some(fe),
                        instant_followup: false,
                    },
                );
            }
        }
    });
    let out = run_collect(&mut sim, &Classifier::ByMarker);

    // Median per FE.
    let samples: Vec<(u64, QueryParams)> = out
        .iter()
        .map(|q| (q.fe.unwrap() as u64, q.params))
        .collect();
    let mut groups = per_group_medians(&samples);
    groups.sort_by(|a, b| a.rtt_ms.partial_cmp(&b.rtt_ms).unwrap());

    // Fit the abstract model from the data: c from the nearest FE's
    // Tstatic, Tfetch from the small-RTT Tdynamic plateau.
    let c_ms = groups[0].t_static_ms - groups[0].rtt_ms;
    let plateau: Vec<f64> = groups
        .iter()
        .filter(|g| g.rtt_ms < 40.0)
        .map(|g| g.t_dynamic_ms)
        .collect();
    let t_fetch = stats::quantile::median(&plateau).unwrap();
    let model = ModelPrediction {
        c_ms,
        k_rounds: 1.0,
        t_fetch_ms: t_fetch,
    };
    println!(
        "fitted model: c = {c_ms:.1} ms, Tfetch = {t_fetch:.1} ms, threshold = {:?} ms\n",
        model.rtt_threshold_ms().map(|t| t.round())
    );
    println!(
        "{:>4} {:>9} | {:>9} {:>9} {:>8} | {:>10} {:>9}",
        "FE", "RTT(ms)", "Tstatic", "Tdynamic", "Tdelta", "model Tdyn", "model Δ"
    );
    for g in &groups {
        println!(
            "{:>4} {:>9.1} | {:>9.1} {:>9.1} {:>8.1} | {:>10.1} {:>9.1}",
            g.group,
            g.rtt_ms,
            g.t_static_ms,
            g.t_dynamic_ms,
            g.t_delta_ms,
            model.t_dynamic_ms(g.rtt_ms),
            model.t_delta_ms(g.rtt_ms),
        );
    }
    println!();
    println!("Below the threshold, Tdynamic is flat: a closer FE does not deliver");
    println!("results sooner. To improve further, optimize the fetch time itself —");
    println!("the paper's concluding advice.");
}
