//! Compare the two services end to end, the paper's Sec. 4.2 in
//! miniature: Dataset A from every vantage to its default FE, then the
//! headline comparison — who is closer, who is faster, who is more
//! variable.
//!
//! ```sh
//! cargo run --release --example compare_services
//! ```

use capture::Classifier;
use emulator::dataset_a::{DatasetA, KeywordPolicy};
use fecdn::prelude::*;
use simcore::time::SimDuration;

fn campaign(name: &str, scenario: &Scenario, cfg: ServiceConfig) -> Vec<ProcessedQuery> {
    let d = DatasetA {
        repeats: 8,
        spacing: SimDuration::from_secs(10),
        keywords: KeywordPolicy::Fixed(0),
    };
    let out = d.run(scenario, cfg, &Classifier::ByMarker);
    println!(
        "{name}: {} queries from {} vantages",
        out.len(),
        scenario.vantage_count()
    );
    out
}

fn summarize(name: &str, out: &[ProcessedQuery]) {
    let samples: Vec<(u64, QueryParams)> =
        out.iter().map(|q| (q.client as u64, q.params)).collect();
    let groups = per_group_medians(&samples);
    let med = |v: Vec<f64>| stats::quantile::median(&v).unwrap();
    let rtt = med(groups.iter().map(|g| g.rtt_ms).collect());
    let ts = med(groups.iter().map(|g| g.t_static_ms).collect());
    let td = med(groups.iter().map(|g| g.t_dynamic_ms).collect());
    let ov = med(groups.iter().map(|g| g.overall_ms).collect());
    println!(
        "  {name:<12} median RTT {rtt:>6.1} ms | Tstatic {ts:>6.1} | Tdynamic {td:>7.1} | overall {ov:>7.1}"
    );
}

fn main() {
    let scenario = Scenario::with_size(42, 40, 1_000);
    let bing = campaign(
        "bing-like",
        &scenario,
        ServiceConfig::bing_like(scenario.seed),
    );
    let google = campaign(
        "google-like",
        &scenario,
        ServiceConfig::google_like(scenario.seed),
    );
    println!();
    summarize("bing-like", &bing);
    summarize("google-like", &google);
    println!();
    // The same data as a markdown report (medians, IQR in parentheses).
    let summaries = [
        emulator::report::CampaignSummary::of("bing-like", &bing).unwrap(),
        emulator::report::CampaignSummary::of("google-like", &google).unwrap(),
    ];
    println!("{}", emulator::report::markdown_table(&summaries));
    println!("The paper's Sec. 4.2 finding reproduces: the Akamai-style fleet is");
    println!("*closer* (smaller RTT) yet *slower* end to end — FE proximity cannot");
    println!("beat a slow, variable FE↔BE fetch. Placement is not everything.");
}
