//! Sec. 6's wireless scenario as a runnable what-if: how does the value
//! of FE proximity change when the last hop drops packets?
//!
//! ```sh
//! cargo run --release --example loss_tradeoff
//! ```

use capture::Classifier;
use emulator::runner::run_collect;
use fecdn::prelude::*;
use nettopo::path::PathProfile;

fn median_overall(
    scenario: &Scenario,
    cfg: ServiceConfig,
    client: usize,
    fe: usize,
    repeats: u64,
) -> f64 {
    let mut sim = scenario.build_sim(cfg);
    sim.with(|w, net| {
        let be = w.be_of_fe(fe);
        w.prewarm(net, fe, be, 2);
        for r in 0..repeats {
            w.schedule_query(
                net,
                SimDuration::from_millis(1 + r * 8_000),
                QuerySpec {
                    client,
                    keyword: 0,
                    fixed_fe: Some(fe),
                    instant_followup: false,
                },
            );
        }
    });
    let out = run_collect(&mut sim, &Classifier::ByMarker);
    let overall: Vec<f64> = out.iter().map(|q| q.params.overall_ms).collect();
    stats::quantile::median(&overall).unwrap()
}

fn main() {
    let scenario = Scenario::with_size(42, 30, 200);
    let base = ServiceConfig::google_like(scenario.seed);
    let mut sim = scenario.build_sim(base.clone());
    let (near, far) = sim.with(|w, _| {
        let near = w.default_fe(0);
        let far = (0..w.fe_count())
            .min_by(|&a, &b| {
                let ea = (w.client_fe_rtt_ms(0, a) - 70.0).abs();
                let eb = (w.client_fe_rtt_ms(0, b) - 70.0).abs();
                ea.partial_cmp(&eb).unwrap()
            })
            .unwrap();
        (near, far)
    });
    let (rtt_near, rtt_far) =
        sim.with(|w, _| (w.client_fe_rtt_ms(0, near), w.client_fe_rtt_ms(0, far)));
    drop(sim);
    println!("client 0 served by FE {near} ({rtt_near:.1} ms) vs FE {far} ({rtt_far:.1} ms)\n");
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "loss", "near (ms)", "far (ms)", "advantage"
    );
    for loss in [0.0, 0.01, 0.03, 0.05] {
        let mut profile = PathProfile::wireless_access();
        profile.loss = loss;
        let cfg = base.clone().with_access_override(profile);
        let n = median_overall(&scenario, cfg.clone(), 0, near, 20);
        let f = median_overall(&scenario, cfg, 0, far, 20);
        println!("{:>7.1}% {n:>12.1} {f:>12.1} {:>12.1}", loss * 100.0, f - n);
    }
    println!();
    println!("On a clean path, FE proximity below the fetch-time threshold buys");
    println!("little; under loss, every recovery costs ~1 RTT to the FE, so the");
    println!("near placement pulls ahead — the paper's Sec. 6 discussion.");
}
