//! The core contribution, demonstrated end to end: infer the
//! unobservable FE↔BE fetch time from client-side packet timelines, and
//! validate every step against simulator ground truth.
//!
//! Steps (all from Sec. 2–5 of the paper):
//!  1. Dataset B against one fixed FE;
//!  2. per-query fetch-time brackets (Eq. 1), intersected per vantage;
//!  3. the RTT threshold where `Tdelta` hits zero — the placement limit;
//!  4. distance regression (Eq. 2): the intercept recovers `Tproc`.
//!
//! ```sh
//! cargo run --release --example fetch_time_inference
//! ```

use capture::Classifier;
use emulator::dataset_b::DatasetB;
use fecdn::prelude::*;

fn main() {
    let scenario = Scenario::with_size(42, 50, 500);
    let cfg = ServiceConfig::google_like(scenario.seed);

    // ---- step 1: Dataset B ----
    let mut sim = scenario.build_sim(cfg.clone());
    let fe = sim.with(|w, _| w.default_fe(0));
    drop(sim);
    let out = DatasetB::against(fe)
        .with_repeats(10)
        .run(&scenario, cfg, &Classifier::ByMarker);
    println!("Dataset B: {} queries against fixed FE {fe}", out.len());

    // ---- step 2: fetch-time brackets, intersected per vantage ----
    let mut per_client: std::collections::BTreeMap<usize, Vec<FetchBounds>> = Default::default();
    let mut truths: std::collections::BTreeMap<usize, Vec<f64>> = Default::default();
    for q in &out {
        per_client
            .entry(q.client)
            .or_default()
            .push(FetchBounds::from_params(&q.params));
        if let Some(t) = q.true_fetch_ms {
            truths.entry(q.client).or_default().push(t);
        }
    }
    let mut contained = 0usize;
    let mut total = 0usize;
    let mut width_single = Vec::new();
    let mut width_joint = Vec::new();
    for (client, bounds) in &per_client {
        // Per-client median single-query width vs the intersected width.
        let singles: Vec<f64> = bounds.iter().map(|b| b.width_ms()).collect();
        width_single.push(stats::quantile::median(&singles).unwrap());
        if let Some(joint) = FetchBounds::intersect_all(bounds) {
            width_joint.push(joint.width_ms());
            if let Some(ts) = truths.get(client) {
                let mean_truth = ts.iter().sum::<f64>() / ts.len() as f64;
                total += 1;
                if joint.contains(mean_truth, 25.0) {
                    contained += 1;
                }
            }
        }
    }
    let med = |v: &[f64]| stats::quantile::median(v).unwrap();
    println!(
        "bracket widths: single query {:.0} ms → intersected per vantage {:.0} ms",
        med(&width_single),
        med(&width_joint)
    );
    println!("intersected brackets containing the mean true fetch time: {contained}/{total}");

    // ---- step 3: the RTT threshold ----
    let samples: Vec<(u64, QueryParams)> =
        out.iter().map(|q| (q.client as u64, q.params)).collect();
    let groups = per_group_medians(&samples);
    let points: Vec<(f64, f64)> = groups.iter().map(|g| (g.rtt_ms, g.t_delta_ms)).collect();
    let thr = estimate_rtt_threshold(&points, 3.0, 25.0);
    println!(
        "RTT threshold (Tdelta→0): linear x-intercept {:?} ms, binned {:?} ms",
        thr.linear_intercept_ms.map(|t| t.round()),
        thr.binned_first_zero_ms.map(|t| t.round()),
    );
    println!("below that RTT, moving the FE closer cannot improve Tdynamic —");
    println!("performance is pinned by the fetch time (the paper's trade-off).");

    // ---- step 4: factoring (distance regression) ----
    let fit_points: Vec<(f64, f64)> = groups
        .iter()
        .filter(|g| g.rtt_ms < 30.0)
        .map(|_| ())
        .zip(out.iter().filter(|q| q.params.rtt_ms < 30.0))
        .map(|(_, q)| (q.dist_fe_be_miles, q.params.t_dynamic_ms))
        .collect();
    if let Some(f) = factor_fetch_time(&fit_points) {
        println!(
            "distance regression (one FE, small-RTT clients): intercept {:.0} ms ≈ Tproc",
            f.tproc_ms
        );
        let true_proc: Vec<f64> = out.iter().map(|q| q.proc_ms).collect();
        println!(
            "true mean Tproc from the simulator: {:.0} ms",
            stats::quantile::mean(&true_proc).unwrap()
        );
    }
}
