//! Extension — scoring the paper's measurement method itself.
//!
//! The paper's static/dynamic split comes from payload content analysis;
//! a cheaper online alternative would be the PSH-flag heuristic. Because
//! the simulator carries ground truth, both can be *scored* instead of
//! trusted. The interesting failure is structural: beyond the RTT
//! threshold the portions coalesce into one packet, which content
//! analysis handles (it sees bytes) but the PSH heuristic cannot (it
//! sees only packet boundaries).
//!
//! Asserted:
//! * content analysis reproduces the oracle boundary on essentially
//!   every session, at small and large RTT alike;
//! * the PSH heuristic is near-perfect *below* the threshold but
//!   degrades on merged sessions;
//! * content analysis' `Tdelta` error stays ≈ 0, so every downstream
//!   inference result in this repository stands on a validated method.

use bench::{campaign, check, execute_stream, finish, seed_from_env, Scale};
use capture::validate::score_classifier;
use capture::{find_static_content_ids, Classifier};
use cdnsim::{QuerySpec, ServiceConfig, ServiceWorld};
use emulator::output::Tsv;
use emulator::{Design, FoldSink, RetainRaw, RunDescriptor};
use simcore::time::SimDuration;
use tcpsim::NodeId;

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let repeats: u64 = match scale {
        Scale::Quick => 4,
        Scale::Paper => 12,
    };

    // Distinct queries from every vantage to one *fixed* FE of the
    // google-like service (threshold ≈ 72 ms): the vantage RTT spread
    // then covers both regimes, with plenty of merged sessions.
    let mut c = campaign(scale, seed);
    c.push(
        "classifiers",
        ServiceConfig::google_like(seed),
        Design::custom(move |sim| {
            sim.with(|w, net| {
                let fe = w.default_fe(0);
                let be = w.be_of_fe(fe);
                w.prewarm(net, fe, be, 4);
                let n = w.clients().len();
                let corpus_len = w.corpus().len() as u64;
                for c in 0..n {
                    for r in 0..repeats {
                        w.schedule_query(
                            net,
                            SimDuration::from_millis(3_000 + r * 9_000 + c as u64 * 83),
                            QuerySpec {
                                client: c,
                                keyword: (c as u64 * repeats + r + 1) % corpus_len,
                                fixed_fe: Some(fe),
                                instant_followup: false,
                            },
                        );
                    }
                }
            });
        }),
    );
    // Classifier scoring needs the packet traces themselves: opt into
    // raw retention (traces are moved into the sink, not cloned).
    let report = execute_stream(&c, &|_: &RunDescriptor| {
        RetainRaw::new(FoldSink::new((), |_, _| {}))
    });
    let raw = &report.output("classifiers").1;

    // Learn the static ids blind, borrowing the traces in place.
    let traces: Vec<&[tcpsim::PktEvent]> = raw.iter().map(|c| c.trace.as_slice()).collect();
    let clients: Vec<NodeId> = raw
        .iter()
        .map(|c| ServiceWorld::client_node(c.client))
        .collect();
    let static_ids = find_static_content_ids(&traces, |i| clients[i], 3);
    let by_content = Classifier::ByContent(static_ids.clone());

    // Partition sessions by regime using the oracle Tdelta.
    let mut merged_idx = Vec::new();
    let mut separated_idx = Vec::new();
    for (i, cq) in raw.iter().enumerate() {
        if let Ok(tl) = capture::Timeline::extract(&cq.trace, clients[i], &Classifier::ByMarker) {
            if tl.t_delta_ms() < 1.0 {
                merged_idx.push(i);
            } else {
                separated_idx.push(i);
            }
        }
    }
    let batch = |idx: &[usize]| -> Vec<(&[tcpsim::PktEvent], NodeId)> {
        idx.iter().map(|&i| (traces[i], clients[i])).collect()
    };
    let all_idx: Vec<usize> = (0..raw.len()).collect();

    let stdout = std::io::stdout();
    let mut tsv = Tsv::new(
        stdout.lock(),
        &[
            "classifier",
            "regime",
            "sessions",
            "boundary_accuracy",
            "mean_tdelta_err_ms",
        ],
    )
    .unwrap();
    let mut results = Vec::new();
    for (cname, classifier) in [
        ("by-content", by_content.clone()),
        ("by-push", Classifier::ByPush),
    ] {
        for (rname, idx) in [
            ("all", &all_idx),
            ("separated", &separated_idx),
            ("merged", &merged_idx),
        ] {
            let score = score_classifier(&batch(idx), &classifier);
            tsv.row(&[
                cname.to_string(),
                rname.to_string(),
                score.comparable.to_string(),
                format!("{:.4}", score.boundary_accuracy()),
                format!("{:.3}", score.mean_tdelta_err_ms),
            ])
            .unwrap();
            eprintln!(
                "{cname:<11} {rname:<10} n={:<4} boundary acc {:.3}, Tdelta err {:.2} ms",
                score.comparable,
                score.boundary_accuracy(),
                score.mean_tdelta_err_ms
            );
            results.push((cname, rname, score));
        }
    }

    let get = |c: &str, r: &str| {
        results
            .iter()
            .find(|(cn, rn, _)| *cn == c && *rn == r)
            .map(|(_, _, s)| s.clone())
            .unwrap()
    };
    let mut ok = true;
    ok &= check(
        "a meaningful merged population exists",
        merged_idx.len() >= 10,
    );
    ok &= check(
        "a meaningful separated population exists",
        separated_idx.len() >= 10,
    );
    ok &= check(
        "content analysis: ≥ 99% boundary accuracy overall",
        get("by-content", "all").boundary_accuracy() >= 0.99,
    );
    ok &= check(
        "content analysis: Tdelta error ≈ 0",
        get("by-content", "all").mean_tdelta_err_ms < 0.5,
    );
    ok &= check(
        "PSH heuristic: fine on separated sessions (≥ 90%)",
        get("by-push", "separated").boundary_accuracy() >= 0.90,
    );
    ok &= check(
        "PSH heuristic: degrades on merged sessions",
        get("by-push", "merged").boundary_accuracy()
            < get("by-push", "separated").boundary_accuracy(),
    );
    finish(ok);
}
