//! Ablation — the FE's initial congestion window moves the RTT
//! threshold.
//!
//! The model's mechanism (Sec. 2/4): the static burst is paced by the
//! FE's TCP window across ACK-clocked rounds; the `Tdelta → 0` threshold
//! sits where that pacing time crosses the fetch time. The initial
//! window decides how many rounds the static burst needs:
//!
//! * IW 2 → ~2 extra rounds → `Tdelta` falls at slope ≈ −2, threshold
//!   roughly halves;
//! * IW 4 (default) → 1 extra round → slope ≈ −1, the paper's regime;
//! * IW 10 → the whole static portion (and more) fits the initial
//!   window → `Tdelta` stays ≈ flat and never reaches zero in the
//!   measured range.
//!
//! This is the design insight behind Google's IW10 campaign viewed
//! through the paper's model.

use bench::{campaign, check, dataset_b_repeats, execute_stream, finish, seed_from_env, Scale};
use cdnsim::ServiceConfig;
use emulator::dataset_b::DatasetB;
use emulator::output::Tsv;
use emulator::{Design, FoldSink, RunDescriptor};
use inference::{estimate_rtt_threshold, GroupMediansAcc};

struct SweepRow {
    iw: u32,
    slope: Option<f64>,
    threshold_ms: Option<f64>,
}

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let repeats = dataset_b_repeats(scale).min(24);

    let mut c = campaign(scale, seed);
    for iw in [2u32, 4, 10] {
        c.push(
            format!("iw{iw}"),
            ServiceConfig::google_like(seed).with_fe_initial_window(iw),
            Design::custom(move |sim| {
                let fe = sim.with(|w, _| w.default_fe(0));
                DatasetB::against(fe).with_repeats(repeats).schedule(sim);
            }),
        );
    }
    let report = execute_stream(&c, &|_: &RunDescriptor| {
        FoldSink::new(GroupMediansAcc::exact(), |a: &mut GroupMediansAcc, q| {
            a.push(q.client as u64, &q.params)
        })
    });

    let stdout = std::io::stdout();
    let mut tsv = Tsv::new(stdout.lock(), &["iw_segs", "tdelta_slope", "threshold_ms"]).unwrap();

    let mut rows = Vec::new();
    for iw in [2u32, 4, 10] {
        let groups = report.output(&format!("iw{iw}")).finish();
        let points: Vec<(f64, f64)> = groups.iter().map(|g| (g.rtt_ms, g.t_delta_ms)).collect();
        let est = estimate_rtt_threshold(&points, 3.0, 25.0);
        let threshold = est.linear_intercept_ms.or(est.binned_first_zero_ms);
        eprintln!(
            "IW {iw:>2}: Tdelta slope {:?}, threshold {:?}",
            est.linear_slope.map(|s| format!("{s:.2}")),
            threshold.map(|t| format!("{t:.0} ms")),
        );
        tsv.row(&[
            iw.to_string(),
            est.linear_slope
                .map(|s| format!("{s:.4}"))
                .unwrap_or_else(|| "NA".into()),
            threshold
                .map(|t| format!("{t:.1}"))
                .unwrap_or_else(|| "NA".into()),
        ])
        .unwrap();
        rows.push(SweepRow {
            iw,
            slope: est.linear_slope,
            threshold_ms: threshold,
        });
    }

    let mut ok = true;
    let by_iw = |iw: u32| rows.iter().find(|r| r.iw == iw).unwrap();
    let (t2, t4) = (by_iw(2).threshold_ms, by_iw(4).threshold_ms);
    if let (Some(t2), Some(t4)) = (t2, t4) {
        ok &= check(
            &format!("IW2 threshold {t2:.0} below IW4 threshold {t4:.0}"),
            t2 < t4,
        );
    } else {
        ok = check("IW2 and IW4 thresholds estimable", false) && ok;
    }
    let s2 = by_iw(2).slope.unwrap_or(0.0);
    let s4 = by_iw(4).slope.unwrap_or(0.0);
    let s10 = by_iw(10).slope.unwrap_or(0.0);
    ok &= check(
        &format!("Tdelta falls steeper with a smaller IW ({s2:.2} < {s4:.2})"),
        s2 < s4 - 0.3,
    );
    ok &= check(
        &format!("IW10 keeps the static burst in one window: slope {s10:.2} ≈ flat"),
        s10 > -0.45,
    );
    finish(ok);
}
