//! Robustness — back-end outage, failover and recovery.
//!
//! The paper's split-TCP architecture concentrates failure handling at
//! the front-end: when a back-end site goes dark, the FE re-routes its
//! fetches to the next-nearest live site, and when the site returns, the
//! FE's persistent connections must be re-established from a cold
//! congestion window. Both effects are visible *only* in `Tdynamic` —
//! the static portion is served from the FE's cache and never touches
//! the failed site.
//!
//! Design: one client issues evenly spaced queries through its default
//! FE for 60 virtual seconds. The FE's primary back-end site is dark
//! during the middle third of the campaign. Observables per query:
//! `Tstatic`, `Tdynamic`, the true fetch interval, and the serving BE.
//!
//! Asserted:
//! * every query completes with outcome `Ok` — failover, not failure;
//! * during the outage fetches move to a different (live) site and the
//!   median `Tdynamic` rises;
//! * after the outage `Tdynamic` recovers to its pre-outage level;
//! * the first post-recovery fetch pays a cold-reconnect penalty over
//!   the warm steady state that follows it;
//! * median `Tstatic` stays flat through all three phases;
//! * the whole experiment is deterministic: a second run reproduces
//!   every measurement exactly.

use bench::{campaign, check, execute_stream, finish, scenario, seed_from_env, Scale};
use cdnsim::{QueryOutcome, QuerySpec, ServiceConfig};
use emulator::output::Tsv;
use emulator::runner::ProcessedQuery;
use emulator::{Design, FoldSink, RunDescriptor};
use nettopo::FaultPlan;
use simcore::time::{SimDuration, SimTime};
use stats::quantile::median;

const OUTAGE_START_MS: u64 = 20_000;
const OUTAGE_END_MS: u64 = 40_000;

fn failover_design(client: usize, fe: usize, repeats: u64, spacing_ms: u64) -> Design {
    Design::custom(move |sim| {
        sim.with(|w, net| {
            let be = w.be_of_fe(fe);
            w.prewarm(net, fe, be, 2);
            for r in 0..repeats {
                w.schedule_query(
                    net,
                    SimDuration::from_millis(3_000 + r * spacing_ms),
                    QuerySpec {
                        client,
                        keyword: r,
                        fixed_fe: Some(fe),
                        instant_followup: false,
                    },
                );
            }
        });
    })
}

fn phase_of(t_start_ms: f64) -> &'static str {
    if t_start_ms < OUTAGE_START_MS as f64 {
        "before"
    } else if t_start_ms < OUTAGE_END_MS as f64 {
        "during"
    } else {
        "after"
    }
}

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let sc = scenario(scale, seed);
    let (repeats, spacing_ms) = match scale {
        Scale::Quick => (30u64, 2_000u64),
        Scale::Paper => (120u64, 500u64),
    };

    let base = ServiceConfig::google_like(seed);
    let mut probe = sc.build_sim(base.clone());
    let (client, fe, primary_be) = probe.with(|w, _| {
        let client = 0usize;
        let fe = w.default_fe(client);
        (client, fe, w.be_of_fe(fe))
    });
    drop(probe);
    eprintln!(
        "client {client} via FE {fe}, primary BE site {primary_be} dark \
         {}–{} s",
        OUTAGE_START_MS / 1_000,
        OUTAGE_END_MS / 1_000
    );

    let plan = FaultPlan::default().be_outage(
        primary_be,
        SimTime::from_millis(OUTAGE_START_MS),
        SimTime::from_millis(OUTAGE_END_MS),
    );
    let cfg = base
        .with_faults(plan)
        .with_fe_fetch_deadline(SimDuration::from_millis(1_500));

    // Two descriptors with the *same* derived seed: identical worlds that
    // may land on different worker threads, so the exact-reproduction
    // check also exercises shard-level determinism.
    let design = failover_design(client, fe, repeats, spacing_ms);
    let mut c = campaign(scale, seed);
    let run_seed = c.push("failover", cfg.clone(), design.clone()).seed;
    c.push("failover-rerun", cfg, design).seed = run_seed;
    // This experiment inspects every individual query (phase timelines,
    // rerun comparison), so its sink retains the processed records —
    // still trace-free and O(repeats) small.
    let report = execute_stream(&c, &|_: &RunDescriptor| {
        FoldSink::new(Vec::new(), |v: &mut Vec<ProcessedQuery>, q| {
            v.push(q.clone())
        })
    });
    let out = report.output("failover");
    let tally = report.tally("failover");
    let rerun = report.output("failover-rerun");

    let stdout = std::io::stdout();
    let mut tsv = Tsv::new(
        stdout.lock(),
        &[
            "t_start_ms",
            "phase",
            "be",
            "t_static_ms",
            "t_dynamic_ms",
            "fetch_ms",
            "outcome",
        ],
    )
    .unwrap();
    for pq in out {
        tsv.row(&[
            format!("{:.1}", pq.t_start_ms),
            phase_of(pq.t_start_ms).to_string(),
            format!("{}", pq.be),
            format!("{:.3}", pq.params.t_static_ms),
            format!("{:.3}", pq.params.t_dynamic_ms),
            format!("{:.3}", pq.true_fetch_ms.unwrap_or(f64::NAN)),
            format!("{:?}", pq.outcome),
        ])
        .unwrap();
    }

    let in_phase = |phase: &str| -> Vec<&ProcessedQuery> {
        out.iter()
            .filter(|q| phase_of(q.t_start_ms) == phase)
            .collect()
    };
    let med = |qs: &[&ProcessedQuery], f: fn(&ProcessedQuery) -> f64| -> f64 {
        let v: Vec<f64> = qs.iter().map(|q| f(q)).collect();
        median(&v).unwrap_or(f64::NAN)
    };
    let before = in_phase("before");
    let during = in_phase("during");
    let after = in_phase("after");
    let td = |q: &ProcessedQuery| q.params.t_dynamic_ms;
    let ts = |q: &ProcessedQuery| q.params.t_static_ms;
    let before_td = med(&before, td);
    let during_td = med(&during, td);
    let after_td = med(&after, td);
    let before_ts = med(&before, ts);
    let during_ts = med(&during, ts);
    let after_ts = med(&after, ts);
    let first_after = after.first().expect("post-outage queries exist");
    // Isolate the network share of the fetch (handshake + transfer):
    // ground-truth fetch minus ground-truth processing. Raw fetch times
    // are dominated by per-keyword processing noise.
    let fetch_net = |q: &ProcessedQuery| q.true_fetch_ms.map(|f| f - q.proc_ms).unwrap_or(f64::NAN);
    let after_steady: Vec<f64> = after.iter().skip(1).map(|q| fetch_net(q)).collect();
    let steady_fetch = median(&after_steady).unwrap_or(f64::NAN);
    let cold_fetch = fetch_net(first_after);

    eprintln!(
        "Tdynamic median: before {before_td:.1} ms, during {during_td:.1} ms, \
         after {after_td:.1} ms"
    );
    eprintln!(
        "Tstatic  median: before {before_ts:.1} ms, during {during_ts:.1} ms, \
         after {after_ts:.1} ms"
    );
    eprintln!(
        "post-recovery fetch network share: cold {cold_fetch:.1} ms vs warm \
         steady {steady_fetch:.1} ms (BE rtt {:.1} ms)",
        first_after.rtt_fe_be_ms
    );
    eprintln!(
        "tally: {} ok, {} degraded, {} retried, {} timed out, {} skipped",
        tally.ok, tally.degraded, tally.retried, tally.timed_out, tally.skipped
    );

    let mut ok = true;
    ok &= check(
        "every query completes with outcome Ok (failover, not failure)",
        tally.ok == repeats as usize
            && tally.total() == repeats as usize
            && tally.skipped == 0
            && out.iter().all(|q| q.outcome == QueryOutcome::Ok),
    );
    ok &= check(
        "fetches move off the dark site during the outage",
        !during.is_empty() && during.iter().all(|q| q.be != primary_be),
    );
    ok &= check(
        "fetches return to the primary site after the outage",
        !after.is_empty() && after.iter().all(|q| q.be == primary_be),
    );
    ok &= check(
        &format!("Tdynamic spikes during the outage ({before_td:.0} → {during_td:.0} ms)"),
        during_td > before_td + 5.0,
    );
    ok &= check(
        &format!("Tdynamic recovers after the outage ({during_td:.0} → {after_td:.0} ms)"),
        after_td < during_td && (after_td - before_td).abs() < 0.2 * before_td + 10.0,
    );
    ok &= check(
        &format!(
            "first post-recovery fetch pays a cold-reconnect penalty \
             ({cold_fetch:.0} vs {steady_fetch:.0} ms warm)"
        ),
        // One extra handshake RTT minus per-packet jitter: demand at
        // least a fifth of the nominal BE RTT over the warm median.
        cold_fetch > steady_fetch + 0.2 * first_after.rtt_fe_be_ms,
    );
    let ts_flat = |a: f64, b: f64| (a - b).abs() < 0.25 * a.max(4.0) + 4.0;
    ok &= check(
        &format!(
            "Tstatic flat through outage and recovery \
             ({before_ts:.1}/{during_ts:.1}/{after_ts:.1} ms)"
        ),
        ts_flat(before_ts, during_ts) && ts_flat(before_ts, after_ts),
    );
    ok &= check(
        "rerun reproduces every measurement exactly",
        out.len() == rerun.len()
            && out.iter().zip(rerun.iter()).all(|(a, b)| {
                a.params.t_dynamic_ms == b.params.t_dynamic_ms
                    && a.params.t_static_ms == b.params.t_static_ms
                    && a.be == b.be
                    && a.t_start_ms == b.t_start_ms
            }),
    );
    finish(ok);
}
