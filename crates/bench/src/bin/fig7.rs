//! Fig. 7 — `Tstatic` and `Tdynamic` for vantage points using their
//! *default* FE servers (Dataset A), both services.
//!
//! Paper: "although the Bing FE servers are generally closer to the
//! clients, it has significantly higher value of Tstatic and Tdynamic
//! than Google ... In addition, Bing exhibits more variable performance."
//!
//! Shapes asserted:
//! * Bing-like default-FE RTTs are smaller (closer FEs), yet
//! * Bing-like `Tstatic` and `Tdynamic` medians are higher, and
//! * Bing-like variability (IQR) is larger for both quantities.

use bench::{campaign, check, dataset_a_repeats, execute_stream, finish, seed_from_env, Scale};
use cdnsim::ServiceConfig;
use emulator::dataset_a::{DatasetA, KeywordPolicy};
use emulator::output::Tsv;
use emulator::{Design, FoldSink, RunDescriptor};
use inference::{GroupMedians, GroupMediansAcc};
use simcore::time::SimDuration;
use stats::QuantileAcc;
use std::collections::BTreeMap;

/// Per-run streaming state: the grouped-median reducer for the scatter
/// plus per-vantage `Tstatic`/`Tdynamic` quantile accumulators for the
/// within-vantage IQR checks.
struct Fig7State {
    acc: GroupMediansAcc,
    per_client: BTreeMap<usize, (QuantileAcc, QuantileAcc)>,
}

/// Median across vantages of the *within-vantage* IQR — the
/// FE-attributable variability, independent of where the vantage sits.
fn within_vantage_iqr<'a>(accs: impl Iterator<Item = &'a QuantileAcc>) -> f64 {
    let iqrs: Vec<f64> = accs
        .filter(|a| a.count() >= 4)
        .map(|a| a.iqr().unwrap())
        .collect();
    stats::quantile::median(&iqrs).unwrap_or(0.0)
}

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let repeats = dataset_a_repeats(scale);

    let design = Design::DatasetA(DatasetA {
        repeats,
        spacing: SimDuration::from_secs(10),
        keywords: KeywordPolicy::Fixed(0),
    });
    let mut c = campaign(scale, seed);
    c.push("bing-like", ServiceConfig::bing_like(seed), design.clone());
    c.push("google-like", ServiceConfig::google_like(seed), design);
    let report = execute_stream(&c, &|_: &RunDescriptor| {
        FoldSink::new(
            Fig7State {
                acc: GroupMediansAcc::exact(),
                per_client: BTreeMap::new(),
            },
            |s: &mut Fig7State, q| {
                s.acc.push(q.client as u64, &q.params);
                let e = s
                    .per_client
                    .entry(q.client)
                    .or_insert_with(|| (QuantileAcc::exact(), QuantileAcc::exact()));
                e.0.push(q.params.t_static_ms);
                e.1.push(q.params.t_dynamic_ms);
            },
        )
    });

    let bing_raw = report.output("bing-like");
    let google_raw = report.output("google-like");
    let bing = bing_raw.acc.finish();
    let google = google_raw.acc.finish();

    // ---- TSV: the Fig. 7 scatter, one row per (service, vantage) ----
    let stdout = std::io::stdout();
    let mut tsv = Tsv::new(
        stdout.lock(),
        &[
            "service",
            "vantage",
            "rtt_ms",
            "t_static_ms",
            "t_dynamic_ms",
        ],
    )
    .unwrap();
    for (name, groups) in [("bing-like", &bing), ("google-like", &google)] {
        for g in groups.iter() {
            tsv.row(&[
                name.to_string(),
                g.group.to_string(),
                format!("{:.3}", g.rtt_ms),
                format!("{:.3}", g.t_static_ms),
                format!("{:.3}", g.t_dynamic_ms),
            ])
            .unwrap();
        }
    }

    // ---- shape checks ----
    let med = |v: Vec<f64>| stats::quantile::median(&v).unwrap();
    let col =
        |g: &[GroupMedians], f: fn(&GroupMedians) -> f64| -> Vec<f64> { g.iter().map(f).collect() };
    let b_rtt = med(col(&bing, |g| g.rtt_ms));
    let g_rtt = med(col(&google, |g| g.rtt_ms));
    let b_ts = med(col(&bing, |g| g.t_static_ms));
    let g_ts = med(col(&google, |g| g.t_static_ms));
    let b_td = med(col(&bing, |g| g.t_dynamic_ms));
    let g_td = med(col(&google, |g| g.t_dynamic_ms));
    eprintln!("median RTT:      bing-like {b_rtt:.1}  google-like {g_rtt:.1}");
    eprintln!("median Tstatic:  bing-like {b_ts:.1}  google-like {g_ts:.1}");
    eprintln!("median Tdynamic: bing-like {b_td:.1}  google-like {g_td:.1}");
    let mut ok = true;
    ok &= check(
        "bing-like FEs are closer (smaller median RTT)",
        b_rtt < g_rtt,
    );
    ok &= check(
        &format!("bing-like Tstatic higher ({b_ts:.1} > {g_ts:.1})"),
        b_ts > g_ts,
    );
    ok &= check(
        &format!("bing-like Tdynamic higher ({b_td:.1} > {g_td:.1})"),
        b_td > g_td,
    );
    // Variability the FE/BE are responsible for: within-vantage IQRs
    // (RTT is constant per vantage, so geography cancels out).
    let b_ts_iqr = within_vantage_iqr(bing_raw.per_client.values().map(|e| &e.0));
    let g_ts_iqr = within_vantage_iqr(google_raw.per_client.values().map(|e| &e.0));
    let b_td_iqr = within_vantage_iqr(bing_raw.per_client.values().map(|e| &e.1));
    let g_td_iqr = within_vantage_iqr(google_raw.per_client.values().map(|e| &e.1));
    ok &= check(
        &format!(
            "bing-like Tstatic more variable (within-vantage IQR {b_ts_iqr:.1} vs {g_ts_iqr:.1})"
        ),
        b_ts_iqr > g_ts_iqr,
    );
    ok &= check(
        &format!(
            "bing-like Tdynamic more variable (within-vantage IQR {b_td_iqr:.1} vs {g_td_iqr:.1})"
        ),
        b_td_iqr > g_td_iqr,
    );
    finish(ok);
}
