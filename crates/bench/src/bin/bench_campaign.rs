//! Campaign result-path benchmark: wall time and **peak retained bytes**
//! of the legacy collect-everything sink vs a bounded streaming reducer.
//!
//! Three measurements over the same two-service Dataset-A campaign:
//!
//! 1. `collect` — the pre-streaming result path ([`CollectSink`]):
//!    every processed query buffered per run;
//! 2. `stream` — a bounded reducer (capped [`SummaryAcc`]s over the
//!    overall delay and `Tdynamic`): O(reducer-state) memory;
//! 3. `stream10x` — the same streaming sink at 10× the query count.
//!    If someone reintroduces unbounded buffering on the streaming
//!    path, this peak grows ~10× instead of staying flat, and the
//!    growth check below trips.
//!
//! Emits `BENCH_campaign.json`-shaped JSON to `--out PATH` (default
//! stdout); `--smoke` shrinks the repeat counts for CI. Exit status
//! reflects the two structural checks (reduction ≥ 5×, 10× growth
//! bounded), so `scripts/ci.sh` can run it directly as a tripwire.

use bench::{check, finish, scenario, seed_from_env, Scale};
use cdnsim::ServiceConfig;
use emulator::dataset_a::{DatasetA, KeywordPolicy};
use emulator::{
    Campaign, CollectSink, Design, ProcessedQuery, QuerySink, RunDescriptor, SinkFactory,
    StreamReport,
};
use simcore::time::SimDuration;
use stats::SummaryAcc;
use std::time::Instant;

/// The streaming side's reducer: bounded-memory summaries of the two
/// headline columns. Cap 256 keeps each accumulator around 4 KiB no
/// matter how many queries a run sees. Unlike `FoldSink` (which opts
/// out of memory accounting), this sink reports its true footprint so
/// the reduction factor below compares real bytes on both sides.
struct StreamState {
    overall: SummaryAcc,
    t_dynamic: SummaryAcc,
}

impl QuerySink for StreamState {
    type Output = StreamState;

    fn on_query(&mut self, q: &ProcessedQuery) {
        self.overall.push(q.params.overall_ms);
        self.t_dynamic.push(q.params.t_dynamic_ms);
    }

    fn retained_bytes(&self) -> usize {
        self.overall.retained_bytes() + self.t_dynamic.retained_bytes()
    }

    fn finish(self) -> StreamState {
        self
    }
}

const STREAM_CAP: usize = 256;

fn campaign_with(seed: u64, repeats: u64) -> Campaign {
    let design = Design::DatasetA(DatasetA {
        repeats,
        spacing: SimDuration::from_secs(10),
        keywords: KeywordPolicy::Fixed(0),
    });
    let mut c = Campaign::new(scenario(Scale::Quick, seed));
    c.push("bing-like", ServiceConfig::bing_like(seed), design.clone());
    c.push("google-like", ServiceConfig::google_like(seed), design);
    c
}

/// Runs `campaign` under `factory`, returning (wall ms, peak retained
/// bytes, total queries).
fn measure<F>(campaign: &Campaign, factory: &F) -> (u128, usize, usize)
where
    F: SinkFactory,
    <F::Sink as QuerySink>::Output: Send,
{
    let t0 = Instant::now();
    let report: StreamReport<_> = campaign.execute_stream(factory);
    let wall = t0.elapsed().as_millis();
    let queries: usize = report
        .runs
        .iter()
        .map(|r| r.tally.total() - r.tally.skipped)
        .sum();
    (wall, report.peak_retained_bytes(), queries)
}

fn stream_sink(_: &RunDescriptor) -> StreamState {
    StreamState {
        overall: SummaryAcc::with_cap(STREAM_CAP),
        t_dynamic: SummaryAcc::with_cap(STREAM_CAP),
    }
}

fn main() {
    let seed = seed_from_env();
    let mut out_path: Option<String> = None;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = Some(args.next().expect("--out needs a path")),
            other => {
                eprintln!("unknown argument {other:?} (expected --smoke, --out PATH)");
                std::process::exit(2);
            }
        }
    }
    let base_repeats: u64 = if smoke { 6 } else { 24 };

    let c = campaign_with(seed, base_repeats);
    let (wall_collect, peak_collect, n_collect) =
        measure(&c, &|d: &RunDescriptor| CollectSink::with_raw(d.keep_raw));
    let (wall_stream, peak_stream, n_stream) = measure(&c, &stream_sink);
    let c10 = campaign_with(seed, base_repeats * 10);
    let (wall_stream10, peak_stream10, n_stream10) = measure(&c10, &stream_sink);

    assert_eq!(n_collect, n_stream, "sink choice must not change coverage");
    let reduction = peak_collect as f64 / peak_stream.max(1) as f64;
    let growth = peak_stream10 as f64 / peak_stream.max(1) as f64;
    let threads = std::env::var("FECDN_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(1);

    eprintln!(
        "collect:   {n_collect} queries, wall {wall_collect} ms, peak retained {peak_collect} B"
    );
    eprintln!(
        "stream:    {n_stream} queries, wall {wall_stream} ms, peak retained {peak_stream} B"
    );
    eprintln!(
        "stream10x: {n_stream10} queries, wall {wall_stream10} ms, peak retained {peak_stream10} B"
    );
    eprintln!("retained-bytes reduction {reduction:.1}x, 10x-queries growth {growth:.2}x");

    let json = format!(
        "{{\n  \"binary\": \"bench_campaign\",\n  \"threads\": {threads},\n  \"queries_base\": {n_collect},\n  \"queries_10x\": {n_stream10},\n  \"wall_collect_ms\": {wall_collect},\n  \"wall_stream_ms\": {wall_stream},\n  \"wall_stream_10x_ms\": {wall_stream10},\n  \"peak_retained_collect_bytes\": {peak_collect},\n  \"peak_retained_stream_bytes\": {peak_stream},\n  \"peak_retained_stream_10x_bytes\": {peak_stream10},\n  \"retained_reduction_factor\": {reduction:.2},\n  \"stream_10x_growth_factor\": {growth:.3}\n}}\n"
    );
    match &out_path {
        Some(p) => std::fs::write(p, &json).expect("write --out"),
        None => print!("{json}"),
    }

    let mut ok = true;
    ok &= check(
        &format!("streaming retains ≥ 5x less than collect-everything ({reduction:.1}x)"),
        reduction >= 5.0,
    );
    ok &= check(
        &format!("10x queries grow streaming peak < 3x ({growth:.2}x) — memory stays bounded"),
        growth < 3.0,
    );
    finish(ok);
}
