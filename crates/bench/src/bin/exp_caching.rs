//! Sec. 3 — "Do FE Servers Cache Search Results?"
//!
//! Two designs against a fixed FE: all vantages repeating the *same*
//! query vs all-*distinct* (same-class) queries. The paper finds the
//! `Tdynamic` distributions indistinguishable and concludes FEs do not
//! cache results.
//!
//! Asserted:
//! * both realistic services yield `NoCaching`;
//! * a hypothetical FE-result-caching deployment is flagged
//!   `CachingSuspected` (the detector has power, not just a blind spot).

use bench::{campaign, check, execute_stream, finish, seed_from_env, Scale};
use cdnsim::ServiceConfig;
use emulator::caching_probe::CachingProbeRun;
use emulator::output::Tsv;
use emulator::RunDescriptor;
use inference::caching::CachingVerdict;

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let probe = CachingProbeRun::against(0);

    let configs = [
        (
            "bing-like",
            ServiceConfig::bing_like(seed),
            CachingVerdict::NoCaching,
        ),
        (
            "google-like",
            ServiceConfig::google_like(seed),
            CachingVerdict::NoCaching,
        ),
        (
            "google-like+fecache",
            ServiceConfig::google_like(seed).with_fe_result_cache(),
            CachingVerdict::CachingSuspected,
        ),
    ];

    // All six probe worlds (3 configs × same/distinct designs) run as one
    // campaign batch.
    let mut c = campaign(scale, seed);
    for (name, cfg, _) in &configs {
        probe.add_to(&mut c, name, cfg.clone());
    }
    // Each probe run retains only its (rtt, Tdynamic) pairs.
    let report = execute_stream(&c, &|_: &RunDescriptor| CachingProbeRun::sink());

    let stdout = std::io::stdout();
    let mut tsv = Tsv::new(
        stdout.lock(),
        &[
            "service",
            "ks_distance",
            "median_same_ms",
            "median_distinct_ms",
            "verdict",
        ],
    )
    .unwrap();

    let mut ok = true;
    for (name, _, expected) in configs {
        match probe.outcome_stream(&report, name) {
            Some(out) => {
                tsv.row(&[
                    name.to_string(),
                    format!("{:.4}", out.probe.ks_distance),
                    format!("{:.3}", out.probe.median_same_ms),
                    format!("{:.3}", out.probe.median_distinct_ms),
                    format!("{:?}", out.probe.verdict),
                ])
                .unwrap();
                ok &= check(
                    &format!(
                        "{name}: verdict {:?} (expected {expected:?}; d={:.3}, medians {:.0}/{:.0})",
                        out.probe.verdict,
                        out.probe.ks_distance,
                        out.probe.median_same_ms,
                        out.probe.median_distinct_ms
                    ),
                    out.probe.verdict == expected,
                );
            }
            None => {
                ok = check(&format!("{name}: probe produced samples"), false) && ok;
            }
        }
    }
    finish(ok);
}
