//! Ablation — Reno vs CUBIC congestion control under last-hop loss.
//!
//! The paper's hosts ran Linux, whose default congestion control in 2011
//! was already CUBIC; the model's window arithmetic, however, is
//! Reno-flavoured. This ablation verifies that the choice does not
//! change any of the paper's observables on clean paths (slow start is
//! identical, and search responses rarely leave it), while CUBIC's
//! gentler back-off pays off on lossy paths.
//!
//! Asserted:
//! * on clean campus paths, Reno and CUBIC produce statistically
//!   indistinguishable `Tdynamic` distributions (KS test);
//! * on a 3% lossy wireless path, CUBIC's median overall delay is no
//!   worse than Reno's.

use bench::{campaign, check, execute_stream, finish, seed_from_env, Scale};
use cdnsim::{QuerySpec, ServiceConfig};
use emulator::output::Tsv;
use emulator::{Design, FoldSink, RunDescriptor};
use nettopo::path::PathProfile;
use simcore::time::SimDuration;
use stats::QuantileAcc;
use tcpsim::CongAlgo;

fn with_cong(mut cfg: ServiceConfig, cong: CongAlgo) -> ServiceConfig {
    cfg.fe_client_tcp = cfg.fe_client_tcp.with_cong(cong);
    cfg.be_tcp = cfg.be_tcp.with_cong(cong);
    cfg
}

/// Default-FE queries from the first 12 clients, `repeats` each.
fn wave_design(repeats: u64) -> Design {
    Design::custom(move |sim| {
        sim.with(|w, net| {
            for c in 0..w.clients().len().min(12) {
                for r in 0..repeats {
                    w.schedule_query(
                        net,
                        SimDuration::from_millis(1 + r * 9_000 + c as u64 * 101),
                        QuerySpec {
                            client: c,
                            keyword: 0,
                            fixed_fe: None,
                            instant_followup: false,
                        },
                    );
                }
            }
        });
    })
}

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let repeats = match scale {
        Scale::Quick => 10,
        Scale::Paper => 40,
    };

    let mut lossy = PathProfile::wireless_access();
    lossy.loss = 0.03;

    let mut c = campaign(scale, seed);
    c.push(
        "clean/reno",
        with_cong(ServiceConfig::google_like(seed), CongAlgo::Reno),
        wave_design(repeats),
    );
    c.push(
        "clean/cubic",
        with_cong(ServiceConfig::google_like(seed), CongAlgo::Cubic),
        wave_design(repeats),
    );
    c.push(
        "lossy3pct/reno",
        with_cong(ServiceConfig::google_like(seed), CongAlgo::Reno)
            .with_access_override(lossy.clone()),
        wave_design(repeats),
    );
    c.push(
        "lossy3pct/cubic",
        with_cong(ServiceConfig::google_like(seed), CongAlgo::Cubic).with_access_override(lossy),
        wave_design(repeats),
    );
    // Per run: Tdynamic stays exact (the KS test needs the full sample)
    // alongside an overall-delay accumulator.
    let report = execute_stream(&c, &|_: &RunDescriptor| {
        FoldSink::new(
            (QuantileAcc::exact(), QuantileAcc::exact()),
            |s: &mut (QuantileAcc, QuantileAcc), q| {
                s.0.push(q.params.t_dynamic_ms);
                s.1.push(q.params.overall_ms);
            },
        )
    });
    let clean_reno = report.output("clean/reno");
    let clean_cubic = report.output("clean/cubic");
    let lossy_reno = report.output("lossy3pct/reno");
    let lossy_cubic = report.output("lossy3pct/cubic");

    let td = |v: &(QuantileAcc, QuantileAcc)| -> Vec<f64> { v.0.values().unwrap() };
    let (ks, verdict) = stats::ks::ks_test(&td(clean_reno), &td(clean_cubic)).unwrap();
    let med_overall = |v: &(QuantileAcc, QuantileAcc)| v.1.median().unwrap();
    let mr = med_overall(lossy_reno);
    let mc = med_overall(lossy_cubic);

    let stdout = std::io::stdout();
    let mut tsv = Tsv::new(
        stdout.lock(),
        &[
            "condition",
            "algo",
            "median_t_dynamic_ms",
            "median_overall_ms",
        ],
    )
    .unwrap();
    let med_td = |v: &(QuantileAcc, QuantileAcc)| v.0.median().unwrap();
    for (cond, algo, queries) in [
        ("clean", "reno", clean_reno),
        ("clean", "cubic", clean_cubic),
        ("lossy3pct", "reno", lossy_reno),
        ("lossy3pct", "cubic", lossy_cubic),
    ] {
        tsv.row(&[
            cond.into(),
            algo.into(),
            format!("{:.3}", med_td(queries)),
            format!("{:.3}", med_overall(queries)),
        ])
        .unwrap();
    }

    let mut ok = true;
    eprintln!("clean-path KS distance reno vs cubic: {ks:.3} ({verdict:?})");
    ok &= check(
        "clean paths: Reno and CUBIC indistinguishable for search workloads",
        verdict == stats::ks::KsVerdict::Indistinguishable,
    );
    eprintln!("lossy overall: reno {mr:.0} ms vs cubic {mc:.0} ms");
    ok &= check("lossy paths: CUBIC no worse than Reno", mc <= mr * 1.10);
    finish(ok);
}
