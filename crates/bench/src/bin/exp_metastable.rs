//! Metastable failure — retry-storm hysteresis and the budget that
//! breaks it.
//!
//! A front-end whose service time degrades with concurrency plus clients
//! that retry on timeout form a bistable system: below the knee the FE is
//! fast and retries never happen; past it, timeouts breed retries, the
//! amplified arrival rate keeps the FE saturated, and the bad state
//! *outlives the trigger that caused it*. That hysteresis loop is the
//! canonical metastable failure (Bronson et al., HotOS'21); the paper's
//! FE measurements are exactly the load regime where it arms.
//!
//! Design: 12 clients pinned to one FE issue a query every 2 s for 60 s
//! of virtual time — comfortably below the FE's knee in steady state. A
//! 10 s brownout window (the trigger) multiplies FE service time so far
//! past the client deadline that every arrival in the window times out
//! and retries. Two arms, identical except for the overload policy:
//!
//! * `naive`    — deadline + 4 retries, no budget: the storm sustains
//!   itself after the brownout lifts and post-trigger goodput collapses;
//! * `budgeted` — the same retry policy behind a per-client retry-token
//!   budget: retries are suppressed once the bucket drains, the FE
//!   drains with them, and post-trigger goodput recovers.
//!
//! Phases bucket queries by their *scheduled* arrival time (encoded in
//! the keyword), so "post" means offered after the trigger ended — the
//! hysteresis question is what happens to those.
//!
//! Asserted:
//! * both arms serve ≥ 95% before the trigger (the healthy state);
//! * the naive arm's post-trigger goodput stays below half its
//!   pre-trigger level — the bad state persists without the trigger;
//! * the budgeted arm recovers to ≥ 90% of its pre-trigger goodput
//!   (the CI tripwire ratio, also written to `BENCH_overload.json`);
//! * the budgeted arm beats the naive arm after the trigger;
//! * `cdnsim.retry_budget_exhausted` fired (the budget did the work);
//! * accounting conserves in both arms;
//! * a rerun of the naive arm reproduces every outcome exactly.
//!
//! Emits `BENCH_overload.json`-shaped JSON to `--out PATH` (default
//! stdout TSV only).

use bench::{campaign, check, execute, finish, seed_from_env, Scale};
use cdnsim::{
    CompletedQuery, FeLoadProfile, LoadModel, QuerySpec, RetryBudget, RetryPolicy, ServiceConfig,
};
use emulator::output::Tsv;
use emulator::Design;
use nettopo::FaultPlan;
use simcore::dist::Dist;
use simcore::time::{SimDuration, SimTime};

const CLIENTS: usize = 12;
const WAVES: u64 = 30;
const WAVE_SPACING_MS: u64 = 2_000;
const TRIGGER_START_MS: u64 = 15_000;
const TRIGGER_END_MS: u64 = 25_000;
const BASE_SERVICE_MS: f64 = 5.0;
const DEADLINE_MS: u64 = 800;
/// Per-slot stagger spreading each wave's 12 arrivals uniformly across
/// the 2 s spacing — a steady offered stream rather than bursts, so the
/// saturated state has no quiet gaps to drain through.
const SLOT_STAGGER_MS: u64 = WAVE_SPACING_MS / CLIENTS as u64;

/// Scheduled arrival of wave `r` from the client occupying `slot`.
fn sched_ms(slot: usize, wave: u64) -> u64 {
    1_000 + wave * WAVE_SPACING_MS + slot as u64 * SLOT_STAGGER_MS
}

fn phase_of(sched: u64) -> &'static str {
    if sched < TRIGGER_START_MS {
        "pre"
    } else if sched < TRIGGER_END_MS {
        "trigger"
    } else {
        "post"
    }
}

/// The steady offered load: every chosen client queries every 2 s,
/// keyword = wave index so the scheduled time survives into the
/// completion record.
fn steady_design(fe: usize, clients: Vec<usize>) -> Design {
    Design::custom(move |sim| {
        sim.with(|w, net| {
            let be = w.be_of_fe(fe);
            w.prewarm(net, fe, be, 2);
            for wave in 0..WAVES {
                for (slot, &client) in clients.iter().enumerate() {
                    w.schedule_query(
                        net,
                        SimDuration::from_millis(sched_ms(slot, wave)),
                        QuerySpec {
                            client,
                            keyword: wave,
                            fixed_fe: Some(fe),
                            instant_followup: false,
                        },
                    );
                }
            }
        });
    })
}

/// Both arms share everything but the budget: constant base service (so
/// the queueing multiplier is the only overhead source), a load model
/// whose saturated service time exceeds the client deadline (the
/// bistability condition), aggressive browser-style retries, and the
/// brownout trigger.
fn arm_config(seed: u64, fe: usize) -> ServiceConfig {
    let mut cfg = ServiceConfig::google_like(seed)
        .with_faults(FaultPlan::default().fe_brownout(
            fe,
            SimTime::from_millis(TRIGGER_START_MS),
            SimTime::from_millis(TRIGGER_END_MS),
            250.0,
        ))
        .with_load_model(LoadModel {
            // The bistability window: saturated service (5 ms x 200)
            // blows the 800 ms deadline, the base offered load times its
            // saturated hold time stays under the knee (recovery is
            // reachable), and the retry-amplified load stays far over it
            // (the bad state self-sustains).
            fe_capacity: 6,
            be_capacity: 64,
            max_slowdown: 200.0,
        })
        .with_client_retry(RetryPolicy {
            deadline: SimDuration::from_millis(DEADLINE_MS),
            max_retries: 4,
            base_backoff: SimDuration::from_millis(100),
            jitter: 0.3,
        });
    cfg.fe_load = FeLoadProfile {
        service_ms: Dist::Constant(BASE_SERVICE_MS),
        load_amplitude: 0.0,
        load_volatility: 0.0,
    };
    cfg
}

/// Served fraction of the queries scheduled in `phase`; `slot_of` maps a
/// client id back to its schedule slot.
fn goodput(raw: &[CompletedQuery], slot_of: &[usize; 64], phase: &str) -> f64 {
    let in_phase: Vec<&CompletedQuery> = raw
        .iter()
        .filter(|cq| phase_of(sched_ms(slot_of[cq.client], cq.keyword)) == phase)
        .collect();
    let served = in_phase.iter().filter(|cq| cq.outcome.served()).count();
    served as f64 / in_phase.len().max(1) as f64
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = Some(args.next().expect("--out needs a path")),
            other => {
                eprintln!("unknown argument {other:?} (expected --out PATH)");
                std::process::exit(2);
            }
        }
    }
    let seed = seed_from_env();

    // Probe the scenario once for the best-connected FE — the one whose
    // 12th-nearest vantage has the smallest RTT — and pin the experiment
    // to it with those 12 clients. Anchoring on an arbitrary client's
    // default FE is seed-fragile: a sparse region can leave even the
    // nearest dozen clients far enough that RTT alone blows the deadline
    // on a healthy FE and muddies the goodput signal.
    let sc = bench::scenario(Scale::Quick, seed);
    let n_vantages = sc.vantage_count();
    let mut probe = sc.build_sim(ServiceConfig::google_like(seed));
    let (fe, clients) = probe.with(|w, _| {
        let nearest = |fe: usize| -> Vec<usize> {
            let mut by_rtt: Vec<usize> = (0..n_vantages).collect();
            by_rtt.sort_by(|&a, &b| {
                w.client_fe_rtt_ms(a, fe)
                    .total_cmp(&w.client_fe_rtt_ms(b, fe))
            });
            by_rtt.truncate(CLIENTS);
            by_rtt
        };
        // Strict < keeps the choice deterministic on ties (lowest index).
        let mut best = (0usize, f64::INFINITY);
        for fe in 0..w.fe_count() {
            let worst_of_nearest = w.client_fe_rtt_ms(*nearest(fe).last().unwrap(), fe);
            if worst_of_nearest < best.1 {
                best = (fe, worst_of_nearest);
            }
        }
        (best.0, nearest(best.0))
    });
    drop(probe);
    let mut slot_of = [0usize; 64];
    for (slot, &client) in clients.iter().enumerate() {
        slot_of[client] = slot;
    }
    eprintln!(
        "{CLIENTS} nearest clients on FE {fe}, brownout {}–{} s, deadline {DEADLINE_MS} ms",
        TRIGGER_START_MS / 1_000,
        TRIGGER_END_MS / 1_000
    );

    let mut c = campaign(Scale::Quick, seed);
    let naive_seed = {
        let d = c.push(
            "naive",
            arm_config(seed, fe),
            steady_design(fe, clients.clone()),
        );
        d.keep_raw = true;
        d.seed
    };
    // Same derived seed: the rerun must reproduce the naive arm exactly
    // even when the two land on different worker threads.
    let rerun = c.push(
        "naive-rerun",
        arm_config(seed, fe),
        steady_design(fe, clients.clone()),
    );
    rerun.keep_raw = true;
    rerun.seed = naive_seed;
    c.push(
        "budgeted",
        arm_config(seed, fe).with_retry_budget(RetryBudget {
            max_tokens: 2.0,
            refill_per_sec: 0.05,
        }),
        steady_design(fe, clients.clone()),
    )
    .keep_raw = true;

    let report = execute(&c);
    let scheduled = (CLIENTS as u64 * WAVES) as usize;

    let stdout = std::io::stdout();
    let mut tsv = Tsv::new(
        stdout.lock(),
        &["arm", "phase", "offered", "served", "goodput"],
    )
    .unwrap();
    for arm in ["naive", "budgeted"] {
        let raw = &report.get(arm).unwrap().raw;
        for phase in ["pre", "trigger", "post"] {
            let offered = raw
                .iter()
                .filter(|cq| phase_of(sched_ms(slot_of[cq.client], cq.keyword)) == phase)
                .count();
            let served = raw
                .iter()
                .filter(|cq| {
                    phase_of(sched_ms(slot_of[cq.client], cq.keyword)) == phase
                        && cq.outcome.served()
                })
                .count();
            tsv.row(&[
                arm.to_string(),
                phase.to_string(),
                format!("{offered}"),
                format!("{served}"),
                format!("{:.4}", goodput(raw, &slot_of, phase)),
            ])
            .unwrap();
        }
    }

    let naive = &report.get("naive").unwrap().raw;
    let budgeted = &report.get("budgeted").unwrap().raw;
    let (n_pre, n_trig, n_post) = (
        goodput(naive, &slot_of, "pre"),
        goodput(naive, &slot_of, "trigger"),
        goodput(naive, &slot_of, "post"),
    );
    let (b_pre, b_trig, b_post) = (
        goodput(budgeted, &slot_of, "pre"),
        goodput(budgeted, &slot_of, "trigger"),
        goodput(budgeted, &slot_of, "post"),
    );
    let n_recovery = n_post / n_pre.max(f64::MIN_POSITIVE);
    let b_recovery = b_post / b_pre.max(f64::MIN_POSITIVE);
    eprintln!(
        "goodput naive:    pre {n_pre:.2}, trigger {n_trig:.2}, post {n_post:.2} \
         (recovery {n_recovery:.2})"
    );
    eprintln!(
        "goodput budgeted: pre {b_pre:.2}, trigger {b_trig:.2}, post {b_post:.2} \
         (recovery {b_recovery:.2})"
    );

    let json = format!(
        "{{\n  \"binary\": \"exp_metastable\",\n  \"trigger_start_ms\": {TRIGGER_START_MS},\n  \
         \"trigger_end_ms\": {TRIGGER_END_MS},\n  \"queries_per_arm\": {scheduled},\n  \
         \"pre_goodput_naive\": {n_pre:.4},\n  \"trigger_goodput_naive\": {n_trig:.4},\n  \
         \"post_goodput_naive\": {n_post:.4},\n  \"pre_goodput_budgeted\": {b_pre:.4},\n  \
         \"trigger_goodput_budgeted\": {b_trig:.4},\n  \"post_goodput_budgeted\": {b_post:.4},\n  \
         \"recovery_ratio_naive\": {n_recovery:.4},\n  \"recovery_ratio_budgeted\": {b_recovery:.4}\n}}\n"
    );
    match &out_path {
        Some(p) => std::fs::write(p, &json).expect("write --out"),
        None => eprint!("{json}"),
    }

    let naive_tally = report.get("naive").unwrap().tally;
    let budgeted_tally = report.get("budgeted").unwrap().tally;
    let mut ok = true;
    ok &= check(
        &format!("healthy state before the trigger (naive {n_pre:.2}, budgeted {b_pre:.2})"),
        n_pre >= 0.95 && b_pre >= 0.95,
    );
    ok &= check(
        &format!("trigger saturates both arms (naive {n_trig:.2}, budgeted {b_trig:.2})"),
        n_trig < n_pre && b_trig < b_pre,
    );
    ok &= check(
        &format!(
            "naive arm is metastable: post-trigger goodput stuck below half of \
             pre ({n_post:.2} vs {n_pre:.2})"
        ),
        n_recovery < 0.5,
    );
    ok &= check(
        &format!("budgeted arm recovers to >= 90% of pre-trigger goodput ({b_recovery:.2})"),
        b_recovery >= 0.9,
    );
    ok &= check(
        &format!("retry budget beats naive retries post-trigger ({b_post:.2} vs {n_post:.2})"),
        b_post > n_post,
    );
    let exhausted = report
        .merged_metrics()
        .counter("cdnsim.retry_budget_exhausted");
    ok &= check(
        &format!("the budget actually engaged (retry_budget_exhausted = {exhausted:?})"),
        exhausted.unwrap_or(0) > 0,
    );
    ok &= check(
        &format!(
            "accounting conserves in both arms ({} and {} of {scheduled})",
            naive_tally.total(),
            budgeted_tally.total()
        ),
        naive_tally.total() == scheduled && budgeted_tally.total() == scheduled,
    );
    let rerun_raw = &report.get("naive-rerun").unwrap().raw;
    ok &= check(
        "rerun reproduces the naive arm exactly",
        naive.len() == rerun_raw.len()
            && naive
                .iter()
                .zip(rerun_raw.iter())
                .all(|(a, b)| a.outcome == b.outcome && a.t_done == b.t_done && a.qid == b.qid),
    );
    finish(ok);
}
