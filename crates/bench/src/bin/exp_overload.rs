//! Overload — FE saturation shifts the front-end's contribution to
//! end-to-end delay.
//!
//! The paper measures FEs at whatever load the real deployments happened
//! to carry. This experiment asks the counterfactual the load model
//! enables: what happens to the FE's request-handling overhead — and so
//! to `Tstatic` and the RTT threshold at which an FE deployment pays off
//! — as offered concurrency climbs past the FE's service knee?
//!
//! Design: bursts of `n` simultaneous queries, all pinned to one FE,
//! repeated over several waves. The FE's base service time is pinned to
//! a constant so every overhead change is attributable to the
//! concurrency-dependent queueing multiplier (`LoadModel`), not to
//! sampling noise. Three policy arms:
//!
//! * `off`     — no load model: overhead flat regardless of burst size;
//! * `model`   — M/M/1-style multiplier, knee at 4: overhead climbs with
//!   the burst size and saturates at the cap;
//! * `admission` — same model plus a shedding watermark at the knee:
//!   excess arrivals get the typed `Shed` outcome and the *served*
//!   queries' overhead stays bounded well below the saturated arm.
//!
//! Asserted:
//! * the model-off arm stays flat at the base service time at the
//!   largest burst;
//! * the model arm climbs monotonically with burst size and clears 3x
//!   the unloaded overhead at the top;
//! * admission control sheds above the watermark, conserves accounting
//!   (`ok + shed == scheduled`), and bounds the served queries' worst
//!   overhead below the unprotected arm's;
//! * the `cdnsim.shed_queries` counter agrees with the tally;
//! * a rerun with the same derived seed reproduces every overhead
//!   exactly.

use bench::{campaign, check, execute, finish, seed_from_env, Scale};
use cdnsim::{FeLoadProfile, LoadModel, QuerySpec, ServiceConfig};
use emulator::output::Tsv;
use emulator::Design;
use simcore::dist::Dist;
use simcore::time::SimDuration;
use stats::quantile::median;

const BASE_SERVICE_MS: f64 = 4.0;
const KNEE: u32 = 4;
const MAX_SLOWDOWN: f64 = 12.0;
const WAVES: u64 = 6;
const WAVE_SPACING_MS: u64 = 2_000;

/// Pins the FE's base service time so the queueing multiplier is the
/// only thing that can move the overhead.
fn constant_service(mut cfg: ServiceConfig) -> ServiceConfig {
    cfg.fe_load = FeLoadProfile {
        service_ms: Dist::Constant(BASE_SERVICE_MS),
        load_amplitude: 0.0,
        load_volatility: 0.0,
    };
    cfg
}

/// `n` clients fire simultaneously at client 0's default FE, once per
/// wave.
fn burst_design(n: usize) -> Design {
    Design::custom(move |sim| {
        sim.with(|w, net| {
            let fe = w.default_fe(0);
            let be = w.be_of_fe(fe);
            w.prewarm(net, fe, be, 2);
            for wave in 0..WAVES {
                for client in 0..n {
                    w.schedule_query(
                        net,
                        SimDuration::from_millis(1_000 + wave * WAVE_SPACING_MS),
                        QuerySpec {
                            client,
                            keyword: wave,
                            fixed_fe: Some(fe),
                            instant_followup: false,
                        },
                    );
                }
            }
        });
    })
}

fn main() {
    let _ = Scale::from_env(); // burst sizes are the scale axis here
    let seed = seed_from_env();

    let model = LoadModel {
        fe_capacity: KNEE,
        be_capacity: 64,
        max_slowdown: MAX_SLOWDOWN,
    };
    let sizes = [2usize, 6, 18];
    let top = *sizes.last().unwrap();

    let mut c = campaign(Scale::Quick, seed);
    c.push(
        "off/n18",
        constant_service(ServiceConfig::google_like(seed)),
        burst_design(top),
    )
    .keep_raw = true;
    let mut top_seed = 0;
    for &n in &sizes {
        let d = c.push(
            format!("model/n{n}"),
            constant_service(ServiceConfig::google_like(seed)).with_load_model(model),
            burst_design(n),
        );
        d.keep_raw = true;
        if n == top {
            top_seed = d.seed;
        }
    }
    // Same derived seed as model/n18: identical worlds that may land on
    // different worker threads, so the exact-reproduction check also
    // exercises shard-level determinism.
    let rerun = c.push(
        "model/n18-rerun",
        constant_service(ServiceConfig::google_like(seed)).with_load_model(model),
        burst_design(top),
    );
    rerun.keep_raw = true;
    rerun.seed = top_seed;
    c.push(
        "admission/n18",
        constant_service(ServiceConfig::google_like(seed))
            .with_load_model(model)
            .with_admission_control(KNEE),
        burst_design(top),
    )
    .keep_raw = true;

    let report = execute(&c);

    let overheads = |label: &str| -> Vec<f64> {
        report
            .get(label)
            .unwrap()
            .raw
            .iter()
            .filter(|cq| cq.outcome.served())
            .map(|cq| cq.fe_overhead_ms)
            .collect()
    };
    let med = |v: &[f64]| median(v).unwrap_or(f64::NAN);
    let worst = |v: &[f64]| v.iter().cloned().fold(f64::NAN, f64::max);

    let stdout = std::io::stdout();
    let mut tsv = Tsv::new(
        stdout.lock(),
        &[
            "arm",
            "burst",
            "scheduled",
            "served",
            "shed",
            "med_overhead_ms",
            "max_overhead_ms",
        ],
    )
    .unwrap();
    let arms: Vec<(String, usize)> = std::iter::once(("off/n18".to_string(), top))
        .chain(sizes.iter().map(|&n| (format!("model/n{n}"), n)))
        .chain(std::iter::once(("admission/n18".to_string(), top)))
        .collect();
    for (label, n) in &arms {
        let t = report.get(label).unwrap().tally;
        let ov = overheads(label);
        tsv.row(&[
            label.clone(),
            format!("{n}"),
            format!("{}", n * WAVES as usize),
            format!("{}", ov.len()),
            format!("{}", t.shed),
            format!("{:.3}", med(&ov)),
            format!("{:.3}", worst(&ov)),
        ])
        .unwrap();
    }

    let off = overheads("off/n18");
    let m2 = overheads("model/n2");
    let m6 = overheads("model/n6");
    let m18 = overheads("model/n18");
    let adm = overheads("admission/n18");
    let adm_tally = report.get("admission/n18").unwrap().tally;
    let scheduled = top * WAVES as usize;

    eprintln!(
        "median overhead: off {:.1} ms | model n=2 {:.1}, n=6 {:.1}, n=18 {:.1} ms | \
         admission n=18 {:.1} ms (shed {})",
        med(&off),
        med(&m2),
        med(&m6),
        med(&m18),
        med(&adm),
        adm_tally.shed
    );

    let mut ok = true;
    ok &= check(
        &format!(
            "model off: overhead flat at the base service time under an 18-wide burst \
             ({:.1} ms worst vs {BASE_SERVICE_MS} ms base)",
            worst(&off)
        ),
        // Brownout-free, constant service, no model: every overhead is
        // exactly the base draw.
        off.iter().all(|&o| (o - BASE_SERVICE_MS).abs() < 1e-9),
    );
    ok &= check(
        &format!(
            "model on: overhead climbs with burst size ({:.1} → {:.1} → {:.1} ms)",
            med(&m2),
            med(&m6),
            med(&m18)
        ),
        med(&m6) > med(&m2) && med(&m18) > med(&m6),
    );
    ok &= check(
        &format!(
            "saturated burst clears 3x the unloaded overhead ({:.1} vs {:.1} ms)",
            med(&m18),
            med(&off)
        ),
        med(&m18) > 3.0 * med(&off),
    );
    ok &= check(
        &format!(
            "admission sheds above the watermark ({} shed)",
            adm_tally.shed
        ),
        adm_tally.shed > 0,
    );
    ok &= check(
        &format!(
            "admission accounting conserves: {} ok + {} shed == {scheduled} scheduled",
            adm_tally.ok, adm_tally.shed
        ),
        adm_tally.ok + adm_tally.shed == scheduled && adm_tally.total() == scheduled,
    );
    ok &= check(
        &format!(
            "admission bounds served overhead below the unprotected arm \
             ({:.1} vs {:.1} ms worst)",
            worst(&adm),
            worst(&m18)
        ),
        worst(&adm) < worst(&m18),
    );
    let shed_counter = report.merged_metrics().counter("cdnsim.shed_queries");
    ok &= check(
        &format!(
            "cdnsim.shed_queries counter agrees with the tally ({shed_counter:?} vs {})",
            adm_tally.shed
        ),
        shed_counter == Some(adm_tally.shed as u64),
    );
    let rerun = overheads("model/n18-rerun");
    ok &= check(
        "rerun reproduces every overhead exactly",
        m18.len() == rerun.len() && m18.iter().zip(rerun.iter()).all(|(a, b)| a == b),
    );
    finish(ok);
}
