//! Popularity dynamics — which FE result-cache policy wins depends on
//! how fast popularity churns.
//!
//! The paper's Sec. 3 caching analysis treats the keyword popularity
//! law as static. This experiment asks the question the dynamic
//! workload model enables: under a *fixed* cache budget, how does the
//! best eviction policy change as the popularity law drifts?
//!
//! Three phases:
//!
//! 1. **Trace sweep** — one keyword trace per churn level, drawn from a
//!    [`PopularityProcess`] (shot-noise churn over Zipf(0.9)), replayed
//!    through an [`ObjectCache`] per policy (LRU / LFU / TTL) at the
//!    same byte budget. The paper-shaped result asserted: LFU wins
//!    under the static law (frequency is a perfect prior), loses to
//!    both LRU and TTL once churn outruns its stale frequency counts,
//!    and the crossover churn rate is reported.
//! 2. **End-to-end arms** — the same contest inside the full simulator:
//!    two session campaigns, identical but for the FE result-cache
//!    policy, all sessions pinned to one FE. Asserts the cache
//!    telemetry (hits, evictions) is live and that the TSV is
//!    byte-identical across `FECDN_THREADS` 1 vs 4 and across reruns.
//! 3. **Memory contract** — a 10× larger session campaign (10^5 →
//!    10^6 at paper scale, 10^4 → 10^5 in the CI smoke) through the
//!    session-slab feeder and a bounded reducer: peak sink-retained
//!    bytes and peak pending events must grow ≤ 1.5× while the
//!    workload grows 10× — the O(live sessions) footprint claim.
//!
//! Emits `BENCH_popularity.json`-shaped JSON to `--out PATH` (default
//! stderr); exit status reflects the checks so `scripts/ci.sh` runs it
//! as a tripwire.

use bench::{check, finish, scenario, seed_from_env, Scale};
use cdnsim::{Cache, CacheConfig, ObjectCache, ServiceConfig};
use emulator::output::Tsv;
use emulator::{
    Campaign, Design, ProcessedQuery, QuerySink, RunDescriptor, SessionWorkload, StreamReport,
};
use simcore::dist::{PopularityModel, PopularityProcess};
use simcore::rng::Rng;
use simcore::time::{SimDuration, SimTime};
use stats::SummaryAcc;

const CATALOG: usize = 4_000;
const ZIPF_EXPONENT: f64 = 0.9;
/// Shot-noise renewal rates swept in phase 1 (shots per virtual second).
const CHURN_LEVELS: [f64; 5] = [0.0, 0.2, 1.0, 5.0, 25.0];
/// Trace lookup spacing: 50 ms of virtual time between lookups, so a
/// churn level's shots interleave realistically with the lookups.
const LOOKUP_GAP_MS: u64 = 50;
/// TTL arm's freshness horizon.
const TTL_SECS: u64 = 120;
/// Byte budget shared by every policy arm (~150 objects).
const CAPACITY_BYTES: u64 = 150 * 26_000;

/// Deterministic per-keyword object size (24–28 kB, keyed so both the
/// trace replay and reruns agree without a side table).
fn object_bytes(key: u64) -> u64 {
    24_000 + (key % 5) * 1_000
}

/// One keyword trace: `lookups` draws from a churned Zipf process,
/// 50 ms apart. Pure function of `(seed, churn)` via named streams.
fn trace(seed: u64, churn: f64, lookups: usize) -> Vec<(SimTime, u64)> {
    let model = PopularityModel::static_zipf(ZIPF_EXPONENT).with_churn(churn);
    let mut proc = PopularityProcess::new(
        CATALOG,
        model,
        Rng::from_seed_and_name(seed, "exp_popularity/churn"),
    );
    let mut draws = Rng::from_seed_and_name(seed, "exp_popularity/draws");
    let mut t = SimTime::ZERO;
    (0..lookups)
        .map(|_| {
            t += SimDuration::from_millis(LOOKUP_GAP_MS);
            (t, proc.sample(t, &mut draws))
        })
        .collect()
}

/// Replays `trace` through one policy at the shared budget, returning
/// the hit ratio.
fn replay(trace: &[(SimTime, u64)], cfg: CacheConfig) -> f64 {
    let mut cache: ObjectCache<()> = ObjectCache::new(cfg);
    for &(t, key) in trace {
        if cache.get(key, t).is_none() {
            cache.insert(key, (), object_bytes(key), t);
        }
    }
    let s = cache.stats();
    assert_eq!(s.hits + s.misses, s.lookups, "cache accounting broke");
    s.hits as f64 / s.lookups.max(1) as f64
}

fn policy_configs() -> [(&'static str, CacheConfig); 3] {
    [
        ("lru", CacheConfig::lru(CAPACITY_BYTES)),
        ("lfu", CacheConfig::lfu(CAPACITY_BYTES)),
        (
            "ttl",
            CacheConfig::ttl(SimDuration::from_secs(TTL_SECS), CAPACITY_BYTES),
        ),
    ]
}

/// The end-to-end contest workload: every session pinned to FE 0 so a
/// single result cache sees the whole keyword stream.
fn contest_workload(sessions: u64) -> SessionWorkload {
    SessionWorkload::new(sessions)
        .with_mean_gap(SimDuration::from_millis(5))
        .with_popularity(PopularityModel::static_zipf(ZIPF_EXPONENT).with_churn(2.0))
        .with_fixed_fe(0)
}

fn contest_campaign(seed: u64, sessions: u64) -> Campaign {
    let mut c = Campaign::new(scenario(Scale::Quick, seed));
    for (name, cache) in [
        ("e2e/lru", CacheConfig::lru(CAPACITY_BYTES)),
        ("e2e/lfu", CacheConfig::lfu(CAPACITY_BYTES)),
    ] {
        c.push(
            name,
            ServiceConfig::google_like(seed).with_result_cache(cache),
            Design::Sessions(contest_workload(sessions)),
        )
        .metrics = Some(true);
    }
    c
}

/// Bounded reducer for the memory phase: two capped accumulators,
/// ~8 kB regardless of query count, honestly reported so the
/// peak-retained measurement reflects real bytes.
struct BoundedReduce {
    overall: SummaryAcc,
    t_dynamic: SummaryAcc,
}

impl QuerySink for BoundedReduce {
    type Output = ();

    fn on_query(&mut self, q: &ProcessedQuery) {
        self.overall.push(q.params.overall_ms);
        self.t_dynamic.push(q.params.t_dynamic_ms);
    }

    fn retained_bytes(&self) -> usize {
        self.overall.retained_bytes() + self.t_dynamic.retained_bytes()
    }

    fn finish(self) {}
}

fn bounded_sink(_: &RunDescriptor) -> BoundedReduce {
    BoundedReduce {
        overall: SummaryAcc::with_cap(256),
        t_dynamic: SummaryAcc::with_cap(256),
    }
}

/// Runs `sessions` single-query sessions through the slab feeder and a
/// bounded sink, returning (peak retained bytes, peak pending events).
fn memory_run(seed: u64, sessions: u64) -> (usize, usize) {
    let mut c = Campaign::new(scenario(Scale::Quick, seed));
    c.push(
        "mem/slab",
        ServiceConfig::google_like(seed),
        Design::Sessions(
            SessionWorkload::new(sessions).with_mean_gap(SimDuration::from_millis(20)),
        ),
    );
    let report: StreamReport<()> = c.execute_stream(&bounded_sink);
    let run = report.get("mem/slab").unwrap();
    (run.stats.peak_retained_bytes, run.stats.peak_pending_events)
}

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = Some(args.next().expect("--out needs a path")),
            other => {
                eprintln!("unknown argument {other:?} (expected --out PATH)");
                std::process::exit(2);
            }
        }
    }
    let (lookups, contest_sessions, mem_base) = match scale {
        Scale::Quick => (40_000usize, 1_500u64, 10_000u64),
        Scale::Paper => (200_000, 10_000, 100_000),
    };

    // ---- Phase 1: trace-driven policy x churn sweep -------------------
    let mut hit: Vec<[f64; 3]> = Vec::new();
    for &churn in &CHURN_LEVELS {
        let tr = trace(seed, churn, lookups);
        let mut row = [0.0f64; 3];
        for (i, (_, cfg)) in policy_configs().into_iter().enumerate() {
            row[i] = replay(&tr, cfg);
        }
        hit.push(row);
    }

    let stdout = std::io::stdout();
    let mut tsv = Tsv::new(
        stdout.lock(),
        &["churn_per_sec", "hit_lru", "hit_lfu", "hit_ttl", "winner"],
    )
    .unwrap();
    for (i, &churn) in CHURN_LEVELS.iter().enumerate() {
        let [lru, lfu, ttl] = hit[i];
        let winner = if lfu >= lru && lfu >= ttl {
            "lfu"
        } else if lru >= ttl {
            "lru"
        } else {
            "ttl"
        };
        tsv.row(&[
            format!("{churn}"),
            format!("{lru:.4}"),
            format!("{lfu:.4}"),
            format!("{ttl:.4}"),
            winner.to_string(),
        ])
        .unwrap();
    }

    // First churn level where LRU catches LFU: the crossover the
    // paper-shaped claim predicts exists.
    let crossover = CHURN_LEVELS
        .iter()
        .zip(&hit)
        .find(|(_, h)| h[0] >= h[1])
        .map(|(c, _)| *c);

    let mut ok = true;
    let [s_lru, s_lfu, _] = hit[0];
    let [f_lru, f_lfu, f_ttl] = *hit.last().unwrap();
    ok &= check(
        &format!("static Zipf: LFU beats LRU ({s_lfu:.3} vs {s_lru:.3})"),
        s_lfu > s_lru,
    );
    ok &= check(
        &format!("fast churn: LRU beats LFU ({f_lru:.3} vs {f_lfu:.3})"),
        f_lru > f_lfu,
    );
    ok &= check(
        &format!("fast churn: TTL beats LFU ({f_ttl:.3} vs {f_lfu:.3})"),
        f_ttl > f_lfu,
    );
    ok &= check(
        &format!("a crossover churn rate exists ({crossover:?} shots/s)"),
        crossover.is_some(),
    );
    {
        let tr = trace(seed, CHURN_LEVELS[2], lookups);
        let again = replay(&tr, CacheConfig::lru(CAPACITY_BYTES));
        ok &= check(
            "trace sweep reruns reproduce the hit ratio exactly",
            again == hit[2][0],
        );
    }

    // ---- Phase 2: end-to-end policy arms ------------------------------
    let serial = contest_campaign(seed, contest_sessions).execute_with_threads(1);
    let parallel = contest_campaign(seed, contest_sessions).execute_with_threads(4);
    ok &= check(
        "end-to-end arms byte-identical at FECDN_THREADS 1 vs 4",
        serial.to_tsv() == parallel.to_tsv(),
    );
    let rerun = contest_campaign(seed, contest_sessions).execute_with_threads(1);
    ok &= check(
        "end-to-end rerun reproduces the TSV exactly",
        serial.to_tsv() == rerun.to_tsv(),
    );
    let counter = |label: &str, name: &str| -> u64 {
        serial
            .get(label)
            .unwrap()
            .metrics
            .counter(name)
            .unwrap_or(0)
    };
    let lru_hits = counter("e2e/lru", "cdnsim.fe_result_cache_hits");
    let lru_evictions = counter("e2e/lru", "cdnsim.fe_result_cache_evictions");
    let lfu_hits = counter("e2e/lfu", "cdnsim.fe_result_cache_hits");
    ok &= check(
        &format!("bounded result cache is live end-to-end (lru hits {lru_hits}, evictions {lru_evictions}, lfu hits {lfu_hits})"),
        lru_hits > 0 && lru_evictions > 0 && lfu_hits > 0,
    );
    for label in ["e2e/lru", "e2e/lfu"] {
        let t = serial.get(label).unwrap().tally;
        ok &= check(
            &format!(
                "accounting conserves in {label} ({} of {contest_sessions})",
                t.total()
            ),
            t.total() == contest_sessions as usize,
        );
    }

    // ---- Phase 3: memory contract at 10x sessions ---------------------
    let (retained_base, pending_base) = memory_run(seed, mem_base);
    let (retained_10x, pending_10x) = memory_run(seed, mem_base * 10);
    let retained_growth = retained_10x as f64 / retained_base.max(1) as f64;
    let pending_growth = pending_10x as f64 / pending_base.max(1) as f64;
    eprintln!(
        "memory contract: {mem_base} sessions -> {} B retained / {} pending; \
         {} sessions -> {} B / {} pending",
        retained_base,
        pending_base,
        mem_base * 10,
        retained_10x,
        pending_10x
    );
    ok &= check(
        &format!("peak retained bytes flat under 10x sessions (growth {retained_growth:.3})"),
        retained_growth <= 1.5,
    );
    ok &= check(
        &format!("peak pending events O(live sessions), not O(total) (growth {pending_growth:.3})"),
        pending_growth <= 1.5,
    );

    let hit_col = |i: usize| -> String {
        let vals: Vec<String> = hit.iter().map(|h| format!("{:.4}", h[i])).collect();
        format!("[{}]", vals.join(", "))
    };
    let churns: Vec<String> = CHURN_LEVELS.iter().map(|c| format!("{c}")).collect();
    let json = format!(
        "{{\n  \"binary\": \"exp_popularity\",\n  \"catalog\": {CATALOG},\n  \
         \"trace_lookups\": {lookups},\n  \"capacity_bytes\": {CAPACITY_BYTES},\n  \
         \"churn_levels\": [{}],\n  \"hit_lru\": {},\n  \"hit_lfu\": {},\n  \"hit_ttl\": {},\n  \
         \"crossover_churn\": {},\n  \"e2e_sessions\": {contest_sessions},\n  \
         \"e2e_lru_hits\": {lru_hits},\n  \"e2e_lru_evictions\": {lru_evictions},\n  \
         \"sessions_base\": {mem_base},\n  \"sessions_10x\": {},\n  \
         \"peak_retained_base_bytes\": {retained_base},\n  \
         \"peak_retained_10x_bytes\": {retained_10x},\n  \
         \"retained_growth_factor\": {retained_growth:.3},\n  \
         \"peak_pending_base\": {pending_base},\n  \"peak_pending_10x\": {pending_10x},\n  \
         \"pending_growth_factor\": {pending_growth:.3}\n}}\n",
        churns.join(", "),
        hit_col(0),
        hit_col(1),
        hit_col(2),
        crossover.map_or("null".to_string(), |c| format!("{c}")),
        mem_base * 10,
    );
    match &out_path {
        Some(p) => std::fs::write(p, &json).expect("write --out"),
        None => eprint!("{json}"),
    }

    finish(ok);
}
