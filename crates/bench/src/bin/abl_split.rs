//! Ablation — split TCP on vs off (cf. Pathak et al., PAM 2010, the
//! paper's ref \[9\]).
//!
//! With split TCP off, clients open an end-to-end connection to the BE:
//! the handshake crosses the whole path, the response rides a cold
//! congestion window over the full RTT, and nothing is cached near the
//! user. The ablation quantifies how much of the FE's value comes from
//! connection splitting itself.
//!
//! Asserted:
//! * overall delay is higher without split TCP for the median vantage;
//! * `Tstatic` degrades most (no nearby cache);
//! * the improvement is larger for vantages far from the BE.

use bench::{campaign, check, dataset_a_repeats, execute_stream, finish, seed_from_env, Scale};
use cdnsim::ServiceConfig;
use emulator::dataset_a::{DatasetA, KeywordPolicy};
use emulator::output::Tsv;
use emulator::{Design, FoldSink, RunDescriptor};
use simcore::time::SimDuration;
use stats::QuantileAcc;
use std::collections::BTreeMap;

/// Per-vantage reducers for the three columns the ablation compares:
/// (overall, Tstatic, RTT).
type PerClient = BTreeMap<usize, (QuantileAcc, QuantileAcc, QuantileAcc)>;

fn per_client_median(
    by: &PerClient,
    f: fn(&(QuantileAcc, QuantileAcc, QuantileAcc)) -> &QuantileAcc,
) -> BTreeMap<usize, f64> {
    by.iter()
        .map(|(&c, t)| (c, f(t).median().unwrap()))
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let repeats = dataset_a_repeats(scale);

    let design = Design::DatasetA(DatasetA {
        repeats,
        spacing: SimDuration::from_secs(10),
        keywords: KeywordPolicy::Fixed(0),
    });
    let mut c = campaign(scale, seed);
    c.push("split", ServiceConfig::google_like(seed), design.clone());
    c.push(
        "no-split",
        ServiceConfig::google_like(seed).without_split_tcp(),
        design,
    );
    let report = execute_stream(&c, &|_: &RunDescriptor| {
        FoldSink::new(PerClient::new(), |by: &mut PerClient, q| {
            let e = by.entry(q.client).or_insert_with(|| {
                (
                    QuantileAcc::exact(),
                    QuantileAcc::exact(),
                    QuantileAcc::exact(),
                )
            });
            e.0.push(q.params.overall_ms);
            e.1.push(q.params.t_static_ms);
            e.2.push(q.params.rtt_ms);
        })
    });
    let with_split = report.output("split");
    let without = report.output("no-split");

    let ov_with = per_client_median(with_split, |t| &t.0);
    let ov_without = per_client_median(without, |t| &t.0);
    let ts_with = per_client_median(with_split, |t| &t.1);
    let ts_without = per_client_median(without, |t| &t.1);

    let stdout = std::io::stdout();
    let mut tsv = Tsv::new(
        stdout.lock(),
        &[
            "vantage",
            "overall_split_ms",
            "overall_nosplit_ms",
            "t_static_split_ms",
            "t_static_nosplit_ms",
        ],
    )
    .unwrap();
    for (&c, &ov_s) in &ov_with {
        if let (Some(&ov_n), Some(&ts_s), Some(&ts_n)) =
            (ov_without.get(&c), ts_with.get(&c), ts_without.get(&c))
        {
            tsv.row_f64(&[c as f64, ov_s, ov_n, ts_s, ts_n]).unwrap();
        }
    }

    let med = |m: &BTreeMap<usize, f64>| {
        let v: Vec<f64> = m.values().copied().collect();
        stats::quantile::median(&v).unwrap()
    };
    let mut ok = true;
    eprintln!(
        "median overall: split {:.0} ms, no-split {:.0} ms",
        med(&ov_with),
        med(&ov_without)
    );
    eprintln!(
        "median Tstatic: split {:.1} ms, no-split {:.1} ms",
        med(&ts_with),
        med(&ts_without)
    );
    ok &= check(
        "static delivery suffers most without the nearby FE",
        med(&ts_without) > 2.0 * med(&ts_with),
    );
    // Split TCP's end-to-end win concentrates on vantages far from the
    // BE (Pathak et al., PAM'10 report the same distance dependence; for
    // a client sitting next to a data center a proxy adds a relay hop
    // for nothing). Compare the no-split penalty of the closest vs
    // farthest thirds by client↔BE RTT, and require a clear win in the
    // far third.
    let mut rows: Vec<(f64, f64)> = Vec::new(); // (client→BE rtt, penalty)
    let rtt_without = per_client_median(without, |t| &t.2);
    for (&c, &ov_n) in &ov_without {
        if let (Some(&ov_s), Some(&rtt)) = (ov_with.get(&c), rtt_without.get(&c)) {
            rows.push((rtt, ov_n - ov_s));
        }
    }
    rows.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let third = rows.len() / 3;
    if third >= 2 {
        let near: Vec<f64> = rows[..third].iter().map(|r| r.1).collect();
        let far: Vec<f64> = rows[rows.len() - third..].iter().map(|r| r.1).collect();
        let near_pen = stats::quantile::median(&near).unwrap();
        let far_pen = stats::quantile::median(&far).unwrap();
        eprintln!("no-split penalty: near-BE third {near_pen:.0} ms, far-BE third {far_pen:.0} ms");
        ok &= check(
            "no-split penalty grows with distance from the BE",
            far_pen > near_pen,
        );
        ok &= check(
            &format!("split TCP clearly wins for the far-from-BE third (+{far_pen:.0} ms)"),
            far_pen > 15.0,
        );
    } else {
        ok = check("enough vantages for the distance split", false) && ok;
    }
    finish(ok);
}
