//! Fig. 8 — overall user-perceived delay, per vantage point, as box
//! plots (Dataset A, default FEs).
//!
//! Paper: "users using the Bing search service tend to experience
//! slightly longer and more variable overall response times."
//!
//! Shapes asserted:
//! * the across-vantage median of per-vantage median overall delay is
//!   higher for the Bing-like service;
//! * per-vantage variability (whisker span / IQR) is larger for the
//!   Bing-like service.

use bench::{campaign, check, dataset_a_repeats, execute_stream, finish, seed_from_env, Scale};
use cdnsim::ServiceConfig;
use emulator::dataset_a::{DatasetA, KeywordPolicy};
use emulator::output::Tsv;
use emulator::{Design, FoldSink, RunDescriptor};
use simcore::time::SimDuration;
use stats::{BoxSummary, QuantileAcc};
use std::collections::BTreeMap;

fn boxes(by_client: &BTreeMap<usize, QuantileAcc>) -> BTreeMap<usize, BoxSummary> {
    // Box plots need the outlier list, so the per-vantage accumulators
    // run in exact mode; `values()` hands back the samples in arrival
    // order, exactly as the collect-then-analyze path saw them.
    by_client
        .iter()
        .filter_map(|(&c, acc)| BoxSummary::of(&acc.values().unwrap()).map(|b| (c, b)))
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let repeats = dataset_a_repeats(scale);

    let design = Design::DatasetA(DatasetA {
        repeats,
        spacing: SimDuration::from_secs(10),
        keywords: KeywordPolicy::Fixed(0),
    });
    let mut c = campaign(scale, seed);
    c.push("bing-like", ServiceConfig::bing_like(seed), design.clone());
    c.push("google-like", ServiceConfig::google_like(seed), design);
    let report = execute_stream(&c, &|_: &RunDescriptor| {
        FoldSink::new(
            BTreeMap::new(),
            |m: &mut BTreeMap<usize, QuantileAcc>, q| {
                m.entry(q.client)
                    .or_insert_with(QuantileAcc::exact)
                    .push(q.params.overall_ms)
            },
        )
    });

    let bing = boxes(report.output("bing-like"));
    let google = boxes(report.output("google-like"));

    // ---- TSV: the box plots, one row per (service, vantage) ----
    let stdout = std::io::stdout();
    let mut tsv = Tsv::new(
        stdout.lock(),
        &[
            "service",
            "vantage",
            "whisker_lo",
            "q1",
            "median",
            "q3",
            "whisker_hi",
            "outliers",
        ],
    )
    .unwrap();
    for (name, bx) in [("google-like", &google), ("bing-like", &bing)] {
        for (client, b) in bx.iter() {
            tsv.row(&[
                name.to_string(),
                client.to_string(),
                format!("{:.3}", b.whisker_lo),
                format!("{:.3}", b.q1),
                format!("{:.3}", b.median),
                format!("{:.3}", b.q3),
                format!("{:.3}", b.whisker_hi),
                b.outliers.len().to_string(),
            ])
            .unwrap();
        }
    }

    // ---- shape checks ----
    let med = |v: &[f64]| stats::quantile::median(v).unwrap();
    let b_medians: Vec<f64> = bing.values().map(|b| b.median).collect();
    let g_medians: Vec<f64> = google.values().map(|b| b.median).collect();
    let b_spans: Vec<f64> = bing.values().map(|b| b.iqr()).collect();
    let g_spans: Vec<f64> = google.values().map(|b| b.iqr()).collect();
    eprintln!(
        "overall delay medians: bing-like {:.0} ms vs google-like {:.0} ms",
        med(&b_medians),
        med(&g_medians)
    );
    eprintln!(
        "per-vantage IQRs:      bing-like {:.0} ms vs google-like {:.0} ms",
        med(&b_spans),
        med(&g_spans)
    );
    let mut ok = true;
    ok &= check(
        "bing-like overall delay longer",
        med(&b_medians) > med(&g_medians),
    );
    ok &= check(
        "bing-like overall delay more variable",
        med(&b_spans) > med(&g_spans),
    );
    ok &= check(
        "every vantage produced a box",
        bing.len() == google.len() && !bing.is_empty(),
    );
    finish(ok);
}
