//! Extension — FE load as a mechanistic queueing phenomenon.
//!
//! The paper repeatedly names "the load on a FE server" among the
//! factors behind `Tstatic` (and blames Akamai's shared tenancy for
//! Bing's variance) but can only observe it indirectly. The simulator's
//! FE is an 8-slot FIFO queue, so offered load produces waiting time
//! mechanistically. This harness sweeps the query arrival rate at one
//! FE and watches `Tstatic` (whose constant term is FE overhead) climb.
//!
//! Asserted:
//! * under light load, `Tstatic` matches the unloaded service baseline;
//! * `Tstatic` grows monotonically (within tolerance) with offered load;
//! * saturation inflates the *variance* too — queueing is bursty.

use bench::{campaign, check, execute_stream, finish, seed_from_env, Scale};
use cdnsim::{QuerySpec, ServiceConfig};
use emulator::output::Tsv;
use emulator::{Design, FoldSink, RunDescriptor};
use simcore::time::SimDuration;
use stats::QuantileAcc;

/// One load level: `clients_per_wave` clients hit the default FE
/// together every wave, repeated `waves` times.
fn level_design(clients_per_wave: usize, waves: u64) -> Design {
    Design::custom(move |sim| {
        sim.with(|w, net| {
            let fe = w.default_fe(0);
            let be = w.be_of_fe(fe);
            w.prewarm(net, fe, be, 4);
            let n = w.clients().len();
            for wave in 0..waves {
                for k in 0..clients_per_wave {
                    let client = (wave as usize * clients_per_wave + k) % n;
                    w.schedule_query(
                        net,
                        SimDuration::from_millis(3_000 + wave * 5_000 + k as u64 / 4),
                        QuerySpec {
                            client,
                            keyword: 0,
                            fixed_fe: Some(fe),
                            instant_followup: false,
                        },
                    );
                }
            }
        });
    })
}

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    // Two worker slots and the shared-tenancy service times: the FE
    // saturates at realistic wave sizes (client RTT spread disperses
    // arrivals over ~250 ms, so per-wave arrival rate ≈ N/250 req/ms
    // against a ~0.1 req/ms capacity).
    let cfg = ServiceConfig::bing_like(seed).with_fe_workers(2);
    let waves = match scale {
        Scale::Quick => 12,
        Scale::Paper => 40,
    };

    let levels = [1usize, 8, 24, 56];
    let mut c = campaign(scale, seed);
    for &level in &levels {
        c.push(
            format!("load{level}"),
            cfg.clone(),
            level_design(level, waves),
        );
    }
    // Per run, retain only the derived FE-side constant per query:
    // Tstatic minus the vantage's RTT isolates the FE overhead.
    let report = execute_stream(&c, &|_: &RunDescriptor| {
        FoldSink::new(QuantileAcc::exact(), |acc: &mut QuantileAcc, q| {
            acc.push((q.params.t_static_ms - q.params.rtt_ms).max(0.0))
        })
    });

    let stdout = std::io::stdout();
    let mut tsv = Tsv::new(
        stdout.lock(),
        &[
            "clients_per_wave",
            "fe_constant_median_ms",
            "fe_constant_iqr_ms",
        ],
    )
    .unwrap();
    let mut medians = Vec::new();
    let mut iqrs = Vec::new();
    for &level in &levels {
        let overheads = report.output(&format!("load{level}"));
        let m = overheads.median().unwrap();
        let i = overheads.iqr().unwrap();
        eprintln!("load {level:>3} clients/wave: FE constant median {m:>7.2} ms, IQR {i:>6.2} ms");
        tsv.row_f64(&[level as f64, m, i]).unwrap();
        medians.push(m);
        iqrs.push(i);
    }

    let mut ok = true;
    ok &= check(
        &format!("light load is cheap (median {:.1} ms < 40 ms)", medians[0]),
        medians[0] < 40.0,
    );
    ok &= check(
        &format!(
            "overhead grows with offered load ({:.1} → {:.1} ms)",
            medians[0],
            medians[levels.len() - 1]
        ),
        medians[levels.len() - 1] > 2.0 * medians[0],
    );
    ok &= check(
        "growth is monotone across levels (within 20% tolerance)",
        medians.windows(2).all(|w| w[1] > w[0] * 0.8),
    );
    ok &= check(
        &format!(
            "saturation inflates variance (IQR {:.1} → {:.1} ms)",
            iqrs[0],
            iqrs[levels.len() - 1]
        ),
        iqrs[levels.len() - 1] > iqrs[0],
    );
    finish(ok);
}
