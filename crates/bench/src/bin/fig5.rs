//! Fig. 5 — distribution of `Tstatic`, `Tdynamic` and `Tdelta` against
//! the client↔FE RTT, for one fixed Bing-like FE and one fixed
//! Google-like FE (Dataset B: every vantage queries the fixed FE
//! repeatedly; each point is a per-vantage median).
//!
//! Paper shapes asserted:
//! * `Tstatic` varies far less across vantages than `Tdynamic` does at
//!   matched RTT (its spread around the RTT trend is small);
//! * `Tdynamic` is roughly constant at small RTT, then grows ~linearly;
//! * `Tdelta` decreases ~linearly (slope ≈ −1) and hits 0 beyond a
//!   threshold;
//! * the Google-like threshold (paper: 50–100 ms) sits below the
//!   Bing-like one (paper: 100–200 ms).

use bench::{campaign, check, dataset_b_repeats, execute_stream, finish, seed_from_env, Scale};
use cdnsim::ServiceConfig;
use emulator::dataset_b::DatasetB;
use emulator::output::Tsv;
use emulator::{Design, FoldSink, RunDescriptor};
use inference::{estimate_rtt_threshold, GroupMedians, GroupMediansAcc};

/// Dataset B against the FE nearest to the first vantage's default — an
/// arbitrary but deterministic pick, like the paper's single named
/// server IPs. The pick happens inside the shard world, so the
/// descriptor stays self-contained.
fn fixed_fe_design(repeats: u64) -> Design {
    Design::custom(move |sim| {
        let fe = sim.with(|w, _| w.default_fe(0));
        DatasetB::against(fe).with_repeats(repeats).schedule(sim);
    })
}

/// Per-run streaming state: the grouped-median reducer plus the two
/// scalars the stderr summary reports. Memory is O(vantages), not
/// O(samples).
struct Fig5State {
    acc: GroupMediansAcc,
    first_fe: Option<usize>,
    n: usize,
}

fn analyse(name: &str, s: &Fig5State) -> (Vec<GroupMedians>, inference::threshold::RttThreshold) {
    let groups = s.acc.finish();
    let points: Vec<(f64, f64)> = groups.iter().map(|g| (g.rtt_ms, g.t_delta_ms)).collect();
    let thr = estimate_rtt_threshold(&points, 3.0, 25.0);
    let fe = s.first_fe.unwrap_or(0);
    eprintln!(
        "{name}: fixed FE {fe}, {} vantages, {} samples",
        groups.len(),
        s.n
    );
    (groups, thr)
}

fn spread_around_trend(points: &[(f64, f64)]) -> f64 {
    // Residual std around an OLS trend — used to compare Tstatic's
    // tightness vs Tdynamic's.
    let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
    match stats::regress::ols(&xs, &ys) {
        Some(f) => {
            let resid: Vec<f64> = points.iter().map(|&(x, y)| y - f.predict(x)).collect();
            stats::quantile::sample_std(&resid).unwrap_or(0.0)
        }
        None => 0.0,
    }
}

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let repeats = dataset_b_repeats(scale);

    let mut c = campaign(scale, seed);
    c.push(
        "bing-like",
        ServiceConfig::bing_like(seed),
        fixed_fe_design(repeats),
    );
    c.push(
        "google-like",
        ServiceConfig::google_like(seed),
        fixed_fe_design(repeats),
    );
    let report = execute_stream(&c, &|_: &RunDescriptor| {
        FoldSink::new(
            Fig5State {
                acc: GroupMediansAcc::exact(),
                first_fe: None,
                n: 0,
            },
            |s: &mut Fig5State, q| {
                if s.n == 0 {
                    s.first_fe = q.fe;
                }
                s.n += 1;
                s.acc.push(q.client as u64, &q.params);
            },
        )
    });

    let (bing, bing_thr) = analyse("bing-like", report.output("bing-like"));
    let (google, google_thr) = analyse("google-like", report.output("google-like"));

    // ---- TSV: one row per (service, vantage) ----
    let stdout = std::io::stdout();
    let mut tsv = Tsv::new(
        stdout.lock(),
        &[
            "service",
            "vantage",
            "rtt_ms",
            "t_static_ms",
            "t_dynamic_ms",
            "t_delta_ms",
        ],
    )
    .unwrap();
    for (name, groups) in [("bing-like", &bing), ("google-like", &google)] {
        for g in groups.iter() {
            tsv.row(&[
                name.to_string(),
                g.group.to_string(),
                format!("{:.3}", g.rtt_ms),
                format!("{:.3}", g.t_static_ms),
                format!("{:.3}", g.t_dynamic_ms),
                format!("{:.3}", g.t_delta_ms),
            ])
            .unwrap();
        }
    }

    // ---- shape checks ----
    let mut ok = true;
    for (name, groups, thr) in [
        ("bing-like", &bing, &bing_thr),
        ("google-like", &google, &google_thr),
    ] {
        // "Large RTT" means beyond the service's own Tdelta→0 threshold
        // (the regimes are threshold-relative, not absolute — that is
        // the model's whole point).
        let thr_est = thr
            .linear_intercept_ms
            .or(thr.binned_first_zero_ms)
            .unwrap_or(150.0);
        let small: Vec<&GroupMedians> = groups.iter().filter(|g| g.rtt_ms < 30.0).collect();
        let large: Vec<&GroupMedians> = groups
            .iter()
            .filter(|g| g.rtt_ms > thr_est + 30.0)
            .collect();
        if small.len() >= 3 && large.len() >= 3 {
            let med = |v: &[f64]| stats::quantile::median(v).unwrap();
            let td_small: Vec<f64> = small.iter().map(|g| g.t_dynamic_ms).collect();
            let td_large: Vec<f64> = large.iter().map(|g| g.t_dynamic_ms).collect();
            let dl_small: Vec<f64> = small.iter().map(|g| g.t_delta_ms).collect();
            let dl_large: Vec<f64> = large.iter().map(|g| g.t_delta_ms).collect();
            ok &= check(
                &format!("{name}: Tdynamic grows from small to large RTT"),
                med(&td_large) > med(&td_small) + 50.0,
            );
            ok &= check(
                &format!("{name}: Tdelta positive at small RTT"),
                med(&dl_small) > 10.0,
            );
            ok &= check(
                &format!("{name}: Tdelta ~0 at large RTT"),
                med(&dl_large) < 10.0,
            );
        }
        // Tdelta slope ≈ −1 in the positive regime.
        if let Some(slope) = thr.linear_slope {
            ok &= check(
                &format!("{name}: Tdelta slope ≈ -1 (got {slope:.2})"),
                (-1.35..=-0.65).contains(&slope),
            );
        }
        // Tstatic hugs its RTT trend much tighter than Tdynamic.
        let ts_pts: Vec<(f64, f64)> = groups.iter().map(|g| (g.rtt_ms, g.t_static_ms)).collect();
        let td_pts: Vec<(f64, f64)> = groups.iter().map(|g| (g.rtt_ms, g.t_dynamic_ms)).collect();
        let s_ts = spread_around_trend(&ts_pts);
        let s_td = spread_around_trend(&td_pts);
        ok &= check(
            &format!("{name}: Tstatic spread {s_ts:.1} < Tdynamic spread {s_td:.1}"),
            s_ts <= s_td,
        );
    }
    let gt = google_thr
        .linear_intercept_ms
        .or(google_thr.binned_first_zero_ms);
    let bt = bing_thr
        .linear_intercept_ms
        .or(bing_thr.binned_first_zero_ms);
    if let (Some(g), Some(b)) = (gt, bt) {
        eprintln!("threshold google-like ≈ {g:.0} ms, bing-like ≈ {b:.0} ms");
        ok &= check("google-like threshold below bing-like threshold", g < b);
        ok &= check(
            &format!("google-like threshold {g:.0} in the paper band (30-120 ms)"),
            (30.0..=120.0).contains(&g),
        );
        ok &= check(
            &format!("bing-like threshold {b:.0} in the paper band (80-260 ms)"),
            (80.0..=260.0).contains(&b),
        );
    } else {
        ok = check("both thresholds estimable", false) && ok;
    }
    finish(ok);
}
