//! Canonical simulator-throughput benchmark: events/sec of the `tcpsim`
//! packet hot path, with tracing on and off.
//!
//! Every experiment binary in this workspace is a consumer of the
//! per-segment discrete-event core; this benchmark pins its throughput
//! so perf regressions show up as a number, not as mysteriously slow
//! campaigns. Two workloads:
//!
//! * `bulk` — a handful of long transfers (many-chunk responses, light
//!   loss): the window-growth / ACK-clock steady state, dominated by
//!   data-segment construction (`meta_for_range`) and trace recording.
//! * `mixed` — thousands of short staggered sessions with loss: the
//!   handshake / teardown / retransmission paths and per-session trace
//!   extraction, the shape campaign runners actually produce.
//!
//! Each (workload × tracing) cell is run `repeats` times and the best
//! wall-clock is kept (minimum is the right estimator for a
//! deterministic computation on a noisy machine). Results go to stdout
//! as a human summary and to `BENCH_tcpsim.json` in the working
//! directory; `scripts/ci.sh` runs the `--smoke` mode and compares
//! against the committed `BENCH_tcpsim.baseline.json`.
//!
//! Usage: `bench_tcpsim [--smoke] [--out PATH]`

use std::collections::HashMap;
use std::time::Instant;
use tcpsim::{
    App, ConnId, DeliveredSpan, End, Marker, Net, NodeId, PathParams, PktDir, Sim, TcpOptions,
};

/// Per-connection bookkeeping of the benchmark application.
struct ConnState {
    req_got: u64,
    resp_got: u64,
    resp_len: u64,
}

/// A client/server app: every connection carries one request and one
/// chunked response (alternating Static/Dynamic spans, so segments
/// regularly straddle chunk boundaries and carry 2 meta spans — the
/// common case the inline span representation is sized for).
struct BenchApp {
    request: u64,
    response: u64,
    chunks: u32,
    /// Extract each session's trace as soon as it completes, as the
    /// measurement harness does (bounds memory; exercises `take_session`).
    drain: bool,
    conns: HashMap<ConnId, ConnState>,
    finished: usize,
    drained_events: u64,
}

impl BenchApp {
    fn new(request: u64, response: u64, chunks: u32, drain: bool) -> BenchApp {
        BenchApp {
            request,
            response,
            chunks,
            drain,
            conns: HashMap::new(),
            finished: 0,
            drained_events: 0,
        }
    }
}

impl App for BenchApp {
    fn on_established(&mut self, net: &mut Net, conn: ConnId, end: End) {
        if end == End::A {
            let req = self.request;
            self.conns.insert(
                conn,
                ConnState {
                    req_got: 0,
                    resp_got: 0,
                    resp_len: 0,
                },
            );
            net.send(conn, End::A, req, Marker::Request, conn.0 as u64);
        }
    }

    fn on_data(&mut self, net: &mut Net, conn: ConnId, end: End, spans: &[DeliveredSpan]) {
        let bytes: u64 = spans.iter().map(|s| s.len as u64).sum();
        let st = match self.conns.get_mut(&conn) {
            Some(s) => s,
            None => return,
        };
        match end {
            End::B => {
                st.req_got += bytes;
                if st.req_got == self.request {
                    // Respond in alternating static/dynamic chunks.
                    let n = self.chunks.max(1) as u64;
                    let base = self.response / n;
                    let mut sent = 0u64;
                    for i in 0..n {
                        let len = if i == n - 1 {
                            self.response - sent
                        } else {
                            base
                        };
                        sent += len;
                        let (marker, content) = if i % 2 == 0 {
                            (Marker::Static, 1)
                        } else {
                            (Marker::Dynamic, 1000 + conn.0 as u64 * n + i)
                        };
                        st.resp_len += len;
                        net.send(conn, End::B, len, marker, content);
                    }
                    net.close(conn, End::B);
                }
            }
            End::A => {
                st.resp_got += bytes;
                if st.resp_got == self.response {
                    net.close(conn, End::A);
                }
            }
        }
    }

    fn on_fin(&mut self, net: &mut Net, conn: ConnId, end: End) {
        if end == End::A {
            self.finished += 1;
            self.conns.remove(&conn);
            if self.drain {
                let session = net.session_of(conn);
                let events = net.trace_mut().take_session(session);
                self.drained_events += events.len() as u64;
                // Touch the payload labelling so the compiler cannot
                // discard the recorded spans.
                self.drained_events += events
                    .iter()
                    .filter(|e| e.dir == PktDir::Rx && e.meta.iter().any(|m| m.len == 0))
                    .count() as u64;
            }
        }
    }
}

/// One measured cell.
struct Cell {
    events: u64,
    recorded: u64,
    wall_s: f64,
    finished: usize,
}

impl Cell {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s
    }
    fn recorded_per_sec(&self) -> f64 {
        self.recorded as f64 / self.wall_s
    }
}

#[derive(Clone, Copy)]
struct Workload {
    name: &'static str,
    sessions: u32,
    response: u64,
    chunks: u32,
    rtt_ms: f64,
    loss: f64,
}

fn run_workload(w: &Workload, tracing: bool, telemetry: bool) -> Cell {
    let app = BenchApp::new(400, w.response, w.chunks, tracing);
    let mut sim = Sim::new(42, app);
    sim.net().trace_mut().set_enabled(tracing);
    // Explicit per-cell telemetry gate: cells must not depend on the
    // ambient FECDN_METRICS value.
    sim.net().metrics_mut().set_enabled(telemetry);
    for s in 0..w.sessions {
        let path = PathParams::lossy(w.rtt_ms, w.loss);
        sim.net().open(
            NodeId(2 * s),
            NodeId(2 * s + 1),
            path,
            TcpOptions::default(),
            TcpOptions::default(),
            s as u64,
        );
    }
    let t0 = Instant::now();
    sim.run();
    let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
    let events = sim.net().events_processed();
    let recorded = sim.net().trace().recorded();
    let app = sim.into_app();
    assert_eq!(
        app.finished, w.sessions as usize,
        "{}: every session must complete",
        w.name
    );
    Cell {
        events,
        recorded,
        wall_s,
        finished: app.finished,
    }
}

fn best_of(w: &Workload, tracing: bool, telemetry: bool, repeats: u32) -> Cell {
    let mut best: Option<Cell> = None;
    for _ in 0..repeats {
        let c = run_workload(w, tracing, telemetry);
        if best.as_ref().is_none_or(|b| c.wall_s < b.wall_s) {
            best = Some(c);
        }
    }
    best.unwrap()
}

/// Paired telemetry-overhead measurement on one workload: interleaved
/// off/on runs with alternating order (so machine drift and warm-up hit
/// both arms alike), overhead estimated as the *median of per-pair
/// wall-clock ratios* — the estimator PR3 established for close-rate
/// comparisons on a shared noisy host, where min-of-N of each arm
/// separately still swings by ±15%. Returns `(eps_off, eps_on,
/// overhead_pct)`; panics if telemetry changed the simulated trajectory
/// — the registry is observe-only by contract.
fn telemetry_overhead(w: &Workload, tracing: bool, pairs: u32) -> (f64, f64, f64) {
    let mut ratios = Vec::new();
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    let mut events = 0u64;
    for i in 0..pairs {
        // Alternate which arm runs first within the pair.
        let (off, on) = if i % 2 == 0 {
            let off = run_workload(w, tracing, false);
            let on = run_workload(w, tracing, true);
            (off, on)
        } else {
            let on = run_workload(w, tracing, true);
            let off = run_workload(w, tracing, false);
            (off, on)
        };
        assert_eq!(
            off.events, on.events,
            "{}: telemetry must not change the event trajectory",
            w.name
        );
        events = off.events;
        ratios.push(on.wall_s / off.wall_s);
        best_off = best_off.min(off.wall_s);
        best_on = best_on.min(on.wall_s);
    }
    ratios.sort_by(f64::total_cmp);
    let median_ratio = ratios[ratios.len() / 2];
    let overhead_pct = 100.0 * (median_ratio - 1.0);
    (
        events as f64 / best_off,
        events as f64 / best_on,
        overhead_pct,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_tcpsim.json".to_string());
    let (scale, repeats) = if smoke { (1u64, 2u32) } else { (4u64, 3u32) };

    let workloads = [
        Workload {
            name: "bulk",
            sessions: 8,
            response: 2_000_000 * scale,
            chunks: 64,
            rtt_ms: 40.0,
            loss: 0.002,
        },
        Workload {
            name: "mixed",
            sessions: (500 * scale) as u32,
            response: 30_000,
            chunks: 12,
            rtt_ms: 80.0,
            loss: 0.01,
        },
    ];

    let mut rows = Vec::new();
    let mut tot = [(0u64, 0u64, 0f64), (0u64, 0u64, 0f64)]; // [off, on] = (events, recorded, wall)
    for w in &workloads {
        for (ti, tracing) in [false, true].into_iter().enumerate() {
            let c = best_of(w, tracing, true, repeats);
            eprintln!(
                "{:>5} tracing={:<5} events {:>9}  recorded {:>9}  wall {:>8.1} ms  {:>10.0} events/s  {:>10.0} rec pkts/s  ({} sessions)",
                w.name,
                tracing,
                c.events,
                c.recorded,
                c.wall_s * 1e3,
                c.events_per_sec(),
                c.recorded_per_sec(),
                c.finished,
            );
            tot[ti].0 += c.events;
            tot[ti].1 += c.recorded;
            tot[ti].2 += c.wall_s;
            rows.push(format!(
                concat!(
                    "    {{\"workload\": \"{}\", \"tracing\": {}, \"events\": {}, ",
                    "\"recorded_pkts\": {}, \"wall_ms\": {:.3}, \"events_per_sec\": {:.0}, ",
                    "\"recorded_pkts_per_sec\": {:.0}}}"
                ),
                w.name,
                tracing,
                c.events,
                c.recorded,
                c.wall_s * 1e3,
                c.events_per_sec(),
                c.recorded_per_sec(),
            ));
        }
    }

    let eps_off = tot[0].0 as f64 / tot[0].2;
    let eps_on = tot[1].0 as f64 / tot[1].2;
    let rps_on = tot[1].1 as f64 / tot[1].2;
    eprintln!(
        "total tracing=off {:.0} events/s | tracing=on {:.0} events/s, {:.0} recorded pkts/s",
        eps_off, eps_on, rps_on
    );

    // Telemetry overhead on the retransmission-heavy workload (the one
    // that actually exercises the counters), tracing on — the <5%
    // overhead budget ci.sh enforces. More pairs than the throughput
    // cells have repeats: the overhead is a *difference* of two close
    // rates, so the estimator needs more draws to shake off shared-host
    // scheduling noise.
    // Cells ~4× the throughput workload (long enough to amortize
    // per-run setup, short enough that the two arms of a pair run close
    // together in time and share the host's drift), and many pairs: the
    // median of ~15 paired ratios is what actually converges on this
    // class of shared machine.
    let tel_workload = Workload {
        name: "mixed-telemetry",
        sessions: workloads[1].sessions * 4,
        ..workloads[1]
    };
    let (tel_eps_off, tel_eps_on, overhead_pct) =
        telemetry_overhead(&tel_workload, true, repeats.max(15));
    eprintln!(
        "telemetry mixed/tracing=on: off {:.0} events/s | on {:.0} events/s | overhead {:+.2}%",
        tel_eps_off, tel_eps_on, overhead_pct
    );

    let json = format!(
        "{{\n  \"bench\": \"bench_tcpsim\",\n  \"mode\": \"{}\",\n  \"repeats\": {},\n  \
         \"events_per_sec_tracing_off\": {:.0},\n  \"events_per_sec_tracing_on\": {:.0},\n  \
         \"recorded_pkts_per_sec\": {:.0},\n  \
         \"events_per_sec_telemetry_off\": {:.0},\n  \"events_per_sec_telemetry_on\": {:.0},\n  \
         \"telemetry_overhead_pct\": {:.3},\n  \"cells\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        repeats,
        eps_off,
        eps_on,
        rps_on,
        tel_eps_off,
        tel_eps_on,
        overhead_pct,
        rows.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("write BENCH_tcpsim.json");
    println!("wrote {out_path}");
}
