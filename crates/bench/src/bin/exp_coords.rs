//! Extension — the reviewers' network-coordinates idea, end to end.
//!
//! Review #3 of the paper: "use a virtual coordinates system to estimate
//! the RTT between FE and BE servers and then take this and Tstatic+RTT
//! out from Tdynamic in order to say something about Tproc at the
//! datacenter". This harness implements and *evaluates* that proposal:
//!
//! 1. clients measure handshake RTTs to many FEs (a Dataset-B-style
//!    sweep) and ping the data-center prefixes directly;
//! 2. a Vivaldi embedding is trained on those client-observed RTTs;
//! 3. the embedding predicts the never-measured FE↔BE RTTs;
//! 4. `Tproc ≈ Tdynamic − C·RTTbe_est − overhead` per FE.
//!
//! Asserted:
//! * the embedding reconstructs the *measured* RTT space well (median
//!   relative error < 25 %);
//! * predicted FE↔BE RTTs correlate strongly with the ground truth;
//! * the heuristic lands closer to the true `Tproc` than using raw
//!   `Tdynamic` would;
//! * the documented *bias* of the method shows up: coordinates embed the
//!   public/campus RTT space, so they overestimate RTTs on Google's
//!   private WAN — exactly why the authors' regression approach (which
//!   never needs absolute RTTbe) is the more robust design.

use bench::{campaign, check, execute_stream, finish, scenario, seed_from_env, Scale};
use cdnsim::{QuerySpec, ServiceConfig};
use emulator::output::Tsv;
use emulator::{Design, FoldSink, RunDescriptor};
use inference::{tproc_via_coords, RttSample, Vivaldi};
use simcore::time::SimDuration;

/// The five per-query scalars this experiment consumes. Vivaldi training
/// needs every sample (in completion order), so the sink retains one
/// compact record per query instead of the whole processed record.
#[derive(Clone, Copy)]
struct CoordRec {
    client: usize,
    fe: usize,
    rtt_ms: f64,
    t_dynamic_ms: f64,
    proc_ms: f64,
}

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let sc = scenario(scale, seed);
    let cfg = ServiceConfig::google_like(seed);

    // Planning world for the geometry lookups (counts, ping RTTs, ground
    // truth): pure geometry, identical in every world of this scenario.
    let mut sim = sc.build_sim(cfg.clone());
    let (n_clients, n_fes, n_bes) =
        sim.with(|w, _| (w.clients().len(), w.fe_count(), cfg.be_sites.len()));
    // Node universe: clients, then FEs, then BEs.
    let fe_node = |fe: usize| n_clients + fe;
    let be_node = |be: usize| n_clients + n_fes + be;

    // ---- step 1a: client↔FE handshake RTTs from real queries ----
    let probe_clients: Vec<usize> = (0..n_clients).step_by(2).collect();
    let mut c = campaign(scale, seed);
    let sched_clients = probe_clients.clone();
    c.push(
        "coords",
        cfg.clone(),
        Design::custom(move |sim| {
            sim.with(|w, net| {
                for (i, &client) in sched_clients.iter().enumerate() {
                    for fe in 0..n_fes {
                        w.schedule_query(
                            net,
                            SimDuration::from_millis(1 + (i * n_fes + fe) as u64 * 150),
                            QuerySpec {
                                client,
                                keyword: 0,
                                fixed_fe: Some(fe),
                                instant_followup: false,
                            },
                        );
                    }
                }
            });
        }),
    );
    let report = execute_stream(&c, &|_: &RunDescriptor| {
        FoldSink::new(Vec::new(), |v: &mut Vec<CoordRec>, q| {
            v.push(CoordRec {
                client: q.client,
                fe: q.fe.expect("fixed-FE design"),
                rtt_ms: q.params.rtt_ms,
                t_dynamic_ms: q.params.t_dynamic_ms,
                proc_ms: q.proc_ms,
            })
        })
    });
    let out = report.output("coords");
    let mut samples: Vec<RttSample> = out
        .iter()
        .map(|q| RttSample {
            a: q.client,
            b: fe_node(q.fe),
            rtt_ms: q.rtt_ms.max(0.1),
        })
        .collect();
    // ---- step 1b: client↔BE pings ----
    sim.with(|w, _| {
        for &client in &probe_clients {
            for be in 0..n_bes {
                samples.push(RttSample {
                    a: client,
                    b: be_node(be),
                    rtt_ms: w.client_be_rtt_ms(client, be).max(0.1),
                });
            }
        }
    });

    // ---- step 2: embed ----
    let n_nodes = n_clients + n_fes + n_bes;
    let mut viv = Vivaldi::new(n_nodes, seed);
    viv.train(&samples, 40, seed);
    let fit_err = viv.median_rel_error(&samples);

    // ---- step 3: predict FE↔BE RTTs, compare to ground truth ----
    let mut est = Vec::new();
    let mut truth = Vec::new();
    let mut tsv_rows = Vec::new();
    sim.with(|w, _| {
        for fe in 0..n_fes {
            let be = w.be_of_fe(fe);
            let e = viv.predict(fe_node(fe), be_node(be));
            let t = w.fe_be_rtt_ms(fe, be);
            est.push(e);
            truth.push(t);
            tsv_rows.push((fe, be, e, t));
        }
    });
    let corr = stats::pearson(&est, &truth).unwrap_or(0.0);

    // ---- step 4: the Tproc heuristic on small-RTT vantages ----
    let mut tproc_errs = Vec::new();
    let mut naive_errs = Vec::new();
    sim.with(|w, _| {
        for fe in 0..n_fes {
            let td: Vec<f64> = out
                .iter()
                .filter(|q| q.fe == fe && q.rtt_ms < 30.0)
                .map(|q| q.t_dynamic_ms)
                .collect();
            let truths: Vec<f64> = out
                .iter()
                .filter(|q| q.fe == fe)
                .map(|q| q.proc_ms)
                .collect();
            if td.is_empty() || truths.is_empty() {
                continue;
            }
            let td_med = stats::quantile::median(&td).unwrap();
            let true_proc = stats::quantile::mean(&truths).unwrap();
            let be = w.be_of_fe(fe);
            // C rounds for the google-like 8 KB BE window on a ~28 KB
            // response ≈ 4; overhead allowance 6 ms.
            let e = tproc_via_coords(td_med, viv.predict(fe_node(fe), be_node(be)), 4.0, 6.0);
            tproc_errs.push((e - true_proc).abs());
            naive_errs.push((td_med - true_proc).abs());
        }
    });

    // ---- output ----
    let stdout = std::io::stdout();
    let mut tsv = Tsv::new(
        stdout.lock(),
        &["fe", "be", "rtt_be_estimated_ms", "rtt_be_true_ms"],
    )
    .unwrap();
    for (fe, be, e, t) in &tsv_rows {
        tsv.row(&[
            fe.to_string(),
            be.to_string(),
            format!("{e:.3}"),
            format!("{t:.3}"),
        ])
        .unwrap();
    }

    let med = |v: &[f64]| stats::quantile::median(v).unwrap();
    eprintln!("embedding fit: median relative error {fit_err:.3}");
    eprintln!("FE↔BE estimate vs truth: r = {corr:.3}");
    eprintln!(
        "Tproc error: heuristic {:.0} ms vs naive-Tdynamic {:.0} ms",
        med(&tproc_errs),
        med(&naive_errs)
    );
    let over = est.iter().zip(&truth).filter(|(e, t)| *e > *t).count();
    eprintln!(
        "private-WAN bias: {over}/{} FE↔BE estimates above the true RTT",
        est.len()
    );
    let mut ok = true;
    ok &= check(
        &format!("embedding reconstructs measured RTTs (err {fit_err:.2})"),
        fit_err < 0.25,
    );
    ok &= check(
        &format!("FE↔BE correlation strong (r {corr:.2})"),
        corr > 0.7,
    );
    ok &= check(
        "coordinate heuristic beats naive Tdynamic as a Tproc estimate",
        med(&tproc_errs) < med(&naive_errs),
    );
    ok &= check(
        "the documented bias appears: estimates skew above the private-WAN truth",
        over * 2 >= est.len(),
    );
    finish(ok);
}
