//! Fig. 3 — effect of keyword type on `Tstatic` and `Tdynamic`.
//!
//! One vantage submits 4 keywords of different classes (popular /
//! refined / complex / uncorrelated-mix — the paper's key1..key4), many
//! samples each, in chronological order; the plotted series are moving
//! medians with window 10 (exactly the paper's smoothing).
//!
//! Shapes asserted:
//! * `Tdynamic` differs markedly across keyword classes (complex >
//!   popular);
//! * `Tstatic` is insensitive to the keyword class.

use bench::{campaign, check, execute_stream, fig3_samples, finish, seed_from_env, Scale};
use cdnsim::{QuerySpec, ServiceConfig};
use emulator::output::Tsv;
use emulator::{Design, FoldSink, RunDescriptor};
use searchbe::keywords::KeywordClass;
use simcore::time::SimDuration;
use stats::moving_median;

/// Per-query record the streaming sink retains: just the columns the
/// figure plots, not the whole processed query.
#[derive(Clone, Copy)]
struct Row {
    keyword: u64,
    class: KeywordClass,
    t_start_ms: f64,
    t_static_ms: f64,
    t_dynamic_ms: f64,
}

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let samples = fig3_samples(scale);

    // The paper runs this against Bing; we use the Bing-like service.
    let mut c = campaign(scale, seed);
    let picks: [u64; 4] = {
        let p = c.scenario().corpus.fig3_picks();
        [p[0].id, p[1].id, p[2].id, p[3].id]
    };
    let client = 0usize;
    c.push(
        "fig3",
        ServiceConfig::bing_like(seed),
        Design::custom(move |sim| {
            sim.with(|w, net| {
                let fe = w.default_fe(client);
                let be = w.be_of_fe(fe);
                w.prewarm(net, fe, be, 4);
                for (ki, &kw) in picks.iter().enumerate() {
                    for r in 0..samples {
                        // Interleave the four keywords over time, 2.5 s
                        // apart per keyword (10 s full cycle as in the
                        // paper).
                        let at = SimDuration::from_millis(3_000 + r * 10_000 + ki as u64 * 2_500);
                        w.schedule_query(
                            net,
                            at,
                            QuerySpec {
                                client,
                                keyword: kw,
                                fixed_fe: Some(fe),
                                instant_followup: false,
                            },
                        );
                    }
                }
            });
        }),
    );
    let report = execute_stream(&c, &|_: &RunDescriptor| {
        FoldSink::new(Vec::new(), |rows: &mut Vec<Row>, q| {
            rows.push(Row {
                keyword: q.keyword,
                class: q.class,
                t_start_ms: q.t_start_ms,
                t_static_ms: q.params.t_static_ms,
                t_dynamic_ms: q.params.t_dynamic_ms,
            })
        })
    });
    let out = report.output("fig3");

    // Series per keyword, in chronological order.
    let mut per_kw: Vec<(KeywordClass, Vec<f64>, Vec<f64>)> = Vec::new();
    for &kw in &picks {
        let mut qs: Vec<_> = out.iter().filter(|q| q.keyword == kw).collect();
        qs.sort_by(|a, b| a.t_start_ms.partial_cmp(&b.t_start_ms).unwrap());
        let ts: Vec<f64> = qs.iter().map(|q| q.t_static_ms).collect();
        let td: Vec<f64> = qs.iter().map(|q| q.t_dynamic_ms).collect();
        per_kw.push((qs[0].class, moving_median(&ts, 10), moving_median(&td, 10)));
    }

    // ---- TSV ----
    let stdout = std::io::stdout();
    let mut tsv = Tsv::new(
        stdout.lock(),
        &[
            "keyword_class",
            "sample",
            "t_static_mm10_ms",
            "t_dynamic_mm10_ms",
        ],
    )
    .unwrap();
    for (class, ts, td) in &per_kw {
        for (i, (s, d)) in ts.iter().zip(td).enumerate() {
            tsv.row(&[
                class.label().to_string(),
                i.to_string(),
                format!("{s:.3}"),
                format!("{d:.3}"),
            ])
            .unwrap();
        }
    }

    // ---- shape checks ----
    let med = |v: &[f64]| stats::quantile::median(v).unwrap();
    let by_class = |c: KeywordClass| per_kw.iter().find(|(k, _, _)| *k == c).unwrap();
    let (_, _, td_popular) = by_class(KeywordClass::Popular);
    let (_, _, td_complex) = by_class(KeywordClass::Complex);
    let mut ok = true;
    ok &= check(
        &format!(
            "Tdynamic varies with keyword class: complex {:.0} > popular {:.0} + 30",
            med(td_complex),
            med(td_popular)
        ),
        med(td_complex) > med(td_popular) + 30.0,
    );
    let ts_medians: Vec<f64> = per_kw.iter().map(|(_, ts, _)| med(ts)).collect();
    let ts_spread = ts_medians.iter().fold(f64::MIN, |a, &b| a.max(b))
        - ts_medians.iter().fold(f64::MAX, |a, &b| a.min(b));
    let td_medians: Vec<f64> = per_kw.iter().map(|(_, _, td)| med(td)).collect();
    let td_spread = td_medians.iter().fold(f64::MIN, |a, &b| a.max(b))
        - td_medians.iter().fold(f64::MAX, |a, &b| a.min(b));
    ok &= check(
        &format!(
            "Tstatic insensitive to keyword class (spread {ts_spread:.1} ≪ Tdynamic spread {td_spread:.1})"
        ),
        ts_spread < 0.35 * td_spread,
    );
    eprintln!(
        "classes: {:?}",
        per_kw.iter().map(|(c, _, _)| c.label()).collect::<Vec<_>>()
    );
    finish(ok);
}
