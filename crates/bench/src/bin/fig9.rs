//! Fig. 9 — correlating `Tdynamic` with the geographical distance
//! between FE and BE, and factoring the fetch time (Sec. 5).
//!
//! Design, following the paper: fix one data center per service (Bing:
//! Boydton/Virginia; Google: Lenoir/North Carolina), take FE servers at
//! increasing distances from it that are *served by* that data center,
//! measure `Tdynamic` from a small-RTT client near each FE (where
//! `Tdynamic ≈ Tfetch`), and fit a line. The Y-intercept estimates the
//! back-end computation time `Tproc`; the slope is the network term
//! `C · rtt_per_mile`.
//!
//! Shapes asserted:
//! * both fits have positive slope (fetch time grows with distance);
//! * the intercepts are ordered and far apart: Bing-like ≫ Google-like
//!   (paper: 260 ms vs 34 ms);
//! * the intercept approximates the true mean `Tproc` (simulator ground
//!   truth — a validation the paper could not do);
//! * slopes are the same order of magnitude across services (paper:
//!   0.08 vs 0.099 ms/mile).

use bench::{campaign, check, execute_stream, finish, seed_from_env, Scale};
use cdnsim::{QuerySpec, ServiceConfig};
use emulator::output::Tsv;
use emulator::{Design, FoldSink, RunDescriptor};
use inference::factoring::factor_fetch_time;
use simcore::time::SimDuration;
use stats::{MeanAcc, QuantileAcc};
use std::collections::BTreeMap;

struct ServiceFit {
    points: Vec<(f64, f64)>, // (distance_miles, median Tdynamic ms)
    factoring: inference::FetchFactoring,
    true_proc_mean_ms: f64,
}

/// Per-run streaming state: per-FE `Tdynamic` quantile accumulators
/// (keyed in ascending FE order by the map) plus the ground-truth
/// `Tproc` running mean — all [`analyse`] needs.
struct Fig9State {
    per_fe: BTreeMap<usize, (f64, QuantileAcc)>, // fe → (FE↔BE miles, Tdynamic)
    proc: MeanAcc,
}

/// FEs served by BE site 0 (the paper's chosen data center), within the
/// radius, each paired with its nearest (small-RTT) vantage; `repeats`
/// queries per FE. Planning is pure geometry, done inside the shard.
fn fig9_design(radius_miles: f64, repeats: u64) -> Design {
    Design::custom(move |sim| {
        sim.with(|w, net| {
            let mut plan = Vec::new();
            for fe in 0..w.fe_count() {
                if w.be_of_fe(fe) != 0 {
                    continue;
                }
                let dist = w.fe_be_distance_miles(fe, 0);
                if dist > radius_miles {
                    continue;
                }
                // Nearest vantage by RTT.
                let (client, rtt) = (0..w.clients().len())
                    .map(|c| (c, w.client_fe_rtt_ms(c, fe)))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .unwrap();
                if rtt < 25.0 {
                    plan.push((fe, client));
                }
            }
            for (i, &(fe, client)) in plan.iter().enumerate() {
                w.prewarm(net, fe, 0, 2);
                for r in 0..repeats {
                    w.schedule_query(
                        net,
                        SimDuration::from_millis(3_000 + r * 10_000 + i as u64 * 131),
                        QuerySpec {
                            client,
                            keyword: 0,
                            fixed_fe: Some(fe),
                            instant_followup: false,
                        },
                    );
                }
            }
        });
    })
}

fn analyse(s: &Fig9State) -> Option<ServiceFit> {
    // The qualifying-FE set is the reducer's key set: every query
    // carried its FE and the FE↔BE distance ground truth.
    if s.per_fe.len() < 3 {
        eprintln!("not enough qualifying FEs ({})", s.per_fe.len());
        return None;
    }
    let points: Vec<(f64, f64)> = s
        .per_fe
        .values()
        .filter_map(|(dist, td)| td.median().map(|m| (*dist, m)))
        .collect();
    let factoring = factor_fetch_time(&points)?;
    Some(ServiceFit {
        points,
        factoring,
        true_proc_mean_ms: s.proc.mean().unwrap_or(0.0),
    })
}

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    // The Bing-like back-end's Tproc variance (its defining trait) buries
    // the ~0.07 ms/mile distance signal unless medians are taken over
    // many repeats — the authors hit the same wall and re-ran Sec. 5
    // with more measurements for the camera-ready.
    let (rep_bing, rep_google) = match scale {
        Scale::Quick => (48, 16),
        Scale::Paper => (96, 40),
    };

    let mut c = campaign(scale, seed);
    c.push(
        "bing-like",
        ServiceConfig::bing_like(seed),
        fig9_design(620.0, rep_bing),
    );
    c.push(
        "google-like",
        ServiceConfig::google_like(seed),
        fig9_design(700.0, rep_google),
    );
    let report = execute_stream(&c, &|_: &RunDescriptor| {
        FoldSink::new(
            Fig9State {
                per_fe: BTreeMap::new(),
                proc: MeanAcc::new(),
            },
            |s: &mut Fig9State, q| {
                if let Some(fe) = q.fe {
                    s.per_fe
                        .entry(fe)
                        .or_insert_with(|| (q.dist_fe_be_miles, QuantileAcc::exact()))
                        .1
                        .push(q.params.t_dynamic_ms);
                }
                s.proc.push(q.proc_ms);
            },
        )
    });
    let bing = analyse(report.output("bing-like"));
    let google = analyse(report.output("google-like"));
    let (bing, google) = match (bing, google) {
        (Some(b), Some(g)) => (b, g),
        _ => {
            finish(check("both services produced a fit", false));
            return;
        }
    };

    // ---- TSV: the scatter + fitted lines ----
    let stdout = std::io::stdout();
    let mut tsv = Tsv::new(
        stdout.lock(),
        &["service", "distance_miles", "t_dynamic_ms", "fit_ms"],
    )
    .unwrap();
    for (name, fit) in [("bing-like", &bing), ("google-like", &google)] {
        for &(d, td) in &fit.points {
            tsv.row(&[
                name.to_string(),
                format!("{d:.1}"),
                format!("{td:.3}"),
                format!("{:.3}", fit.factoring.fit.predict(d)),
            ])
            .unwrap();
        }
    }

    // ---- shape checks ----
    let mut ok = true;
    for (name, fit) in [("bing-like", &bing), ("google-like", &google)] {
        eprintln!(
            "{name}: y = {:.4}·x + {:.1}  (R² {:.3}, {} FEs; true mean Tproc {:.1} ms)",
            fit.factoring.slope_ms_per_mile,
            fit.factoring.tproc_ms,
            fit.factoring.fit.r2,
            fit.points.len(),
            fit.true_proc_mean_ms,
        );
        ok &= check(
            &format!("{name}: slope positive"),
            fit.factoring.slope_ms_per_mile > 0.0,
        );
        // The intercept estimates Tproc *plus* the distance-independent
        // terms the client cannot separate (FE overhead, path base
        // delays, half an access RTT) — so it is biased high by a few
        // tens of ms by construction. Validate against the ground truth
        // with that one-sided bias band.
        let bias = fit.factoring.tproc_ms - fit.true_proc_mean_ms;
        ok &= check(
            &format!(
                "{name}: intercept {:.0} = true mean Tproc {:.0} + bias {:.0} ∈ [-25, 95]",
                fit.factoring.tproc_ms, fit.true_proc_mean_ms, bias
            ),
            (-25.0..=95.0).contains(&bias),
        );
    }
    ok &= check(
        &format!(
            "intercepts well separated: bing-like {:.0} ≫ google-like {:.0} (paper: 260 vs 34)",
            bing.factoring.tproc_ms, google.factoring.tproc_ms
        ),
        bing.factoring.tproc_ms > 2.5 * google.factoring.tproc_ms,
    );
    let slope_ratio = bing.factoring.slope_ms_per_mile / google.factoring.slope_ms_per_mile;
    ok &= check(
        &format!("slopes same order of magnitude (ratio {slope_ratio:.2})"),
        (0.2..=5.0).contains(&slope_ratio),
    );
    // Heuristic factoring of the network term: C = slope / rtt-per-mile.
    let c_bing = bing.factoring.c_estimate(2.0 * 2.0 * 0.0082);
    let c_google = google.factoring.c_estimate(2.0 * 1.3 * 0.0082);
    eprintln!("estimated C (BE window rounds): bing-like {c_bing:.1}, google-like {c_google:.1}");
    ok &= check(
        "C estimates in a plausible 0.5-8 round range",
        (0.5..8.0).contains(&c_bing) && (0.5..8.0).contains(&c_google),
    );
    finish(ok);
}
