//! Ablation — FE static-content cache on vs off.
//!
//! The FE's first documented role (Sec. 2) is caching the static portion
//! and delivering it "immediately upon receiving a user's request".
//! Turning the cache off forces the static bytes to ride the BE
//! response, so their delivery inherits the whole fetch time.
//!
//! Asserted:
//! * small-RTT `Tstatic` inflates by roughly the fetch time without the
//!   cache;
//! * `Tdelta` collapses to ~0 everywhere (static and dynamic arrive
//!   together) — the early-page-paint benefit disappears;
//! * the *final* byte (overall delay) changes much less: the cache's
//!   value is perceived latency of the page head, not total transfer.

use bench::{campaign, check, execute_stream, finish, seed_from_env, Scale};
use cdnsim::{QuerySpec, ServiceConfig};
use emulator::output::Tsv;
use emulator::{Design, FoldSink, RunDescriptor};
use simcore::time::SimDuration;
use stats::QuantileAcc;

/// Per-run reducers over the four columns the ablation compares.
struct Cols {
    ts: QuantileAcc,
    dl: QuantileAcc,
    ov: QuantileAcc,
    fetch: QuantileAcc,
}

/// Clients within 30 ms of their default FE, `repeats` queries each.
fn small_rtt_design(repeats: u64) -> Design {
    Design::custom(move |sim| {
        sim.with(|w, net| {
            let close: Vec<usize> = (0..w.clients().len())
                .filter(|&c| w.client_fe_rtt_ms(c, w.default_fe(c)) < 30.0)
                .collect();
            for (i, &client) in close.iter().enumerate() {
                for r in 0..repeats {
                    w.schedule_query(
                        net,
                        SimDuration::from_millis(1 + r * 10_000 + i as u64 * 61),
                        QuerySpec {
                            client,
                            keyword: 0,
                            fixed_fe: None,
                            instant_followup: false,
                        },
                    );
                }
            }
        });
    })
}

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let repeats = match scale {
        Scale::Quick => 8,
        Scale::Paper => 40,
    };

    let mut c = campaign(scale, seed);
    c.push(
        "cache-on",
        ServiceConfig::bing_like(seed),
        small_rtt_design(repeats),
    );
    c.push(
        "cache-off",
        ServiceConfig::bing_like(seed).without_static_cache(),
        small_rtt_design(repeats),
    );
    let report = execute_stream(&c, &|_: &RunDescriptor| {
        FoldSink::new(
            Cols {
                ts: QuantileAcc::exact(),
                dl: QuantileAcc::exact(),
                ov: QuantileAcc::exact(),
                fetch: QuantileAcc::exact(),
            },
            |s: &mut Cols, q| {
                s.ts.push(q.params.t_static_ms);
                s.dl.push(q.params.t_delta_ms);
                s.ov.push(q.params.overall_ms);
                if let Some(f) = q.true_fetch_ms {
                    s.fetch.push(f);
                }
            },
        )
    });
    let cached = report.output("cache-on");
    let uncached = report.output("cache-off");

    let med = |acc: &QuantileAcc| acc.median().unwrap();
    let ts_c = med(&cached.ts);
    let ts_u = med(&uncached.ts);
    let dl_c = med(&cached.dl);
    let dl_u = med(&uncached.dl);
    let ov_c = med(&cached.ov);
    let ov_u = med(&uncached.ov);
    let fetch = med(&cached.fetch);

    let stdout = std::io::stdout();
    let mut tsv = Tsv::new(
        stdout.lock(),
        &["config", "t_static_ms", "t_delta_ms", "overall_ms"],
    )
    .unwrap();
    tsv.row(&[
        "static-cache-on".into(),
        format!("{ts_c:.3}"),
        format!("{dl_c:.3}"),
        format!("{ov_c:.3}"),
    ])
    .unwrap();
    tsv.row(&[
        "static-cache-off".into(),
        format!("{ts_u:.3}"),
        format!("{dl_u:.3}"),
        format!("{ov_u:.3}"),
    ])
    .unwrap();

    eprintln!("median fetch time (ground truth): {fetch:.0} ms");
    eprintln!("Tstatic: cached {ts_c:.1} ms → uncached {ts_u:.1} ms");
    eprintln!("Tdelta:  cached {dl_c:.1} ms → uncached {dl_u:.1} ms");
    eprintln!("overall: cached {ov_c:.0} ms → uncached {ov_u:.0} ms");
    let mut ok = true;
    ok &= check(
        "uncached Tstatic inflates by roughly the fetch time",
        ts_u > ts_c + 0.6 * fetch,
    );
    ok &= check("uncached Tdelta collapses to ~0", dl_u < 5.0 && dl_c > 25.0);
    ok &= check(
        "overall delay changes far less than Tstatic does",
        (ov_u - ov_c).abs() < 0.5 * (ts_u - ts_c),
    );
    finish(ok);
}
