//! Sec. 6 — the interactive "search as you type" feature.
//!
//! Each keystroke issues a separate query over a new TCP connection.
//! The paper's claims: (i) every sub-query "still fits our basic model";
//! (ii) follow-up queries are processed faster at the BE because they
//! are correlated with the previous ones.
//!
//! Asserted:
//! * every sub-query yields a full, internally consistent timeline;
//! * the fetch-time bracket `Tdelta ≤ Tfetch ≤ Tdynamic` contains the
//!   true fetch time for every sub-query;
//! * follow-up sub-queries have materially smaller true `Tproc`.

use bench::{campaign, check, execute_stream, finish, seed_from_env, Scale};
use cdnsim::ServiceConfig;
use emulator::instant::InstantRun;
use emulator::output::Tsv;
use emulator::{FoldSink, ProcessedQuery, RunDescriptor};
use inference::FetchBounds;

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let clients: Vec<usize> = match scale {
        Scale::Quick => (0..8).collect(),
        Scale::Paper => (0..40).collect(),
    };
    let run = InstantRun {
        clients,
        keyword: 3,
        min_prefix: 3,
    };
    let mut c = campaign(scale, seed);
    c.push("instant", ServiceConfig::google_like(seed), run.design());
    // Session reconstruction pairs keystrokes within a client, so the
    // sink keeps the processed records (trace-free, O(keystrokes)).
    let report = execute_stream(&c, &|_: &RunDescriptor| {
        FoldSink::new(Vec::new(), |v: &mut Vec<ProcessedQuery>, q| {
            v.push(q.clone())
        })
    });
    let sessions = run.sessions(report.output("instant"));

    let stdout = std::io::stdout();
    let mut tsv = Tsv::new(
        stdout.lock(),
        &[
            "client",
            "keystroke",
            "t_static_ms",
            "t_dynamic_ms",
            "t_delta_ms",
            "true_proc_ms",
            "followup",
        ],
    )
    .unwrap();

    let mut ok = true;
    let mut first_proc = Vec::new();
    let mut later_proc = Vec::new();
    let mut all_consistent = true;
    let mut all_bracketed = true;
    for sess in &sessions {
        for (i, q) in sess.subqueries.iter().enumerate() {
            tsv.row(&[
                sess.client.to_string(),
                i.to_string(),
                format!("{:.3}", q.params.t_static_ms),
                format!("{:.3}", q.params.t_dynamic_ms),
                format!("{:.3}", q.params.t_delta_ms),
                format!("{:.3}", q.proc_ms),
                (i > 0).to_string(),
            ])
            .unwrap();
            all_consistent &= q.params.is_consistent(0.5);
            if let Some(truth) = q.true_fetch_ms {
                all_bracketed &= FetchBounds::from_params(&q.params).contains(truth, 12.0);
            }
            if i == 0 {
                first_proc.push(q.proc_ms);
            } else {
                later_proc.push(q.proc_ms);
            }
        }
    }
    ok &= check(
        "every session produced sub-queries",
        !sessions.is_empty() && sessions.iter().all(|s| s.subqueries.len() >= 2),
    );
    ok &= check(
        "every sub-query fits the basic model (consistent timeline)",
        all_consistent,
    );
    ok &= check(
        "fetch bracket contains true fetch time for every sub-query",
        all_bracketed,
    );
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    eprintln!(
        "mean Tproc: first keystroke {:.1} ms, follow-ups {:.1} ms",
        mean(&first_proc),
        mean(&later_proc)
    );
    ok &= check(
        "follow-up queries processed faster (correlated-query discount)",
        mean(&later_proc) < 0.75 * mean(&first_proc),
    );
    finish(ok);
}
