//! Fig. 4 — inbound/outbound packet events triggered by a single search
//! query, at five clients of increasing RTT to one fixed FE.
//!
//! The paper's y-axis values are the five clients' RTTs
//! (10.656, 30.003, 86.647, 160.38, 243.25 ms); each row is a timeline
//! of packet events since the SYN. At small RTT three temporal clusters
//! are visible (handshake, static, dynamic); as RTT grows the gap
//! between the static and dynamic clusters shrinks and the two merge.
//!
//! Shapes asserted:
//! * the smallest-RTT client shows ≥ 2 separated payload clusters;
//! * the inter-cluster gap shrinks monotonically (within tolerance) as
//!   RTT grows;
//! * the largest-RTT client's payload events form a single merged
//!   cluster.

use bench::{check, execute_stream, finish, seed_from_env};
use capture::cluster_view::TimelineView;
use capture::{Classifier, Timeline};
use cdnsim::{QuerySpec, ServiceConfig, ServiceWorld};
use emulator::output::Tsv;
use emulator::{Campaign, Design, FoldSink, RetainRaw, RunDescriptor, Scenario};
use simcore::time::SimDuration;

/// The paper's five RTT rows (ms).
const PAPER_RTTS: [f64; 5] = [10.656, 30.003, 86.647, 160.38, 243.25];

fn main() {
    let seed = seed_from_env();
    let sc = Scenario::with_size(seed, 230, 1_000);

    // Pick one FE and five clients whose RTTs best match the paper's
    // rows, from a throwaway planning world (pure geometry: identical
    // in every world built from this scenario's configs).
    let mut planning = sc.build_sim(ServiceConfig::bing_like(seed));
    let (fe, clients) = planning.with(|w, _| {
        let fe = w.default_fe(0);
        let mut chosen = Vec::new();
        for target in PAPER_RTTS {
            let mut best = (0usize, f64::MAX);
            for c in 0..w.clients().len() {
                if chosen.contains(&c) {
                    continue;
                }
                let rtt = w.client_fe_rtt_ms(c, fe);
                let err = (rtt - target).abs();
                if err < best.1 {
                    best = (c, err);
                }
            }
            chosen.push(best.0);
        }
        (fe, chosen)
    });
    drop(planning);
    // The back-end processing time is itself noisy (that is the point of
    // the Bing-like model); a figure built from one query per row would
    // inherit that noise. Run each row several times and display the
    // median-`Tdelta` run — the paper similarly shows representative
    // timelines.
    const TRIES: u64 = 7;
    let mut campaign = Campaign::new(sc);
    let sched_clients = clients.clone();
    campaign.push(
        "fig4",
        ServiceConfig::bing_like(seed),
        Design::custom(move |sim| {
            sim.with(|w, net| {
                let be = w.be_of_fe(fe);
                w.prewarm(net, fe, be, 5);
                for (i, &client) in sched_clients.iter().enumerate() {
                    for t in 0..TRIES {
                        w.schedule_query(
                            net,
                            SimDuration::from_millis(3_000 + i as u64 * 5_000 + t * 30_000),
                            QuerySpec {
                                client,
                                keyword: 0,
                                fixed_fe: Some(fe),
                                instant_followup: false,
                            },
                        );
                    }
                }
            });
        }),
    );
    // This figure genuinely needs packet traces: opt into raw retention
    // explicitly (the trace is moved into the sink, never cloned).
    let report = execute_stream(&campaign, &|_: &RunDescriptor| {
        RetainRaw::new(FoldSink::new((), |_, _| {}))
    });

    let mut runs: Vec<(usize, TimelineView, Timeline)> = Vec::new();
    for cq in &report.output("fig4").1 {
        let node = ServiceWorld::client_node(cq.client);
        let view = TimelineView::build(&cq.trace, node);
        let tl = Timeline::extract(&cq.trace, node, &Classifier::ByMarker);
        if let (Ok(v), Ok(t)) = (view, tl) {
            runs.push((cq.client, v, t));
        }
    }
    // Per client, keep the run with the median Tdelta.
    let mut views: Vec<(usize, TimelineView, Timeline)> = clients
        .iter()
        .filter_map(|&client| {
            let mut mine: Vec<&(usize, TimelineView, Timeline)> =
                runs.iter().filter(|(c, _, _)| *c == client).collect();
            if mine.is_empty() {
                return None;
            }
            mine.sort_by(|a, b| a.2.t_delta_ms().partial_cmp(&b.2.t_delta_ms()).unwrap());
            Some(mine[mine.len() / 2].clone())
        })
        .collect();
    views.sort_by(|a, b| a.1.rtt_ms.partial_cmp(&b.1.rtt_ms).unwrap());

    // ---- TSV: one row per packet event ----
    let stdout = std::io::stdout();
    let mut tsv = Tsv::new(
        stdout.lock(),
        &["client", "rtt_ms", "direction", "t_ms_since_syn"],
    )
    .unwrap();
    for (client, v, _) in &views {
        for &t in &v.tx_ms {
            tsv.row(&[
                client.to_string(),
                format!("{:.3}", v.rtt_ms),
                "out".to_string(),
                format!("{t:.3}"),
            ])
            .unwrap();
        }
        for &t in &v.rx_ms {
            tsv.row(&[
                client.to_string(),
                format!("{:.3}", v.rtt_ms),
                "in".to_string(),
                format!("{t:.3}"),
            ])
            .unwrap();
        }
    }

    // ---- shape checks ----
    // The observable of Fig. 4 is the gap between the end of the static
    // cluster and the beginning of the dynamic cluster (`Tdelta`), and
    // whether the dynamic burst still forms its own temporal cluster.
    let mut ok = true;
    eprintln!("client rows (RTT → clusters, Tdelta):");
    for (client, v, tl) in &views {
        eprintln!(
            "  client {client}: rtt {:.1} → {} payload clusters, Tdelta {:.1} ms",
            v.rtt_ms,
            v.payload_cluster_count(),
            tl.t_delta_ms(),
        );
    }
    ok &= check("five client rows produced", views.len() == 5);
    if views.len() == 5 {
        // Cluster membership of the boundary: at the smallest RTT the
        // first dynamic packet must *start* a cluster of its own; at the
        // largest RTT it must sit in the same cluster as the last static
        // packet (the bursts merged, "delivered back-to-back").
        let boundary_merged = |v: &TimelineView, tl: &Timeline| -> (bool, bool) {
            let t4 = tl.t4.saturating_since(tl.tb).as_millis_f64();
            let t5 = tl.t5.saturating_since(tl.tb).as_millis_f64();
            let eps = 0.05;
            let starts_own = v
                .rx_clusters
                .iter()
                .any(|c| (c.t_first - t5).abs() < eps && c.t_first > t4 + eps);
            let same_cluster = v.rx_clusters.iter().any(|c| {
                c.t_first <= t4 + eps
                    && t4 <= c.t_last + eps
                    && c.t_first <= t5 + eps
                    && t5 <= c.t_last + eps
            });
            (starts_own, same_cluster)
        };
        let (own_small, _) = boundary_merged(&views[0].1, &views[0].2);
        let (_, merged_large) = boundary_merged(&views[4].1, &views[4].2);
        if std::env::var("FECDN_DEBUG").is_ok() {
            let tl = &views[4].2;
            eprintln!(
                "debug largest row: t4={:.3} t5={:.3} clusters={:?}",
                tl.t4.saturating_since(tl.tb).as_millis_f64(),
                tl.t5.saturating_since(tl.tb).as_millis_f64(),
                views[4]
                    .1
                    .rx_clusters
                    .iter()
                    .map(|c| (c.t_first, c.t_last))
                    .collect::<Vec<_>>()
            );
        }
        ok &= check(
            "smallest-RTT row: dynamic burst forms its own cluster",
            own_small,
        );
        ok &= check(
            "largest-RTT row: static and dynamic merged into one cluster",
            merged_large,
        );
        let tdeltas: Vec<f64> = views.iter().map(|(_, _, tl)| tl.t_delta_ms()).collect();
        ok &= check(
            &format!("Tdelta shrinks with RTT: {tdeltas:?}"),
            tdeltas.windows(2).all(|w| w[1] <= w[0] + 20.0) && tdeltas[0] > tdeltas[4] + 50.0,
        );
        ok &= check(
            &format!("largest-RTT row Tdelta ≈ 0 (got {:.1})", tdeltas[4]),
            tdeltas[4] < 5.0,
        );
        ok &= check(
            "RTT rows span the paper's range (≈10 to ≈240 ms)",
            views[0].1.rtt_ms < 25.0 && views[4].1.rtt_ms > 180.0,
        );
    }
    finish(ok);
}
