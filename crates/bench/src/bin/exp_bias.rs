//! Extension — the PlanetLab vantage bias (Sec. 6 / reviewer #5).
//!
//! "A latency of 20ms even to Akamai is really low. DSL end-hosts would
//! have higher latency ... the latencies you found are certainly not
//! realistic" (review #5); the authors themselves note that "some Akamai
//! frontend servers are placed closer to University campus networks".
//!
//! This harness re-runs the Fig. 6 measurement from two populations —
//! the campus-biased PlanetLab-like one and a residential-heavy one —
//! and quantifies how much of the paper's headline "80 % within 20 ms"
//! is an artefact of where PlanetLab lived.
//!
//! Asserted:
//! * the PlanetLab population reproduces the paper's numbers;
//! * the residential population's within-20 ms fraction collapses (DSL
//!   interleaving alone adds ~28 ms);
//! * the *relative* finding survives: Bing-like FEs are still closer
//!   than Google-like ones at matched population — the paper's
//!   comparative claims are robust to the bias, its absolute ones are
//!   not.

use bench::{check, execute_stream, finish, seed_from_env};
use cdnsim::ServiceConfig;
use emulator::dataset_a::{DatasetA, KeywordPolicy};
use emulator::output::Tsv;
use emulator::{Campaign, Design, FoldSink, RunDescriptor, Scenario};
use inference::GroupMediansAcc;
use nettopo::vantage::{planetlab_like, VantageConfig};
use searchbe::keywords::KeywordCorpus;
use simcore::time::SimDuration;
use stats::Ecdf;

fn fig6_design() -> Design {
    Design::DatasetA(DatasetA {
        repeats: 4,
        spacing: SimDuration::from_secs(8),
        keywords: KeywordPolicy::Fixed(0),
    })
}

fn rtts(acc: &GroupMediansAcc) -> Ecdf {
    let per_node: Vec<f64> = acc.finish().iter().map(|g| g.rtt_ms).collect();
    Ecdf::new(&per_node)
}

fn scenario_with(seed: u64, cfg: VantageConfig) -> Scenario {
    Scenario {
        seed,
        vantages: planetlab_like(seed, &cfg),
        corpus: KeywordCorpus::generate(seed, 2_000, 0.5),
    }
}

fn main() {
    let seed = seed_from_env();
    let campus = scenario_with(
        seed,
        VantageConfig {
            count: 60,
            ..VantageConfig::default()
        },
    );
    // A residential-heavy population (the "real users" reviewers asked
    // about): 85% DSL/cable, 10% wireless.
    let residential = scenario_with(
        seed ^ 0x0dd,
        VantageConfig {
            count: 60,
            residential_frac: 0.85,
            wireless_frac: 0.10,
            scatter_miles: 25.0,
        },
    );

    // One campaign per vantage population (a campaign shares one
    // scenario); each carries both service configs.
    let mut rows = Vec::new();
    for (pop_name, sc) in [("planetlab", &campus), ("residential", &residential)] {
        let mut c = Campaign::new(sc.clone());
        c.push("bing-like", ServiceConfig::bing_like(seed), fig6_design());
        c.push(
            "google-like",
            ServiceConfig::google_like(seed),
            fig6_design(),
        );
        let report = execute_stream(&c, &|_: &RunDescriptor| {
            FoldSink::new(GroupMediansAcc::exact(), |a: &mut GroupMediansAcc, q| {
                a.push(q.client as u64, &q.params)
            })
        });
        for svc_name in ["bing-like", "google-like"] {
            let e = rtts(report.output(svc_name));
            rows.push((
                pop_name,
                svc_name,
                e.fraction_le(20.0),
                e.quantile(0.5).unwrap(),
            ));
        }
    }

    let stdout = std::io::stdout();
    let mut tsv = Tsv::new(
        stdout.lock(),
        &["population", "service", "frac_below_20ms", "median_rtt_ms"],
    )
    .unwrap();
    for (pop, svc, frac, med) in &rows {
        tsv.row(&[
            pop.to_string(),
            svc.to_string(),
            format!("{frac:.3}"),
            format!("{med:.2}"),
        ])
        .unwrap();
        eprintln!(
            "{pop:<12} {svc:<12} {:>5.0}% below 20 ms, median {med:>6.1} ms",
            frac * 100.0
        );
    }

    let get = |pop: &str, svc: &str| {
        rows.iter()
            .find(|(p, s, _, _)| *p == pop && *s == svc)
            .map(|(_, _, f, m)| (*f, *m))
            .unwrap()
    };
    let (pl_bing, _) = get("planetlab", "bing-like");
    let (pl_google, _) = get("planetlab", "google-like");
    let (res_bing, res_bing_med) = get("residential", "bing-like");
    let (res_google, res_google_med) = get("residential", "google-like");

    let mut ok = true;
    ok &= check(
        &format!(
            "PlanetLab population reproduces the paper ({:.0}% vs {:.0}%)",
            pl_bing * 100.0,
            pl_google * 100.0
        ),
        pl_bing >= 0.8 && pl_bing > pl_google + 0.1,
    );
    ok &= check(
        &format!(
            "residential within-20ms fraction collapses ({:.0}%, {:.0}%)",
            res_bing * 100.0,
            res_google * 100.0
        ),
        res_bing < 0.35 && res_google < 0.35,
    );
    ok &= check(
        &format!(
            "the comparative claim survives: bing-like still closer ({:.1} < {:.1} ms median)",
            res_bing_med, res_google_med
        ),
        res_bing_med < res_google_med,
    );
    finish(ok);
}
