//! Extension — the counterfactual the paper could only speculate about.
//!
//! Sec. 4.2 attributes Bing's worse, noisier performance to *two*
//! confounded causes: the shared Akamai edge (FE tenancy) and the
//! slower, public-transit-connected back-end. A measurement study cannot
//! separate them; a simulator can. Four hybrid deployments:
//!
//! |                      | google backend | bing backend |
//! |----------------------|----------------|--------------|
//! | dedicated sparse FEs | google-like    | hybrid A     |
//! | shared dense FEs     | hybrid B       | bing-like    |
//!
//! Asserted:
//! * the **back-end axis dominates `Tdynamic`** (swapping backends moves
//!   medians by hundreds of ms; swapping fleets barely moves them);
//! * the **fleet axis dominates `Tstatic`'s FE-attributable part**;
//! * hybrid B (google backend on Akamai's shared edge) still beats
//!   bing-like — confirming the paper's conclusion that optimizing the
//!   fetch path, not FE placement, was Bing's real lever.

use bench::{campaign, check, dataset_a_repeats, execute_stream, finish, seed_from_env, Scale};
use cdnsim::ServiceConfig;
use emulator::dataset_a::{DatasetA, KeywordPolicy};
use emulator::output::Tsv;
use emulator::report::CampaignSummaryAcc;
use emulator::{Design, FoldSink, RunDescriptor};
use simcore::time::SimDuration;
use stats::QuantileAcc;

fn hybrid_a(seed: u64) -> ServiceConfig {
    // Bing's back-end behind Google's dedicated sparse fleet.
    let g = ServiceConfig::google_like(seed);
    let b = ServiceConfig::bing_like(seed);
    ServiceConfig {
        name: "hybridA-sparse+bingBE".into(),
        backend: b.backend,
        composer: b.composer,
        febe_profile: b.febe_profile,
        fe_be_tcp: b.fe_be_tcp,
        be_sites: b.be_sites,
        ..g
    }
}

fn hybrid_b(seed: u64) -> ServiceConfig {
    // Google's back-end behind Akamai's dense shared fleet.
    let g = ServiceConfig::google_like(seed);
    let b = ServiceConfig::bing_like(seed);
    ServiceConfig {
        name: "hybridB-dense+googleBE".into(),
        backend: g.backend,
        composer: g.composer,
        febe_profile: g.febe_profile,
        fe_be_tcp: g.fe_be_tcp,
        be_sites: g.be_sites,
        ..b
    }
}

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let repeats = dataset_a_repeats(scale);

    let deployments = [
        ("google-like", ServiceConfig::google_like(seed)),
        ("hybridA (sparse FEs + bing BE)", hybrid_a(seed)),
        ("hybridB (dense FEs + google BE)", hybrid_b(seed)),
        ("bing-like", ServiceConfig::bing_like(seed)),
    ];
    let design = Design::DatasetA(DatasetA {
        repeats,
        spacing: SimDuration::from_secs(10),
        keywords: KeywordPolicy::Fixed(0),
    });
    let mut c = campaign(scale, seed);
    for (label, cfg) in &deployments {
        c.push(*label, cfg.clone(), design.clone());
    }
    // Per run: the online campaign summary plus the FE-attributable
    // Tstatic constant (Tstatic − RTT) as a quantile accumulator.
    let report = execute_stream(&c, &|d: &RunDescriptor| {
        FoldSink::new(
            (CampaignSummaryAcc::new(&d.label), QuantileAcc::exact()),
            |s: &mut (CampaignSummaryAcc, QuantileAcc), q| {
                s.0.push(q);
                s.1.push((q.params.t_static_ms - q.params.rtt_ms).max(0.0));
            },
        )
    });

    let mut rows = Vec::new();
    for (label, _) in deployments {
        let (summary_acc, fe_const) = report.output(label);
        let summary = summary_acc.finish().unwrap();
        rows.push((label, summary, fe_const.median().unwrap()));
    }

    let stdout = std::io::stdout();
    let mut tsv = Tsv::new(
        stdout.lock(),
        &[
            "deployment",
            "median_t_dynamic_ms",
            "median_fe_constant_ms",
            "median_overall_ms",
        ],
    )
    .unwrap();
    for (label, s, fe_const) in &rows {
        tsv.row(&[
            label.to_string(),
            format!("{:.3}", s.t_dynamic.median),
            format!("{fe_const:.3}"),
            format!("{:.3}", s.overall.median),
        ])
        .unwrap();
        eprintln!(
            "{label:<34} Tdynamic {:>7.1}  FE-const {:>6.1}  overall {:>7.1}",
            s.t_dynamic.median, fe_const, s.overall.median
        );
    }

    let td = |i: usize| rows[i].1.t_dynamic.median;
    let fc = |i: usize| rows[i].2;
    let ov = |i: usize| rows[i].1.overall.median;
    // Indices: 0 google, 1 hybridA, 2 hybridB, 3 bing.
    let mut ok = true;
    let be_effect = ((td(1) - td(0)) + (td(3) - td(2))) / 2.0;
    let fleet_effect = ((td(2) - td(0)) + (td(3) - td(1))) / 2.0;
    eprintln!(
        "Tdynamic decomposition: backend axis {be_effect:.0} ms, fleet axis {fleet_effect:.0} ms"
    );
    // The fleet axis is not pure tenancy: a dense edge also *serves
    // remote metros* whose nearest BE is an ocean away, so geography
    // leaks into the fetch term. The back-end axis must still clearly
    // dominate (≥ 2×).
    ok &= check(
        "the back-end axis clearly dominates Tdynamic (≥2x the fleet axis)",
        be_effect > 2.0 * fleet_effect.abs().max(1.0),
    );
    let fe_fleet_effect = ((fc(2) - fc(0)) + (fc(3) - fc(1))) / 2.0;
    let fe_be_effect = ((fc(1) - fc(0)) + (fc(3) - fc(2))) / 2.0;
    eprintln!("FE-constant decomposition: fleet axis {fe_fleet_effect:.1} ms, backend axis {fe_be_effect:.1} ms");
    ok &= check(
        "the fleet axis dominates the FE-side constant",
        fe_fleet_effect > 3.0 * fe_be_effect.abs().max(0.2),
    );
    ok &= check(
        &format!(
            "hybridB (fast backend on shared edge) beats bing-like ({:.0} < {:.0} ms overall)",
            ov(2),
            ov(3)
        ),
        ov(2) < ov(3),
    );
    finish(ok);
}
