//! Sec. 6 — the loss/placement trade-off.
//!
//! "In an environment where the loss rates are high (e.g., in a wireless
//! network), placing FEs closer to users in fact may significantly
//! improve the user-perceived end-to-end performance" — because loss
//! recovery (fast retransmit, RTO ack-clocking) costs time proportional
//! to the RTT to the retransmitting endpoint.
//!
//! Design: one client is served once by a *near* FE and once by a *far*
//! FE, under a wireless-like access path whose loss rate sweeps from 0
//! to 5%. The observable is the median overall delay.
//!
//! Asserted:
//! * at zero loss and small fetch-bound workloads, proximity buys little
//!   (the paper's threshold argument);
//! * the near-FE advantage grows materially with the loss rate;
//! * all transfers complete even at 5% loss (TCP recovery works).

use bench::{campaign, check, execute_stream, finish, scenario, seed_from_env, Scale};
use cdnsim::{QuerySpec, ServiceConfig};
use emulator::output::Tsv;
use emulator::{Design, FoldSink, RunDescriptor};
use nettopo::path::PathProfile;
use simcore::time::SimDuration;
use stats::QuantileAcc;

fn fixed_fe_design(client: usize, fe: usize, repeats: u64) -> Design {
    Design::custom(move |sim| {
        sim.with(|w, net| {
            let be = w.be_of_fe(fe);
            w.prewarm(net, fe, be, 2);
            for r in 0..repeats {
                w.schedule_query(
                    net,
                    SimDuration::from_millis(3_000 + r * 8_000),
                    QuerySpec {
                        client,
                        keyword: 0,
                        fixed_fe: Some(fe),
                        instant_followup: false,
                    },
                );
            }
        });
    })
}

fn median_overall(acc: &QuantileAcc) -> (f64, usize) {
    (acc.median().unwrap_or(f64::NAN), acc.count() as usize)
}

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let sc = scenario(scale, seed);
    // Loss recovery is a rare event: at 5% loss only about half the
    // repeats see one at all, so the median needs real sample sizes.
    // The sharded runner makes the larger sweep affordable even at quick
    // scale.
    let repeats = match scale {
        Scale::Quick => 120,
        Scale::Paper => 240,
    };
    let losses = [0.0, 0.005, 0.01, 0.02, 0.05];

    // Pick the client and its near/far FE pair once, from the clean
    // config.
    let base = ServiceConfig::google_like(seed);
    let mut sim = sc.build_sim(base.clone());
    let (client, near_fe, far_fe) = sim.with(|w, _| {
        let client = 0usize;
        let near = w.default_fe(client);
        // "Far" = an FE near the fetch-time threshold (~60 ms): below
        // it, the paper's model says proximity buys almost nothing on a
        // clean path — which is precisely what loss then overturns.
        let far = (0..w.fe_count())
            .min_by(|&a, &b| {
                let ea = (w.client_fe_rtt_ms(client, a) - 60.0).abs();
                let eb = (w.client_fe_rtt_ms(client, b) - 60.0).abs();
                ea.partial_cmp(&eb).unwrap()
            })
            .unwrap();
        (client, near, far)
    });
    let (near_rtt, far_rtt) = sim.with(|w, _| {
        (
            w.client_fe_rtt_ms(0, near_fe),
            w.client_fe_rtt_ms(0, far_fe),
        )
    });
    drop(sim);
    eprintln!(
        "client 0: near FE {near_fe} (rtt {near_rtt:.1} ms), far FE {far_fe} (rtt {far_rtt:.1} ms)"
    );

    let stdout = std::io::stdout();
    let mut tsv = Tsv::new(
        stdout.lock(),
        &[
            "loss",
            "near_overall_ms",
            "far_overall_ms",
            "far_minus_near_ms",
            "completed",
        ],
    )
    .unwrap();

    // All ten worlds (5 loss rates × near/far FE) as one campaign. Every
    // arm shares one world seed (common random numbers): the near/far
    // comparison and the cross-loss trend then see the same jitter and
    // loss-draw sequence, which is what makes the medians of a 30-repeat
    // sweep comparable at all.
    let mut c = campaign(scale, seed);
    let mut shared_seed = None;
    for &loss in &losses {
        let mut profile = PathProfile::wireless_access();
        profile.loss = loss;
        let cfg = base.clone().with_access_override(profile);
        for (arm, fe) in [("near", near_fe), ("far", far_fe)] {
            let d = c.push(
                format!("loss{loss}/{arm}"),
                cfg.clone(),
                fixed_fe_design(client, fe, repeats),
            );
            match shared_seed {
                None => shared_seed = Some(d.seed),
                Some(s) => d.seed = s,
            }
        }
    }
    let report = execute_stream(&c, &|_: &RunDescriptor| {
        FoldSink::new(QuantileAcc::exact(), |acc: &mut QuantileAcc, q| {
            acc.push(q.params.overall_ms)
        })
    });

    let mut advantages = Vec::new();
    let mut all_completed = true;
    for &loss in &losses {
        let (near_ms, n1) = median_overall(report.output(&format!("loss{loss}/near")));
        let (far_ms, n2) = median_overall(report.output(&format!("loss{loss}/far")));
        all_completed &= n1 == repeats as usize && n2 == repeats as usize;
        let adv = far_ms - near_ms;
        advantages.push(adv);
        tsv.row(&[
            format!("{loss:.3}"),
            format!("{near_ms:.3}"),
            format!("{far_ms:.3}"),
            format!("{adv:.3}"),
            format!("{}", n1 + n2),
        ])
        .unwrap();
        eprintln!(
            "loss {:>5.1}%: near {near_ms:>7.1} ms, far {far_ms:>7.1} ms, advantage {adv:>7.1} ms",
            loss * 100.0
        );
    }

    let mut ok = true;
    ok &= check("all transfers complete at every loss rate", all_completed);
    ok &= check(
        &format!(
            "near-FE advantage grows with loss ({:.0} ms at 0% → {:.0} ms at 5%)",
            advantages[0],
            advantages[advantages.len() - 1]
        ),
        advantages[advantages.len() - 1] > advantages[0] + 75.0,
    );
    // The relative-growth threshold is calibrated against the 120-repeat
    // estimate (~1.5x at the default seed); the earlier 30-repeat sweeps
    // scattered between 1.2x and 2.0x on the same configuration.
    ok &= check(
        "advantage at high loss at least 1.3x the loss-free advantage",
        advantages[advantages.len() - 1] > 1.3 * advantages[0].max(1.0),
    );
    finish(ok);
}
