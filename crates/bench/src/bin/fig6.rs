//! Fig. 6 — CDF of the RTT between each vantage point and its default
//! (DNS-resolved) FE, for both services.
//!
//! Paper numbers: "more than 80% of PlanetLab nodes observe an RTT of
//! less than 20ms for reaching the Bing FE servers. On the other hand,
//! only 60% of PlanetLab nodes observe this latency for Google."
//!
//! Shapes asserted:
//! * the Bing-like (dense Akamai-style) CDF dominates the Google-like
//!   one (closer at every quantile);
//! * ≥ 80 % of vantages within 20 ms of a Bing-like FE;
//! * the Google-like fraction is materially lower (paper: ~60 %).

use bench::{campaign, check, dataset_a_repeats, execute_stream, finish, seed_from_env, Scale};
use cdnsim::ServiceConfig;
use emulator::dataset_a::{DatasetA, KeywordPolicy};
use emulator::output::Tsv;
use emulator::{Design, FoldSink, RunDescriptor};
use inference::GroupMediansAcc;
use simcore::time::SimDuration;
use stats::Ecdf;

fn measured_rtts(acc: &GroupMediansAcc) -> Vec<f64> {
    // Measured (handshake-estimated) RTTs, one median per vantage —
    // exactly what the paper plots.
    acc.finish().iter().map(|g| g.rtt_ms).collect()
}

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let repeats = dataset_a_repeats(scale).min(10);

    let design = Design::DatasetA(DatasetA {
        repeats,
        spacing: SimDuration::from_secs(10),
        keywords: KeywordPolicy::Fixed(0),
    });
    let mut c = campaign(scale, seed);
    c.push("bing-like", ServiceConfig::bing_like(seed), design.clone());
    c.push("google-like", ServiceConfig::google_like(seed), design);
    let report = execute_stream(&c, &|_: &RunDescriptor| {
        FoldSink::new(GroupMediansAcc::exact(), |a: &mut GroupMediansAcc, q| {
            a.push(q.client as u64, &q.params)
        })
    });

    let bing = measured_rtts(report.output("bing-like"));
    let google = measured_rtts(report.output("google-like"));
    let bing_cdf = Ecdf::new(&bing);
    let google_cdf = Ecdf::new(&google);

    // ---- TSV: sampled CDF curves ----
    let stdout = std::io::stdout();
    let mut tsv = Tsv::new(stdout.lock(), &["service", "rtt_ms", "cdf"]).unwrap();
    for (name, cdf) in [("bing-like", &bing_cdf), ("google-like", &google_cdf)] {
        for (x, y) in cdf.sampled_curve(100) {
            tsv.row(&[name.to_string(), format!("{x:.3}"), format!("{y:.4}")])
                .unwrap();
        }
    }

    // ---- shape checks ----
    let b20 = bing_cdf.fraction_le(20.0);
    let g20 = google_cdf.fraction_le(20.0);
    eprintln!(
        "fraction of vantages with RTT < 20 ms: bing-like {:.0}%, google-like {:.0}% (paper: >80% vs ~60%)",
        b20 * 100.0,
        g20 * 100.0
    );
    let mut ok = true;
    ok &= check(
        &format!("bing-like ≥ 80% below 20 ms (got {:.0}%)", b20 * 100.0),
        b20 >= 0.80,
    );
    ok &= check(
        &format!(
            "google-like materially lower (got {:.0}%, want 45-75%)",
            g20 * 100.0
        ),
        (0.45..=0.75).contains(&g20),
    );
    ok &= check(
        "bing-like closer than google-like at 20 ms",
        b20 > g20 + 0.10,
    );
    // Stochastic dominance at several quantiles.
    let dominated = [0.25, 0.5, 0.75, 0.9]
        .iter()
        .all(|&q| bing_cdf.quantile(q).unwrap() <= google_cdf.quantile(q).unwrap());
    ok &= check("bing-like CDF dominates google-like CDF", dominated);
    finish(ok);
}
