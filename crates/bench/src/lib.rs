//! # bench — figure-regeneration harnesses
//!
//! One binary per evaluation artefact of the paper:
//!
//! | binary        | paper artefact                                            |
//! |---------------|-----------------------------------------------------------|
//! | `fig3`        | Fig. 3 — `Tstatic`/`Tdynamic` per keyword class, moving median |
//! | `fig4`        | Fig. 4 — packet-event timelines, temporal clusters         |
//! | `fig5`        | Fig. 5 — `Tstatic`/`Tdynamic`/`Tdelta` vs RTT, fixed FEs   |
//! | `fig6`        | Fig. 6 — RTT CDF to default FEs                            |
//! | `fig7`        | Fig. 7 — default-FE `Tstatic`/`Tdynamic` scatter           |
//! | `fig8`        | Fig. 8 — per-vantage overall-delay box plots               |
//! | `fig9`        | Fig. 9 — `Tdynamic` vs FE↔BE distance regression           |
//! | `exp_caching` | Sec. 3 — do FEs cache search results?                      |
//! | `exp_failover`| robustness — BE outage, failover, cold-reconnect recovery  |
//! | `exp_instant` | Sec. 6 — search-as-you-type                                |
//! | `exp_loss`    | Sec. 6 — lossy-last-hop placement trade-off                |
//! | `abl_split`   | ablation — split TCP on/off                                |
//! | `abl_cache`   | ablation — FE static cache on/off                          |
//! | `abl_iw`      | ablation — initial-window sweep moves the RTT threshold    |
//!
//! Each binary prints TSV (the plotted series) to stdout and a
//! human-readable summary with the paper-shape checks to stderr. Scale
//! is controlled by `FECDN_SCALE` (`quick` default, `paper` for
//! full-size runs) and the seed by `FECDN_SEED`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use emulator::{Campaign, CampaignReport, QuerySink, Scenario, SinkFactory, StreamReport};

/// Run scale for the harness binaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Reduced vantage/repeat counts: seconds of wall time, same shapes.
    Quick,
    /// Paper-scale counts (230 vantages, 720 repeats where applicable).
    Paper,
}

impl Scale {
    /// Reads `FECDN_SCALE` (`quick` | `paper`), defaulting to quick.
    pub fn from_env() -> Scale {
        match std::env::var("FECDN_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            _ => Scale::Quick,
        }
    }
}

/// Reads `FECDN_SEED`, defaulting to 42.
pub fn seed_from_env() -> u64 {
    std::env::var("FECDN_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Builds the scenario for a scale.
pub fn scenario(scale: Scale, seed: u64) -> Scenario {
    match scale {
        Scale::Quick => Scenario::with_size(seed, 60, 4_000),
        Scale::Paper => Scenario::paper_scale(seed),
    }
}

/// Dataset B repeats for a scale (paper: 720).
pub fn dataset_b_repeats(scale: Scale) -> u64 {
    match scale {
        Scale::Quick => 12,
        Scale::Paper => 720,
    }
}

/// Dataset A repeats for a scale.
pub fn dataset_a_repeats(scale: Scale) -> u64 {
    match scale {
        Scale::Quick => 10,
        Scale::Paper => 60,
    }
}

/// Fig. 3 sample count per keyword (paper: 500).
pub fn fig3_samples(scale: Scale) -> u64 {
    match scale {
        Scale::Quick => 120,
        Scale::Paper => 500,
    }
}

/// An empty campaign over the scale's scenario — harness binaries push
/// their runs onto this and execute once.
pub fn campaign(scale: Scale, seed: u64) -> Campaign {
    Campaign::new(scenario(scale, seed))
}

/// Writes the merged metrics registry as JSON to the path named by
/// `FECDN_METRICS_JSON`, when set — the `BENCH_metrics.json` artifact
/// CI's schema check validates. Write failures are reported on stderr
/// but never fail the run: telemetry must not break a figure build.
fn write_metrics_json(merged: &emulator::MetricsRegistry) {
    if let Ok(path) = std::env::var("FECDN_METRICS_JSON") {
        if path.is_empty() {
            return;
        }
        if let Err(e) = std::fs::write(&path, merged.to_json()) {
            eprintln!("warning: could not write metrics JSON to {path}: {e}");
        }
    }
}

/// Executes a campaign with the `FECDN_THREADS` worker count and prints
/// the per-run wall-clock/queue stats plus the metrics.tsv telemetry
/// document to stderr, buffered and emitted in one write so per-run
/// lines appear in descriptor order (stdout stays reserved for the
/// byte-stable TSV). With `FECDN_METRICS_JSON=<path>` set, also writes
/// the merged registry as JSON.
pub fn execute(campaign: &Campaign) -> CampaignReport {
    let report = campaign.execute();
    eprint!("{}", report.stderr_report());
    write_metrics_json(&report.merged_metrics());
    report
}

/// Streaming counterpart of [`execute`]: runs the campaign with one
/// sink per run from `factory`, folding queries as they complete
/// (memory stays bounded by reducer state), and prints the same stderr
/// stats-plus-metrics report. stdout stays reserved for the byte-stable
/// TSV.
pub fn execute_stream<F>(
    campaign: &Campaign,
    factory: &F,
) -> StreamReport<<F::Sink as QuerySink>::Output>
where
    F: SinkFactory,
    <F::Sink as QuerySink>::Output: Send,
{
    let report = campaign.execute_stream(factory);
    eprint!("{}", report.stderr_report());
    write_metrics_json(&report.merged_metrics());
    report
}

/// A headline-shape check: prints PASS/FAIL to stderr and returns the
/// outcome so binaries can exit non-zero on violated shapes.
pub fn check(label: &str, ok: bool) -> bool {
    eprintln!("  [{}] {}", if ok { "PASS" } else { "FAIL" }, label);
    ok
}

/// Exits with status 1 if any check failed.
pub fn finish(all_ok: bool) {
    if !all_ok {
        eprintln!("one or more paper-shape checks FAILED");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_defaults_quick() {
        // Not setting the env var in-process: default path.
        assert_eq!(Scale::from_env(), Scale::Quick);
    }

    #[test]
    fn scenario_sizes() {
        let q = scenario(Scale::Quick, 1);
        assert_eq!(q.vantage_count(), 60);
        assert_eq!(dataset_b_repeats(Scale::Paper), 720);
        assert_eq!(fig3_samples(Scale::Paper), 500);
    }

    #[test]
    fn check_reports() {
        assert!(check("always true", true));
        assert!(!check("always false", false));
    }
}
