//! Component micro-benchmarks: the simulator's hot paths and the
//! analysis primitives.

use criterion::{criterion_group, criterion_main, Criterion};
use simcore::dist::{Dist, Sampler};
use simcore::queue::EventQueue;
use simcore::rng::Rng;
use simcore::time::SimTime;
use std::hint::black_box;
use tcpsim::{App, ConnId, DeliveredSpan, End, Marker, Net, NodeId, PathParams, Sim, TcpOptions};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule_at(SimTime::from_nanos((i * 7919) % 100_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
}

fn bench_rng_and_dists(c: &mut Criterion) {
    c.bench_function("rng_next_f64_100k", |b| {
        let mut rng = Rng::from_seed(1);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..100_000 {
                acc += rng.next_f64();
            }
            black_box(acc)
        })
    });
    c.bench_function("lognormal_sample_100k", |b| {
        let mut rng = Rng::from_seed(2);
        let d = Dist::lognormal_median_spread(30.0, 1.4);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..100_000 {
                acc += d.sample(&mut rng);
            }
            black_box(acc)
        })
    });
}

/// A bulk transfer app: B sends `size` bytes to A on connect.
struct Bulk {
    size: u64,
    got: u64,
}
impl App for Bulk {
    fn on_established(&mut self, net: &mut Net, conn: ConnId, end: End) {
        if end == End::B {
            net.send(conn, End::B, self.size, Marker::Other, 0);
        }
    }
    fn on_data(&mut self, _net: &mut Net, _conn: ConnId, end: End, spans: &[DeliveredSpan]) {
        if end == End::A {
            self.got += spans.iter().map(|s| s.len as u64).sum::<u64>();
        }
    }
}

fn bench_tcp_transfer(c: &mut Criterion) {
    c.bench_function("tcp_transfer_1mb_50ms_rtt", |b| {
        b.iter(|| {
            let mut sim = Sim::new(
                1,
                Bulk {
                    size: 1_000_000,
                    got: 0,
                },
            );
            sim.net().open(
                NodeId(1),
                NodeId(2),
                PathParams::ideal(50.0),
                TcpOptions::default(),
                TcpOptions::default(),
                1,
            );
            sim.run();
            black_box(sim.app().got)
        })
    });
    c.bench_function("tcp_transfer_1mb_lossy", |b| {
        b.iter(|| {
            let mut sim = Sim::new(
                2,
                Bulk {
                    size: 1_000_000,
                    got: 0,
                },
            );
            sim.net().open(
                NodeId(1),
                NodeId(2),
                PathParams::lossy(50.0, 0.01),
                TcpOptions::default(),
                TcpOptions::default(),
                1,
            );
            sim.run();
            black_box(sim.app().got)
        })
    });
}

fn bench_stats_primitives(c: &mut Criterion) {
    let mut rng = Rng::from_seed(3);
    let xs: Vec<f64> = (0..10_000).map(|_| rng.next_f64() * 100.0).collect();
    let ys: Vec<f64> = (0..10_000).map(|_| rng.next_f64() * 100.0).collect();
    c.bench_function("moving_median_w10_10k", |b| {
        b.iter(|| black_box(stats::moving_median(&xs, 10)))
    });
    c.bench_function("ecdf_build_query_10k", |b| {
        b.iter(|| {
            let e = stats::Ecdf::new(&xs);
            black_box(e.fraction_le(50.0))
        })
    });
    c.bench_function("ks_distance_10k", |b| {
        b.iter(|| black_box(stats::ks_distance(&xs, &ys)))
    });
    let small: Vec<f64> = xs.iter().take(400).copied().collect();
    let small_y: Vec<f64> = ys.iter().take(400).copied().collect();
    c.bench_function("theil_sen_400", |b| {
        b.iter(|| black_box(stats::theil_sen(&small, &small_y)))
    });
    c.bench_function("ols_10k", |b| b.iter(|| black_box(stats::ols(&xs, &ys))));
}

fn bench_corpus(c: &mut Criterion) {
    c.bench_function("keyword_corpus_40k", |b| {
        b.iter(|| black_box(searchbe::KeywordCorpus::generate(5, 40_000, 0.5).len()))
    });
}

fn configured() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = micro;
    config = configured();
    targets =
        bench_event_queue,
        bench_rng_and_dists,
        bench_tcp_transfer,
        bench_stats_primitives,
        bench_corpus,
}
criterion_main!(micro);
