//! Criterion benches: one group per paper figure/experiment, each
//! running a miniaturised version of the corresponding harness so the
//! cost of regenerating every evaluation artefact is tracked over time.
//!
//! The full-size regenerations live in the `fig*`/`exp_*`/`abl_*`
//! binaries; these benches exist to (a) keep every pipeline exercised
//! under `cargo bench` and (b) catch performance regressions in the
//! simulator core, which dominates all of them.

use capture::Classifier;
use cdnsim::{QuerySpec, ServiceConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use emulator::dataset_a::{DatasetA, KeywordPolicy};
use emulator::dataset_b::DatasetB;
use emulator::runner::run_collect;
use emulator::Scenario;
use simcore::time::SimDuration;
use std::hint::black_box;

fn tiny_scenario() -> Scenario {
    Scenario::with_size(7, 10, 200)
}

fn bench_fig3_keyword_effect(c: &mut Criterion) {
    let sc = tiny_scenario();
    c.bench_function("fig3_keyword_effect", |b| {
        b.iter(|| {
            let mut sim = sc.build_sim(ServiceConfig::bing_like(7));
            let picks: [u64; 4] = sim.with(|w, _| {
                let p = w.corpus().fig3_picks();
                [p[0].id, p[1].id, p[2].id, p[3].id]
            });
            sim.with(|w, net| {
                let fe = w.default_fe(0);
                for (ki, &kw) in picks.iter().enumerate() {
                    for r in 0..3u64 {
                        w.schedule_query(
                            net,
                            SimDuration::from_millis(1 + r * 10_000 + ki as u64 * 2_500),
                            QuerySpec {
                                client: 0,
                                keyword: kw,
                                fixed_fe: Some(fe),
                                instant_followup: false,
                            },
                        );
                    }
                }
            });
            black_box(run_collect(&mut sim, &Classifier::ByMarker).len())
        })
    });
}

fn bench_fig4_timelines(c: &mut Criterion) {
    let sc = tiny_scenario();
    c.bench_function("fig4_timelines", |b| {
        b.iter(|| {
            let mut sim = sc.build_sim(ServiceConfig::bing_like(7));
            sim.with(|w, net| {
                let fe = w.default_fe(0);
                for client in 0..5usize {
                    w.schedule_query(
                        net,
                        SimDuration::from_millis(1 + client as u64 * 4_000),
                        QuerySpec {
                            client,
                            keyword: 0,
                            fixed_fe: Some(fe),
                            instant_followup: false,
                        },
                    );
                }
            });
            let mut views = 0usize;
            let _ = emulator::runner::run_collect_with(&mut sim, &Classifier::ByMarker, |cq| {
                let node = cdnsim::ServiceWorld::client_node(cq.client);
                if capture::cluster_view::TimelineView::build(&cq.trace, node).is_ok() {
                    views += 1;
                }
            });
            black_box(views)
        })
    });
}

fn bench_fig5_rtt_sweep(c: &mut Criterion) {
    let sc = tiny_scenario();
    c.bench_function("fig5_rtt_sweep", |b| {
        b.iter(|| {
            let out = DatasetB::against(0).with_repeats(2).run(
                &sc,
                ServiceConfig::google_like(7),
                &Classifier::ByMarker,
            );
            black_box(out.len())
        })
    });
}

fn bench_fig6_rtt_cdf(c: &mut Criterion) {
    let sc = tiny_scenario();
    c.bench_function("fig6_rtt_cdf", |b| {
        b.iter(|| {
            let d = DatasetA {
                repeats: 2,
                spacing: SimDuration::from_secs(5),
                keywords: KeywordPolicy::Fixed(0),
            };
            let out = d.run(&sc, ServiceConfig::bing_like(7), &Classifier::ByMarker);
            let rtts: Vec<f64> = out.iter().map(|q| q.params.rtt_ms).collect();
            black_box(stats::Ecdf::new(&rtts).fraction_le(20.0))
        })
    });
}

fn bench_fig7_default_fe(c: &mut Criterion) {
    let sc = tiny_scenario();
    c.bench_function("fig7_default_fe", |b| {
        b.iter(|| {
            let d = DatasetA {
                repeats: 3,
                spacing: SimDuration::from_secs(5),
                keywords: KeywordPolicy::Fixed(0),
            };
            let out = d.run(&sc, ServiceConfig::google_like(7), &Classifier::ByMarker);
            let samples: Vec<(u64, inference::QueryParams)> =
                out.iter().map(|q| (q.client as u64, q.params)).collect();
            black_box(inference::per_group_medians(&samples).len())
        })
    });
}

fn bench_fig8_overall_delay(c: &mut Criterion) {
    let sc = tiny_scenario();
    c.bench_function("fig8_overall_delay", |b| {
        b.iter(|| {
            let d = DatasetA {
                repeats: 4,
                spacing: SimDuration::from_secs(5),
                keywords: KeywordPolicy::Fixed(0),
            };
            let out = d.run(&sc, ServiceConfig::bing_like(7), &Classifier::ByMarker);
            let overall: Vec<f64> = out.iter().map(|q| q.params.overall_ms).collect();
            black_box(stats::BoxSummary::of(&overall))
        })
    });
}

fn bench_fig9_factoring(c: &mut Criterion) {
    let sc = tiny_scenario();
    c.bench_function("fig9_factoring", |b| {
        b.iter(|| {
            let out = DatasetB::against(0).with_repeats(4).run(
                &sc,
                ServiceConfig::google_like(7),
                &Classifier::ByMarker,
            );
            let points: Vec<(f64, f64)> = out
                .iter()
                .map(|q| (q.dist_fe_be_miles, q.params.t_dynamic_ms))
                .collect();
            black_box(inference::factoring::factor_fetch_time(&points))
        })
    });
}

fn bench_exp_caching(c: &mut Criterion) {
    let sc = tiny_scenario();
    c.bench_function("exp_caching", |b| {
        b.iter(|| {
            let probe = emulator::caching_probe::CachingProbeRun {
                fe: 0,
                repeats_per_client: 2,
                spacing: SimDuration::from_secs(3),
                max_rtt_ms: 1_000.0,
            };
            black_box(probe.run(&sc, ServiceConfig::google_like(7)).is_some())
        })
    });
}

fn bench_exp_instant(c: &mut Criterion) {
    let sc = tiny_scenario();
    c.bench_function("exp_instant", |b| {
        b.iter(|| {
            let run = emulator::instant::InstantRun {
                clients: vec![0, 1],
                keyword: 3,
                min_prefix: 3,
            };
            black_box(run.run(&sc, ServiceConfig::google_like(7)).len())
        })
    });
}

fn bench_exp_loss(c: &mut Criterion) {
    let sc = tiny_scenario();
    c.bench_function("exp_loss_tradeoff", |b| {
        b.iter(|| {
            let mut profile = nettopo::path::PathProfile::wireless_access();
            profile.loss = 0.02;
            let cfg = ServiceConfig::google_like(7).with_access_override(profile);
            let mut sim = sc.build_sim(cfg);
            sim.with(|w, net| {
                for r in 0..4u64 {
                    w.schedule_query(
                        net,
                        SimDuration::from_millis(1 + r * 5_000),
                        QuerySpec {
                            client: 0,
                            keyword: 0,
                            fixed_fe: None,
                            instant_followup: false,
                        },
                    );
                }
            });
            black_box(run_collect(&mut sim, &Classifier::ByMarker).len())
        })
    });
}

fn bench_ablations(c: &mut Criterion) {
    let sc = tiny_scenario();
    let mut group = c.benchmark_group("ablations");
    for (name, cfg) in [
        (
            "abl_split_tcp",
            ServiceConfig::google_like(7).without_split_tcp(),
        ),
        (
            "abl_static_cache",
            ServiceConfig::bing_like(7).without_static_cache(),
        ),
        (
            "abl_iw_sweep",
            ServiceConfig::google_like(7).with_fe_initial_window(10),
        ),
        ("abl_fe_load", ServiceConfig::bing_like(7)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let d = DatasetA {
                    repeats: 2,
                    spacing: SimDuration::from_secs(5),
                    keywords: KeywordPolicy::Fixed(0),
                };
                black_box(d.run(&sc, cfg.clone(), &Classifier::ByMarker).len())
            })
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = figures;
    config = configured();
    targets =
        bench_fig3_keyword_effect,
        bench_fig4_timelines,
        bench_fig5_rtt_sweep,
        bench_fig6_rtt_cdf,
        bench_fig7_default_fe,
        bench_fig8_overall_delay,
        bench_fig9_factoring,
        bench_exp_caching,
        bench_exp_instant,
        bench_exp_loss,
        bench_ablations,
}
criterion_main!(figures);
