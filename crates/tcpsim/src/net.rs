//! The network: connections, links, the event loop, and the application
//! interface.
//!
//! [`Sim`] couples a [`Net`] (all TCP/link state) with a user [`App`] (the
//! protocol-above-TCP state machine — in this workspace, clients,
//! front-end proxies and back-end data centers). Events are processed one
//! at a time; each may queue application callbacks, which are delivered
//! with `&mut Net` so handlers can immediately send data, open
//! connections, close, or arm timers.

use crate::endpoint::{AckPolicy, AckReaction, Endpoint, TcpState};
use crate::opts::TcpOptions;
use crate::segment::{Marker, MetaSpan, PktKind, Segment, SpanVec};
use crate::trace::{PktDir, TraceLog};
use simcore::dist::{Dist, Sampler};
use simcore::queue::EventQueue;
use simcore::rng::Rng;
use simcore::telemetry::MetricsRegistry;
use simcore::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Identifier of a simulated host (assigned by the application).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifier of a connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u32);

/// Which side of a connection; `A` is the initiator (client side).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum End {
    /// The initiator.
    A,
    /// The acceptor.
    B,
}

impl End {
    /// Array index for this end.
    pub fn idx(self) -> usize {
        match self {
            End::A => 0,
            End::B => 1,
        }
    }

    /// The opposite end.
    pub fn other(self) -> End {
        match self {
            End::A => End::B,
            End::B => End::A,
        }
    }
}

/// A span of bytes delivered in order to the application (re-export of
/// [`MetaSpan`] under the name the `App` trait uses).
pub type DeliveredSpan = MetaSpan;

/// Path parameters between the two endpoints of a connection.
#[derive(Clone, Debug)]
pub struct PathParams {
    /// Fixed one-way delay in ms (propagation + base).
    pub base_owd_ms: f64,
    /// Per-packet one-way jitter in ms (non-negative distribution).
    pub jitter_ms: Dist,
    /// Per-packet, per-direction loss probability.
    pub loss: f64,
    /// Bottleneck bandwidth, Mbit/s.
    pub bw_mbps: f64,
}

impl PathParams {
    /// An ideal loss-free path with the given RTT and ample bandwidth —
    /// the workhorse of unit tests.
    pub fn ideal(rtt_ms: f64) -> PathParams {
        PathParams {
            base_owd_ms: rtt_ms / 2.0,
            jitter_ms: Dist::Constant(0.0),
            loss: 0.0,
            bw_mbps: 10_000.0,
        }
    }

    /// Same as [`PathParams::ideal`] but with a loss rate.
    pub fn lossy(rtt_ms: f64, loss: f64) -> PathParams {
        PathParams {
            loss,
            ..PathParams::ideal(rtt_ms)
        }
    }

    /// One-way serialization delay of a packet of `bytes`.
    pub fn serialization(&self, bytes: u32) -> SimDuration {
        SimDuration::from_millis_f64((bytes as f64 * 8.0) / (self.bw_mbps * 1000.0))
    }
}

/// What part of the topology a [`LinkFault`] applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTarget {
    /// Every packet to or from this node (a host/site outage).
    Node(NodeId),
    /// Packets on connections between these two nodes, either direction
    /// (a single path episode).
    Link(NodeId, NodeId),
}

impl FaultTarget {
    fn matches(&self, nodes: [NodeId; 2]) -> bool {
        match *self {
            FaultTarget::Node(n) => nodes[0] == n || nodes[1] == n,
            FaultTarget::Link(a, b) => {
                (nodes[0] == a && nodes[1] == b) || (nodes[0] == b && nodes[1] == a)
            }
        }
    }
}

/// The drop behaviour of a [`LinkFault`] while its window is active.
#[derive(Clone, Copy, Debug)]
pub enum LinkFaultKind {
    /// Drop every matching packet (outage).
    Blackhole,
    /// Drop each matching packet independently with this probability,
    /// on top of the path's own loss.
    ExtraLoss {
        /// Additional per-packet drop probability.
        loss: f64,
    },
    /// A Gilbert–Elliott two-state chain advanced once per matching
    /// packet: in the good state packets pass; entering the bad state
    /// (probability `p_enter` per packet) drops packets with
    /// probability `bad_loss` until the chain exits (probability
    /// `p_exit` per packet) — loss arrives in bursts, the pattern that
    /// defeats fast retransmit and forces RTO recovery.
    Burst {
        /// Per-packet probability of entering the bad state.
        p_enter: f64,
        /// Per-packet probability of leaving the bad state.
        p_exit: f64,
        /// Drop probability while in the bad state.
        bad_loss: f64,
    },
}

/// A scheduled fault on part of the topology: within `[start, end)`,
/// matching packets are subject to `kind`. All randomness is drawn from
/// the network's dedicated fault stream (`"tcpsim/fault"`), so a net
/// with no faults installed — or whose fault windows never activate —
/// produces byte-identical trajectories to one built before this
/// machinery existed.
#[derive(Clone, Debug)]
pub struct LinkFault {
    /// What the fault applies to.
    pub target: FaultTarget,
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
    /// Drop behaviour inside the window.
    pub kind: LinkFaultKind,
    /// Gilbert–Elliott chain state (burst faults only).
    bad: bool,
}

impl LinkFault {
    /// A total outage of one node over a window.
    pub fn node_outage(node: NodeId, start: SimTime, end: SimTime) -> LinkFault {
        LinkFault {
            target: FaultTarget::Node(node),
            start,
            end,
            kind: LinkFaultKind::Blackhole,
            bad: false,
        }
    }

    /// A total outage of one path over a window.
    pub fn link_outage(a: NodeId, b: NodeId, start: SimTime, end: SimTime) -> LinkFault {
        LinkFault {
            target: FaultTarget::Link(a, b),
            start,
            end,
            kind: LinkFaultKind::Blackhole,
            bad: false,
        }
    }

    /// Extra Bernoulli loss on one path over a window.
    pub fn extra_loss(a: NodeId, b: NodeId, start: SimTime, end: SimTime, loss: f64) -> LinkFault {
        LinkFault {
            target: FaultTarget::Link(a, b),
            start,
            end,
            kind: LinkFaultKind::ExtraLoss { loss },
            bad: false,
        }
    }

    /// A Gilbert–Elliott burst-loss episode on one path over a window.
    pub fn burst_loss(
        a: NodeId,
        b: NodeId,
        start: SimTime,
        end: SimTime,
        p_enter: f64,
        p_exit: f64,
        bad_loss: f64,
    ) -> LinkFault {
        LinkFault {
            target: FaultTarget::Link(a, b),
            start,
            end,
            kind: LinkFaultKind::Burst {
                p_enter,
                p_exit,
                bad_loss,
            },
            bad: false,
        }
    }
}

/// The application protocol driven by the simulator.
///
/// All callbacks receive `&mut Net` and may call [`Net::open`],
/// [`Net::send`], [`Net::close`], [`Net::set_timer`] freely.
pub trait App {
    /// The connection completed its handshake at `end`.
    fn on_established(&mut self, net: &mut Net, conn: ConnId, end: End);
    /// In-order data arrived at `end`.
    fn on_data(&mut self, net: &mut Net, conn: ConnId, end: End, spans: &[DeliveredSpan]);
    /// The peer's FIN was consumed at `end` (stream fully received).
    fn on_fin(&mut self, net: &mut Net, conn: ConnId, end: End) {
        let _ = (net, conn, end);
    }
    /// An application timer armed with [`Net::set_timer`] fired.
    fn on_timer(&mut self, net: &mut Net, token: u64) {
        let _ = (net, token);
    }
}

enum Ev {
    Deliver { conn: ConnId, to: End, seg: Segment },
    Rto { conn: ConnId, end: End, gen: u64 },
    DelAck { conn: ConnId, end: End, gen: u64 },
    AppTimer { token: u64 },
}

enum Cb {
    Established {
        conn: ConnId,
        end: End,
    },
    Data {
        conn: ConnId,
        end: End,
        spans: SpanVec,
    },
    Fin {
        conn: ConnId,
        end: End,
    },
    Timer {
        token: u64,
    },
}

struct Conn {
    nodes: [NodeId; 2],
    session: u64,
    path: PathParams,
    rng: Rng,
    busy_until: [SimTime; 2],
    // Highest arrival time scheduled per direction: a single path is a
    // FIFO queue, so jitter may stretch gaps but never reorder packets.
    last_arrival: [SimTime; 2],
    ep: [Endpoint; 2],
    syn_time: SimTime,
    handshake_retx: bool,
    fin_cb_fired: [bool; 2],
    aborted: bool,
}

/// All network state: connections, event queue, traces.
pub struct Net {
    q: EventQueue<Ev>,
    conns: Vec<Conn>,
    trace: TraceLog,
    cbs: VecDeque<Cb>,
    app_rng: Rng,
    // Fault-injection state: scheduled link/node faults and the dedicated
    // RNG stream they draw from. No fault ⇒ no draw ⇒ every other stream
    // is untouched.
    faults: Vec<LinkFault>,
    fault_rng: Rng,
    seed: u64,
    max_events: u64,
    // Observe-only telemetry: records retransmit/cwnd-reset counts and
    // handshake RTTs but draws no randomness and schedules nothing, so
    // it cannot perturb the simulated trajectory.
    metrics: MetricsRegistry,
}

impl Net {
    fn new(seed: u64) -> Net {
        Net {
            q: EventQueue::new(),
            conns: Vec::new(),
            trace: TraceLog::new(),
            cbs: VecDeque::new(),
            app_rng: Rng::from_seed_and_name(seed, "tcpsim/app"),
            faults: Vec::new(),
            fault_rng: Rng::from_seed_and_name(seed, "tcpsim/fault"),
            seed,
            max_events: 2_000_000_000,
            metrics: MetricsRegistry::from_env(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.q.now()
    }

    /// A generator for application-level randomness (its own stream).
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.app_rng
    }

    /// The packet trace store.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Mutable access to the packet trace store (enable/take sessions).
    pub fn trace_mut(&mut self) -> &mut TraceLog {
        &mut self.trace
    }

    /// The transport-layer telemetry registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access to the telemetry registry (toggle the runtime
    /// gate, record app-level metrics into the same document).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Harvests the telemetry registry, stamping the end-of-run gauges
    /// (event-queue slab high-water mark, events processed, trace
    /// records) first. Leaves an empty registry with the same gate.
    pub fn take_metrics(&mut self) -> MetricsRegistry {
        if self.metrics.is_enabled() {
            self.metrics
                .set_gauge("tcpsim.slab_high_water_slots", self.q.slab_slots() as f64);
            self.metrics
                .set_gauge("tcpsim.events_processed", self.q.events_processed() as f64);
            self.metrics
                .set_gauge("tcpsim.trace_recorded_pkts", self.trace.recorded() as f64);
        }
        self.metrics.take()
    }

    /// Caps the number of processed events (runaway guard).
    pub fn set_max_events(&mut self, max: u64) {
        self.max_events = max;
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.q.events_processed()
    }

    /// Number of events still waiting in the queue (0 ⇔ the simulation
    /// has quiesced).
    pub fn pending_events(&self) -> usize {
        self.q.len()
    }

    /// Virtual time of the earliest pending event, if any. Drivers that
    /// step the simulation in fixed-size time chunks need this to skip
    /// ahead when the next event lies beyond the current chunk —
    /// otherwise a lone far-future timer (a hedge or fault window that
    /// outlived its query) would stall the chunk loop forever.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.q.peek_time()
    }

    /// Opens a connection from node `a` to node `b` over `path`; the SYN
    /// leaves immediately. `session` tags all trace events of this
    /// connection (the query id in the measurement harness).
    pub fn open(
        &mut self,
        a: NodeId,
        b: NodeId,
        path: PathParams,
        opts_a: TcpOptions,
        opts_b: TcpOptions,
        session: u64,
    ) -> ConnId {
        let cid = ConnId(self.conns.len() as u32);
        let rng = Rng::from_seed_and_name(self.seed, &format!("tcpsim/conn/{}/{}", cid.0, session));
        let mut conn = Conn {
            nodes: [a, b],
            session,
            path,
            rng,
            busy_until: [SimTime::ZERO; 2],
            last_arrival: [SimTime::ZERO; 2],
            ep: [Endpoint::new(opts_a), Endpoint::new(opts_b)],
            syn_time: self.now(),
            handshake_retx: false,
            fin_cb_fired: [false, false],
            aborted: false,
        };
        conn.ep[0].state = TcpState::SynSent;
        conn.ep[0].syn_sent_count = 1;
        self.conns.push(conn);
        let syn = self.make_ctl(cid, End::A, PktKind::Syn);
        self.transmit(cid, End::A, syn);
        self.arm_rto(cid, End::A);
        cid
    }

    /// Appends `len` application bytes tagged `(marker, content)` to the
    /// `end` side's send stream and transmits as the window allows.
    pub fn send(&mut self, conn: ConnId, end: End, len: u64, marker: Marker, content: u64) {
        self.conns[conn.0 as usize].ep[end.idx()].push_chunk(len, marker, content);
        self.pump(conn, end);
    }

    /// Requests an orderly close from `end` (FIN after all queued data).
    pub fn close(&mut self, conn: ConnId, end: End) {
        self.conns[conn.0 as usize].ep[end.idx()].fin_pending = true;
        self.pump(conn, end);
    }

    /// Arms an application timer; `token` is returned in
    /// [`App::on_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.q.schedule_in(delay, Ev::AppTimer { token });
    }

    /// TCP state of one side.
    pub fn state(&self, conn: ConnId, end: End) -> TcpState {
        self.conns[conn.0 as usize].ep[end.idx()].state
    }

    /// Congestion window (bytes) of one side — exposed for tests and the
    /// split-TCP ablation instrumentation.
    pub fn cwnd(&self, conn: ConnId, end: End) -> f64 {
        self.conns[conn.0 as usize].ep[end.idx()].cwnd
    }

    /// Smoothed RTT estimate of one side, in ms.
    pub fn srtt_ms(&self, conn: ConnId, end: End) -> Option<f64> {
        self.conns[conn.0 as usize].ep[end.idx()].srtt_ms
    }

    /// Bytes delivered in order to the application at `end`.
    pub fn delivered_bytes(&self, conn: ConnId, end: End) -> u64 {
        self.conns[conn.0 as usize].ep[end.idx()].rcv_nxt
    }

    /// Loss-recovery counters of one side.
    pub fn conn_stats(&self, conn: ConnId, end: End) -> crate::endpoint::ConnStats {
        self.conns[conn.0 as usize].ep[end.idx()].stats
    }

    /// The session tag a connection was opened with.
    pub fn session_of(&self, conn: ConnId) -> u64 {
        self.conns[conn.0 as usize].session
    }

    /// Re-tags a connection's future trace events with a new session id.
    /// Persistent (pooled) connections carry many queries over their
    /// lifetime; the split-TCP proxy re-tags at every checkout so each
    /// query's packets land in its own trace bucket.
    pub fn set_session(&mut self, conn: ConnId, session: u64) {
        self.conns[conn.0 as usize].session = session;
    }

    /// Installs a scheduled fault. Faults are consulted on every packet
    /// transmission while their window is active; an empty fault list
    /// costs nothing and draws no randomness.
    pub fn add_link_fault(&mut self, fault: LinkFault) {
        self.faults.push(fault);
    }

    /// Tears a connection down immediately and silently: both endpoints
    /// stop sending, pending retransmission/delayed-ACK timers are
    /// disarmed, in-flight packets are discarded on arrival, and **no**
    /// `on_fin` callback fires. This models a crashed peer or a proxy
    /// discarding a connection it has declared dead — the abstraction
    /// failure recovery needs: a reconnect after `abort` starts from a
    /// cold congestion window.
    pub fn abort(&mut self, conn: ConnId) {
        let c = &mut self.conns[conn.0 as usize];
        c.aborted = true;
        for i in 0..2 {
            c.ep[i].rto_gen += 1;
            c.ep[i].rto_armed = false;
            c.ep[i].delack_gen += 1;
            c.ep[i].delack_armed = false;
            c.fin_cb_fired[i] = true;
        }
    }

    /// True when [`Net::abort`] was called on this connection.
    pub fn is_aborted(&self, conn: ConnId) -> bool {
        self.conns[conn.0 as usize].aborted
    }

    // ---- internals ----

    fn make_ctl(&mut self, cid: ConnId, from: End, kind: PktKind) -> Segment {
        let c = &self.conns[cid.0 as usize];
        let ep = &c.ep[from.idx()];
        Segment {
            kind,
            seq: ep.snd_nxt,
            len: 0,
            ack: ep.rcv_nxt,
            push: false,
            wnd: ep.opts.rwnd,
            meta: SpanVec::new(),
        }
    }

    fn transmit(&mut self, cid: ConnId, from: End, seg: Segment) {
        let now = self.now();
        let c = &mut self.conns[cid.0 as usize];
        if c.aborted {
            return;
        }
        let node = c.nodes[from.idx()];
        self.trace
            .record(now, node, cid, c.session, PktDir::Tx, &seg);
        c.ep[from.idx()].last_send = now;
        // Serialization at the bottleneck (per direction).
        let ser = c.path.serialization(seg.wire_bytes());
        let dep_start = if c.busy_until[from.idx()] > now {
            c.busy_until[from.idx()]
        } else {
            now
        };
        let dep_end = dep_start + ser;
        c.busy_until[from.idx()] = dep_end;
        // Scheduled faults first (they model the outside world failing,
        // not this path's own loss process). Checked without any RNG
        // draw unless a probabilistic fault window is active, so an
        // empty fault list leaves all trajectories untouched.
        let mut fault_drop = false;
        for f in self.faults.iter_mut() {
            if now < f.start || now >= f.end || !f.target.matches(c.nodes) {
                continue;
            }
            match f.kind {
                LinkFaultKind::Blackhole => fault_drop = true,
                LinkFaultKind::ExtraLoss { loss } => {
                    if self.fault_rng.chance(loss) {
                        fault_drop = true;
                    }
                }
                LinkFaultKind::Burst {
                    p_enter,
                    p_exit,
                    bad_loss,
                } => {
                    if f.bad {
                        if self.fault_rng.chance(p_exit) {
                            f.bad = false;
                        }
                    } else if self.fault_rng.chance(p_enter) {
                        f.bad = true;
                    }
                    if f.bad && self.fault_rng.chance(bad_loss) {
                        fault_drop = true;
                    }
                }
            }
        }
        if fault_drop {
            self.trace
                .record(now, node, cid, c.session, PktDir::Drop, &seg);
            return;
        }
        // Loss coin (after consuming the wire).
        if c.rng.chance(c.path.loss) {
            self.trace
                .record(now, node, cid, c.session, PktDir::Drop, &seg);
            return;
        }
        let jitter = c.path.jitter_ms.sample(&mut c.rng).max(0.0);
        let mut arrival = dep_end + SimDuration::from_millis_f64(c.path.base_owd_ms + jitter);
        // FIFO per direction: never deliver before an earlier packet.
        let floor = c.last_arrival[from.idx()] + SimDuration::from_nanos(1);
        if arrival < floor {
            arrival = floor;
        }
        c.last_arrival[from.idx()] = arrival;
        self.q.schedule_at(
            arrival,
            Ev::Deliver {
                conn: cid,
                to: from.other(),
                seg,
            },
        );
    }

    fn arm_rto(&mut self, cid: ConnId, end: End) {
        let c = &mut self.conns[cid.0 as usize];
        let ep = &mut c.ep[end.idx()];
        ep.rto_gen += 1;
        ep.rto_armed = true;
        let gen = ep.rto_gen;
        let rto = ep.rto;
        self.q.schedule_in(
            rto,
            Ev::Rto {
                conn: cid,
                end,
                gen,
            },
        );
    }

    fn cancel_rto(&mut self, cid: ConnId, end: End) {
        let ep = &mut self.conns[cid.0 as usize].ep[end.idx()];
        ep.rto_gen += 1;
        ep.rto_armed = false;
    }

    /// Sends fresh data as the window allows; returns true if anything
    /// payload-bearing (or FIN) left.
    fn pump(&mut self, cid: ConnId, end: End) -> bool {
        let now = self.now();
        let mut sent_any = false;
        loop {
            let c = &mut self.conns[cid.0 as usize];
            let ep = &mut c.ep[end.idx()];
            if ep.state != TcpState::Established {
                break;
            }
            ep.maybe_idle_reset(now);
            let usable = ep.usable_window();
            if ep.snd_nxt < ep.stream_len {
                let remaining = ep.stream_len - ep.snd_nxt;
                let len = (ep.opts.mss as u64).min(remaining) as u32;
                if (len as u64) > usable {
                    break;
                }
                // Nagle: hold a sub-MSS tail while older data is in
                // flight (it will ride out on the next ACK).
                if ep.opts.nagle && (len as u64) < ep.opts.mss as u64 && ep.in_flight() > 0 {
                    break;
                }
                let seq = ep.snd_nxt;
                let meta = ep.meta_for_range(seq, len);
                let push = ep.range_ends_chunk(seq, len);
                if ep.rtt_probe.is_none() {
                    ep.rtt_probe = Some((seq + len as u64, now));
                }
                ep.snd_nxt += len as u64;
                let seg = Segment {
                    kind: PktKind::Data,
                    seq,
                    len,
                    ack: ep.rcv_nxt,
                    push,
                    wnd: ep.opts.rwnd,
                    meta,
                };
                // A data segment carries the ACK: cancel any pending
                // delayed ACK.
                ep.delack_armed = false;
                ep.delack_gen += 1;
                let need_arm = !ep.rto_armed;
                self.transmit(cid, end, seg);
                if need_arm {
                    self.arm_rto(cid, end);
                }
                sent_any = true;
            } else if ep.fin_pending && !ep.fin_sent && usable > 0 {
                ep.fin_sent = true;
                ep.snd_nxt += 1;
                let seg = Segment {
                    kind: PktKind::Fin,
                    seq: ep.stream_len,
                    len: 0,
                    ack: ep.rcv_nxt,
                    push: true,
                    wnd: ep.opts.rwnd,
                    meta: SpanVec::new(),
                };
                ep.delack_armed = false;
                ep.delack_gen += 1;
                let need_arm = !ep.rto_armed;
                self.transmit(cid, end, seg);
                if need_arm {
                    self.arm_rto(cid, end);
                }
                sent_any = true;
            } else {
                break;
            }
        }
        sent_any
    }

    fn retransmit_una(&mut self, cid: ConnId, end: End) {
        let c = &mut self.conns[cid.0 as usize];
        let ep = &mut c.ep[end.idx()];
        if ep.in_flight() == 0 {
            return;
        }
        let seq = ep.snd_una;
        let seg = if seq >= ep.stream_len {
            // The unacked byte is the FIN.
            Segment {
                kind: PktKind::Fin,
                seq: ep.stream_len,
                len: 0,
                ack: ep.rcv_nxt,
                push: true,
                wnd: ep.opts.rwnd,
                meta: SpanVec::new(),
            }
        } else {
            let len = (ep.opts.mss as u64)
                .min(ep.stream_len - seq)
                .min(ep.snd_nxt - seq) as u32;
            let meta = ep.meta_for_range(seq, len);
            let push = ep.range_ends_chunk(seq, len);
            Segment {
                kind: PktKind::Data,
                seq,
                len,
                ack: ep.rcv_nxt,
                push,
                wnd: ep.opts.rwnd,
                meta,
            }
        };
        ep.rtt_probe = None; // Karn: no sample across retransmission
        ep.stats.retransmitted_segs += 1;
        self.metrics.inc("tcpsim.retransmit_segs");
        self.transmit(cid, end, seg);
        self.arm_rto(cid, end);
    }

    fn send_ack_now(&mut self, cid: ConnId, end: End) {
        {
            let ep = &mut self.conns[cid.0 as usize].ep[end.idx()];
            ep.delack_armed = false;
            ep.delack_gen += 1;
        }
        let ack = self.make_ctl(cid, end, PktKind::Ack);
        self.transmit(cid, end, ack);
    }

    fn arm_delack(&mut self, cid: ConnId, end: End) {
        let c = &mut self.conns[cid.0 as usize];
        let ep = &mut c.ep[end.idx()];
        if ep.delack_armed {
            return;
        }
        ep.delack_armed = true;
        ep.delack_gen += 1;
        let gen = ep.delack_gen;
        let dt = ep.opts.delack_timeout;
        self.q.schedule_in(
            dt,
            Ev::DelAck {
                conn: cid,
                end,
                gen,
            },
        );
    }

    fn establish(&mut self, cid: ConnId, end: End) {
        let c = &mut self.conns[cid.0 as usize];
        let ep = &mut c.ep[end.idx()];
        if ep.state == TcpState::Established {
            return;
        }
        ep.state = TcpState::Established;
        self.cancel_rto(cid, end);
        // Handshake RTT sample (Karn: only if never retransmitted).
        let c = &mut self.conns[cid.0 as usize];
        if end == End::A && !c.handshake_retx {
            let sample = self.q.now().saturating_since(c.syn_time);
            c.ep[end.idx()].rtt_sample(sample);
            self.metrics.observe_virt("tcpsim.handshake_rtt_ms", sample);
        }
        self.cbs.push_back(Cb::Established { conn: cid, end });
    }

    fn handle_deliver(&mut self, cid: ConnId, to: End, seg: Segment) {
        let now = self.now();
        {
            let c = &self.conns[cid.0 as usize];
            if c.aborted {
                // Packets in flight when the connection was torn down
                // arrive at a dead socket: discarded, unrecorded.
                return;
            }
            let node = c.nodes[to.idx()];
            self.trace
                .record(now, node, cid, c.session, PktDir::Rx, &seg);
        }
        match seg.kind {
            PktKind::Syn => {
                let state = self.conns[cid.0 as usize].ep[to.idx()].state;
                match state {
                    TcpState::Closed => {
                        self.conns[cid.0 as usize].ep[to.idx()].state = TcpState::SynRcvd;
                        let sa = self.make_ctl(cid, to, PktKind::SynAck);
                        self.transmit(cid, to, sa);
                        self.arm_rto(cid, to);
                    }
                    TcpState::SynRcvd => {
                        // Duplicate SYN: resend SYN-ACK.
                        let sa = self.make_ctl(cid, to, PktKind::SynAck);
                        self.transmit(cid, to, sa);
                    }
                    _ => {}
                }
            }
            PktKind::SynAck => {
                let state = self.conns[cid.0 as usize].ep[to.idx()].state;
                if state == TcpState::SynSent {
                    self.establish(cid, to);
                    let ack = self.make_ctl(cid, to, PktKind::Ack);
                    self.transmit(cid, to, ack);
                    // Data queued before the handshake completed can
                    // leave now.
                    self.pump(cid, to);
                } else if state == TcpState::Established {
                    // Our handshake ACK was lost; re-ack.
                    let ack = self.make_ctl(cid, to, PktKind::Ack);
                    self.transmit(cid, to, ack);
                }
            }
            PktKind::Ack | PktKind::Data | PktKind::Fin => {
                if self.conns[cid.0 as usize].ep[to.idx()].state == TcpState::SynRcvd {
                    self.establish(cid, to);
                    self.pump(cid, to);
                }
                // --- sender-side: process the cumulative ACK ---
                let reaction = {
                    let ep = &mut self.conns[cid.0 as usize].ep[to.idx()];
                    ep.on_ack(seg.ack, seg.wnd, now, seg.has_payload())
                };
                match reaction {
                    AckReaction::FastRetransmit | AckReaction::PartialRetransmit => {
                        if reaction == AckReaction::FastRetransmit {
                            self.metrics.inc("tcpsim.fast_retransmits");
                        }
                        self.retransmit_una(cid, to);
                    }
                    _ => {}
                }
                {
                    let ep = &self.conns[cid.0 as usize].ep[to.idx()];
                    let flight = ep.in_flight();
                    let advanced = matches!(
                        reaction,
                        AckReaction::Advance | AckReaction::PartialRetransmit
                    );
                    if flight == 0 {
                        if ep.rto_armed {
                            self.cancel_rto(cid, to);
                        }
                    } else if advanced {
                        self.arm_rto(cid, to);
                    }
                }
                self.pump(cid, to);
                // --- receiver-side: payload / FIN ---
                if seg.kind == PktKind::Data || seg.kind == PktKind::Fin {
                    let fin = seg.kind == PktKind::Fin;
                    let (spans, policy) = {
                        let ep = &mut self.conns[cid.0 as usize].ep[to.idx()];
                        ep.accept(seg.seq, seg.len, seg.push, fin, seg.meta)
                    };
                    if !spans.is_empty() {
                        self.cbs.push_back(Cb::Data {
                            conn: cid,
                            end: to,
                            spans,
                        });
                    }
                    {
                        let c = &mut self.conns[cid.0 as usize];
                        if c.ep[to.idx()].peer_fin_rcvd && !c.fin_cb_fired[to.idx()] {
                            c.fin_cb_fired[to.idx()] = true;
                            self.cbs.push_back(Cb::Fin { conn: cid, end: to });
                        }
                    }
                    match policy {
                        AckPolicy::Immediate => self.send_ack_now(cid, to),
                        AckPolicy::Delayed => self.arm_delack(cid, to),
                    }
                }
                // --- lifecycle: both sides done? ---
                let c = &mut self.conns[cid.0 as usize];
                for i in 0..2 {
                    let done = c.ep[i].fin_sent && c.ep[i].all_acked() && c.ep[i].peer_fin_rcvd;
                    if done {
                        c.ep[i].state = TcpState::Done;
                    }
                }
            }
        }
    }

    fn handle_rto(&mut self, cid: ConnId, end: End, gen: u64) {
        let (stale, state) = {
            let c = &self.conns[cid.0 as usize];
            let ep = &c.ep[end.idx()];
            (c.aborted || ep.rto_gen != gen || !ep.rto_armed, ep.state)
        };
        if stale {
            return;
        }
        match state {
            TcpState::SynSent => {
                {
                    let c = &mut self.conns[cid.0 as usize];
                    c.handshake_retx = true;
                    let ep = &mut c.ep[end.idx()];
                    ep.rto = ep.rto.saturating_mul(2).min(ep.opts.max_rto);
                    ep.syn_sent_count += 1;
                }
                let syn = self.make_ctl(cid, end, PktKind::Syn);
                self.transmit(cid, end, syn);
                self.arm_rto(cid, end);
            }
            TcpState::SynRcvd => {
                {
                    let c = &mut self.conns[cid.0 as usize];
                    c.handshake_retx = true;
                    let ep = &mut c.ep[end.idx()];
                    ep.rto = ep.rto.saturating_mul(2).min(ep.opts.max_rto);
                }
                let sa = self.make_ctl(cid, end, PktKind::SynAck);
                self.transmit(cid, end, sa);
                self.arm_rto(cid, end);
            }
            TcpState::Established | TcpState::Done => {
                let flight = self.conns[cid.0 as usize].ep[end.idx()].in_flight();
                if flight == 0 {
                    self.conns[cid.0 as usize].ep[end.idx()].rto_armed = false;
                    return;
                }
                self.conns[cid.0 as usize].ep[end.idx()].on_rto_fire();
                // RTO fire collapses the congestion window back to
                // slow-start — the paper's "cold cwnd" penalty.
                self.metrics.inc("tcpsim.cwnd_resets");
                self.retransmit_una(cid, end);
            }
            TcpState::Closed => {}
        }
    }

    fn handle_delack(&mut self, cid: ConnId, end: End, gen: u64) {
        let fire = {
            let c = &self.conns[cid.0 as usize];
            let ep = &c.ep[end.idx()];
            !c.aborted && ep.delack_armed && ep.delack_gen == gen
        };
        if fire {
            self.send_ack_now(cid, end);
        }
    }
}

/// The simulator: a [`Net`] plus the user's [`App`].
pub struct Sim<A: App> {
    net: Net,
    app: A,
}

impl<A: App> Sim<A> {
    /// Creates a simulator with the given experiment seed.
    pub fn new(seed: u64, app: A) -> Sim<A> {
        Sim {
            net: Net::new(seed),
            app,
        }
    }

    /// The network handle (open connections, set timers, read traces).
    pub fn net(&mut self) -> &mut Net {
        &mut self.net
    }

    /// Read-only application access.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Mutable application access.
    pub fn app_mut(&mut self) -> &mut A {
        &mut self.app
    }

    /// Consumes the simulator, returning the application.
    pub fn into_app(self) -> A {
        self.app
    }

    /// Grants simultaneous mutable access to the application and the
    /// network — needed when scenario code wants to schedule work through
    /// app state (e.g. `world.schedule_query(net, ...)`).
    pub fn with<R>(&mut self, f: impl FnOnce(&mut A, &mut Net) -> R) -> R {
        f(&mut self.app, &mut self.net)
    }

    fn drain_callbacks(&mut self) {
        while let Some(cb) = self.net.cbs.pop_front() {
            match cb {
                Cb::Established { conn, end } => self.app.on_established(&mut self.net, conn, end),
                Cb::Data { conn, end, spans } => self.app.on_data(&mut self.net, conn, end, &spans),
                Cb::Fin { conn, end } => self.app.on_fin(&mut self.net, conn, end),
                Cb::Timer { token } => self.app.on_timer(&mut self.net, token),
            }
        }
    }

    /// Runs until the event queue is empty. Panics if the event budget is
    /// exceeded (runaway-simulation guard).
    pub fn run(&mut self) {
        self.run_until(SimTime::MAX);
    }

    /// Runs until the queue is empty or the next event is later than
    /// `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            match self.net.q.peek_time() {
                Some(t) if t <= deadline => {}
                _ => break,
            }
            assert!(
                self.net.q.events_processed() < self.net.max_events,
                "event budget exceeded: simulation did not quiesce"
            );
            let (_, ev) = self.net.q.pop().unwrap();
            match ev {
                Ev::Deliver { conn, to, seg } => self.net.handle_deliver(conn, to, seg),
                Ev::Rto { conn, end, gen } => self.net.handle_rto(conn, end, gen),
                Ev::DelAck { conn, end, gen } => self.net.handle_delack(conn, end, gen),
                Ev::AppTimer { token } => self.net.cbs.push_back(Cb::Timer { token }),
            }
            self.drain_callbacks();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A simple client/server app: A sends a request; B replies with a
    /// fixed-size response and closes. Used to exercise the whole stack.
    struct Echoish {
        request: u64,
        response: u64,
        established_at: Vec<(End, SimTime)>,
        data_events: Vec<(End, SimTime, u64)>,
        fins: Vec<(End, SimTime)>,
        request_done_at: Option<SimTime>,
        response_done_at: Option<SimTime>,
        got: u64,
        req_got: u64,
        timer_fired: Vec<u64>,
    }

    impl Echoish {
        fn new(request: u64, response: u64) -> Echoish {
            Echoish {
                request,
                response,
                established_at: Vec::new(),
                data_events: Vec::new(),
                fins: Vec::new(),
                request_done_at: None,
                response_done_at: None,
                got: 0,
                req_got: 0,
                timer_fired: Vec::new(),
            }
        }
    }

    impl App for Echoish {
        fn on_established(&mut self, net: &mut Net, conn: ConnId, end: End) {
            self.established_at.push((end, net.now()));
            if end == End::A {
                net.send(conn, End::A, self.request, Marker::Request, 1);
            }
        }

        fn on_data(&mut self, net: &mut Net, conn: ConnId, end: End, spans: &[DeliveredSpan]) {
            let bytes: u64 = spans.iter().map(|s| s.len as u64).sum();
            self.data_events.push((end, net.now(), bytes));
            match end {
                End::B => {
                    self.req_got += bytes;
                    if self.req_got == self.request {
                        self.request_done_at = Some(net.now());
                        net.send(conn, End::B, self.response, Marker::Static, 2);
                        net.close(conn, End::B);
                    }
                }
                End::A => {
                    self.got += bytes;
                    if self.got == self.response {
                        self.response_done_at = Some(net.now());
                        net.close(conn, End::A);
                    }
                }
            }
        }

        fn on_fin(&mut self, net: &mut Net, _conn: ConnId, end: End) {
            self.fins.push((end, net.now()));
        }

        fn on_timer(&mut self, _net: &mut Net, token: u64) {
            self.timer_fired.push(token);
        }
    }

    fn run_transfer(rtt_ms: f64, request: u64, response: u64, loss: f64) -> Echoish {
        let mut sim = Sim::new(42, Echoish::new(request, response));
        let path = PathParams::lossy(rtt_ms, loss);
        sim.net().open(
            NodeId(1),
            NodeId(2),
            path,
            TcpOptions::default(),
            TcpOptions::default(),
            1,
        );
        sim.run();
        sim.into_app()
    }

    #[test]
    fn handshake_takes_one_rtt() {
        let app = run_transfer(100.0, 400, 1000, 0.0);
        // A establishes after one RTT (SYN + SYN-ACK).
        let (_, t_a) = app
            .established_at
            .iter()
            .find(|(e, _)| *e == End::A)
            .unwrap();
        let ms = t_a.as_millis_f64();
        assert!((ms - 100.0).abs() < 2.0, "established at {ms}ms");
    }

    #[test]
    fn request_arrives_half_rtt_after_established() {
        let app = run_transfer(100.0, 400, 1000, 0.0);
        let req_at = app.request_done_at.unwrap().as_millis_f64();
        // SYN(50) SYNACK(100) GET leaves ~100, arrives ~150.
        assert!((req_at - 150.0).abs() < 3.0, "request done at {req_at}ms");
    }

    #[test]
    fn response_completes_and_fin_handshake_closes_both() {
        let app = run_transfer(80.0, 400, 30_000, 0.0);
        assert_eq!(app.got, 30_000);
        assert!(app.response_done_at.is_some());
        assert_eq!(app.fins.len(), 2, "both sides saw a FIN");
    }

    #[test]
    fn transfer_is_deterministic() {
        let a = run_transfer(60.0, 400, 20_000, 0.0);
        let b = run_transfer(60.0, 400, 20_000, 0.0);
        assert_eq!(a.response_done_at.unwrap(), b.response_done_at.unwrap());
        assert_eq!(a.data_events.len(), b.data_events.len());
    }

    #[test]
    fn multi_window_response_paced_by_rtt() {
        // 30 KB at IW4, MSS 1460: rounds of ~4,6,9,... segments — at
        // least 3 RTT-spaced delivery rounds.
        let rtt = 100.0;
        let app = run_transfer(rtt, 400, 30_000, 0.0);
        let resp_done = app.response_done_at.unwrap().as_millis_f64();
        let req_done = app.request_done_at.unwrap().as_millis_f64();
        let delivery = resp_done - req_done;
        assert!(
            delivery > 2.0 * rtt,
            "30KB should need >2 window rounds, took {delivery}ms"
        );
        assert!(
            delivery < 6.0 * rtt,
            "delivery suspiciously slow: {delivery}ms"
        );
    }

    #[test]
    fn bigger_initial_window_speeds_up_delivery() {
        let run_with_iw = |iw: u32| {
            let mut sim = Sim::new(42, Echoish::new(400, 30_000));
            sim.net().open(
                NodeId(1),
                NodeId(2),
                PathParams::ideal(100.0),
                TcpOptions::default(),
                TcpOptions::default().with_initial_window(iw),
                1,
            );
            sim.run();
            sim.into_app().response_done_at.unwrap()
        };
        let t_iw4 = run_with_iw(4);
        let t_iw10 = run_with_iw(10);
        assert!(t_iw10 < t_iw4, "IW10 {t_iw10:?} should beat IW4 {t_iw4:?}");
    }

    #[test]
    fn loss_free_run_has_no_drops_and_lossy_run_recovers() {
        let clean = run_transfer(40.0, 400, 50_000, 0.0);
        assert_eq!(clean.got, 50_000);
        // 5% loss: the transfer still completes, just slower.
        let lossy = run_transfer(40.0, 400, 50_000, 0.05);
        assert_eq!(lossy.got, 50_000, "all bytes must arrive despite loss");
        assert!(
            lossy.response_done_at.unwrap() > clean.response_done_at.unwrap(),
            "loss must cost time"
        );
    }

    #[test]
    fn heavy_loss_still_completes() {
        let app = run_transfer(30.0, 400, 20_000, 0.15);
        assert_eq!(app.got, 20_000);
    }

    #[test]
    fn syn_loss_retries_after_initial_rto() {
        // Deterministically lose the first packet: loss = 1 would lose
        // everything, so instead use a path with 30% loss and a seed
        // known to drop the SYN... too brittle. Instead verify the RTO
        // path directly: a 3s-long run with 50% loss must still
        // establish eventually.
        let mut sim = Sim::new(7, Echoish::new(400, 1000));
        sim.net().open(
            NodeId(1),
            NodeId(2),
            PathParams::lossy(20.0, 0.5),
            TcpOptions::default(),
            TcpOptions::default(),
            1,
        );
        sim.run_until(SimTime::from_secs(120));
        let app = sim.into_app();
        assert!(
            app.established_at.iter().any(|(e, _)| *e == End::A),
            "connection must establish under 50% loss given retries"
        );
    }

    #[test]
    fn app_timers_fire_in_order() {
        struct TimerApp {
            fired: Vec<(u64, SimTime)>,
        }
        impl App for TimerApp {
            fn on_established(&mut self, _: &mut Net, _: ConnId, _: End) {}
            fn on_data(&mut self, _: &mut Net, _: ConnId, _: End, _: &[DeliveredSpan]) {}
            fn on_timer(&mut self, net: &mut Net, token: u64) {
                self.fired.push((token, net.now()));
                if token == 1 {
                    net.set_timer(SimDuration::from_millis(5), 3);
                }
            }
        }
        let mut sim = Sim::new(1, TimerApp { fired: Vec::new() });
        sim.net().set_timer(SimDuration::from_millis(10), 1);
        sim.net().set_timer(SimDuration::from_millis(20), 2);
        sim.run();
        let app = sim.into_app();
        assert_eq!(
            app.fired.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            vec![1, 3, 2]
        );
        assert_eq!(app.fired[0].1, SimTime::from_millis(10));
        assert_eq!(app.fired[1].1, SimTime::from_millis(15));
    }

    #[test]
    fn srtt_converges_to_path_rtt() {
        let mut sim = Sim::new(42, Echoish::new(400, 100_000));
        let cid = sim.net().open(
            NodeId(1),
            NodeId(2),
            PathParams::ideal(80.0),
            TcpOptions::default(),
            TcpOptions::default(),
            1,
        );
        sim.run();
        let srtt = sim.net().srtt_ms(cid, End::B).unwrap();
        assert!((srtt - 80.0).abs() < 8.0, "B srtt {srtt}");
    }

    #[test]
    fn cwnd_grows_during_bulk_transfer() {
        let mut sim = Sim::new(42, Echoish::new(400, 200_000));
        let cid = sim.net().open(
            NodeId(1),
            NodeId(2),
            PathParams::ideal(50.0),
            TcpOptions::default(),
            TcpOptions::default(),
            1,
        );
        sim.run();
        let cwnd = sim.net().cwnd(cid, End::B);
        assert!(
            cwnd > 10.0 * 1460.0,
            "200KB clean transfer should grow cwnd well past IW, got {cwnd}"
        );
    }

    #[test]
    fn trace_captures_handshake_and_data() {
        let mut sim = Sim::new(42, Echoish::new(400, 5000));
        sim.net().trace_mut().set_enabled(true);
        sim.net().open(
            NodeId(1),
            NodeId(2),
            PathParams::ideal(50.0),
            TcpOptions::default(),
            TcpOptions::default(),
            77,
        );
        sim.run();
        let events = sim.net().trace_mut().take_session(77);
        assert!(!events.is_empty());
        // Client (node 1) must have sent a SYN and received a SYN-ACK.
        assert!(events
            .iter()
            .any(|e| e.node == NodeId(1) && e.dir == PktDir::Tx && e.kind == PktKind::Syn));
        assert!(events
            .iter()
            .any(|e| e.node == NodeId(1) && e.dir == PktDir::Rx && e.kind == PktKind::SynAck));
        // Data flowed to the client with Static markers.
        assert!(events.iter().any(|e| e.node == NodeId(1)
            && e.dir == PktDir::Rx
            && e.kind == PktKind::Data
            && e.meta.iter().any(|m| m.marker == Marker::Static)));
        // Timestamps are non-decreasing.
        for w in events.windows(2) {
            assert!(w[0].t <= w[1].t);
        }
    }

    #[test]
    fn serialization_delay_is_visible_on_slow_links() {
        // 1 Mbps: a 1500-byte packet takes 12ms to serialize; 10 KB
        // response (7 segments) costs ≥ 84ms of pure serialization.
        let mut sim = Sim::new(42, Echoish::new(400, 10_000));
        let path = PathParams {
            base_owd_ms: 1.0,
            jitter_ms: Dist::Constant(0.0),
            loss: 0.0,
            bw_mbps: 1.0,
        };
        sim.net().open(
            NodeId(1),
            NodeId(2),
            path,
            TcpOptions::default(),
            TcpOptions::default(),
            1,
        );
        sim.run();
        let app = sim.into_app();
        let done = app.response_done_at.unwrap().as_millis_f64();
        assert!(done > 84.0, "completion {done}ms too fast for 1 Mbps");
    }

    #[test]
    fn nagle_plus_delayed_ack_costs_rtt_plus_delack() {
        // 5,000-byte response = 3 full segments + a 620-byte tail. With
        // TCP_NODELAY (default) all four leave in the initial window.
        // With Nagle, the tail waits for all in-flight data to be
        // acknowledged — and the receiver delays the ACK of the odd
        // third segment, so the tail pays RTT + the delayed-ACK timeout:
        // the infamous Nagle × delayed-ACK interaction, emerging from
        // the mechanics rather than being scripted.
        let run = |nagle: bool| {
            let opts_b = if nagle {
                TcpOptions::default().with_nagle()
            } else {
                TcpOptions::default()
            };
            let mut sim = Sim::new(21, Echoish::new(400, 5_000));
            sim.net().open(
                NodeId(1),
                NodeId(2),
                PathParams::ideal(100.0),
                TcpOptions::default(),
                opts_b,
                1,
            );
            sim.run();
            sim.into_app().response_done_at.unwrap()
        };
        let nodelay = run(false);
        let nagle = run(true);
        let extra = nagle.saturating_since(nodelay).as_millis_f64();
        // RTT (100 ms) + delayed-ACK timeout (40 ms).
        assert!(
            (extra - 140.0).abs() < 10.0,
            "Nagle × delack should cost RTT + 40ms, cost {extra}ms"
        );
    }

    #[test]
    fn cubic_backs_off_less_and_finishes_lossy_bulk_sooner() {
        use crate::opts::CongAlgo;
        let run = |cong: CongAlgo| {
            let mut sim = Sim::new(11, Echoish::new(400, 2_000_000));
            sim.net().open(
                NodeId(1),
                NodeId(2),
                PathParams::lossy(80.0, 0.004),
                TcpOptions::default(),
                TcpOptions::default().with_cong(cong),
                1,
            );
            sim.run();
            let app = sim.into_app();
            assert_eq!(app.got, 2_000_000);
            app.response_done_at.unwrap()
        };
        let reno = run(CongAlgo::Reno);
        let cubic = run(CongAlgo::Cubic);
        // Same seed, same loss pattern: CUBIC's gentler back-off (β=0.7)
        // and faster re-growth should not be slower, and typically wins
        // on a long lossy transfer.
        assert!(
            cubic <= reno,
            "cubic {cubic:?} should finish no later than reno {reno:?}"
        );
    }

    #[test]
    fn conn_stats_count_recovery_events() {
        let mut sim = Sim::new(5, Echoish::new(400, 300_000));
        let cid = sim.net().open(
            NodeId(1),
            NodeId(2),
            PathParams::lossy(40.0, 0.03),
            TcpOptions::default(),
            TcpOptions::default(),
            1,
        );
        sim.run();
        let stats = sim.net().conn_stats(cid, End::B);
        assert!(
            stats.retransmitted_segs > 0,
            "3% loss on a 300KB transfer must retransmit"
        );
        assert!(stats.fast_retransmits + stats.timeouts > 0);
        // Clean path: zero recovery events.
        let mut clean = Sim::new(5, Echoish::new(400, 300_000));
        let c2 = clean.net().open(
            NodeId(1),
            NodeId(2),
            PathParams::ideal(40.0),
            TcpOptions::default(),
            TcpOptions::default(),
            1,
        );
        clean.run();
        assert_eq!(
            clean.net().conn_stats(c2, End::B),
            crate::endpoint::ConnStats::default()
        );
    }

    /// Runs the [`Echoish`] transfer on an ideal 100 ms path with the
    /// given scripted fault windows installed, returning the app and the
    /// server-side connection stats.
    fn run_faulty(response: u64, faults: Vec<LinkFault>) -> (Echoish, crate::endpoint::ConnStats) {
        let mut sim = Sim::new(42, Echoish::new(400, response));
        for f in faults {
            sim.net().add_link_fault(f);
        }
        let cid = sim.net().open(
            NodeId(1),
            NodeId(2),
            PathParams::ideal(100.0),
            TcpOptions::default(),
            TcpOptions::default(),
            1,
        );
        sim.run();
        let stats = sim.net().conn_stats(cid, End::B);
        (sim.into_app(), stats)
    }

    #[test]
    fn scripted_burst_loss_triggers_fast_retransmit_not_rto() {
        // Round 2 of the 60 KB response leaves the server at ~250 ms (ACKs
        // of the IW4 round arrive back at one RTT + handshake). A
        // degenerate Gilbert–Elliott episode with p_enter = p_exit =
        // bad_loss = 1 over [240 ms, 260 ms) deterministically drops every
        // *other* packet transmitted in the window, so the surviving
        // segments arrive out of order, generate three duplicate ACKs and
        // trigger fast retransmit — the RTO never fires.
        let burst = LinkFault::burst_loss(
            NodeId(1),
            NodeId(2),
            SimTime::from_millis(240),
            SimTime::from_millis(260),
            1.0,
            1.0,
            1.0,
        );
        let (clean, clean_stats) = run_faulty(60_000, vec![]);
        let (app, stats) = run_faulty(60_000, vec![burst.clone()]);
        assert_eq!(clean_stats, crate::endpoint::ConnStats::default());
        assert_eq!(app.got, 60_000, "all bytes must arrive despite the burst");
        assert_eq!(stats.fast_retransmits, 1);
        assert_eq!(stats.timeouts, 0, "dup-ACK recovery must beat the RTO");
        assert!(
            stats.retransmitted_segs >= 3,
            "alternating drops lose >=3 segs"
        );
        assert!(
            app.response_done_at.unwrap() > clean.response_done_at.unwrap(),
            "recovery must cost time"
        );
        // The scripted episode is deterministic: an identical run produces
        // an identical trajectory.
        let (again, again_stats) = run_faulty(60_000, vec![burst]);
        assert_eq!(app.response_done_at, again.response_done_at);
        assert_eq!(stats, again_stats);
    }

    #[test]
    fn scripted_blackhole_forces_rto_with_exponential_backoff() {
        // The lone request segment leaves the client at 100 ms (one RTT of
        // handshake). A blackhole starting at 95 ms swallows it; with no
        // other data in flight the only recovery is the retransmission
        // timer: initial RTO 300 ms (srtt 100 + 4·rttvar 50), then Karn
        // backoff doubles it, so retransmissions leave at 400 ms, 1000 ms,
        // 2200 ms, ... Each scripted window length therefore pins an exact
        // timeout count.
        let run = |end_ms: u64| {
            let mut sim = Sim::new(42, Echoish::new(400, 5_000));
            sim.net().add_link_fault(LinkFault::link_outage(
                NodeId(1),
                NodeId(2),
                SimTime::from_millis(95),
                SimTime::from_millis(end_ms),
            ));
            let cid = sim.net().open(
                NodeId(1),
                NodeId(2),
                PathParams::ideal(100.0),
                TcpOptions::default(),
                TcpOptions::default(),
                1,
            );
            sim.run();
            let stats = sim.net().conn_stats(cid, End::A);
            let app = sim.into_app();
            assert_eq!(app.got, 5_000, "transfer must complete after the outage");
            assert_eq!(stats.fast_retransmits, 0, "a silent flight cannot dup-ACK");
            (stats.timeouts, app.request_done_at.unwrap())
        };
        // Window ends before the first RTO fire: one timeout, request
        // arrives at 400 + 50 ms.
        let (n1, t1) = run(110);
        assert_eq!(n1, 1);
        // Window swallows the first retransmission too: the second fire
        // waits a doubled RTO.
        let (n2, t2) = run(500);
        assert_eq!(n2, 2);
        // And a third, doubled again.
        let (n3, t3) = run(1100);
        assert_eq!(n3, 3);
        let gap1 = t2.saturating_since(t1).as_millis_f64();
        let gap2 = t3.saturating_since(t2).as_millis_f64();
        assert!((gap1 - 600.0).abs() < 1.0, "first backoff gap {gap1}ms");
        assert!((gap2 - 1200.0).abs() < 1.0, "second backoff gap {gap2}ms");
    }

    #[test]
    fn non_matching_fault_windows_are_inert() {
        // Faults scoped to other links/nodes — or to a window after the
        // transfer ends — must leave the trajectory byte-identical: the
        // fault layer draws from its own named RNG stream only for
        // packets actually inside a matching window.
        let (clean, clean_stats) = run_faulty(60_000, vec![]);
        let (faulted, faulted_stats) = run_faulty(
            60_000,
            vec![
                LinkFault::link_outage(
                    NodeId(7),
                    NodeId(8),
                    SimTime::ZERO,
                    SimTime::from_secs(3600),
                ),
                LinkFault::node_outage(NodeId(9), SimTime::ZERO, SimTime::from_secs(3600)),
                LinkFault::burst_loss(
                    NodeId(1),
                    NodeId(2),
                    SimTime::from_secs(1800),
                    SimTime::from_secs(1900),
                    0.5,
                    0.5,
                    1.0,
                ),
            ],
        );
        assert_eq!(clean.response_done_at, faulted.response_done_at);
        assert_eq!(clean.data_events, faulted.data_events);
        assert_eq!(clean_stats, faulted_stats);
    }

    #[test]
    fn aborted_connection_goes_silent_and_quiesces() {
        // Abort mid-transfer: no further callbacks (in particular no
        // on_fin), timers are disarmed, and the event queue drains
        // without the transfer completing.
        let mut sim = Sim::new(42, Echoish::new(400, 60_000));
        let cid = sim.net().open(
            NodeId(1),
            NodeId(2),
            PathParams::ideal(100.0),
            TcpOptions::default(),
            TcpOptions::default(),
            1,
        );
        sim.run_until(SimTime::from_millis(220));
        sim.net().abort(cid);
        assert!(sim.net().is_aborted(cid));
        sim.run();
        let app = sim.into_app();
        assert!(app.got < 60_000, "aborted transfer must not complete");
        assert!(app.response_done_at.is_none());
        assert!(app.fins.is_empty(), "abort must not surface FIN callbacks");
    }

    #[test]
    fn node_outage_blackholes_both_directions() {
        // An outage of the server node during the whole response window
        // stalls the transfer until the node recovers.
        let (clean, _) = run_faulty(5_000, vec![]);
        let (app, stats) = run_faulty(
            5_000,
            vec![LinkFault::node_outage(
                NodeId(2),
                SimTime::from_millis(140),
                SimTime::from_millis(600),
            )],
        );
        assert_eq!(app.got, 5_000);
        assert!(stats.timeouts >= 1, "outage must force at least one RTO");
        assert!(
            app.response_done_at.unwrap() > clean.response_done_at.unwrap(),
            "outage must delay completion"
        );
    }

    #[test]
    fn two_connections_are_independent() {
        struct TwoConn {
            done: Vec<(ConnId, SimTime)>,
        }
        impl App for TwoConn {
            fn on_established(&mut self, net: &mut Net, conn: ConnId, end: End) {
                if end == End::A {
                    net.send(conn, End::A, 400, Marker::Request, 1);
                }
            }
            fn on_data(&mut self, net: &mut Net, conn: ConnId, end: End, _s: &[DeliveredSpan]) {
                if end == End::B {
                    net.send(conn, End::B, 1000, Marker::Static, 2);
                } else {
                    self.done.push((conn, net.now()));
                }
            }
        }
        let mut sim = Sim::new(42, TwoConn { done: Vec::new() });
        let c1 = sim.net().open(
            NodeId(1),
            NodeId(2),
            PathParams::ideal(20.0),
            TcpOptions::default(),
            TcpOptions::default(),
            1,
        );
        let c2 = sim.net().open(
            NodeId(3),
            NodeId(4),
            PathParams::ideal(200.0),
            TcpOptions::default(),
            TcpOptions::default(),
            2,
        );
        sim.run();
        let app = sim.into_app();
        assert_eq!(app.done.len(), 2);
        let t1 = app.done.iter().find(|(c, _)| *c == c1).unwrap().1;
        let t2 = app.done.iter().find(|(c, _)| *c == c2).unwrap().1;
        assert!(t1 < t2, "short-RTT conn must finish first");
    }
}
