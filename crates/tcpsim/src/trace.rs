//! Packet tracing — the simulator's tcpdump.
//!
//! Every transmitted, received and dropped packet can be recorded as a
//! [`PktEvent`] tagged with the observing node, the connection, and the
//! application-assigned *session* id (`user`). The capture/analysis
//! pipeline consumes traces **per session** via [`TraceLog::take_session`]
//! so long experiment runs do not accumulate gigabytes of events: the
//! harness extracts each query's timeline as soon as the query completes
//! and drops the raw packets.

use crate::net::{ConnId, NodeId};
use crate::segment::{PktKind, Segment, SpanVec};
use simcore::time::SimTime;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Direction of a packet event relative to the observing node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PktDir {
    /// The node transmitted this packet.
    Tx,
    /// The node received this packet.
    Rx,
    /// The packet was transmitted by this node but lost on the path.
    Drop,
}

/// One observed packet event.
#[derive(Clone, Debug, PartialEq)]
pub struct PktEvent {
    /// Virtual time of the observation.
    pub t: SimTime,
    /// Observing node.
    pub node: NodeId,
    /// Connection the packet belongs to.
    pub conn: ConnId,
    /// Application-assigned session id.
    pub session: u64,
    /// Direction.
    pub dir: PktDir,
    /// Packet kind.
    pub kind: PktKind,
    /// Sequence number.
    pub seq: u64,
    /// Payload length.
    pub len: u32,
    /// Acknowledgement number.
    pub ack: u64,
    /// PSH flag.
    pub push: bool,
    /// Content spans (payload labelling).
    pub meta: SpanVec,
}

/// A multiply-shift hasher for the session-id index. Session ids are
/// small sequential integers; SipHash (the `HashMap` default, keyed for
/// HashDoS resistance) costs more than the rest of the record path for
/// such keys. This hasher is deterministic, which also keeps the trace
/// store free of per-process randomness.
#[derive(Default)]
struct SessionHasher(u64);

impl Hasher for SessionHasher {
    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys are ever hashed; this path exists to satisfy the
        // trait.
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_u64(&mut self, n: u64) {
        // splitmix64-style finalizer: full avalanche on 64 bits.
        let mut z = self.0 ^ n.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = z ^ (z >> 31);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// One session's event buffer in the arena.
#[derive(Debug)]
struct Bucket {
    session: u64,
    in_use: bool,
    events: Vec<PktEvent>,
}

/// A per-session packet trace store.
///
/// Buffers are held in an arena (`buckets`) addressed through a
/// session-id index; `last` caches the bucket of the most recent record
/// so the common case — consecutive packets of the same session — skips
/// the index entirely. Buckets freed by [`TraceLog::take_session`] are
/// recycled with their capacity, so a long campaign that extracts each
/// query's trace as it completes reaches a steady state where recording
/// allocates nothing.
#[derive(Debug, Default)]
pub struct TraceLog {
    enabled: bool,
    index: HashMap<u64, usize, BuildHasherDefault<SessionHasher>>,
    buckets: Vec<Bucket>,
    free: Vec<usize>,
    /// Arena slot of the most recently recorded session (cache hint;
    /// `usize::MAX` when invalid).
    last: usize,
    recorded: u64,
}

impl TraceLog {
    /// Creates a trace log; recording starts disabled.
    pub fn new() -> TraceLog {
        TraceLog::default()
    }

    /// Enables or disables recording (throughput benches disable it).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// True when recording.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Total events recorded since creation (including taken ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Records a packet observation.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        t: SimTime,
        node: NodeId,
        conn: ConnId,
        session: u64,
        dir: PktDir,
        seg: &Segment,
    ) {
        if !self.enabled {
            return;
        }
        self.recorded += 1;
        let idx = match self.buckets.get_mut(self.last) {
            Some(b) if b.in_use && b.session == session => self.last,
            _ => self.bucket_for(session),
        };
        self.last = idx;
        self.buckets[idx].events.push(PktEvent {
            t,
            node,
            conn,
            session,
            dir,
            kind: seg.kind,
            seq: seg.seq,
            len: seg.len,
            ack: seg.ack,
            push: seg.push,
            // For an un-spilled span list this is a bitwise copy, not an
            // allocation.
            meta: seg.meta.clone(),
        });
    }

    /// Index lookup / arena insertion for `session` (the cache-miss path
    /// of [`TraceLog::record`]).
    fn bucket_for(&mut self, session: u64) -> usize {
        if let Some(&idx) = self.index.get(&session) {
            return idx;
        }
        let idx = match self.free.pop() {
            // Recycled slot: keeps the previous tenant's capacity.
            Some(idx) => idx,
            None => {
                self.buckets.push(Bucket {
                    session,
                    in_use: false,
                    // Pre-size fresh buffers: even a loss-free
                    // request/response session records a few dozen
                    // events per observing node, so growing from
                    // capacity 0 (4, 8, ...) reallocates several times
                    // per session on the hot path.
                    events: Vec::with_capacity(32),
                });
                self.buckets.len() - 1
            }
        };
        let b = &mut self.buckets[idx];
        b.session = session;
        b.in_use = true;
        b.events.clear();
        self.index.insert(session, idx);
        idx
    }

    /// Detaches `session`'s buffer from the arena, recycling its slot.
    fn detach(&mut self, session: u64) -> Option<Vec<PktEvent>> {
        let idx = self.index.remove(&session)?;
        let b = &mut self.buckets[idx];
        b.in_use = false;
        let events = std::mem::take(&mut b.events);
        self.free.push(idx);
        if self.last == idx {
            self.last = usize::MAX;
        }
        Some(events)
    }

    /// Removes and returns all events of one session (ordered by time,
    /// which is the recording order). Returns an empty vec for unknown
    /// sessions.
    pub fn take_session(&mut self, session: u64) -> Vec<PktEvent> {
        self.detach(session).unwrap_or_default()
    }

    /// Like [`TraceLog::take_session`], but distinguishes "tracing is
    /// off" from "this session recorded no packets": returns `None` when
    /// no events are buffered for the session **and** recording is
    /// disabled. Harnesses use this to surface a typed
    /// tracing-was-disabled error instead of silently analysing an empty
    /// timeline.
    pub fn try_take_session(&mut self, session: u64) -> Option<Vec<PktEvent>> {
        match self.detach(session) {
            Some(events) => Some(events),
            None if self.enabled => Some(Vec::new()),
            None => None,
        }
    }

    /// Read-only view of a session's events so far.
    pub fn peek_session(&self, session: u64) -> &[PktEvent] {
        self.index
            .get(&session)
            .map(|&idx| self.buckets[idx].events.as_slice())
            .unwrap_or(&[])
    }

    /// Number of sessions currently buffered.
    pub fn buffered_sessions(&self) -> usize {
        self.index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{Marker, MetaSpan};

    fn seg() -> Segment {
        Segment {
            kind: PktKind::Data,
            seq: 0,
            len: 100,
            ack: 5,
            push: true,
            wnd: 1000,
            meta: vec![MetaSpan {
                offset: 0,
                len: 100,
                marker: Marker::Request,
                content: 1,
            }]
            .into(),
        }
    }

    #[test]
    fn disabled_by_default() {
        let mut log = TraceLog::new();
        log.record(SimTime::ZERO, NodeId(1), ConnId(0), 7, PktDir::Tx, &seg());
        assert_eq!(log.recorded(), 0);
        assert!(log.take_session(7).is_empty());
        assert_eq!(
            log.try_take_session(7),
            None,
            "tracing off and nothing buffered must be distinguishable"
        );
    }

    #[test]
    fn try_take_distinguishes_disabled_from_quiet_session() {
        let mut log = TraceLog::new();
        log.set_enabled(true);
        // Tracing on, session never saw a packet: a legitimate empty
        // timeline, not an error.
        assert_eq!(log.try_take_session(3), Some(Vec::new()));
        log.record(SimTime::ZERO, NodeId(1), ConnId(0), 5, PktDir::Tx, &seg());
        assert_eq!(log.try_take_session(5).map(|v| v.len()), Some(1));
        // Events buffered before tracing was switched off still come out.
        log.record(SimTime::ZERO, NodeId(1), ConnId(0), 6, PktDir::Tx, &seg());
        log.set_enabled(false);
        assert_eq!(log.try_take_session(6).map(|v| v.len()), Some(1));
        assert_eq!(log.try_take_session(6), None);
    }

    #[test]
    fn records_and_takes_by_session() {
        let mut log = TraceLog::new();
        log.set_enabled(true);
        for session in [7u64, 7, 9] {
            log.record(
                SimTime::from_millis(session),
                NodeId(1),
                ConnId(0),
                session,
                PktDir::Rx,
                &seg(),
            );
        }
        assert_eq!(log.recorded(), 3);
        assert_eq!(log.buffered_sessions(), 2);
        assert_eq!(log.peek_session(7).len(), 2);
        let s7 = log.take_session(7);
        assert_eq!(s7.len(), 2);
        assert_eq!(s7[0].session, 7);
        assert_eq!(log.buffered_sessions(), 1);
        assert!(log.take_session(7).is_empty());
        assert_eq!(log.recorded(), 3, "taking does not erase the counter");
    }

    #[test]
    fn buckets_are_recycled_after_take() {
        // Campaign pattern: record a session, take it, record the next.
        // The arena must reuse the freed slot (with its capacity) instead
        // of growing, and interleaved sessions must not cross-talk
        // through the last-bucket cache.
        let mut log = TraceLog::new();
        log.set_enabled(true);
        for session in 0..100u64 {
            let other = session + 1_000;
            for _ in 0..3 {
                log.record(
                    SimTime::ZERO,
                    NodeId(1),
                    ConnId(0),
                    session,
                    PktDir::Tx,
                    &seg(),
                );
                log.record(
                    SimTime::ZERO,
                    NodeId(2),
                    ConnId(1),
                    other,
                    PktDir::Rx,
                    &seg(),
                );
            }
            let a = log.take_session(session);
            let b = log.take_session(other);
            assert_eq!(a.len(), 3);
            assert_eq!(b.len(), 3);
            assert!(a.iter().all(|e| e.session == session));
            assert!(b.iter().all(|e| e.session == other));
        }
        assert_eq!(log.buffered_sessions(), 0);
        assert!(
            log.buckets.len() <= 4,
            "arena grew to {} buckets for 2 concurrent sessions",
            log.buckets.len()
        );
        assert_eq!(log.recorded(), 600);
    }

    #[test]
    fn event_fields_copied_from_segment() {
        let mut log = TraceLog::new();
        log.set_enabled(true);
        log.record(
            SimTime::from_millis(3),
            NodeId(4),
            ConnId(2),
            1,
            PktDir::Drop,
            &seg(),
        );
        let ev = &log.take_session(1)[0];
        assert_eq!(ev.dir, PktDir::Drop);
        assert_eq!(ev.kind, PktKind::Data);
        assert_eq!(ev.len, 100);
        assert_eq!(ev.ack, 5);
        assert!(ev.push);
        assert_eq!(ev.meta.len(), 1);
    }
}
