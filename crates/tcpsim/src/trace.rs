//! Packet tracing — the simulator's tcpdump.
//!
//! Every transmitted, received and dropped packet can be recorded as a
//! [`PktEvent`] tagged with the observing node, the connection, and the
//! application-assigned *session* id (`user`). The capture/analysis
//! pipeline consumes traces **per session** via [`TraceLog::take_session`]
//! so long experiment runs do not accumulate gigabytes of events: the
//! harness extracts each query's timeline as soon as the query completes
//! and drops the raw packets.

use crate::net::{ConnId, NodeId};
use crate::segment::{MetaSpan, PktKind, Segment};
use simcore::time::SimTime;
use std::collections::HashMap;

/// Direction of a packet event relative to the observing node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PktDir {
    /// The node transmitted this packet.
    Tx,
    /// The node received this packet.
    Rx,
    /// The packet was transmitted by this node but lost on the path.
    Drop,
}

/// One observed packet event.
#[derive(Clone, Debug, PartialEq)]
pub struct PktEvent {
    /// Virtual time of the observation.
    pub t: SimTime,
    /// Observing node.
    pub node: NodeId,
    /// Connection the packet belongs to.
    pub conn: ConnId,
    /// Application-assigned session id.
    pub session: u64,
    /// Direction.
    pub dir: PktDir,
    /// Packet kind.
    pub kind: PktKind,
    /// Sequence number.
    pub seq: u64,
    /// Payload length.
    pub len: u32,
    /// Acknowledgement number.
    pub ack: u64,
    /// PSH flag.
    pub push: bool,
    /// Content spans (payload labelling).
    pub meta: Vec<MetaSpan>,
}

/// A per-session packet trace store.
#[derive(Debug, Default)]
pub struct TraceLog {
    enabled: bool,
    by_session: HashMap<u64, Vec<PktEvent>>,
    recorded: u64,
}

impl TraceLog {
    /// Creates a trace log; recording starts disabled.
    pub fn new() -> TraceLog {
        TraceLog::default()
    }

    /// Enables or disables recording (throughput benches disable it).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// True when recording.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Total events recorded since creation (including taken ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Records a packet observation.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        t: SimTime,
        node: NodeId,
        conn: ConnId,
        session: u64,
        dir: PktDir,
        seg: &Segment,
    ) {
        if !self.enabled {
            return;
        }
        self.recorded += 1;
        self.by_session.entry(session).or_default().push(PktEvent {
            t,
            node,
            conn,
            session,
            dir,
            kind: seg.kind,
            seq: seg.seq,
            len: seg.len,
            ack: seg.ack,
            push: seg.push,
            meta: seg.meta.clone(),
        });
    }

    /// Removes and returns all events of one session (ordered by time,
    /// which is the recording order). Returns an empty vec for unknown
    /// sessions.
    pub fn take_session(&mut self, session: u64) -> Vec<PktEvent> {
        self.by_session.remove(&session).unwrap_or_default()
    }

    /// Read-only view of a session's events so far.
    pub fn peek_session(&self, session: u64) -> &[PktEvent] {
        self.by_session
            .get(&session)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Number of sessions currently buffered.
    pub fn buffered_sessions(&self) -> usize {
        self.by_session.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::Marker;

    fn seg() -> Segment {
        Segment {
            kind: PktKind::Data,
            seq: 0,
            len: 100,
            ack: 5,
            push: true,
            wnd: 1000,
            meta: vec![MetaSpan {
                offset: 0,
                len: 100,
                marker: Marker::Request,
                content: 1,
            }],
        }
    }

    #[test]
    fn disabled_by_default() {
        let mut log = TraceLog::new();
        log.record(SimTime::ZERO, NodeId(1), ConnId(0), 7, PktDir::Tx, &seg());
        assert_eq!(log.recorded(), 0);
        assert!(log.take_session(7).is_empty());
    }

    #[test]
    fn records_and_takes_by_session() {
        let mut log = TraceLog::new();
        log.set_enabled(true);
        for session in [7u64, 7, 9] {
            log.record(
                SimTime::from_millis(session),
                NodeId(1),
                ConnId(0),
                session,
                PktDir::Rx,
                &seg(),
            );
        }
        assert_eq!(log.recorded(), 3);
        assert_eq!(log.buffered_sessions(), 2);
        assert_eq!(log.peek_session(7).len(), 2);
        let s7 = log.take_session(7);
        assert_eq!(s7.len(), 2);
        assert_eq!(s7[0].session, 7);
        assert_eq!(log.buffered_sessions(), 1);
        assert!(log.take_session(7).is_empty());
        assert_eq!(log.recorded(), 3, "taking does not erase the counter");
    }

    #[test]
    fn event_fields_copied_from_segment() {
        let mut log = TraceLog::new();
        log.set_enabled(true);
        log.record(
            SimTime::from_millis(3),
            NodeId(4),
            ConnId(2),
            1,
            PktDir::Drop,
            &seg(),
        );
        let ev = &log.take_session(1)[0];
        assert_eq!(ev.dir, PktDir::Drop);
        assert_eq!(ev.kind, PktKind::Data);
        assert_eq!(ev.len, 100);
        assert_eq!(ev.ack, 5);
        assert!(ev.push);
        assert_eq!(ev.meta.len(), 1);
    }
}
