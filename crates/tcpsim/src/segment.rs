//! TCP segments and application-layer content markers.
//!
//! Sequence numbers are absolute byte offsets into the application stream
//! (no ISN, no wrap): the simulator does not need wrap-around arithmetic
//! and absolute offsets make traces self-describing. SYN and FIN are
//! carried as segment kinds; a FIN consumes one virtual sequence number
//! (`stream_len`), so "everything including the FIN was acknowledged"
//! is `ack == stream_len + 1` as in real TCP.

/// Application-layer classification of a byte range — the simulator's
/// stand-in for packet payload content.
///
/// The ground-truth markers let tests validate the *inference* pipeline,
/// which must work them out from timing and cross-query content
/// comparison alone, exactly as the paper does with tcpdump payloads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Marker {
    /// An HTTP request (client → FE, or FE → BE query).
    Request,
    /// The static portion of a response: HTTP header, HTML head, CSS,
    /// static menu bar — identical across queries, cached at the FE.
    Static,
    /// The dynamic portion: keyword-dependent results and ads, generated
    /// at the BE.
    Dynamic,
    /// A back-end query on the FE↔BE leg.
    BeQuery,
    /// A back-end response on the FE↔BE leg.
    BeResponse,
    /// A degraded-service error marker: the FE could not reach any
    /// back-end before its fetch deadline and served an error stub in
    /// place of the dynamic portion.
    Error,
    /// Anything else (background traffic, probes). Also the `Default`,
    /// so empty [`SpanVec`] inline slots are inert.
    #[default]
    Other,
}

/// A labelled byte range within a segment: `len` bytes starting at
/// absolute stream offset `offset`, carrying `marker`ed content with
/// content identity `content`.
///
/// `content` models "the bytes themselves": two ranges with equal
/// `content` ids carry identical bytes. The static portion of every
/// response to the same service reuses one content id; dynamic portions
/// get per-query ids. The content-analysis classifier in `capture`
/// compares these ids across sessions, which is the simulator analogue of
/// diffing HTTP payloads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetaSpan {
    /// Absolute stream offset of the first byte.
    pub offset: u64,
    /// Length in bytes.
    pub len: u32,
    /// Content class.
    pub marker: Marker,
    /// Content identity (equal ids ⇔ equal bytes).
    pub content: u64,
}

/// The span list attached to segments and trace events: inline storage
/// for two spans, heap spill beyond.
///
/// A segment either sits inside one application chunk (1 span) or
/// straddles one chunk boundary (2 spans); more only happens when an MSS
/// covers several tiny chunks. Sizing the inline capacity for the common
/// case makes segment construction, trace recording and delivery
/// allocation-free — the core of the `bench_tcpsim` hot-path win.
pub type SpanVec = simcore::smallvec::SmallVec<MetaSpan, 2>;

/// Kind of a TCP packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PktKind {
    /// Connection-opening SYN.
    Syn,
    /// SYN+ACK from the acceptor.
    SynAck,
    /// Pure acknowledgement (no payload).
    Ack,
    /// Payload-carrying segment (also acknowledges).
    Data,
    /// Connection-closing FIN (consumes one sequence number).
    Fin,
}

/// One TCP packet on the wire.
#[derive(Clone, Debug)]
pub struct Segment {
    /// Packet kind.
    pub kind: PktKind,
    /// Sequence number (absolute stream offset) of the first payload
    /// byte; for FIN, the offset the FIN occupies.
    pub seq: u64,
    /// Payload length in bytes (0 for Syn/SynAck/Ack/Fin).
    pub len: u32,
    /// Cumulative acknowledgement: next byte expected from the peer.
    pub ack: u64,
    /// PSH flag: set on the final segment of an application chunk.
    pub push: bool,
    /// Receive window advertised by the sender of this segment.
    pub wnd: u64,
    /// Labelled content spans covering the payload (empty unless `Data`).
    pub meta: SpanVec,
}

/// IP + TCP header overhead assumed for wire-size accounting.
pub const HEADER_BYTES: u32 = 40;

impl Segment {
    /// Total bytes this packet occupies on the wire.
    pub fn wire_bytes(&self) -> u32 {
        self.len + HEADER_BYTES
    }

    /// End of the sequence range this packet occupies (exclusive).
    /// FIN consumes one virtual byte.
    pub fn seq_end(&self) -> u64 {
        match self.kind {
            PktKind::Fin => self.seq + 1,
            _ => self.seq + self.len as u64,
        }
    }

    /// True if the packet carries payload bytes.
    pub fn has_payload(&self) -> bool {
        self.len > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_seg() -> Segment {
        Segment {
            kind: PktKind::Data,
            seq: 1000,
            len: 1460,
            ack: 42,
            push: false,
            wnd: 65535,
            meta: vec![MetaSpan {
                offset: 1000,
                len: 1460,
                marker: Marker::Static,
                content: 7,
            }]
            .into(),
        }
    }

    #[test]
    fn wire_bytes_include_headers() {
        assert_eq!(data_seg().wire_bytes(), 1500);
        let ack = Segment {
            kind: PktKind::Ack,
            seq: 0,
            len: 0,
            ack: 10,
            push: false,
            wnd: 65535,
            meta: SpanVec::new(),
        };
        assert_eq!(ack.wire_bytes(), 40);
    }

    #[test]
    fn seq_end_for_data_and_fin() {
        assert_eq!(data_seg().seq_end(), 2460);
        let fin = Segment {
            kind: PktKind::Fin,
            seq: 5000,
            len: 0,
            ack: 0,
            push: false,
            wnd: 0,
            meta: SpanVec::new(),
        };
        assert_eq!(fin.seq_end(), 5001);
        assert!(!fin.has_payload());
        assert!(data_seg().has_payload());
    }
}
