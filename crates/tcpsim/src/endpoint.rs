//! The per-endpoint TCP state machine.
//!
//! [`Endpoint`] holds sender and receiver state and implements the
//! protocol *decisions* (congestion control, RTT estimation, receive-side
//! reassembly, ACK policy) as pure state transitions returning action
//! values. Packet construction, link modelling and timers live in
//! [`crate::net`] — this split keeps the algorithms unit-testable without
//! an event loop.

use crate::cubic::CubicState;
use crate::opts::{CongAlgo, TcpOptions};
use crate::segment::{Marker, MetaSpan, SpanVec};
use simcore::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Loss-recovery counters of one endpoint — exposed for the loss
/// experiments and for assertions that clean paths stay clean.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Fast retransmits entered (3 duplicate ACKs).
    pub fast_retransmits: u64,
    /// Retransmission timeouts fired with data outstanding.
    pub timeouts: u64,
    /// Total segments retransmitted (either way).
    pub retransmitted_segs: u64,
}

/// Connection state (simplified lifecycle; no TIME_WAIT — the simulator
/// never reuses ports).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcpState {
    /// Not yet opened (acceptor before SYN arrives).
    Closed,
    /// Initiator sent SYN, awaiting SYN-ACK.
    SynSent,
    /// Acceptor sent SYN-ACK, awaiting ACK.
    SynRcvd,
    /// Data transfer.
    Established,
    /// Both FINs exchanged and acknowledged.
    Done,
}

/// One application chunk appended to the send stream.
#[derive(Clone, Debug)]
pub struct Chunk {
    /// Stream offset one past the chunk's last byte.
    pub end_off: u64,
    /// Content class.
    pub marker: Marker,
    /// Content identity.
    pub content: u64,
}

/// An out-of-order segment parked in the receive buffer.
#[derive(Clone, Debug)]
pub struct OooSeg {
    /// Payload length.
    pub len: u32,
    /// PSH flag.
    pub push: bool,
    /// Content spans.
    pub meta: SpanVec,
    /// True if this parked entry is the peer's FIN.
    pub fin: bool,
}

/// What the receiver wants done after accepting a segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AckPolicy {
    /// Send an ACK immediately (second segment, PSH, out-of-order,
    /// duplicate, or delayed ACKs disabled).
    Immediate,
    /// Arm (or leave armed) the delayed-ACK timer.
    Delayed,
}

/// Sender-side reaction to an incoming acknowledgement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AckReaction {
    /// Nothing special; try to pump more data.
    Advance,
    /// Third duplicate ACK: enter fast retransmit, resend `snd_una`.
    FastRetransmit,
    /// Partial ACK during recovery (NewReno): resend the next hole.
    PartialRetransmit,
    /// Duplicate ACK during recovery: window inflated, pump.
    RecoveryInflate,
    /// Ignored (old ACK or no outstanding data).
    Ignored,
}

/// The TCP endpoint.
#[derive(Clone, Debug)]
pub struct Endpoint {
    /// Configuration.
    pub opts: TcpOptions,
    /// Lifecycle state.
    pub state: TcpState,

    // ---- send side ----
    /// Application chunks (cumulative offsets) — the send stream map.
    /// Chunks wholly below the ACKed frontier are pruned; the first
    /// entry starts at [`Endpoint::chunks_base`], not necessarily 0.
    pub chunks: Vec<Chunk>,
    /// Stream offset where `chunks[0]` starts (the end of the last
    /// pruned chunk). Invariant: `chunks_base <= snd_una`, so every
    /// range the sender can still (re)transmit is covered.
    pub chunks_base: u64,
    /// Cursor into `chunks`: the index where the previous
    /// [`Endpoint::meta_for_range`] lookup ended. Sends are sequential,
    /// so the next lookup almost always resumes here (O(1)) instead of
    /// rescanning the chunk map; out-of-order offsets (retransmissions)
    /// fall back to a binary search.
    pub chunk_cursor: usize,
    /// Total bytes appended to the send stream.
    pub stream_len: u64,
    /// Oldest unacknowledged sequence number.
    pub snd_una: u64,
    /// Next sequence number to send.
    pub snd_nxt: u64,
    /// Congestion window in bytes (fractional for CA accumulation).
    pub cwnd: f64,
    /// Slow-start threshold in bytes.
    pub ssthresh: f64,
    /// Peer's advertised receive window.
    pub peer_rwnd: u64,
    /// Consecutive duplicate-ACK count.
    pub dup_acks: u32,
    /// NewReno recovery point (snd_nxt at loss detection).
    pub recover: u64,
    /// True while in fast recovery.
    pub in_recovery: bool,
    /// Smoothed RTT in ms (None before the first sample).
    pub srtt_ms: Option<f64>,
    /// RTT variance in ms.
    pub rttvar_ms: f64,
    /// Current retransmission timeout.
    pub rto: SimDuration,
    /// Timer generation counter (invalidates stale timer events).
    pub rto_gen: u64,
    /// Whether an RTO timer is outstanding.
    pub rto_armed: bool,
    /// In-flight RTT probe: `(seq_end, sent_at)`; cleared on any
    /// retransmission (Karn's algorithm).
    pub rtt_probe: Option<(u64, SimTime)>,
    /// Time of last segment transmission (for slow-start-after-idle).
    pub last_send: SimTime,
    /// FIN requested by the application.
    pub fin_pending: bool,
    /// FIN transmitted.
    pub fin_sent: bool,
    /// Number of handshake (re)transmissions so far.
    pub syn_sent_count: u32,

    // ---- receive side ----
    /// Next byte expected in order.
    pub rcv_nxt: u64,
    /// Out-of-order reassembly buffer keyed by sequence number.
    pub ooo: BTreeMap<u64, OooSeg>,
    /// Whether a delayed ACK is pending.
    pub delack_armed: bool,
    /// Delayed-ACK timer generation.
    pub delack_gen: u64,
    /// Peer's FIN sequence (once seen).
    pub peer_fin_seq: Option<u64>,
    /// The peer FIN has been consumed (rcv_nxt advanced past it).
    pub peer_fin_rcvd: bool,
    /// CUBIC growth state (unused under Reno).
    pub cubic: CubicState,
    /// Loss-recovery counters.
    pub stats: ConnStats,
}

impl Endpoint {
    /// Creates a fresh endpoint in `Closed` state.
    pub fn new(opts: TcpOptions) -> Endpoint {
        let cwnd = opts.initial_cwnd();
        let rto = opts.initial_rto;
        Endpoint {
            opts,
            state: TcpState::Closed,
            chunks: Vec::new(),
            chunks_base: 0,
            chunk_cursor: 0,
            stream_len: 0,
            snd_una: 0,
            snd_nxt: 0,
            cwnd,
            ssthresh: f64::INFINITY,
            peer_rwnd: u64::MAX,
            dup_acks: 0,
            recover: 0,
            in_recovery: false,
            srtt_ms: None,
            rttvar_ms: 0.0,
            rto,
            rto_gen: 0,
            rto_armed: false,
            rtt_probe: None,
            last_send: SimTime::ZERO,
            fin_pending: false,
            fin_sent: false,
            syn_sent_count: 0,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            delack_armed: false,
            delack_gen: 0,
            peer_fin_seq: None,
            peer_fin_rcvd: false,
            cubic: CubicState::default(),
            stats: ConnStats::default(),
        }
    }

    /// Bytes currently in flight.
    pub fn in_flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// The effective send window: min(cwnd, peer receive window).
    pub fn send_window(&self) -> u64 {
        (self.cwnd.max(0.0) as u64).min(self.peer_rwnd)
    }

    /// Bytes of fresh window available right now.
    pub fn usable_window(&self) -> u64 {
        self.send_window().saturating_sub(self.in_flight())
    }

    /// Appends an application chunk to the send stream.
    pub fn push_chunk(&mut self, len: u64, marker: Marker, content: u64) {
        assert!(len > 0, "push_chunk: empty chunk");
        assert!(!self.fin_pending, "push_chunk after close");
        self.stream_len += len;
        self.chunks.push(Chunk {
            end_off: self.stream_len,
            marker,
            content,
        });
    }

    /// Stream offset where chunk `i` starts.
    fn chunk_start(&self, i: usize) -> u64 {
        if i == 0 {
            self.chunks_base
        } else {
            self.chunks[i - 1].end_off
        }
    }

    /// The meta spans covering stream range `[from, from+len)`, rebuilt
    /// from the chunk map (also used for retransmissions).
    ///
    /// Resumes from the cursor left by the previous lookup: sequential
    /// sends are O(spans) instead of O(chunks), and any out-of-order
    /// `from` (fast retransmit, RTO resend) repositions by binary
    /// search. Requires `from >= chunks_base` — guaranteed inside the
    /// simulator because only ranges at or above `snd_una` are ever
    /// (re)transmitted and pruning stops at the ACKed frontier.
    pub fn meta_for_range(&mut self, from: u64, len: u32) -> SpanVec {
        debug_assert!(
            from >= self.chunks_base,
            "meta_for_range below the pruned frontier: {from} < {}",
            self.chunks_base
        );
        let to = from + len as u64;
        let mut out = SpanVec::new();
        let n = self.chunks.len();
        // Reposition: the cursor chunk, its successor (a sequential send
        // that just crossed a chunk boundary), or binary search.
        let mut i = self.chunk_cursor;
        let contains =
            |i: usize| i < n && self.chunk_start(i) <= from && from < self.chunks[i].end_off;
        if !contains(i) {
            if contains(i + 1) {
                i += 1;
            } else {
                i = self.chunks.partition_point(|c| c.end_off <= from);
            }
        }
        let mut c_start = self.chunk_start(i.min(n));
        while i < n {
            let c = &self.chunks[i];
            let c_end = c.end_off;
            if c_start >= to {
                break;
            }
            let s = from.max(c_start);
            let e = to.min(c_end);
            out.push(MetaSpan {
                offset: s,
                len: (e - s) as u32,
                marker: c.marker,
                content: c.content,
            });
            c_start = c_end;
            i += 1;
        }
        self.chunk_cursor = i.saturating_sub(1);
        out
    }

    /// True if `[from, from+len)` ends exactly at an application chunk
    /// boundary — those segments carry PSH.
    pub fn range_ends_chunk(&self, from: u64, len: u32) -> bool {
        let to = from + len as u64;
        if to == from {
            return false;
        }
        // Chunk ends are strictly increasing: binary-search for `to`.
        let i = self.chunks.partition_point(|c| c.end_off < to);
        i < self.chunks.len() && self.chunks[i].end_off == to
    }

    /// Drops chunks wholly below the ACKed frontier (`snd_una`): their
    /// bytes can never be retransmitted, so the chunk map stays short on
    /// long-lived connections that stream many application chunks.
    fn prune_acked_chunks(&mut self) {
        let una = self.snd_una;
        let k = self.chunks.partition_point(|c| c.end_off <= una);
        if k > 0 {
            self.chunks_base = self.chunks[k - 1].end_off;
            self.chunks.drain(..k);
            self.chunk_cursor = self.chunk_cursor.saturating_sub(k);
        }
    }

    /// Applies slow-start-after-idle (RFC 2861) if enabled: called before
    /// sending after an idle period.
    pub fn maybe_idle_reset(&mut self, now: SimTime) {
        if self.opts.idle_reset
            && self.in_flight() == 0
            && self.last_send != SimTime::ZERO
            && now.saturating_since(self.last_send) > self.rto
        {
            self.cwnd = self.cwnd.min(self.opts.initial_cwnd());
        }
    }

    /// Records an RTT sample and recomputes the RTO (RFC 6298).
    pub fn rtt_sample(&mut self, sample: SimDuration) {
        let r = sample.as_millis_f64();
        match self.srtt_ms {
            None => {
                self.srtt_ms = Some(r);
                self.rttvar_ms = r / 2.0;
            }
            Some(srtt) => {
                let err = (srtt - r).abs();
                self.rttvar_ms = 0.75 * self.rttvar_ms + 0.25 * err;
                self.srtt_ms = Some(0.875 * srtt + 0.125 * r);
            }
        }
        let rto_ms = self.srtt_ms.unwrap() + (4.0 * self.rttvar_ms).max(1.0);
        self.rto = SimDuration::from_millis_f64(rto_ms)
            .max(self.opts.min_rto)
            .min(self.opts.max_rto);
    }

    /// Processes the acknowledgement field of an incoming packet
    /// (sender-side reaction). `has_payload` suppresses the dup-ACK count
    /// for data-bearing packets, per RFC 5681.
    pub fn on_ack(&mut self, ack: u64, wnd: u64, now: SimTime, has_payload: bool) -> AckReaction {
        self.peer_rwnd = wnd;
        if ack > self.snd_nxt {
            // Acking data we never sent — corrupted event; ignore.
            return AckReaction::Ignored;
        }
        if ack > self.snd_una {
            let acked = ack - self.snd_una;
            self.snd_una = ack;
            self.prune_acked_chunks();
            if let Some((probe_end, sent_at)) = self.rtt_probe {
                if ack >= probe_end {
                    let sample = now.saturating_since(sent_at);
                    self.rtt_sample(sample);
                    self.rtt_probe = None;
                }
            }
            self.dup_acks = 0;
            if self.in_recovery {
                if ack >= self.recover {
                    // Full ACK: leave recovery, deflate to ssthresh.
                    self.in_recovery = false;
                    self.cwnd = self.ssthresh.max(self.opts.mss as f64);
                    return AckReaction::Advance;
                } else {
                    // Partial ACK: retransmit the next hole, deflate by
                    // the amount acked (NewReno).
                    self.cwnd =
                        (self.cwnd - acked as f64 + self.opts.mss as f64).max(self.opts.mss as f64);
                    return AckReaction::PartialRetransmit;
                }
            }
            // Normal cwnd growth.
            if self.cwnd < self.ssthresh {
                // Slow start with ABC (RFC 3465).
                let limit = (self.opts.abc_limit_segs * self.opts.mss) as f64;
                self.cwnd += (acked as f64).min(limit);
            } else {
                let mss = self.opts.mss as f64;
                match self.opts.cong {
                    CongAlgo::Reno => {
                        // Congestion avoidance: +mss per RTT, per-ACK.
                        self.cwnd += (mss * mss / self.cwnd).max(1.0);
                    }
                    CongAlgo::Cubic => {
                        let cwnd_segs = self.cwnd / mss;
                        let srtt_s = self.srtt_ms.unwrap_or(100.0) / 1.0e3;
                        let target = self.cubic.target(now, cwnd_segs, srtt_s);
                        let inc = CubicState::per_ack_increment(target, cwnd_segs);
                        self.cwnd += inc * mss;
                    }
                }
            }
            AckReaction::Advance
        } else if ack == self.snd_una && self.in_flight() > 0 && !has_payload {
            self.dup_acks += 1;
            if self.in_recovery {
                self.cwnd += self.opts.mss as f64;
                return AckReaction::RecoveryInflate;
            }
            if self.dup_acks == 3 {
                let mss = self.opts.mss as f64;
                let beta = self.loss_beta();
                self.cubic.on_loss(self.cwnd / mss);
                self.ssthresh = (self.in_flight() as f64 * beta).max(2.0 * mss);
                self.cwnd = self.ssthresh + 3.0 * mss;
                self.in_recovery = true;
                self.recover = self.snd_nxt;
                self.rtt_probe = None; // Karn
                self.stats.fast_retransmits += 1;
                return AckReaction::FastRetransmit;
            }
            AckReaction::Ignored
        } else {
            AckReaction::Ignored
        }
    }

    /// The multiplicative-decrease factor of the configured algorithm.
    fn loss_beta(&self) -> f64 {
        match self.opts.cong {
            CongAlgo::Reno => 0.5,
            CongAlgo::Cubic => crate::cubic::CUBIC_BETA,
        }
    }

    /// Congestion response to a retransmission timeout.
    pub fn on_rto_fire(&mut self) {
        let mss = self.opts.mss as f64;
        self.cubic.on_loss(self.cwnd / mss);
        self.ssthresh = (self.in_flight() as f64 * self.loss_beta()).max(2.0 * mss);
        self.cwnd = mss;
        self.dup_acks = 0;
        self.in_recovery = false;
        self.rtt_probe = None; // Karn
        self.rto = self.rto.saturating_mul(2).min(self.opts.max_rto);
        self.stats.timeouts += 1;
    }

    /// Receiver-side acceptance of a payload segment (or FIN). Returns
    /// the spans newly delivered in order and the ACK policy.
    pub fn accept(
        &mut self,
        seq: u64,
        len: u32,
        push: bool,
        fin: bool,
        meta: SpanVec,
    ) -> (SpanVec, AckPolicy) {
        let mut delivered = SpanVec::new();
        if fin {
            self.peer_fin_seq = Some(seq);
        }
        let seg_end = seq + if fin { 1 } else { len as u64 };
        if seg_end <= self.rcv_nxt {
            // Complete duplicate: immediate ACK so the sender resyncs.
            return (delivered, AckPolicy::Immediate);
        }
        if seq > self.rcv_nxt {
            // Out of order: park and duplicate-ACK immediately.
            self.ooo.insert(
                seq,
                OooSeg {
                    len,
                    push,
                    meta,
                    fin,
                },
            );
            return (delivered, AckPolicy::Immediate);
        }
        // In order (possibly overlapping an already-received prefix).
        let fresh_from = self.rcv_nxt;
        if fin {
            self.rcv_nxt = seq + 1;
            self.peer_fin_rcvd = true;
        } else {
            self.rcv_nxt = seq + len as u64;
            for span in meta {
                let span_end = span.offset + span.len as u64;
                if span_end > fresh_from {
                    let s = span.offset.max(fresh_from);
                    delivered.push(MetaSpan {
                        offset: s,
                        len: (span_end - s) as u32,
                        marker: span.marker,
                        content: span.content,
                    });
                }
            }
        }
        let mut saw_push = push;
        let filled_gap = !self.ooo.is_empty();
        // Drain contiguous out-of-order segments.
        while let Some((&s, _)) = self.ooo.iter().next() {
            if s > self.rcv_nxt {
                break;
            }
            let seg = self.ooo.remove(&s).unwrap();
            let end = s + if seg.fin { 1 } else { seg.len as u64 };
            if end <= self.rcv_nxt {
                continue; // stale duplicate parked earlier
            }
            let fresh = self.rcv_nxt;
            self.rcv_nxt = end;
            if seg.fin {
                self.peer_fin_rcvd = true;
            } else {
                for span in seg.meta {
                    let span_end = span.offset + span.len as u64;
                    if span_end > fresh {
                        let st = span.offset.max(fresh);
                        delivered.push(MetaSpan {
                            offset: st,
                            len: (span_end - st) as u32,
                            marker: span.marker,
                            content: span.content,
                        });
                    }
                }
            }
            saw_push |= seg.push;
        }
        // ACK policy: immediate on PSH, FIN, a filled gap, disabled
        // delack, or when this is the second unacknowledged segment.
        let policy = if !self.opts.delayed_ack
            || saw_push
            || fin
            || self.peer_fin_rcvd
            || filled_gap
            || !self.ooo.is_empty()
            || self.delack_armed
        {
            AckPolicy::Immediate
        } else {
            AckPolicy::Delayed
        };
        (delivered, policy)
    }

    /// True once every byte (and the FIN, if requested) is acknowledged.
    pub fn all_acked(&self) -> bool {
        let target = self.stream_len + if self.fin_sent { 1 } else { 0 };
        self.snd_una >= target && (!self.fin_pending || self.fin_sent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep() -> Endpoint {
        let mut e = Endpoint::new(TcpOptions::default());
        e.state = TcpState::Established;
        e
    }

    #[test]
    fn initial_window_and_flight() {
        let e = ep();
        assert_eq!(e.in_flight(), 0);
        assert_eq!(e.send_window(), 5840);
        assert_eq!(e.usable_window(), 5840);
    }

    #[test]
    fn chunk_map_and_meta_rebuild() {
        let mut e = ep();
        e.push_chunk(400, Marker::Request, 1);
        e.push_chunk(8000, Marker::Static, 2);
        assert_eq!(e.stream_len, 8400);
        // A segment spanning the request/static boundary.
        let meta = e.meta_for_range(0, 1460);
        assert_eq!(meta.len(), 2);
        assert_eq!(meta[0].len, 400);
        assert_eq!(meta[0].marker, Marker::Request);
        assert_eq!(meta[1].offset, 400);
        assert_eq!(meta[1].len, 1060);
        assert_eq!(meta[1].marker, Marker::Static);
        // Entirely inside the static chunk.
        let meta2 = e.meta_for_range(2000, 1000);
        assert_eq!(meta2.len(), 1);
        assert_eq!(meta2[0].content, 2);
    }

    #[test]
    fn push_detection_at_chunk_boundary() {
        let mut e = ep();
        e.push_chunk(400, Marker::Request, 1);
        e.push_chunk(1000, Marker::Static, 2);
        assert!(e.range_ends_chunk(0, 400));
        assert!(!e.range_ends_chunk(0, 300));
        assert!(e.range_ends_chunk(400, 1000));
        assert!(e.range_ends_chunk(0, 1400)); // spans both, ends at chunk end
    }

    #[test]
    fn slow_start_doubles_with_abc() {
        let mut e = ep();
        e.push_chunk(100_000, Marker::Static, 1);
        e.snd_nxt = 5840; // one IW in flight
        let t = SimTime::from_millis(100);
        // ACK for 2 segments (delayed ack) grows cwnd by 2*mss.
        let before = e.cwnd;
        e.on_ack(2920, u64::MAX, t, false);
        assert_eq!(e.cwnd, before + 2.0 * 1460.0);
    }

    #[test]
    fn congestion_avoidance_is_linear() {
        let mut e = ep();
        e.push_chunk(1_000_000, Marker::Static, 1);
        e.ssthresh = 2920.0;
        e.cwnd = 14600.0; // above ssthresh
        e.snd_nxt = 14600;
        let before = e.cwnd;
        e.on_ack(1460, u64::MAX, SimTime::from_millis(1), false);
        let growth = e.cwnd - before;
        assert!((growth - 1460.0 * 1460.0 / 14600.0).abs() < 1.0);
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit() {
        let mut e = ep();
        e.push_chunk(100_000, Marker::Static, 1);
        e.snd_nxt = 14600;
        e.snd_una = 0;
        e.cwnd = 14600.0;
        let t = SimTime::from_millis(5);
        assert_eq!(e.on_ack(0, u64::MAX, t, false), AckReaction::Ignored);
        assert_eq!(e.on_ack(0, u64::MAX, t, false), AckReaction::Ignored);
        assert_eq!(e.on_ack(0, u64::MAX, t, false), AckReaction::FastRetransmit);
        assert!(e.in_recovery);
        assert_eq!(e.recover, 14600);
        assert_eq!(e.ssthresh, 7300.0);
        assert_eq!(e.cwnd, 7300.0 + 3.0 * 1460.0);
        // Additional dupack inflates.
        assert_eq!(
            e.on_ack(0, u64::MAX, t, false),
            AckReaction::RecoveryInflate
        );
    }

    #[test]
    fn data_bearing_packets_do_not_count_as_dupacks() {
        let mut e = ep();
        e.push_chunk(100_000, Marker::Static, 1);
        e.snd_nxt = 14600;
        let t = SimTime::from_millis(5);
        for _ in 0..5 {
            assert_eq!(e.on_ack(0, u64::MAX, t, true), AckReaction::Ignored);
        }
        assert!(!e.in_recovery);
        assert_eq!(e.dup_acks, 0);
    }

    #[test]
    fn partial_and_full_acks_in_recovery() {
        let mut e = ep();
        e.push_chunk(100_000, Marker::Static, 1);
        e.snd_nxt = 14600;
        e.cwnd = 14600.0;
        let t = SimTime::from_millis(5);
        for _ in 0..3 {
            e.on_ack(0, u64::MAX, t, false);
        }
        assert!(e.in_recovery);
        // Partial ACK (below recover=14600).
        assert_eq!(
            e.on_ack(2920, u64::MAX, t, false),
            AckReaction::PartialRetransmit
        );
        assert!(e.in_recovery);
        // Full ACK.
        assert_eq!(e.on_ack(14600, u64::MAX, t, false), AckReaction::Advance);
        assert!(!e.in_recovery);
        assert_eq!(e.cwnd, e.ssthresh);
    }

    #[test]
    fn rto_fire_collapses_window_and_backs_off() {
        let mut e = ep();
        e.push_chunk(100_000, Marker::Static, 1);
        e.snd_nxt = 14600;
        e.cwnd = 14600.0;
        let rto_before = e.rto;
        e.on_rto_fire();
        assert_eq!(e.cwnd, 1460.0);
        assert_eq!(e.ssthresh, 7300.0);
        assert_eq!(e.rto, rto_before.saturating_mul(2));
    }

    #[test]
    fn rtt_estimator_follows_rfc6298() {
        let mut e = ep();
        e.rtt_sample(SimDuration::from_millis(100));
        assert_eq!(e.srtt_ms, Some(100.0));
        assert_eq!(e.rttvar_ms, 50.0);
        // rto = srtt + 4*var = 300ms
        assert_eq!(e.rto, SimDuration::from_millis(300));
        e.rtt_sample(SimDuration::from_millis(100));
        // var decays toward 0, srtt stays at 100.
        assert_eq!(e.srtt_ms, Some(100.0));
        assert!(e.rttvar_ms < 50.0);
    }

    #[test]
    fn rto_respects_min_floor() {
        let mut e = ep();
        for _ in 0..20 {
            e.rtt_sample(SimDuration::from_millis(5));
        }
        assert_eq!(e.rto, SimDuration::from_millis(200));
    }

    #[test]
    fn in_order_receive_delivers_and_delays_ack() {
        let mut e = ep();
        let meta: SpanVec = vec![MetaSpan {
            offset: 0,
            len: 1460,
            marker: Marker::Static,
            content: 9,
        }]
        .into();
        let (spans, policy) = e.accept(0, 1460, false, false, meta);
        assert_eq!(spans.len(), 1);
        assert_eq!(e.rcv_nxt, 1460);
        assert_eq!(policy, AckPolicy::Delayed);
    }

    #[test]
    fn second_segment_acks_immediately() {
        let mut e = ep();
        let mk = |off: u64| -> SpanVec {
            vec![MetaSpan {
                offset: off,
                len: 1460,
                marker: Marker::Static,
                content: 9,
            }]
            .into()
        };
        let (_, p1) = e.accept(0, 1460, false, false, mk(0));
        assert_eq!(p1, AckPolicy::Delayed);
        e.delack_armed = true; // net layer arms the timer
        let (_, p2) = e.accept(1460, 1460, false, false, mk(1460));
        assert_eq!(p2, AckPolicy::Immediate);
    }

    #[test]
    fn push_acks_immediately() {
        let mut e = ep();
        let (_, p) = e.accept(
            0,
            400,
            true,
            false,
            vec![MetaSpan {
                offset: 0,
                len: 400,
                marker: Marker::Request,
                content: 1,
            }]
            .into(),
        );
        assert_eq!(p, AckPolicy::Immediate);
    }

    #[test]
    fn out_of_order_parks_then_drains() {
        let mut e = ep();
        let mk = |off: u64, len: u32| -> SpanVec {
            vec![MetaSpan {
                offset: off,
                len,
                marker: Marker::Dynamic,
                content: 3,
            }]
            .into()
        };
        let (spans, p) = e.accept(1460, 1460, false, false, mk(1460, 1460));
        assert!(spans.is_empty());
        assert_eq!(p, AckPolicy::Immediate); // dup-ack for the gap
        assert_eq!(e.rcv_nxt, 0);
        let (spans2, p2) = e.accept(0, 1460, false, false, mk(0, 1460));
        assert_eq!(spans2.len(), 2); // both segments delivered in order
        assert_eq!(e.rcv_nxt, 2920);
        assert_eq!(p2, AckPolicy::Immediate); // filled a gap
        assert!(e.ooo.is_empty());
    }

    #[test]
    fn duplicate_segments_reack_but_do_not_redeliver() {
        let mut e = ep();
        let mk: SpanVec = vec![MetaSpan {
            offset: 0,
            len: 1460,
            marker: Marker::Static,
            content: 1,
        }]
        .into();
        let (s1, _) = e.accept(0, 1460, false, false, mk.clone());
        assert_eq!(s1.len(), 1);
        let (s2, p2) = e.accept(0, 1460, false, false, mk);
        assert!(s2.is_empty());
        assert_eq!(p2, AckPolicy::Immediate);
        assert_eq!(e.rcv_nxt, 1460);
    }

    #[test]
    fn overlapping_retransmission_delivers_only_fresh_bytes() {
        let mut e = ep();
        let mk = |off: u64, len: u32| -> SpanVec {
            vec![MetaSpan {
                offset: off,
                len,
                marker: Marker::Static,
                content: 1,
            }]
            .into()
        };
        e.accept(0, 1460, false, false, mk(0, 1460));
        // Retransmission covering [0, 2920): only [1460, 2920) is fresh.
        let (spans, _) = e.accept(0, 2920, false, false, mk(0, 2920));
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].offset, 1460);
        assert_eq!(spans[0].len, 1460);
        assert_eq!(e.rcv_nxt, 2920);
    }

    #[test]
    fn fin_consumes_one_sequence_number() {
        let mut e = ep();
        let (_, p) = e.accept(0, 0, false, true, SpanVec::new());
        assert_eq!(p, AckPolicy::Immediate);
        assert_eq!(e.rcv_nxt, 1);
        assert!(e.peer_fin_rcvd);
    }

    #[test]
    fn idle_reset_collapses_cwnd_only_when_enabled() {
        let mut e = ep();
        e.cwnd = 100_000.0;
        e.last_send = SimTime::from_millis(10);
        e.maybe_idle_reset(SimTime::from_secs(30));
        assert_eq!(e.cwnd, 100_000.0, "disabled by default");
        let mut e2 = Endpoint::new(TcpOptions::default().with_idle_reset());
        e2.state = TcpState::Established;
        e2.cwnd = 100_000.0;
        e2.last_send = SimTime::from_millis(10);
        e2.maybe_idle_reset(SimTime::from_secs(30));
        assert_eq!(e2.cwnd, e2.opts.initial_cwnd());
    }

    #[test]
    fn all_acked_tracks_fin() {
        let mut e = ep();
        e.push_chunk(1000, Marker::Static, 1);
        assert!(!e.all_acked());
        e.snd_una = 1000;
        assert!(e.all_acked());
        e.fin_pending = true;
        assert!(!e.all_acked());
        e.fin_sent = true;
        e.snd_una = 1001;
        assert!(e.all_acked());
    }
}
