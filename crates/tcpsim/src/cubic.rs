//! CUBIC congestion avoidance (Ha, Rhee & Xu, 2008) — the Linux default
//! the 2011 measurement hosts actually ran.
//!
//! Pure window math, kept separate from the endpoint so it is
//! unit-testable without an event loop. Windows are in **segments**
//! here; the endpoint converts to bytes.
//!
//! After a loss at window `W_max`, the window is cut to `β·W_max`
//! (β = 0.7) and then grows along
//!
//! ```text
//! W(t) = C·(t − K)³ + W_max,   K = ∛(W_max·(1 − β)/C)
//! ```
//!
//! concave up to `W_max` (fast recovery of the old operating point) and
//! convex beyond it (probing). A TCP-friendly lower envelope ensures
//! CUBIC is never slower than Reno at small windows/RTTs.

use simcore::time::SimTime;

/// CUBIC's scaling constant (segments/s³).
pub const CUBIC_C: f64 = 0.4;
/// CUBIC's multiplicative-decrease factor.
pub const CUBIC_BETA: f64 = 0.7;

/// Per-connection CUBIC state.
#[derive(Clone, Debug)]
pub struct CubicState {
    /// Window (segments) just before the last reduction.
    pub w_max_segs: f64,
    /// Start of the current growth epoch (first CA ACK after a loss).
    pub epoch_start: Option<SimTime>,
    /// Plateau offset `K`, seconds.
    pub k_secs: f64,
}

impl Default for CubicState {
    fn default() -> Self {
        CubicState {
            w_max_segs: 0.0,
            epoch_start: None,
            k_secs: 0.0,
        }
    }
}

impl CubicState {
    /// Records a loss event at the given window.
    pub fn on_loss(&mut self, cwnd_segs: f64) {
        self.w_max_segs = cwnd_segs.max(2.0);
        self.epoch_start = None;
    }

    /// The CUBIC target window (segments) at time `now`, lazily starting
    /// the epoch. `srtt_s` feeds the TCP-friendly envelope.
    pub fn target(&mut self, now: SimTime, cwnd_segs: f64, srtt_s: f64) -> f64 {
        let epoch = *self.epoch_start.get_or_insert_with(|| {
            // New epoch: if we never lost, treat the current window as
            // the plateau so growth starts in the convex (probing) part.
            if self.w_max_segs < cwnd_segs {
                self.w_max_segs = cwnd_segs;
            }
            self.k_secs = ((self.w_max_segs * (1.0 - CUBIC_BETA)) / CUBIC_C).cbrt();
            now
        });
        let t = now.saturating_since(epoch).as_secs_f64();
        let dt = t - self.k_secs;
        let cubic = CUBIC_C * dt * dt * dt + self.w_max_segs;
        // TCP-friendly region (RFC 8312 §4.2).
        let srtt = srtt_s.max(1e-3);
        let w_est = self.w_max_segs * CUBIC_BETA
            + 3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA) * (t / srtt);
        cubic.max(w_est).max(2.0)
    }

    /// Per-ACK window increment in segments toward the target (standard
    /// CUBIC pacing: close the gap over one window's worth of ACKs),
    /// clamped to at most half a segment per ACK.
    pub fn per_ack_increment(target_segs: f64, cwnd_segs: f64) -> f64 {
        if target_segs <= cwnd_segs {
            // Minimal probing when at/above target.
            0.01 / cwnd_segs.max(1.0)
        } else {
            ((target_segs - cwnd_segs) / cwnd_segs.max(1.0)).min(0.5)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimDuration;

    #[test]
    fn k_places_the_plateau_at_w_max() {
        let mut s = CubicState::default();
        s.on_loss(100.0);
        let t0 = SimTime::from_secs(10);
        // Long RTT (500 ms): the cubic curve, not the TCP-friendly
        // envelope, governs — at t = K the cubic term vanishes and the
        // target returns to w_max.
        let _ = s.target(t0, 70.0, 0.5);
        let at_k = t0 + SimDuration::from_secs_f64(s.k_secs);
        let w = s.target(at_k, 70.0, 0.5);
        assert!((w - 100.0).abs() < 6.0, "target at K: {w}");
    }

    #[test]
    fn tcp_friendly_envelope_governs_at_small_rtt() {
        // At a 50 ms RTT, Reno's +1 seg/RTT rate outruns the cubic curve
        // near its plateau — CUBIC must not be slower than Reno there
        // (RFC 8312 §4.2).
        let mut s = CubicState::default();
        s.on_loss(100.0);
        let t0 = SimTime::from_secs(10);
        let _ = s.target(t0, 70.0, 0.05);
        let at_k = t0 + SimDuration::from_secs_f64(s.k_secs);
        let w = s.target(at_k, 70.0, 0.05);
        let w_est =
            100.0 * CUBIC_BETA + 3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA) * (s.k_secs / 0.05);
        assert!((w - w_est).abs() < 1.0, "target {w} vs envelope {w_est}");
        assert!(w > 100.0, "envelope exceeds the plateau here");
    }

    #[test]
    fn concave_then_convex() {
        let mut s = CubicState::default();
        s.on_loss(100.0);
        let t0 = SimTime::from_secs(1);
        let _ = s.target(t0, 70.0, 0.05);
        let k = s.k_secs;
        let before = s.target(t0 + SimDuration::from_secs_f64(k * 0.5), 70.0, 0.05);
        let at = s.target(t0 + SimDuration::from_secs_f64(k), 70.0, 0.05);
        let after = s.target(t0 + SimDuration::from_secs_f64(k * 1.5), 70.0, 0.05);
        assert!(before < at && at < after);
        // Concave approach: the first half covers most of the gap.
        assert!(at - before < before - 70.0 + 35.0);
    }

    #[test]
    fn tcp_friendly_floor_dominates_at_tiny_windows() {
        let mut s = CubicState::default();
        s.on_loss(4.0);
        let t0 = SimTime::from_secs(1);
        let _ = s.target(t0, 3.0, 0.01); // starts the epoch
                                         // Two seconds later at a 10 ms RTT the Reno-rate envelope has
                                         // grown far past the tiny cubic plateau.
        let w = s.target(t0 + SimDuration::from_secs(2), 3.0, 0.01);
        let reno_est = 4.0 * CUBIC_BETA + 3.0 * 0.3 / 1.7 * (2.0 / 0.01);
        assert!(
            (w - reno_est).abs() < 2.0,
            "target {w} vs envelope {reno_est}"
        );
    }

    #[test]
    fn per_ack_increment_closes_gap_and_is_bounded() {
        assert!(CubicState::per_ack_increment(20.0, 10.0) <= 0.5);
        assert!(CubicState::per_ack_increment(11.0, 10.0) > 0.0);
        let idle = CubicState::per_ack_increment(5.0, 10.0);
        assert!(idle > 0.0 && idle < 0.01);
    }

    #[test]
    fn fresh_connection_probes_convexly() {
        // No loss yet: epoch starts at the current window, K collapses
        // toward ∛(w(1-β)/C) and growth is convex from the start.
        let mut s = CubicState::default();
        let t0 = SimTime::from_secs(5);
        let w0 = s.target(t0, 10.0, 0.05);
        let w1 = s.target(t0 + SimDuration::from_secs(1), 10.0, 0.05);
        let w2 = s.target(t0 + SimDuration::from_secs(2), 10.0, 0.05);
        assert!(w0 <= w1 && w1 <= w2);
        assert!(w2 - w1 >= w1 - w0 - 1e-9, "convex probing");
    }
}
