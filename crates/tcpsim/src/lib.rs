//! # tcpsim — a packet-level TCP simulator
//!
//! The paper's inference model is *about* TCP mechanics: the front-end
//! server's congestion window paces the static-content burst across RTT
//! rounds, split TCP keeps the FE↔BE leg's window warm, and the interplay
//! of the two produces the measurable `Tstatic` / `Tdynamic` / `Tdelta`
//! signatures. This crate implements those mechanics at packet
//! granularity:
//!
//! * three-way handshake (with SYN retransmission),
//! * slow start and congestion avoidance (Reno with Appropriate Byte
//!   Counting, RFC 3465),
//! * fast retransmit / fast recovery (NewReno-style partial-ACK handling),
//! * retransmission timeout with Karn's algorithm and exponential backoff
//!   (RFC 6298),
//! * delayed ACKs (ack-every-second-segment with a timeout, immediate ACK
//!   on PSH and on out-of-order arrivals),
//! * configurable initial window, MSS and receive window,
//! * optional slow-start-after-idle (RFC 2861) — disabled on the
//!   persistent FE↔BE connections, which is precisely the "warm
//!   connection" benefit of split TCP,
//! * per-path delay/jitter/loss/bandwidth from a [`PathParams`],
//! * full packet tracing with application-layer *markers* (request /
//!   static / dynamic ...), the simulator's analogue of running tcpdump
//!   with payloads at every vantage point.
//!
//! The simulation is deterministic: all randomness (jitter, loss) comes
//! from per-connection streams derived from the experiment seed.
//!
//! ## Architecture
//!
//! [`Sim`] owns a [`Net`] (connections, event queue, traces) and the
//! user's [`App`] (the application state machine: clients, front-end
//! servers, back-end data centers live there). The event loop pops one
//! event, updates TCP state, and queues application callbacks which are
//! delivered with `&mut Net` so the app can immediately send, open
//! connections or set timers.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cubic;
pub mod endpoint;
pub mod net;
pub mod opts;
pub mod segment;
pub mod trace;

pub use endpoint::{ConnStats, TcpState};
pub use net::{
    App, ConnId, DeliveredSpan, End, FaultTarget, LinkFault, LinkFaultKind, Net, NodeId,
    PathParams, Sim,
};
pub use opts::{CongAlgo, TcpOptions};
pub use segment::{Marker, MetaSpan, PktKind, Segment, SpanVec};
pub use trace::{PktDir, PktEvent, TraceLog};
