//! Per-endpoint TCP configuration.

use simcore::time::SimDuration;

/// Congestion-control algorithm of an endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CongAlgo {
    /// Classic Reno/NewReno: AIMD with β = 1/2, +1 MSS per RTT in
    /// congestion avoidance. The analytical baseline all of the paper's
    /// window arithmetic assumes.
    Reno,
    /// CUBIC (Ha, Rhee & Xu): β = 0.7, cubic window growth around the
    /// last loss point — the Linux default since 2.6.19, so what the
    /// 2011 PlanetLab nodes and production front-ends actually ran. The
    /// `abl_cubic` bench compares the two under loss.
    Cubic,
}

/// Tunable TCP parameters of one endpoint.
///
/// Defaults model a 2011-era Linux stack (the PlanetLab nodes and
/// production front-ends of the study): MSS 1460, initial window of 4
/// segments, delayed ACKs, 200 ms minimum RTO, 1 s initial RTO.
#[derive(Clone, Debug)]
pub struct TcpOptions {
    /// Maximum segment size in bytes.
    pub mss: u32,
    /// Initial congestion window, in segments (RFC 3390 allowed up to 4;
    /// Google's IW10 experiments came later — the ablation benches sweep
    /// this).
    pub initial_window_segs: u32,
    /// Receive window advertised to the peer, in bytes.
    pub rwnd: u64,
    /// Whether to delay ACKs (ack every second segment or on timeout).
    pub delayed_ack: bool,
    /// Delayed-ACK timeout.
    pub delack_timeout: SimDuration,
    /// Lower bound on the retransmission timeout.
    pub min_rto: SimDuration,
    /// RTO before any RTT sample exists (RFC 6298: 1 s).
    pub initial_rto: SimDuration,
    /// Upper bound on the RTO after backoff.
    pub max_rto: SimDuration,
    /// Collapse the congestion window back to the initial window after an
    /// idle period of one RTO (RFC 2861). Disabled on persistent
    /// split-TCP connections — keeping this off *is* the warm-connection
    /// advantage the paper attributes to FE↔BE links.
    pub idle_reset: bool,
    /// Appropriate Byte Counting limit `L`, in segments: slow-start cwnd
    /// growth per ACK is capped at `L · mss` bytes (RFC 3465 recommends
    /// L = 2 with delayed ACKs).
    pub abc_limit_segs: u32,
    /// Congestion-control algorithm.
    pub cong: CongAlgo,
    /// Nagle's algorithm: hold a final sub-MSS segment while older data
    /// is unacknowledged. Off by default — HTTP request/response
    /// exchanges disable it (`TCP_NODELAY`), and a held response tail
    /// would distort every latency figure; the option exists to
    /// demonstrate exactly that distortion.
    pub nagle: bool,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            mss: 1460,
            initial_window_segs: 4,
            rwnd: 256 * 1024,
            delayed_ack: true,
            delack_timeout: SimDuration::from_millis(40),
            min_rto: SimDuration::from_millis(200),
            initial_rto: SimDuration::from_secs(1),
            max_rto: SimDuration::from_secs(60),
            idle_reset: false,
            abc_limit_segs: 2,
            cong: CongAlgo::Reno,
            nagle: false,
        }
    }
}

impl TcpOptions {
    /// Initial congestion window in bytes.
    pub fn initial_cwnd(&self) -> f64 {
        (self.initial_window_segs * self.mss) as f64
    }

    /// Options for a server endpoint with a given initial window — the
    /// knob the `abl_iw_sweep` bench turns.
    pub fn with_initial_window(mut self, segs: u32) -> TcpOptions {
        self.initial_window_segs = segs;
        self
    }

    /// Marks the endpoint as living on a persistent (pre-warmed)
    /// connection: no slow-start-after-idle.
    pub fn persistent(mut self) -> TcpOptions {
        self.idle_reset = false;
        self
    }

    /// Enables slow-start-after-idle (for the split-TCP ablation where
    /// the FE↔BE connection is *not* kept warm).
    pub fn with_idle_reset(mut self) -> TcpOptions {
        self.idle_reset = true;
        self
    }

    /// Selects the congestion-control algorithm.
    pub fn with_cong(mut self, cong: CongAlgo) -> TcpOptions {
        self.cong = cong;
        self
    }

    /// Enables Nagle's algorithm.
    pub fn with_nagle(mut self) -> TcpOptions {
        self.nagle = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_2011_linux_like() {
        let o = TcpOptions::default();
        assert_eq!(o.mss, 1460);
        assert_eq!(o.initial_window_segs, 4);
        assert_eq!(o.initial_cwnd(), 5840.0);
        assert!(o.delayed_ack);
        assert_eq!(o.min_rto, SimDuration::from_millis(200));
        assert_eq!(o.initial_rto, SimDuration::from_secs(1));
        assert!(!o.idle_reset);
    }

    #[test]
    fn builders() {
        let o = TcpOptions::default().with_initial_window(10);
        assert_eq!(o.initial_cwnd(), 14600.0);
        assert!(TcpOptions::default().with_idle_reset().idle_reset);
        assert!(
            !TcpOptions::default()
                .with_idle_reset()
                .persistent()
                .idle_reset
        );
    }
}
