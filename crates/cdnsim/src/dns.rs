//! Client → front-end mapping.
//!
//! The paper's Dataset A uses "whatever server IP address the DNS
//! resolution returns to the client" — for both Akamai and Google that is
//! overwhelmingly the geographically/topologically nearest front end.
//! [`DnsMap::nearest`] precomputes that assignment; [`DnsPolicy`] adds
//! the two refinements real mapping systems layer on top:
//!
//! * **RandomizedTopK** — Akamai's low-level DNS answers rotate through
//!   a handful of nearby edge servers for load spreading and failover,
//!   so consecutive resolutions of one client differ slightly;
//! * **LoadAware** — pick the least-loaded of the `k` nearest FEs
//!   (static weights standing in for the mapping system's liveness
//!   feeds).

use nettopo::geo::GeoPoint;
use nettopo::placement::{nearest_fe, FeSite};
use simcore::rng::Rng;

/// A precomputed client → default-FE assignment.
#[derive(Clone, Debug)]
pub struct DnsMap {
    assignment: Vec<usize>,
    distance_miles: Vec<f64>,
}

impl DnsMap {
    /// Maps every client location to its nearest FE in `fleet`.
    /// Panics on an empty fleet.
    pub fn nearest(clients: &[GeoPoint], fleet: &[FeSite]) -> DnsMap {
        assert!(!fleet.is_empty(), "DnsMap over empty FE fleet");
        let mut assignment = Vec::with_capacity(clients.len());
        let mut distance_miles = Vec::with_capacity(clients.len());
        for pt in clients {
            let (idx, d) = nearest_fe(pt, fleet).unwrap();
            assignment.push(idx);
            distance_miles.push(d);
        }
        DnsMap {
            assignment,
            distance_miles,
        }
    }

    /// The default FE index for a client.
    pub fn fe_of(&self, client: usize) -> usize {
        self.assignment[client]
    }

    /// Distance in miles from a client to its default FE.
    pub fn distance_of(&self, client: usize) -> f64 {
        self.distance_miles[client]
    }

    /// Number of clients mapped.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// True when no clients were mapped.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Number of distinct FEs actually used as a default.
    pub fn distinct_fes(&self) -> usize {
        let mut v = self.assignment.clone();
        v.sort_unstable();
        v.dedup();
        v.len()
    }
}

/// A per-resolution FE selection policy.
#[derive(Clone, Debug)]
pub enum DnsPolicy {
    /// Always the nearest FE (the [`DnsMap::nearest`] behaviour).
    Nearest,
    /// A uniformly random pick among the `k` nearest FEs — Akamai-style
    /// rotation.
    RandomizedTopK(usize),
    /// The least-loaded among the `k` nearest FEs, given per-FE load
    /// levels.
    LoadAware(usize),
}

/// Precomputed candidate lists for the per-resolution policies.
#[derive(Clone, Debug)]
pub struct DnsResolver {
    /// Per client: FE indices sorted by distance (nearest first),
    /// truncated to the largest `k` any policy needs.
    candidates: Vec<Vec<usize>>,
    policy: DnsPolicy,
}

impl DnsResolver {
    /// Builds the resolver for a client population against a fleet.
    pub fn new(clients: &[GeoPoint], fleet: &[FeSite], policy: DnsPolicy) -> DnsResolver {
        assert!(!fleet.is_empty());
        let k = match policy {
            DnsPolicy::Nearest => 1,
            DnsPolicy::RandomizedTopK(k) | DnsPolicy::LoadAware(k) => k.max(1),
        };
        let candidates = clients
            .iter()
            .map(|pt| {
                let mut by_dist: Vec<(usize, f64)> = fleet
                    .iter()
                    .enumerate()
                    .map(|(i, f)| (i, pt.distance_miles(&f.pt)))
                    .collect();
                by_dist.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN distance"));
                by_dist.into_iter().take(k).map(|(i, _)| i).collect()
            })
            .collect();
        DnsResolver { candidates, policy }
    }

    /// Resolves one lookup for `client`. `fe_load` supplies current
    /// per-FE load levels for [`DnsPolicy::LoadAware`] (ignored
    /// otherwise); `rng` drives the randomized rotation.
    pub fn resolve(&self, client: usize, rng: &mut Rng, fe_load: impl Fn(usize) -> f64) -> usize {
        let cands = &self.candidates[client];
        match self.policy {
            DnsPolicy::Nearest => cands[0],
            DnsPolicy::RandomizedTopK(_) => *rng.choose(cands),
            DnsPolicy::LoadAware(_) => *cands
                .iter()
                .min_by(|&&a, &&b| fe_load(a).partial_cmp(&fe_load(b)).expect("NaN load"))
                .expect("non-empty candidates"),
        }
    }

    /// The candidate list of one client (nearest first).
    pub fn candidates(&self, client: usize) -> &[usize] {
        &self.candidates[client]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettopo::placement::{dense_edge, sparse_pop};
    use nettopo::vantage::{planetlab_like, VantageConfig};

    #[test]
    fn maps_every_client() {
        let v = planetlab_like(1, &VantageConfig::default());
        let pts: Vec<GeoPoint> = v.iter().map(|x| x.pt).collect();
        let fleet = sparse_pop(1, 14);
        let map = DnsMap::nearest(&pts, &fleet);
        assert_eq!(map.len(), pts.len());
        assert!(!map.is_empty());
        for i in 0..map.len() {
            assert!(map.fe_of(i) < fleet.len());
            assert!(map.distance_of(i) >= 0.0);
        }
    }

    #[test]
    fn dense_fleet_gives_shorter_distances() {
        let v = planetlab_like(2, &VantageConfig::default());
        let pts: Vec<GeoPoint> = v.iter().map(|x| x.pt).collect();
        let dense = DnsMap::nearest(&pts, &dense_edge(2));
        let sparse = DnsMap::nearest(&pts, &sparse_pop(2, 14));
        let mean =
            |m: &DnsMap| (0..m.len()).map(|i| m.distance_of(i)).sum::<f64>() / m.len() as f64;
        assert!(mean(&dense) < mean(&sparse) / 2.0);
    }

    #[test]
    fn assignment_is_actually_nearest() {
        let v = planetlab_like(3, &VantageConfig::default());
        let pts: Vec<GeoPoint> = v.iter().map(|x| x.pt).collect();
        let fleet = sparse_pop(3, 10);
        let map = DnsMap::nearest(&pts, &fleet);
        for (i, pt) in pts.iter().enumerate() {
            let assigned = map.distance_of(i);
            for fe in &fleet {
                assert!(pt.distance_miles(&fe.pt) >= assigned - 1e-9);
            }
        }
    }

    #[test]
    fn randomized_topk_rotates_among_nearby_fes() {
        let v = planetlab_like(5, &VantageConfig::default());
        let pts: Vec<GeoPoint> = v.iter().map(|x| x.pt).collect();
        let fleet = dense_edge(5);
        let resolver = DnsResolver::new(&pts, &fleet, DnsPolicy::RandomizedTopK(3));
        let mut rng = simcore::rng::Rng::from_seed(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..60 {
            let fe = resolver.resolve(0, &mut rng, |_| 0.0);
            assert!(resolver.candidates(0).contains(&fe));
            seen.insert(fe);
        }
        assert!(seen.len() >= 2, "rotation must use multiple FEs");
        // All rotated picks stay close: within 3× the nearest distance
        // plus a slack for co-located candidates.
        let nearest = pts[0].distance_miles(&fleet[resolver.candidates(0)[0]].pt);
        for &fe in &seen {
            let d = pts[0].distance_miles(&fleet[fe].pt);
            assert!(d <= nearest * 4.0 + 50.0, "rotated to a far FE: {d}");
        }
    }

    #[test]
    fn load_aware_avoids_the_hot_fe() {
        let v = planetlab_like(6, &VantageConfig::default());
        let pts: Vec<GeoPoint> = v.iter().map(|x| x.pt).collect();
        let fleet = dense_edge(6);
        let resolver = DnsResolver::new(&pts, &fleet, DnsPolicy::LoadAware(3));
        let mut rng = simcore::rng::Rng::from_seed(2);
        let cands = resolver.candidates(0).to_vec();
        // Make the nearest FE hot: the resolver must pick another
        // candidate.
        let hot = cands[0];
        let fe = resolver.resolve(0, &mut rng, |f| if f == hot { 10.0 } else { 1.0 });
        assert_ne!(fe, hot);
        assert!(cands.contains(&fe));
        // Uniform load → nearest wins (min_by keeps the first minimum).
        let fe2 = resolver.resolve(0, &mut rng, |_| 1.0);
        assert_eq!(fe2, hot);
    }

    #[test]
    fn nearest_policy_matches_dnsmap() {
        let v = planetlab_like(7, &VantageConfig::default());
        let pts: Vec<GeoPoint> = v.iter().map(|x| x.pt).collect();
        let fleet = sparse_pop(7, 14);
        let map = DnsMap::nearest(&pts, &fleet);
        let resolver = DnsResolver::new(&pts, &fleet, DnsPolicy::Nearest);
        let mut rng = simcore::rng::Rng::from_seed(3);
        for c in 0..pts.len() {
            assert_eq!(resolver.resolve(c, &mut rng, |_| 0.0), map.fe_of(c));
        }
    }

    #[test]
    fn multiple_fes_serve_a_global_population() {
        let v = planetlab_like(4, &VantageConfig::default());
        let pts: Vec<GeoPoint> = v.iter().map(|x| x.pt).collect();
        let map = DnsMap::nearest(&pts, &sparse_pop(4, 14));
        assert!(map.distinct_fes() >= 8, "used {} FEs", map.distinct_fes());
    }
}
