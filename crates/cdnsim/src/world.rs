//! The service world: the `tcpsim::App` that executes query lifecycles.
//!
//! A query's life (split-TCP mode, both real services):
//!
//! 1. the client opens a TCP connection to an FE (its DNS-default FE in
//!    Dataset A, a fixed FE in Dataset B) and sends the GET;
//! 2. when the GET has fully arrived, the FE spends a sampled service
//!    time (tenancy-dependent load), then *simultaneously* (a) bursts the
//!    cached static portion down the client connection and (b) forwards
//!    the query up a persistent, pre-warmed FE↔BE connection;
//! 3. the BE processes for `Tproc` (keyword-class- and load-dependent),
//!    then streams the dynamic portion back to the FE;
//! 4. once the FE holds the full dynamic portion (store-and-forward,
//!    matching the paper's definition of `Tfetch` as the time to
//!    "deliver it to the FE server"), it sends the dynamic portion after
//!    the static bytes and closes;
//! 5. the client sees the FIN — query complete; its packet trace is
//!    harvested into a [`CompletedQuery`] carrying simulator ground truth
//!    (true `Tproc`, true fetch interval, true FE overhead) against which
//!    the inference pipeline is validated.
//!
//! Ablations reroute this flow: `split_tcp = false` connects clients
//! straight to the BE; `cache_static = false` makes the static bytes ride
//! the BE response; `fe_caches_results = true` lets FEs answer repeated
//! keywords without any BE fetch.

use crate::dns::DnsMap;
use crate::fe::FeServer;
use crate::service::ServiceConfig;
use httpsim::{RecvProgress, RequestSpec, ResponsePlan};
use nettopo::faults::{FaultKind, FaultWindow};
use nettopo::geo::GeoPoint;
use nettopo::path::{PathModel, PathProfile};
use nettopo::sites::BeSite;
use nettopo::vantage::{AccessKind, Vantage};
use searchbe::datacenter::BeDataCenter;
use searchbe::keywords::{KeywordClass, KeywordCorpus};
use simcore::rng::Rng;
use simcore::telemetry::MetricsRegistry;
use simcore::time::{SimDuration, SimTime};
use std::collections::HashMap;
use tcpsim::{
    App, ConnId, DeliveredSpan, End, LinkFault, Marker, Net, NodeId, PathParams, PktEvent,
};

/// Node-id base for front-end servers.
pub const FE_NODE_BASE: u32 = 1_000_000;
/// Node-id base for back-end data centers.
pub const BE_NODE_BASE: u32 = 2_000_000;

const WARMUP_REQ_BYTES: u64 = 2_000;
const WARMUP_RESP_BYTES: u64 = 160_000;

/// Size of the error stub an FE serves in place of the dynamic portion
/// when every back-end is unreachable past the fetch deadline.
pub const DEGRADED_STUB_BYTES: u64 = 600;
/// Content identity of the degraded-service error stub.
pub const DEGRADED_CONTENT_ID: u64 = 999_999_999_999;

/// How a query's lifecycle ended, from the client's point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryOutcome {
    /// Served normally on the first attempt.
    Ok,
    /// Served, but the dynamic portion was replaced by an error stub
    /// (graceful degradation: no back-end was reachable in time).
    Degraded,
    /// Served after `n` client retries (attempt `n` succeeded).
    Retried(u32),
    /// Never served: every attempt blew its deadline and the retry
    /// budget is exhausted. The record carries the truncated trace of
    /// the final attempt.
    TimedOut,
}

/// A query to execute.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// Index of the issuing client (into the vantage list).
    pub client: usize,
    /// Keyword id (into the corpus).
    pub keyword: u64,
    /// Fixed FE override (Dataset B); `None` uses the DNS default.
    pub fixed_fe: Option<usize>,
    /// Marks a correlated follow-up in a search-as-you-type session.
    pub instant_followup: bool,
}

/// A finished query with measurement trace and simulator ground truth.
#[derive(Clone, Debug)]
pub struct CompletedQuery {
    /// Query id (= trace session id).
    pub qid: u64,
    /// Issuing client.
    pub client: usize,
    /// Serving FE (`None` in the no-split-TCP ablation).
    pub fe: Option<usize>,
    /// Serving BE.
    pub be: usize,
    /// Keyword id.
    pub keyword: u64,
    /// Keyword class.
    pub class: KeywordClass,
    /// Time the client's SYN left.
    pub t_start: SimTime,
    /// Time the client consumed the server FIN (response complete).
    pub t_done: SimTime,
    /// The response layout.
    pub plan: ResponsePlan,
    /// Ground truth: BE processing time in ms (0 on FE cache hits).
    pub proc_ms: f64,
    /// Ground truth: FE request-handling overhead in ms.
    pub fe_overhead_ms: f64,
    /// Ground truth: when the FE queued the BE-bound query.
    pub fetch_start: Option<SimTime>,
    /// Ground truth: when the full BE response arrived at the FE.
    pub fetch_done: Option<SimTime>,
    /// Nominal client↔FE RTT in ms (client↔BE when split TCP is off).
    pub rtt_client_fe_ms: f64,
    /// Nominal FE↔BE RTT in ms (0 when split TCP is off).
    pub rtt_fe_be_ms: f64,
    /// FE↔BE great-circle distance in miles.
    pub dist_fe_be_miles: f64,
    /// All packet events of this query's session (client, FE and BE
    /// observations; filter by node for the client-side view).
    pub trace: Vec<PktEvent>,
    /// False when packet tracing was off while this query ran: the empty
    /// `trace` means "not captured", not "no packets" — downstream
    /// timeline extraction reports a typed error instead of analysing it.
    pub traced: bool,
    /// How the query ended ([`QueryOutcome::Ok`] on the happy path).
    pub outcome: QueryOutcome,
}

impl CompletedQuery {
    /// Ground-truth fetch time in ms (BE query forwarded → full response
    /// at FE), when a BE fetch happened.
    pub fn true_fetch_ms(&self) -> Option<f64> {
        match (self.fetch_start, self.fetch_done) {
            (Some(s), Some(d)) => Some(d.saturating_since(s).as_millis_f64()),
            _ => None,
        }
    }

    /// Overall user-perceived delay in ms (SYN → response complete).
    pub fn overall_ms(&self) -> f64 {
        self.t_done.saturating_since(self.t_start).as_millis_f64()
    }

    /// Estimated heap footprint of this record — dominated by the packet
    /// trace. The streaming pipeline samples this to report how many
    /// bytes a sink retains; it is an estimate (inline `meta` spans that
    /// spilled to the heap are counted at their inline size), not an
    /// allocator measurement.
    pub fn retained_bytes(&self) -> usize {
        std::mem::size_of::<CompletedQuery>()
            + self.trace.capacity() * std::mem::size_of::<PktEvent>()
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Leg {
    Client,
    Be,
    Warmup { fe: usize, be: usize },
}

#[derive(Clone, Copy, Debug)]
struct ConnInfo {
    qid: u64,
    leg: Leg,
}

#[derive(Clone, Debug)]
enum Action {
    Start(QuerySpec),
    StartRetry { spec: QuerySpec, attempt: u32 },
    FeServe { qid: u64 },
    BeReply { qid: u64, attempt: u32 },
    BeDirectReply { qid: u64 },
    ClientDeadline { qid: u64 },
    FetchDeadline { qid: u64, attempt: u32 },
    FaultStart { window: usize },
}

struct QueryState {
    client: usize,
    fe: Option<usize>,
    be: usize,
    keyword: u64,
    class: KeywordClass,
    instant_followup: bool,
    fixed_fe: Option<usize>,
    attempt: u32,
    fetch_attempts: u32,
    degraded: bool,
    t_start: SimTime,
    client_conn: ConnId,
    be_conn: Option<ConnId>,
    req: RequestSpec,
    plan: Option<ResponsePlan>,
    proc_ms: f64,
    fe_overhead_ms: f64,
    fetch_start: Option<SimTime>,
    fetch_done: Option<SimTime>,
    rtt_client_fe_ms: f64,
    rtt_fe_be_ms: f64,
    dist_fe_be_miles: f64,
    srv_progress: RecvProgress,
    resp_progress: RecvProgress,
    request_handled: bool,
    be_handled: bool,
    resp_handled: bool,
}

/// The world: clients, FEs, BEs, pools, in-flight queries.
pub struct ServiceWorld {
    /// The service configuration in force.
    pub cfg: ServiceConfig,
    clients: Vec<Vantage>,
    fes: Vec<FeServer>,
    bes: Vec<(BeSite, BeDataCenter)>,
    corpus: KeywordCorpus,
    dns: DnsMap,
    be_of_fe: Vec<usize>,
    free_pool: HashMap<(usize, usize), Vec<ConnId>>,
    conn_info: HashMap<ConnId, ConnInfo>,
    warmup_progress: HashMap<ConnId, (u64, u64)>,
    queries: HashMap<u64, QueryState>,
    actions: Vec<Action>,
    completed: Vec<CompletedQuery>,
    next_qid: u64,
    retry_rng: Rng,
    dns_cache: HashMap<usize, (usize, SimTime)>,
    fe_rank: HashMap<usize, Vec<usize>>,
    be_rank: HashMap<usize, Vec<usize>>,
    // Observe-only service-layer telemetry (cache hits, failovers, DNS
    // re-maps). Draws no randomness and schedules nothing.
    metrics: MetricsRegistry,
}

impl ServiceWorld {
    /// Builds the world: places clients against the configured fleet,
    /// computes DNS defaults and FE→nearest-BE assignments, instantiates
    /// FE and BE servers.
    pub fn new(cfg: ServiceConfig, clients: Vec<Vantage>, corpus: KeywordCorpus) -> ServiceWorld {
        assert!(!cfg.fe_fleet.is_empty() && !cfg.be_sites.is_empty());
        let pts: Vec<GeoPoint> = clients.iter().map(|c| c.pt).collect();
        let dns = DnsMap::nearest(&pts, &cfg.fe_fleet);
        let be_of_fe: Vec<usize> = cfg
            .fe_fleet
            .iter()
            .map(|fe| {
                nettopo::geo::nearest(&fe.pt, &cfg.be_sites, |s| s.pt)
                    .unwrap()
                    .0
            })
            .collect();
        let fes: Vec<FeServer> = cfg
            .fe_fleet
            .iter()
            .map(|site| {
                let mut fe = FeServer::new(
                    cfg.seed,
                    site.clone(),
                    cfg.fe_load.service_ms.clone(),
                    cfg.fe_load.load_amplitude,
                    cfg.fe_load.load_volatility,
                    cfg.fe_caches_results,
                );
                fe.set_workers(cfg.fe_workers);
                fe
            })
            .collect();
        let bes: Vec<(BeSite, BeDataCenter)> = cfg
            .be_sites
            .iter()
            .enumerate()
            .map(|(k, site)| {
                let mut composer = cfg.composer.clone();
                composer.offset_ids(k as u64 * 100_000_000);
                let dc = BeDataCenter::new(cfg.seed, site.name, cfg.backend.clone(), composer);
                (*site, dc)
            })
            .collect();
        // Dedicated named stream: constructed unconditionally (named
        // streams are independent) but drawn from only when a retry
        // actually backs off, so fault-free runs stay byte-identical.
        let retry_rng = Rng::from_seed_and_name(cfg.seed, "cdnsim/retry");
        ServiceWorld {
            cfg,
            clients,
            fes,
            bes,
            corpus,
            dns,
            be_of_fe,
            free_pool: HashMap::new(),
            conn_info: HashMap::new(),
            warmup_progress: HashMap::new(),
            queries: HashMap::new(),
            actions: Vec::new(),
            completed: Vec::new(),
            next_qid: 1,
            retry_rng,
            dns_cache: HashMap::new(),
            fe_rank: HashMap::new(),
            be_rank: HashMap::new(),
            metrics: MetricsRegistry::from_env(),
        }
    }

    /// The service-layer telemetry registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access to the service-layer telemetry registry.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Harvests the service-layer telemetry, leaving an empty registry
    /// with the same gate.
    pub fn take_metrics(&mut self) -> MetricsRegistry {
        self.metrics.take()
    }

    /// Node id of a client.
    pub fn client_node(client: usize) -> NodeId {
        NodeId(client as u32)
    }

    /// Node id of an FE.
    pub fn fe_node(fe: usize) -> NodeId {
        NodeId(FE_NODE_BASE + fe as u32)
    }

    /// Node id of a BE.
    pub fn be_node(be: usize) -> NodeId {
        NodeId(BE_NODE_BASE + be as u32)
    }

    /// The client vantage list.
    pub fn clients(&self) -> &[Vantage] {
        &self.clients
    }

    /// The keyword corpus.
    pub fn corpus(&self) -> &KeywordCorpus {
        &self.corpus
    }

    /// The DNS-default FE of a client.
    pub fn default_fe(&self, client: usize) -> usize {
        self.dns.fe_of(client)
    }

    /// The nearest BE of an FE.
    pub fn be_of_fe(&self, fe: usize) -> usize {
        self.be_of_fe[fe]
    }

    /// FE indices ranked by distance from a client (memoized).
    fn ranked_fes(&mut self, client: usize) -> Vec<usize> {
        if let Some(r) = self.fe_rank.get(&client) {
            return r.clone();
        }
        let pt = self.clients[client].pt;
        let mut idx: Vec<usize> = (0..self.fes.len()).collect();
        idx.sort_by(|&a, &b| {
            pt.distance_miles(&self.fes[a].site.pt)
                .total_cmp(&pt.distance_miles(&self.fes[b].site.pt))
        });
        self.fe_rank.insert(client, idx.clone());
        idx
    }

    /// BE indices ranked by distance from an FE (memoized).
    fn ranked_bes(&mut self, fe: usize) -> Vec<usize> {
        if let Some(r) = self.be_rank.get(&fe) {
            return r.clone();
        }
        let pt = self.fes[fe].site.pt;
        let mut idx: Vec<usize> = (0..self.bes.len()).collect();
        idx.sort_by(|&a, &b| {
            pt.distance_miles(&self.bes[a].0.pt)
                .total_cmp(&pt.distance_miles(&self.bes[b].0.pt))
        });
        self.be_rank.insert(fe, idx.clone());
        idx
    }

    /// Health-aware DNS: resolves a client's FE honoring the answer TTL.
    /// Without FE outages in the plan this is exactly the static nearest
    /// mapping (no cache reads or writes), preserving byte-identical
    /// trajectories.
    fn resolve_fe(&mut self, now: SimTime, client: usize) -> usize {
        if !self.cfg.faults.has_fe_outages() {
            return self.dns.fe_of(client);
        }
        if let Some(&(fe, at)) = self.dns_cache.get(&client) {
            if now.saturating_since(at) < self.cfg.dns_ttl {
                // The cached answer is honored until the TTL runs out,
                // even if the FE has since died — failover via DNS is
                // deliberately not instantaneous.
                return fe;
            }
        }
        let prev = self
            .dns_cache
            .get(&client)
            .map(|&(f, _)| f)
            .unwrap_or_else(|| self.dns.fe_of(client));
        let fe = self
            .ranked_fes(client)
            .into_iter()
            .find(|&f| !self.cfg.faults.fe_down(f, now))
            .unwrap_or_else(|| self.dns.fe_of(client));
        if fe != prev {
            self.metrics.inc("cdnsim.dns_remaps");
        }
        self.dns_cache.insert(client, (fe, now));
        fe
    }

    /// The BE an FE should fetch from at `now`: its nearest site, or the
    /// next-nearest live one when the primary is in an outage window.
    fn live_be_for(&mut self, fe: usize, now: SimTime) -> usize {
        let primary = self.be_of_fe[fe];
        if !self.cfg.faults.has_be_outages() || !self.cfg.faults.be_down(primary, now) {
            return primary;
        }
        let chosen = self
            .ranked_bes(fe)
            .into_iter()
            .find(|&b| !self.cfg.faults.be_down(b, now))
            .unwrap_or(primary);
        if chosen != primary {
            self.metrics.inc("cdnsim.be_failovers");
        }
        chosen
    }

    /// Number of FEs in the fleet.
    pub fn fe_count(&self) -> usize {
        self.fes.len()
    }

    /// Nominal client↔FE RTT in ms under the client's access profile.
    pub fn client_fe_rtt_ms(&self, client: usize, fe: usize) -> f64 {
        self.client_path(client, &self.fes[fe].site.pt.clone())
            .nominal_rtt_ms()
    }

    /// Nominal client↔BE RTT in ms under the client's access profile —
    /// what an ICMP ping to the data-center prefix would measure (used
    /// by the network-coordinate harness to place BEs in the embedding).
    pub fn client_be_rtt_ms(&self, client: usize, be: usize) -> f64 {
        self.client_path(client, &self.bes[be].0.pt.clone())
            .nominal_rtt_ms()
    }

    /// Nominal FE↔BE RTT in ms.
    pub fn fe_be_rtt_ms(&self, fe: usize, be: usize) -> f64 {
        PathModel::between(
            &self.fes[fe].site.pt,
            &self.bes[be].0.pt,
            &self.cfg.febe_profile,
        )
        .nominal_rtt_ms()
    }

    /// FE↔BE great-circle distance in miles.
    pub fn fe_be_distance_miles(&self, fe: usize, be: usize) -> f64 {
        self.fes[fe].site.pt.distance_miles(&self.bes[be].0.pt)
    }

    fn access_profile(&self, access: AccessKind) -> PathProfile {
        if let Some(p) = &self.cfg.access_override {
            return p.clone();
        }
        match access {
            AccessKind::Campus => PathProfile::campus_access(),
            AccessKind::Residential => PathProfile::residential_access(),
            AccessKind::Wireless => PathProfile::wireless_access(),
        }
    }

    fn client_path(&self, client: usize, to: &GeoPoint) -> PathModel {
        let v = &self.clients[client];
        PathModel::between(&v.pt, to, &self.access_profile(v.access))
    }

    fn to_params(m: &PathModel) -> PathParams {
        PathParams {
            base_owd_ms: m.base_owd_ms,
            jitter_ms: m.jitter_ms.clone(),
            loss: m.loss,
            bw_mbps: m.bw_mbps,
        }
    }

    fn push_action(&mut self, net: &mut Net, delay: SimDuration, action: Action) {
        let token = self.actions.len() as u64;
        self.actions.push(action);
        net.set_timer(delay, token);
    }

    fn push_action_at(&mut self, net: &mut Net, at: SimTime, action: Action) {
        let delay = at.saturating_since(net.now());
        self.push_action(net, delay, action);
    }

    /// Installs the configuration's fault plan into the simulator:
    /// packet-level episodes become `tcpsim` link faults, and
    /// control-plane episodes (outage starts, connection drops) are
    /// scheduled as world actions. Call once after building the sim,
    /// before scheduling queries. A no-op for an empty plan — no link
    /// faults, no timers, no RNG stream touched.
    pub fn install_faults(&mut self, net: &mut Net) {
        if self.cfg.faults.is_empty() {
            return;
        }
        let windows: Vec<FaultWindow> = self.cfg.faults.windows().to_vec();
        for (idx, w) in windows.iter().enumerate() {
            match w.kind {
                FaultKind::FeOutage { fe } => {
                    net.add_link_fault(LinkFault::node_outage(Self::fe_node(fe), w.start, w.end));
                    self.push_action_at(net, w.start, Action::FaultStart { window: idx });
                }
                FaultKind::BeOutage { be } => {
                    net.add_link_fault(LinkFault::node_outage(Self::be_node(be), w.start, w.end));
                    self.push_action_at(net, w.start, Action::FaultStart { window: idx });
                }
                FaultKind::ConnDrop { .. } => {
                    self.push_action_at(net, w.start, Action::FaultStart { window: idx });
                }
                FaultKind::ClientBurstLoss { client, fe, params } => {
                    net.add_link_fault(LinkFault::burst_loss(
                        Self::client_node(client),
                        Self::fe_node(fe),
                        w.start,
                        w.end,
                        params.p_enter,
                        params.p_exit,
                        params.bad_loss,
                    ));
                }
                FaultKind::FeBeBurstLoss { fe, be, params } => {
                    net.add_link_fault(LinkFault::burst_loss(
                        Self::fe_node(fe),
                        Self::be_node(be),
                        w.start,
                        w.end,
                        params.p_enter,
                        params.p_exit,
                        params.bad_loss,
                    ));
                }
                // Brownouts act on FE service times, consulted at serve
                // time; nothing to install up front.
                FaultKind::FeBrownout { .. } => {}
            }
        }
    }

    /// Aborts every FE↔BE connection — pooled, warming or mid-fetch —
    /// whose (fe, be) pair matches, so a dead site does not leave
    /// endpoints retransmitting into a blackhole forever. Stalled
    /// queries are failed over by their fetch deadline (if configured).
    fn drop_fe_be_conns(&mut self, net: &mut Net, hit: impl Fn(usize, usize) -> bool) {
        for (&(f, b), v) in self.free_pool.iter_mut() {
            if hit(f, b) {
                for c in v.drain(..) {
                    net.abort(c);
                }
            }
        }
        let warm: Vec<ConnId> = self
            .conn_info
            .iter()
            .filter_map(|(c, i)| match i.leg {
                Leg::Warmup { fe, be } if hit(fe, be) => Some(*c),
                _ => None,
            })
            .collect();
        for c in warm {
            net.abort(c);
            self.conn_info.remove(&c);
            self.warmup_progress.remove(&c);
        }
        let stalled: Vec<ConnId> = self
            .queries
            .values()
            .filter_map(|q| match (q.fe, q.be_conn) {
                (Some(f), Some(c)) if hit(f, q.be) && !q.resp_handled => Some(c),
                _ => None,
            })
            .collect();
        for c in stalled {
            net.abort(c);
        }
    }

    fn act_fault_start(&mut self, net: &mut Net, window: usize) {
        let w = self.cfg.faults.windows()[window];
        match w.kind {
            FaultKind::FeOutage { fe } => self.drop_fe_be_conns(net, |f, _| f == fe),
            FaultKind::BeOutage { be } => self.drop_fe_be_conns(net, |_, b| b == be),
            FaultKind::ConnDrop { fe, be } => self.drop_fe_be_conns(net, |f, b| f == fe && b == be),
            _ => {}
        }
    }

    /// Schedules a query to start `delay` from now.
    pub fn schedule_query(&mut self, net: &mut Net, delay: SimDuration, spec: QuerySpec) {
        self.push_action(net, delay, Action::Start(spec));
    }

    /// Drains the completed-query records accumulated so far.
    pub fn drain_completed(&mut self) -> Vec<CompletedQuery> {
        std::mem::take(&mut self.completed)
    }

    /// Number of queries still in flight.
    pub fn in_flight(&self) -> usize {
        self.queries.len()
    }

    /// Pre-warms `n` persistent FE↔BE connections for a pair: opens them
    /// and runs a filler exchange so their congestion windows are grown
    /// before the first measured query (split TCP's warm-connection
    /// premise).
    pub fn prewarm(&mut self, net: &mut Net, fe: usize, be: usize, n: usize) {
        for _ in 0..n {
            let conn = self.open_be_conn(net, fe, be, 0);
            self.conn_info.insert(
                conn,
                ConnInfo {
                    qid: 0,
                    leg: Leg::Warmup { fe, be },
                },
            );
            self.warmup_progress.insert(conn, (0, 0));
            net.send(conn, End::A, WARMUP_REQ_BYTES, Marker::Other, 0);
        }
    }

    fn open_be_conn(&mut self, net: &mut Net, fe: usize, be: usize, session: u64) -> ConnId {
        let path = PathModel::between(
            &self.fes[fe].site.pt,
            &self.bes[be].0.pt,
            &self.cfg.febe_profile,
        );
        net.open(
            Self::fe_node(fe),
            Self::be_node(be),
            Self::to_params(&path),
            self.cfg.fe_be_tcp.clone().persistent(),
            self.cfg.be_tcp.clone().persistent(),
            session,
        )
    }

    fn checkout_be_conn(&mut self, net: &mut Net, fe: usize, be: usize, qid: u64) -> ConnId {
        // Skip pooled connections a fault has aborted since check-in.
        let conn = self.free_pool.get_mut(&(fe, be)).and_then(|v| {
            while let Some(c) = v.pop() {
                if !net.is_aborted(c) {
                    return Some(c);
                }
            }
            None
        });
        let conn = match conn {
            Some(c) => {
                net.set_session(c, qid);
                c
            }
            None => self.open_be_conn(net, fe, be, qid),
        };
        self.conn_info.insert(conn, ConnInfo { qid, leg: Leg::Be });
        conn
    }

    fn return_be_conn(&mut self, conn: ConnId, fe: usize, be: usize) {
        self.conn_info.remove(&conn);
        self.free_pool.entry((fe, be)).or_default().push(conn);
    }

    fn start_query(&mut self, net: &mut Net, spec: QuerySpec, attempt: u32) {
        let qid = self.next_qid;
        self.next_qid += 1;
        let kw = self.corpus.get(spec.keyword).clone();
        let req = RequestSpec::for_query_len(kw.chars(), 500_000_000_000 + qid);
        let now = net.now();
        let (fe, be, server_pt, rtt_fe_be_ms, dist_fe_be): (
            Option<usize>,
            usize,
            GeoPoint,
            f64,
            f64,
        ) = if self.cfg.split_tcp {
            let fe = match spec.fixed_fe {
                Some(f) => f,
                None => self.resolve_fe(now, spec.client),
            };
            let be = self.live_be_for(fe, now);
            (
                Some(fe),
                be,
                self.fes[fe].site.pt,
                self.fe_be_rtt_ms(fe, be),
                self.fe_be_distance_miles(fe, be),
            )
        } else {
            // No split TCP: straight to the nearest BE.
            let be =
                nettopo::geo::nearest(&self.clients[spec.client].pt, &self.cfg.be_sites, |s| s.pt)
                    .unwrap()
                    .0;
            (None, be, self.bes[be].0.pt, 0.0, 0.0)
        };
        let path = self.client_path(spec.client, &server_pt);
        let rtt_client = path.nominal_rtt_ms();
        let conn = net.open(
            Self::client_node(spec.client),
            match fe {
                Some(f) => Self::fe_node(f),
                None => Self::be_node(be),
            },
            Self::to_params(&path),
            self.cfg.client_tcp.clone(),
            self.cfg.fe_client_tcp.clone(),
            qid,
        );
        self.conn_info.insert(
            conn,
            ConnInfo {
                qid,
                leg: Leg::Client,
            },
        );
        self.queries.insert(
            qid,
            QueryState {
                client: spec.client,
                fe,
                be,
                keyword: spec.keyword,
                class: kw.class,
                instant_followup: spec.instant_followup,
                fixed_fe: spec.fixed_fe,
                attempt,
                fetch_attempts: 0,
                degraded: false,
                t_start: net.now(),
                client_conn: conn,
                be_conn: None,
                req,
                plan: None,
                proc_ms: 0.0,
                fe_overhead_ms: 0.0,
                fetch_start: None,
                fetch_done: None,
                rtt_client_fe_ms: rtt_client,
                rtt_fe_be_ms,
                dist_fe_be_miles: dist_fe_be,
                srv_progress: RecvProgress::new(),
                resp_progress: RecvProgress::new(),
                request_handled: false,
                be_handled: false,
                resp_handled: false,
            },
        );
        if let Some(deadline) = self.cfg.client_retry.as_ref().map(|p| p.deadline) {
            self.push_action(net, deadline, Action::ClientDeadline { qid });
        }
    }

    fn handle_request_arrived(&mut self, net: &mut Net, qid: u64) {
        let (split, fe, be, kw_id, followup) = {
            let q = &self.queries[&qid];
            (
                self.cfg.split_tcp,
                q.fe,
                q.be,
                q.keyword,
                q.instant_followup,
            )
        };
        if split {
            let fe = fe.expect("split mode has an FE");
            let mut overhead = self.fes[fe].request_overhead_at(net.now());
            // Brownout windows stretch FE processing.
            let slow = self.cfg.faults.fe_slowdown(fe, net.now());
            if slow > 1.0 {
                overhead = SimDuration::from_millis_f64(overhead.as_millis_f64() * slow);
            }
            self.queries.get_mut(&qid).unwrap().fe_overhead_ms = overhead.as_millis_f64();
            self.push_action(net, overhead, Action::FeServe { qid });
        } else {
            let kw = self.corpus.get(kw_id).clone();
            let region = Some(self.clients[self.queries[&qid].client].region);
            let result = self.bes[be].1.handle_query(&kw, followup, region);
            {
                let q = self.queries.get_mut(&qid).unwrap();
                q.proc_ms = result.proc_time.as_millis_f64();
                q.plan = Some(result.plan);
            }
            self.push_action(net, result.proc_time, Action::BeDirectReply { qid });
        }
    }

    fn act_fe_serve(&mut self, net: &mut Net, qid: u64) {
        let (fe, be, client_conn, kw_id) = {
            let q = &self.queries[&qid];
            (q.fe.unwrap(), q.be, q.client_conn, q.keyword)
        };
        // (a) Burst the cached static portion.
        if self.cfg.cache_static {
            self.metrics.inc("cdnsim.fe_static_cache_hits");
            net.send(
                client_conn,
                End::B,
                self.cfg.composer.static_bytes,
                Marker::Static,
                self.cfg.composer.static_content,
            );
        }
        // Hypothetical FE result cache.
        if let Some(plan) = self.fes[fe].cached_result(kw_id).cloned() {
            self.metrics.inc("cdnsim.fe_result_cache_hits");
            if !self.cfg.cache_static {
                plan.send_static(net, client_conn, End::B);
            }
            plan.send_dynamic(net, client_conn, End::B);
            net.close(client_conn, End::B);
            let q = self.queries.get_mut(&qid).unwrap();
            q.plan = Some(plan);
            q.proc_ms = 0.0;
            return;
        }
        if self.cfg.fe_caches_results {
            self.metrics.inc("cdnsim.fe_result_cache_misses");
        }
        // (b) Forward the query over a persistent BE connection.
        let be_conn = self.checkout_be_conn(net, fe, be, qid);
        {
            let q = self.queries.get_mut(&qid).unwrap();
            q.be_conn = Some(be_conn);
            q.fetch_start = Some(net.now());
        }
        let req = self.queries[&qid].req.clone();
        req.send_as_be_query(net, be_conn, End::A);
        if let Some(d) = self.cfg.fe_fetch_deadline {
            self.push_action(net, d, Action::FetchDeadline { qid, attempt: 0 });
        }
    }

    fn act_be_reply(&mut self, net: &mut Net, qid: u64, attempt: u32) {
        let (be_conn, plan, send_static_too) = {
            let q = match self.queries.get(&qid) {
                Some(q) => q,
                None => return,
            };
            // A reply from a BE the query has since failed away from
            // (or a degraded query) is stale — drop it.
            if q.fetch_attempts != attempt || q.degraded {
                return;
            }
            let be_conn = match q.be_conn {
                Some(c) => c,
                None => return,
            };
            let plan = match q.plan.clone() {
                Some(p) => p,
                None => return,
            };
            (be_conn, plan, !self.cfg.cache_static)
        };
        if send_static_too {
            net.send(
                be_conn,
                End::B,
                plan.static_bytes,
                Marker::BeResponse,
                plan.static_content,
            );
        }
        plan.send_as_be_response(net, be_conn, End::B);
    }

    fn act_be_direct_reply(&mut self, net: &mut Net, qid: u64) {
        let (conn, plan) = {
            let q = &self.queries[&qid];
            (q.client_conn, q.plan.clone().expect("direct reply plan"))
        };
        plan.send_static(net, conn, End::B);
        plan.send_dynamic(net, conn, End::B);
        net.close(conn, End::B);
    }

    fn handle_be_response_complete(&mut self, net: &mut Net, qid: u64) {
        let (fe, be, be_conn, client_conn, plan, kw_id) = {
            let q = self.queries.get_mut(&qid).unwrap();
            q.fetch_done = Some(net.now());
            (
                q.fe.unwrap(),
                q.be,
                q.be_conn.take().unwrap(),
                q.client_conn,
                q.plan.clone().unwrap(),
                q.keyword,
            )
        };
        self.return_be_conn(be_conn, fe, be);
        if !self.cfg.cache_static {
            plan.send_static(net, client_conn, End::B);
        }
        plan.send_dynamic(net, client_conn, End::B);
        net.close(client_conn, End::B);
        if self.cfg.fe_caches_results {
            self.fes[fe].store_result(kw_id, plan);
        }
    }

    /// FE fetch deadline fired: the BE response for fetch attempt
    /// `attempt` has not fully arrived. Fail over to the next live BE
    /// site on a (possibly cold) connection, or degrade the response when
    /// no live site remains.
    fn act_fetch_deadline(&mut self, net: &mut Net, qid: u64, attempt: u32) {
        let (fe, cur_be, stalled_conn) = {
            let q = match self.queries.get(&qid) {
                Some(q) => q,
                None => return,
            };
            // Completed, degraded or already failed over: stale timer.
            if q.resp_handled || q.degraded || q.fetch_attempts != attempt {
                return;
            }
            let fe = match q.fe {
                Some(f) => f,
                None => return,
            };
            (fe, q.be, q.be_conn)
        };
        if let Some(conn) = stalled_conn {
            net.abort(conn);
            self.conn_info.remove(&conn);
        }
        let now = net.now();
        let next_be = self
            .ranked_bes(fe)
            .into_iter()
            .find(|&b| b != cur_be && !self.cfg.faults.be_down(b, now));
        let next_be = match next_be {
            // One failover per site at most: once every site has been
            // given a deadline's worth of time, serve what we have.
            Some(b) if (attempt as usize) < self.bes.len().saturating_sub(1) => b,
            _ => {
                self.degrade_query(net, qid);
                return;
            }
        };
        let rtt = self.fe_be_rtt_ms(fe, next_be);
        let dist = self.fe_be_distance_miles(fe, next_be);
        self.metrics.inc("cdnsim.fetch_failovers");
        {
            let q = self.queries.get_mut(&qid).unwrap();
            q.be = next_be;
            q.fetch_attempts += 1;
            q.be_handled = false;
            q.plan = None;
            q.srv_progress = RecvProgress::new();
            q.resp_progress = RecvProgress::new();
            q.rtt_fe_be_ms = rtt;
            q.dist_fe_be_miles = dist;
        }
        let conn = self.checkout_be_conn(net, fe, next_be, qid);
        self.queries.get_mut(&qid).unwrap().be_conn = Some(conn);
        let req = self.queries[&qid].req.clone();
        req.send_as_be_query(net, conn, End::A);
        if let Some(d) = self.cfg.fe_fetch_deadline {
            self.push_action(
                net,
                d,
                Action::FetchDeadline {
                    qid,
                    attempt: attempt + 1,
                },
            );
        }
    }

    /// Graceful degradation: no back-end is reachable in time, so the FE
    /// closes the response with an error stub in place of the dynamic
    /// portion. The client still gets the cached static bytes (already
    /// burst at serve time when caching is on).
    fn degrade_query(&mut self, net: &mut Net, qid: u64) {
        self.metrics.inc("cdnsim.degraded_serves");
        let client_conn = {
            let q = self.queries.get_mut(&qid).unwrap();
            q.degraded = true;
            q.be_conn = None;
            q.client_conn
        };
        net.send(
            client_conn,
            End::B,
            DEGRADED_STUB_BYTES,
            Marker::Error,
            DEGRADED_CONTENT_ID,
        );
        net.close(client_conn, End::B);
        let static_bytes = if self.cfg.cache_static {
            self.cfg.composer.static_bytes
        } else {
            // Static rides the BE response in the no-cache ablation, so
            // nothing reached the client; record a 1-byte placeholder
            // (ResponsePlan requires non-empty portions).
            1
        };
        let static_content = self.cfg.composer.static_content;
        let q = self.queries.get_mut(&qid).unwrap();
        q.plan = Some(ResponsePlan::new(
            static_bytes,
            static_content,
            DEGRADED_STUB_BYTES,
            DEGRADED_CONTENT_ID,
        ));
    }

    /// Client deadline fired with the query still in flight: abandon the
    /// attempt (aborting its connections, discarding its trace) and
    /// either schedule a retry with exponential backoff + jitter or
    /// record a timed-out query.
    fn act_client_deadline(&mut self, net: &mut Net, qid: u64) {
        let q = match self.queries.remove(&qid) {
            Some(q) => q,
            None => return, // completed before the deadline
        };
        net.abort(q.client_conn);
        self.conn_info.remove(&q.client_conn);
        if let Some(bc) = q.be_conn {
            net.abort(bc);
            self.conn_info.remove(&bc);
        }
        let (trace, traced) = match net.trace_mut().try_take_session(qid) {
            Some(t) => (t, true),
            None => (Vec::new(), false),
        };
        let policy = self
            .cfg
            .client_retry
            .clone()
            .expect("deadline only armed when a retry policy is set");
        if q.attempt < policy.max_retries {
            // Exponential backoff with jitter, from the dedicated retry
            // stream (drawn only here, so fault-free runs never touch
            // it).
            let u = self.retry_rng.next_f64();
            let factor = (1u64 << q.attempt.min(16)) as f64 * (1.0 + policy.jitter * u);
            let backoff =
                SimDuration::from_millis_f64(policy.base_backoff.as_millis_f64() * factor);
            let spec = QuerySpec {
                client: q.client,
                keyword: q.keyword,
                fixed_fe: q.fixed_fe,
                instant_followup: q.instant_followup,
            };
            self.push_action(
                net,
                backoff,
                Action::StartRetry {
                    spec,
                    attempt: q.attempt + 1,
                },
            );
            return;
        }
        // Retry budget exhausted: surface the failure with the truncated
        // trace of the final attempt so the measurement pipeline can
        // exercise its skip-and-count path.
        self.completed.push(CompletedQuery {
            qid,
            client: q.client,
            fe: q.fe,
            be: q.be,
            keyword: q.keyword,
            class: q.class,
            t_start: q.t_start,
            t_done: net.now(),
            plan: q
                .plan
                .unwrap_or_else(|| ResponsePlan::new(1, 0, 1, httpsim::CONTENT_ID_STATIC_BASE)),
            proc_ms: q.proc_ms,
            fe_overhead_ms: q.fe_overhead_ms,
            fetch_start: q.fetch_start,
            fetch_done: q.fetch_done,
            rtt_client_fe_ms: q.rtt_client_fe_ms,
            rtt_fe_be_ms: q.rtt_fe_be_ms,
            dist_fe_be_miles: q.dist_fe_be_miles,
            trace,
            traced,
            outcome: QueryOutcome::TimedOut,
        });
    }

    fn finish_query(&mut self, net: &mut Net, qid: u64) {
        let q = match self.queries.remove(&qid) {
            Some(q) => q,
            None => return,
        };
        self.conn_info.remove(&q.client_conn);
        // Orderly close from the client side too.
        net.close(q.client_conn, End::A);
        let (trace, traced) = match net.trace_mut().try_take_session(qid) {
            Some(t) => (t, true),
            None => (Vec::new(), false),
        };
        let outcome = if q.degraded {
            QueryOutcome::Degraded
        } else if q.attempt > 0 {
            QueryOutcome::Retried(q.attempt)
        } else {
            QueryOutcome::Ok
        };
        self.completed.push(CompletedQuery {
            qid,
            client: q.client,
            fe: q.fe,
            be: q.be,
            keyword: q.keyword,
            class: q.class,
            t_start: q.t_start,
            t_done: net.now(),
            plan: q.plan.unwrap_or_else(|| {
                // Should not happen: a FIN implies a served response.
                ResponsePlan::new(1, 0, 1, httpsim::CONTENT_ID_STATIC_BASE)
            }),
            proc_ms: q.proc_ms,
            fe_overhead_ms: q.fe_overhead_ms,
            fetch_start: q.fetch_start,
            fetch_done: q.fetch_done,
            rtt_client_fe_ms: q.rtt_client_fe_ms,
            rtt_fe_be_ms: q.rtt_fe_be_ms,
            dist_fe_be_miles: q.dist_fe_be_miles,
            trace,
            traced,
            outcome,
        });
    }
}

impl App for ServiceWorld {
    fn on_established(&mut self, net: &mut Net, conn: ConnId, end: End) {
        let info = match self.conn_info.get(&conn) {
            Some(i) => *i,
            None => return,
        };
        if info.leg == Leg::Client && end == End::A {
            if let Some(q) = self.queries.get(&info.qid) {
                let req = q.req.clone();
                req.send(net, conn, End::A);
            }
        }
    }

    fn on_data(&mut self, net: &mut Net, conn: ConnId, end: End, spans: &[DeliveredSpan]) {
        let info = match self.conn_info.get(&conn) {
            Some(i) => *i,
            None => return,
        };
        match info.leg {
            Leg::Warmup { fe, be } => {
                let entry = self.warmup_progress.entry(conn).or_insert((0, 0));
                let bytes: u64 = spans.iter().map(|s| s.len as u64).sum();
                match end {
                    End::B => {
                        entry.0 += bytes;
                        if entry.0 >= WARMUP_REQ_BYTES {
                            net.send(conn, End::B, WARMUP_RESP_BYTES, Marker::Other, 0);
                        }
                    }
                    End::A => {
                        entry.1 += bytes;
                        if entry.1 >= WARMUP_RESP_BYTES {
                            self.warmup_progress.remove(&conn);
                            self.return_be_conn(conn, fe, be);
                        }
                    }
                }
            }
            Leg::Client => {
                let qid = info.qid;
                match end {
                    End::B => {
                        // Server side of the client leg (FE, or BE when
                        // split TCP is off): request bytes.
                        let ready = {
                            let q = match self.queries.get_mut(&qid) {
                                Some(q) => q,
                                None => return,
                            };
                            q.srv_progress.absorb(spans);
                            let done = q.srv_progress.complete(Marker::Request, q.req.bytes);
                            if done && !q.request_handled {
                                q.request_handled = true;
                                true
                            } else {
                                false
                            }
                        };
                        if ready {
                            self.handle_request_arrived(net, qid);
                        }
                    }
                    End::A => {
                        // Client receiving the response; completion is
                        // signalled by the FIN.
                        if let Some(q) = self.queries.get_mut(&qid) {
                            q.resp_progress.absorb(spans);
                        }
                    }
                }
            }
            Leg::Be => {
                let qid = info.qid;
                match end {
                    End::B => {
                        // BE receiving the forwarded query.
                        let ready = {
                            let q = match self.queries.get_mut(&qid) {
                                Some(q) => q,
                                None => return,
                            };
                            q.srv_progress.absorb(spans);
                            let done = q.srv_progress.complete(Marker::BeQuery, q.req.bytes);
                            if done && !q.be_handled {
                                q.be_handled = true;
                                true
                            } else {
                                false
                            }
                        };
                        if ready {
                            let (be, kw_id, followup) = {
                                let q = &self.queries[&qid];
                                (q.be, q.keyword, q.instant_followup)
                            };
                            let kw = self.corpus.get(kw_id).clone();
                            let region = Some(self.clients[self.queries[&qid].client].region);
                            let result = self.bes[be].1.handle_query(&kw, followup, region);
                            let proc = result.proc_time;
                            {
                                let q = self.queries.get_mut(&qid).unwrap();
                                q.proc_ms = proc.as_millis_f64();
                                q.plan = Some(result.plan);
                            }
                            let attempt = self.queries[&qid].fetch_attempts;
                            self.push_action(net, proc, Action::BeReply { qid, attempt });
                        }
                    }
                    End::A => {
                        // FE receiving the BE response.
                        let ready = {
                            let q = match self.queries.get_mut(&qid) {
                                Some(q) => q,
                                None => return,
                            };
                            q.resp_progress.absorb(spans);
                            let expected = match &q.plan {
                                Some(p) => {
                                    p.dynamic_bytes
                                        + if self.cfg.cache_static {
                                            0
                                        } else {
                                            p.static_bytes
                                        }
                                }
                                None => u64::MAX,
                            };
                            let done = q.resp_progress.complete(Marker::BeResponse, expected);
                            if done && !q.resp_handled {
                                q.resp_handled = true;
                                true
                            } else {
                                false
                            }
                        };
                        if ready {
                            self.handle_be_response_complete(net, qid);
                        }
                    }
                }
            }
        }
    }

    fn on_fin(&mut self, net: &mut Net, conn: ConnId, end: End) {
        let info = match self.conn_info.get(&conn) {
            Some(i) => *i,
            None => return,
        };
        if info.leg == Leg::Client && end == End::A {
            self.finish_query(net, info.qid);
        }
    }

    fn on_timer(&mut self, net: &mut Net, token: u64) {
        let action = self.actions[token as usize].clone();
        match action {
            Action::Start(spec) => self.start_query(net, spec, 0),
            Action::StartRetry { spec, attempt } => self.start_query(net, spec, attempt),
            Action::FeServe { qid } => self.act_fe_serve(net, qid),
            Action::BeReply { qid, attempt } => self.act_be_reply(net, qid, attempt),
            Action::BeDirectReply { qid } => self.act_be_direct_reply(net, qid),
            Action::ClientDeadline { qid } => self.act_client_deadline(net, qid),
            Action::FetchDeadline { qid, attempt } => self.act_fetch_deadline(net, qid, attempt),
            Action::FaultStart { window } => self.act_fault_start(net, window),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettopo::vantage::{planetlab_like, VantageConfig};
    use tcpsim::Sim;

    fn small_world(cfg: ServiceConfig) -> Sim<ServiceWorld> {
        let vantages = planetlab_like(
            cfg.seed,
            &VantageConfig {
                count: 20,
                ..VantageConfig::default()
            },
        );
        let corpus = KeywordCorpus::generate(cfg.seed, 200, 0.5);
        let world = ServiceWorld::new(cfg, vantages, corpus);
        let mut sim = Sim::new(7, world);
        sim.net().trace_mut().set_enabled(true);
        sim
    }

    fn run_one_query(cfg: ServiceConfig) -> CompletedQuery {
        let mut sim = small_world(cfg);
        sim.with(|w, net| {
            w.schedule_query(
                net,
                SimDuration::from_millis(1),
                QuerySpec {
                    client: 0,
                    keyword: 3,
                    fixed_fe: None,
                    instant_followup: false,
                },
            );
        });
        sim.run();
        let mut done = sim.with(|w, _| w.drain_completed());
        assert_eq!(done.len(), 1);
        done.pop().unwrap()
    }

    #[test]
    fn google_like_query_completes_with_ground_truth() {
        let cq = run_one_query(ServiceConfig::google_like(1));
        assert!(cq.fe.is_some());
        assert!(cq.proc_ms > 1.0, "proc {}", cq.proc_ms);
        assert!(cq.fe_overhead_ms > 0.0);
        assert!(cq.true_fetch_ms().unwrap() > cq.proc_ms);
        assert!(cq.overall_ms() > 0.0);
        assert!(!cq.trace.is_empty());
        assert_eq!(cq.plan.static_content, 1);
    }

    #[test]
    fn bing_like_query_completes() {
        let cq = run_one_query(ServiceConfig::bing_like(1));
        assert!(cq.proc_ms > 10.0);
        assert_eq!(cq.plan.static_content, 2);
        // Store-and-forward: fetch includes the response transfer.
        let fetch = cq.true_fetch_ms().unwrap();
        assert!(fetch >= cq.proc_ms + cq.rtt_fe_be_ms);
    }

    #[test]
    fn client_receives_exactly_the_planned_bytes() {
        let cq = run_one_query(ServiceConfig::google_like(2));
        // Client-side received data bytes from the trace.
        let client_node = ServiceWorld::client_node(0);
        let mut stat = 0u64;
        let mut dynamic = 0u64;
        for ev in &cq.trace {
            if ev.node == client_node && ev.dir == tcpsim::PktDir::Rx {
                for m in &ev.meta {
                    match m.marker {
                        Marker::Static => stat += m.len as u64,
                        Marker::Dynamic => dynamic += m.len as u64,
                        _ => {}
                    }
                }
            }
        }
        assert_eq!(stat, cq.plan.static_bytes);
        assert_eq!(dynamic, cq.plan.dynamic_bytes);
    }

    #[test]
    fn pool_reuses_connections_across_queries() {
        let mut sim = small_world(ServiceConfig::google_like(3));
        let fe = sim.with(|w, _| w.default_fe(0));
        for i in 0..3 {
            sim.with(|w, net| {
                w.schedule_query(
                    net,
                    SimDuration::from_millis(1 + i * 2_000),
                    QuerySpec {
                        client: 0,
                        keyword: i,
                        fixed_fe: Some(fe),
                        instant_followup: false,
                    },
                );
            });
        }
        sim.run();
        let done = sim.with(|w, _| w.drain_completed());
        assert_eq!(done.len(), 3);
        // Sequential queries through one FE must reuse the pooled conn:
        // the BE leg of queries 2 and 3 must carry no SYN.
        for cq in &done[1..] {
            let fe_node = ServiceWorld::fe_node(cq.fe.unwrap());
            let syn_on_be_leg = cq.trace.iter().any(|e| {
                e.node == fe_node && e.kind == tcpsim::PktKind::Syn && e.dir == tcpsim::PktDir::Tx
            });
            assert!(!syn_on_be_leg, "query {} reopened the BE conn", cq.qid);
        }
    }

    #[test]
    fn prewarm_grows_the_pool() {
        let mut sim = small_world(ServiceConfig::google_like(4));
        let fe = sim.with(|w, _| w.default_fe(0));
        let be = sim.with(|w, _| w.be_of_fe(fe));
        sim.with(|w, net| w.prewarm(net, fe, be, 2));
        sim.run();
        let pooled = sim.with(|w, _| w.free_pool.get(&(fe, be)).map(|v| v.len()).unwrap_or(0));
        assert_eq!(pooled, 2);
        // A subsequent query uses a warm conn (no SYN on the BE leg).
        sim.with(|w, net| {
            w.schedule_query(
                net,
                SimDuration::from_millis(1),
                QuerySpec {
                    client: 0,
                    keyword: 1,
                    fixed_fe: Some(fe),
                    instant_followup: false,
                },
            );
        });
        sim.run();
        let done = sim.with(|w, _| w.drain_completed());
        let cq = &done[0];
        let fe_node = ServiceWorld::fe_node(fe);
        assert!(!cq.trace.iter().any(|e| e.node == fe_node
            && e.kind == tcpsim::PktKind::Syn
            && e.dir == tcpsim::PktDir::Tx));
    }

    #[test]
    fn no_split_tcp_goes_straight_to_the_be() {
        let cq = run_one_query(ServiceConfig::google_like(5).without_split_tcp());
        assert!(cq.fe.is_none());
        assert!(cq.fetch_start.is_none());
        assert!(cq.proc_ms > 0.0);
        // The client's peer is a BE node.
        let be_node = ServiceWorld::be_node(cq.be);
        assert!(cq.trace.iter().any(|e| e.node == be_node));
    }

    #[test]
    fn static_cache_off_delays_static_delivery() {
        // With the cache on, static bytes reach the client well before
        // dynamic ones at small RTT; with it off they arrive only after
        // the fetch — compare first-static-arrival times.
        let first_static_ms = |cfg: ServiceConfig| -> f64 {
            let mut sim = small_world(cfg);
            sim.with(|w, net| {
                w.schedule_query(
                    net,
                    SimDuration::from_millis(1),
                    QuerySpec {
                        client: 0,
                        keyword: 3,
                        fixed_fe: None,
                        instant_followup: false,
                    },
                );
            });
            sim.run();
            let done = sim.with(|w, _| w.drain_completed());
            let cq = &done[0];
            let client_node = ServiceWorld::client_node(0);
            let t0 = cq.t_start;
            cq.trace
                .iter()
                .find(|e| {
                    e.node == client_node
                        && e.dir == tcpsim::PktDir::Rx
                        && e.meta.iter().any(|m| m.marker == Marker::Static)
                })
                .map(|e| e.t.saturating_since(t0).as_millis_f64())
                .unwrap()
        };
        let with_cache = first_static_ms(ServiceConfig::bing_like(6));
        let without = first_static_ms(ServiceConfig::bing_like(6).without_static_cache());
        assert!(
            without > with_cache + 50.0,
            "cache on: {with_cache}ms, off: {without}ms"
        );
    }

    #[test]
    fn fe_result_cache_skips_the_fetch_on_repeat() {
        let mut sim = small_world(ServiceConfig::google_like(8).with_fe_result_cache());
        let fe = sim.with(|w, _| w.default_fe(0));
        for i in 0..2 {
            sim.with(|w, net| {
                w.schedule_query(
                    net,
                    SimDuration::from_millis(1 + i * 3_000),
                    QuerySpec {
                        client: 0,
                        keyword: 5, // same keyword twice
                        fixed_fe: Some(fe),
                        instant_followup: false,
                    },
                );
            });
        }
        sim.run();
        let done = sim.with(|w, _| w.drain_completed());
        assert_eq!(done.len(), 2);
        assert!(done[0].true_fetch_ms().is_some(), "first query fetches");
        assert!(
            done[1].true_fetch_ms().is_none(),
            "second query must hit the FE cache"
        );
        assert_eq!(done[1].proc_ms, 0.0);
    }

    #[test]
    fn dataset_b_fixed_fe_overrides_dns() {
        let mut sim = small_world(ServiceConfig::google_like(9));
        let far_fe = sim.with(|w, _| {
            // Pick an FE that is NOT client 0's default.
            let def = w.default_fe(0);
            (0..w.fe_count()).find(|&f| f != def).unwrap()
        });
        sim.with(|w, net| {
            w.schedule_query(
                net,
                SimDuration::from_millis(1),
                QuerySpec {
                    client: 0,
                    keyword: 1,
                    fixed_fe: Some(far_fe),
                    instant_followup: false,
                },
            );
        });
        sim.run();
        let done = sim.with(|w, _| w.drain_completed());
        assert_eq!(done[0].fe, Some(far_fe));
    }

    #[test]
    fn clean_query_outcome_is_ok() {
        let cq = run_one_query(ServiceConfig::google_like(1));
        assert_eq!(cq.outcome, QueryOutcome::Ok);
    }

    #[test]
    fn empty_fault_plan_is_byte_identical() {
        // Attaching an empty FaultPlan (and installing it) must not
        // perturb a single packet relative to the plain configuration.
        let run = |with_plan: bool| -> CompletedQuery {
            let mut cfg = ServiceConfig::google_like(11);
            if with_plan {
                cfg = cfg.with_faults(nettopo::FaultPlan::default());
            }
            let mut sim = small_world(cfg);
            if with_plan {
                sim.with(|w, net| w.install_faults(net));
            }
            sim.with(|w, net| {
                w.schedule_query(
                    net,
                    SimDuration::from_millis(1),
                    QuerySpec {
                        client: 0,
                        keyword: 3,
                        fixed_fe: None,
                        instant_followup: false,
                    },
                );
            });
            sim.run();
            sim.with(|w, _| w.drain_completed()).pop().unwrap()
        };
        let plain = run(false);
        let faulted = run(true);
        assert_eq!(plain.t_done, faulted.t_done);
        assert_eq!(plain.trace.len(), faulted.trace.len());
        for (a, b) in plain.trace.iter().zip(faulted.trace.iter()) {
            assert_eq!(a, b);
        }
        assert_eq!(faulted.outcome, QueryOutcome::Ok);
    }

    #[test]
    fn degraded_when_every_be_site_is_down() {
        let mut plan = nettopo::FaultPlan::default();
        for be in 0..64 {
            plan = plan.be_outage(be, SimTime::ZERO, SimTime::from_millis(60_000));
        }
        let cfg = ServiceConfig::google_like(12)
            .with_faults(plan)
            .with_fe_fetch_deadline(SimDuration::from_millis(1_000));
        let mut sim = small_world(cfg);
        sim.with(|w, net| {
            w.install_faults(net);
            w.schedule_query(
                net,
                SimDuration::from_millis(1),
                QuerySpec {
                    client: 0,
                    keyword: 3,
                    fixed_fe: None,
                    instant_followup: false,
                },
            );
        });
        sim.run();
        let done = sim.with(|w, _| w.drain_completed());
        assert_eq!(done.len(), 1);
        let cq = &done[0];
        assert_eq!(cq.outcome, QueryOutcome::Degraded);
        // The degraded response carries the error stub, not real results.
        assert_eq!(cq.plan.dynamic_bytes, DEGRADED_STUB_BYTES);
        assert_eq!(cq.plan.dynamic_content, DEGRADED_CONTENT_ID);
        // The client actually received error-marked bytes.
        let client_node = ServiceWorld::client_node(0);
        let err_bytes: u64 = cq
            .trace
            .iter()
            .filter(|e| e.node == client_node && e.dir == tcpsim::PktDir::Rx)
            .flat_map(|e| e.meta.iter())
            .filter(|m| m.marker == Marker::Error)
            .map(|m| m.len as u64)
            .sum();
        assert_eq!(err_bytes, DEGRADED_STUB_BYTES);
        assert_eq!(sim.with(|w, _| w.in_flight()), 0);
    }

    #[test]
    fn be_outage_steers_fetch_to_live_site() {
        // Learn the primary BE, then knock it out for the whole run: the
        // FE must route the fetch to another live site and still answer.
        let mut probe = small_world(ServiceConfig::google_like(13));
        let (fe, primary_be) = probe.with(|w, _| {
            let fe = w.default_fe(0);
            (fe, w.be_of_fe(fe))
        });
        let plan = nettopo::FaultPlan::default().be_outage(
            primary_be,
            SimTime::ZERO,
            SimTime::from_millis(60_000),
        );
        let cfg = ServiceConfig::google_like(13)
            .with_faults(plan)
            .with_fe_fetch_deadline(SimDuration::from_millis(1_000));
        let mut sim = small_world(cfg);
        sim.with(|w, net| {
            w.install_faults(net);
            w.schedule_query(
                net,
                SimDuration::from_millis(1),
                QuerySpec {
                    client: 0,
                    keyword: 3,
                    fixed_fe: Some(fe),
                    instant_followup: false,
                },
            );
        });
        sim.run();
        let done = sim.with(|w, _| w.drain_completed());
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].outcome, QueryOutcome::Ok);
        assert_ne!(done[0].be, primary_be, "fetch must avoid the dead site");
    }

    #[test]
    fn fe_outage_retries_until_recovery() {
        // All FEs dark for the first 5 s; the client's deadline/backoff
        // loop must carry the query past the outage and then succeed.
        let mut plan = nettopo::FaultPlan::default();
        for fe in 0..512 {
            plan = plan.fe_outage(fe, SimTime::ZERO, SimTime::from_millis(5_000));
        }
        let cfg = ServiceConfig::google_like(14)
            .with_faults(plan)
            .with_client_retry(crate::service::RetryPolicy {
                deadline: SimDuration::from_millis(2_000),
                max_retries: 3,
                base_backoff: SimDuration::from_millis(500),
                jitter: 0.3,
            });
        let mut sim = small_world(cfg);
        sim.with(|w, net| {
            w.install_faults(net);
            w.schedule_query(
                net,
                SimDuration::from_millis(1),
                QuerySpec {
                    client: 0,
                    keyword: 3,
                    fixed_fe: None,
                    instant_followup: false,
                },
            );
        });
        sim.run();
        let done = sim.with(|w, _| w.drain_completed());
        assert_eq!(done.len(), 1);
        match done[0].outcome {
            QueryOutcome::Retried(n) => assert!(n >= 1, "retry count {n}"),
            other => panic!("expected Retried, got {other:?}"),
        }
        assert!(
            done[0].t_done >= SimTime::from_millis(5_000),
            "success only after the outage lifts"
        );
        assert_eq!(sim.with(|w, _| w.in_flight()), 0);
    }

    #[test]
    fn fe_outage_outlasting_retry_budget_times_out() {
        let mut plan = nettopo::FaultPlan::default();
        for fe in 0..512 {
            plan = plan.fe_outage(fe, SimTime::ZERO, SimTime::from_millis(60_000));
        }
        let cfg = ServiceConfig::google_like(15)
            .with_faults(plan)
            .with_client_retry(crate::service::RetryPolicy {
                deadline: SimDuration::from_millis(1_000),
                max_retries: 1,
                base_backoff: SimDuration::from_millis(200),
                jitter: 0.3,
            });
        let mut sim = small_world(cfg);
        sim.with(|w, net| {
            w.install_faults(net);
            w.schedule_query(
                net,
                SimDuration::from_millis(1),
                QuerySpec {
                    client: 0,
                    keyword: 3,
                    fixed_fe: None,
                    instant_followup: false,
                },
            );
        });
        sim.run();
        let done = sim.with(|w, _| w.drain_completed());
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].outcome, QueryOutcome::TimedOut);
        assert_eq!(sim.with(|w, _| w.in_flight()), 0);
    }

    #[test]
    fn conn_drop_forces_cold_reconnect() {
        // A persistent-connection drop empties the FE's pool; the next
        // query must open a fresh (cold) BE connection — visible as a SYN
        // on the FE's BE leg.
        let run = |drop_conns: bool| -> CompletedQuery {
            let mut probe = small_world(ServiceConfig::google_like(16));
            let (fe, be) = probe.with(|w, _| {
                let fe = w.default_fe(0);
                (fe, w.be_of_fe(fe))
            });
            let mut cfg = ServiceConfig::google_like(16);
            if drop_conns {
                cfg = cfg.with_faults(nettopo::FaultPlan::default().conn_drop(
                    fe,
                    be,
                    SimTime::from_millis(500),
                ));
            }
            let mut sim = small_world(cfg);
            sim.with(|w, net| {
                w.install_faults(net);
                w.prewarm(net, fe, be, 1);
            });
            sim.run(); // warm the pool
            sim.with(|w, net| {
                w.schedule_query(
                    net,
                    SimDuration::from_millis(1_000),
                    QuerySpec {
                        client: 0,
                        keyword: 3,
                        fixed_fe: Some(fe),
                        instant_followup: false,
                    },
                );
            });
            sim.run();
            sim.with(|w, _| w.drain_completed()).pop().unwrap()
        };
        let syn_on_be_leg = |cq: &CompletedQuery| {
            let fe_node = ServiceWorld::fe_node(cq.fe.unwrap());
            cq.trace.iter().any(|e| {
                e.node == fe_node && e.kind == tcpsim::PktKind::Syn && e.dir == tcpsim::PktDir::Tx
            })
        };
        let warm = run(false);
        let cold = run(true);
        assert!(!syn_on_be_leg(&warm), "control run must reuse the pool");
        assert!(syn_on_be_leg(&cold), "dropped pool must force a cold SYN");
        // Cold handshake + slow start make the fetch strictly slower.
        assert!(cold.true_fetch_ms().unwrap() > warm.true_fetch_ms().unwrap());
    }

    #[test]
    fn many_concurrent_clients_all_complete() {
        let mut sim = small_world(ServiceConfig::bing_like(10));
        for c in 0..20 {
            sim.with(|w, net| {
                w.schedule_query(
                    net,
                    SimDuration::from_millis(1 + (c as u64 * 13) % 500),
                    QuerySpec {
                        client: c,
                        keyword: c as u64,
                        fixed_fe: None,
                        instant_followup: false,
                    },
                );
            });
        }
        sim.run();
        let done = sim.with(|w, _| w.drain_completed());
        assert_eq!(done.len(), 20);
        assert_eq!(sim.with(|w, _| w.in_flight()), 0);
    }
}
