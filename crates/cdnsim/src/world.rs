//! The service world: the `tcpsim::App` that executes query lifecycles.
//!
//! A query's life (split-TCP mode, both real services):
//!
//! 1. the client opens a TCP connection to an FE (its DNS-default FE in
//!    Dataset A, a fixed FE in Dataset B) and sends the GET;
//! 2. when the GET has fully arrived, the FE spends a sampled service
//!    time (tenancy-dependent load), then *simultaneously* (a) bursts the
//!    cached static portion down the client connection and (b) forwards
//!    the query up a persistent, pre-warmed FE↔BE connection;
//! 3. the BE processes for `Tproc` (keyword-class- and load-dependent),
//!    then streams the dynamic portion back to the FE;
//! 4. once the FE holds the full dynamic portion (store-and-forward,
//!    matching the paper's definition of `Tfetch` as the time to
//!    "deliver it to the FE server"), it sends the dynamic portion after
//!    the static bytes and closes;
//! 5. the client sees the FIN — query complete; its packet trace is
//!    harvested into a [`CompletedQuery`] carrying simulator ground truth
//!    (true `Tproc`, true fetch interval, true FE overhead) against which
//!    the inference pipeline is validated.
//!
//! Ablations reroute this flow: `split_tcp = false` connects clients
//! straight to the BE; `cache_static = false` makes the static bytes ride
//! the BE response; `fe_caches_results = true` lets FEs answer repeated
//! keywords without any BE fetch.

use crate::dns::DnsMap;
use crate::fe::FeServer;
use crate::service::ServiceConfig;
use httpsim::{RecvProgress, RequestSpec, ResponsePlan};
use nettopo::faults::{FaultKind, FaultWindow};
use nettopo::geo::GeoPoint;
use nettopo::path::{PathModel, PathProfile};
use nettopo::sites::BeSite;
use nettopo::vantage::{AccessKind, Vantage};
use searchbe::datacenter::BeDataCenter;
use searchbe::keywords::{KeywordClass, KeywordCorpus};
use simcore::rng::Rng;
use simcore::telemetry::MetricsRegistry;
use simcore::time::{SimDuration, SimTime};
use std::collections::HashMap;
use tcpsim::{
    App, ConnId, DeliveredSpan, End, LinkFault, Marker, Net, NodeId, PathParams, PktEvent,
};

/// Node-id base for front-end servers.
pub const FE_NODE_BASE: u32 = 1_000_000;
/// Node-id base for back-end data centers.
pub const BE_NODE_BASE: u32 = 2_000_000;

const WARMUP_REQ_BYTES: u64 = 2_000;
const WARMUP_RESP_BYTES: u64 = 160_000;

/// Size of the error stub an FE serves in place of the dynamic portion
/// when every back-end is unreachable past the fetch deadline.
pub const DEGRADED_STUB_BYTES: u64 = 600;
/// Content identity of the degraded-service error stub.
pub const DEGRADED_CONTENT_ID: u64 = 999_999_999_999;
/// Size of the rejection stub an FE returns when admission control sheds
/// the request (smaller than the degraded stub: nothing was attempted).
pub const SHED_STUB_BYTES: u64 = 200;
/// Content identity of the load-shed rejection stub.
pub const SHED_CONTENT_ID: u64 = 999_999_999_998;

/// How a query's lifecycle ended, from the client's point of view.
/// Terminal failure variants carry the total attempt count (first try
/// included) so budget-exhausted retries are unambiguous next to the
/// plain `Retried(n)` success case.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryOutcome {
    /// Served normally on the first attempt.
    Ok,
    /// Served, but the dynamic portion was replaced by an error stub
    /// (graceful degradation: no back-end was reachable in time).
    Degraded,
    /// Served after `n` client retries (attempt `n` succeeded).
    Retried(u32),
    /// Never served: every attempt blew its deadline, and the retry
    /// count or budget is exhausted. The record carries the truncated
    /// trace of the final attempt.
    TimedOut {
        /// Attempts made in total (>= 1).
        attempts: u32,
    },
    /// Rejected by FE admission control: the final attempt was answered
    /// with the load-shed stub and no further retries were available.
    Shed {
        /// Attempts made in total (>= 1).
        attempts: u32,
    },
}

impl QueryOutcome {
    /// True when the client received a usable (non-stub) response.
    pub fn served(&self) -> bool {
        matches!(self, QueryOutcome::Ok | QueryOutcome::Retried(_))
    }
}

/// A query to execute.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// Index of the issuing client (into the vantage list).
    pub client: usize,
    /// Keyword id (into the corpus).
    pub keyword: u64,
    /// Fixed FE override (Dataset B); `None` uses the DNS default.
    pub fixed_fe: Option<usize>,
    /// Marks a correlated follow-up in a search-as-you-type session.
    pub instant_followup: bool,
}

/// A finished query with measurement trace and simulator ground truth.
#[derive(Clone, Debug)]
pub struct CompletedQuery {
    /// Query id (= trace session id).
    pub qid: u64,
    /// Issuing client.
    pub client: usize,
    /// Serving FE (`None` in the no-split-TCP ablation).
    pub fe: Option<usize>,
    /// Serving BE.
    pub be: usize,
    /// Keyword id.
    pub keyword: u64,
    /// Keyword class.
    pub class: KeywordClass,
    /// Time the client's SYN left.
    pub t_start: SimTime,
    /// Time the client consumed the server FIN (response complete).
    pub t_done: SimTime,
    /// The response layout.
    pub plan: ResponsePlan,
    /// Ground truth: BE processing time in ms (0 on FE cache hits).
    pub proc_ms: f64,
    /// Ground truth: FE request-handling overhead in ms.
    pub fe_overhead_ms: f64,
    /// Ground truth: when the FE queued the BE-bound query.
    pub fetch_start: Option<SimTime>,
    /// Ground truth: when the full BE response arrived at the FE.
    pub fetch_done: Option<SimTime>,
    /// Nominal client↔FE RTT in ms (client↔BE when split TCP is off).
    pub rtt_client_fe_ms: f64,
    /// Nominal FE↔BE RTT in ms (0 when split TCP is off).
    pub rtt_fe_be_ms: f64,
    /// FE↔BE great-circle distance in miles.
    pub dist_fe_be_miles: f64,
    /// All packet events of this query's session (client, FE and BE
    /// observations; filter by node for the client-side view).
    pub trace: Vec<PktEvent>,
    /// False when packet tracing was off while this query ran: the empty
    /// `trace` means "not captured", not "no packets" — downstream
    /// timeline extraction reports a typed error instead of analysing it.
    pub traced: bool,
    /// How the query ended ([`QueryOutcome::Ok`] on the happy path).
    pub outcome: QueryOutcome,
}

impl CompletedQuery {
    /// Ground-truth fetch time in ms (BE query forwarded → full response
    /// at FE), when a BE fetch happened.
    pub fn true_fetch_ms(&self) -> Option<f64> {
        match (self.fetch_start, self.fetch_done) {
            (Some(s), Some(d)) => Some(d.saturating_since(s).as_millis_f64()),
            _ => None,
        }
    }

    /// Overall user-perceived delay in ms (SYN → response complete).
    pub fn overall_ms(&self) -> f64 {
        self.t_done.saturating_since(self.t_start).as_millis_f64()
    }

    /// Estimated heap footprint of this record — dominated by the packet
    /// trace. The streaming pipeline samples this to report how many
    /// bytes a sink retains; it is an estimate (inline `meta` spans that
    /// spilled to the heap are counted at their inline size), not an
    /// allocator measurement.
    pub fn retained_bytes(&self) -> usize {
        std::mem::size_of::<CompletedQuery>()
            + self.trace.capacity() * std::mem::size_of::<PktEvent>()
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Leg {
    Client,
    Be,
    Hedge,
    Warmup { fe: usize, be: usize },
}

#[derive(Clone, Copy, Debug)]
struct ConnInfo {
    qid: u64,
    leg: Leg,
}

#[derive(Clone, Debug)]
enum Action {
    Start(QuerySpec),
    StartRetry { spec: QuerySpec, attempt: u32 },
    FeServe { qid: u64 },
    BeReply { qid: u64, attempt: u32 },
    BeDirectReply { qid: u64 },
    ClientDeadline { qid: u64 },
    FetchDeadline { qid: u64, attempt: u32 },
    HedgeFire { qid: u64, attempt: u32 },
    HedgeReply { qid: u64, attempt: u32 },
    FaultStart { window: usize },
}

/// Per-FE circuit-breaker state over BE fetch failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BreakerPhase {
    Closed,
    Open,
    HalfOpen,
}

#[derive(Clone, Copy, Debug)]
struct BreakerState {
    phase: BreakerPhase,
    fails: u32,
    opened_at: SimTime,
}

impl BreakerState {
    fn new() -> BreakerState {
        BreakerState {
            phase: BreakerPhase::Closed,
            fails: 0,
            opened_at: SimTime::ZERO,
        }
    }
}

struct QueryState {
    client: usize,
    fe: Option<usize>,
    be: usize,
    keyword: u64,
    class: KeywordClass,
    instant_followup: bool,
    fixed_fe: Option<usize>,
    attempt: u32,
    fetch_attempts: u32,
    degraded: bool,
    t_start: SimTime,
    client_conn: ConnId,
    be_conn: Option<ConnId>,
    req: RequestSpec,
    plan: Option<ResponsePlan>,
    proc_ms: f64,
    fe_overhead_ms: f64,
    fetch_start: Option<SimTime>,
    fetch_done: Option<SimTime>,
    rtt_client_fe_ms: f64,
    rtt_fe_be_ms: f64,
    dist_fe_be_miles: f64,
    srv_progress: RecvProgress,
    resp_progress: RecvProgress,
    request_handled: bool,
    be_handled: bool,
    resp_handled: bool,
    // Whether the FE served the static portion from its cache at serve
    // time. With the default unbounded prewarmed cache this equals
    // `cfg.cache_static`; a bounded static cache can miss, in which case
    // the static bytes ride the BE response exactly as in the no-cache
    // ablation.
    static_from_cache: bool,
    // Overload machinery. `shed` marks an admission-control rejection;
    // `fe_counted`/`be_counted` record which in-flight counters this
    // query holds (take-semantics make double-decrement impossible).
    shed: bool,
    fe_counted: bool,
    be_counted: Option<usize>,
    // Hedged-fetch leg: its own connection, progress trackers and plan,
    // so primary and hedge responses never mix state.
    hedge_conn: Option<ConnId>,
    hedge_be: Option<usize>,
    hedge_counted: Option<usize>,
    hedge_plan: Option<ResponsePlan>,
    hedge_proc_ms: f64,
    hedge_srv_progress: RecvProgress,
    hedge_resp_progress: RecvProgress,
    hedge_be_handled: bool,
}

/// The world: clients, FEs, BEs, pools, in-flight queries.
pub struct ServiceWorld {
    /// The service configuration in force.
    pub cfg: ServiceConfig,
    clients: Vec<Vantage>,
    fes: Vec<FeServer>,
    bes: Vec<(BeSite, BeDataCenter)>,
    corpus: KeywordCorpus,
    dns: DnsMap,
    be_of_fe: Vec<usize>,
    free_pool: HashMap<(usize, usize), Vec<ConnId>>,
    conn_info: HashMap<ConnId, ConnInfo>,
    warmup_progress: HashMap<ConnId, (u64, u64)>,
    queries: HashMap<u64, QueryState>,
    actions: Vec<Action>,
    completed: Vec<CompletedQuery>,
    next_qid: u64,
    retry_rng: Rng,
    dns_cache: HashMap<usize, (usize, SimTime)>,
    fe_rank: HashMap<usize, Vec<usize>>,
    be_rank: HashMap<usize, Vec<usize>>,
    // Concurrency bookkeeping for the load model and admission control.
    // Maintained unconditionally (no RNG, no scheduling), consulted only
    // when a load model or overload policy is enabled.
    fe_inflight: Vec<u32>,
    be_inflight: Vec<u32>,
    // Per-client retry-token buckets (lazy refill at spend time).
    retry_tokens: HashMap<usize, (f64, SimTime)>,
    // Per-FE circuit breakers over BE fetch failures.
    breakers: Vec<BreakerState>,
    // Observe-only service-layer telemetry (cache hits, failovers, DNS
    // re-maps). Draws no randomness and schedules nothing.
    metrics: MetricsRegistry,
}

impl ServiceWorld {
    /// Builds the world: places clients against the configured fleet,
    /// computes DNS defaults and FE→nearest-BE assignments, instantiates
    /// FE and BE servers.
    pub fn new(cfg: ServiceConfig, clients: Vec<Vantage>, corpus: KeywordCorpus) -> ServiceWorld {
        assert!(!cfg.fe_fleet.is_empty() && !cfg.be_sites.is_empty());
        let pts: Vec<GeoPoint> = clients.iter().map(|c| c.pt).collect();
        let dns = DnsMap::nearest(&pts, &cfg.fe_fleet);
        let be_of_fe: Vec<usize> = cfg
            .fe_fleet
            .iter()
            .map(|fe| {
                nettopo::geo::nearest(&fe.pt, &cfg.be_sites, |s| s.pt)
                    .unwrap()
                    .0
            })
            .collect();
        let fes: Vec<FeServer> = cfg
            .fe_fleet
            .iter()
            .map(|site| {
                let mut fe = FeServer::new(
                    cfg.seed,
                    site.clone(),
                    cfg.fe_load.service_ms.clone(),
                    cfg.fe_load.load_amplitude,
                    cfg.fe_load.load_volatility,
                    crate::fe::FeCaches {
                        results_enabled: cfg.fe_caches_results,
                        result_cache: cfg.fe_result_cache.clone(),
                        static_cache: cfg.fe_static_cache.clone(),
                    },
                );
                fe.set_workers(cfg.fe_workers);
                // Prewarm: the paper's FEs always hold the static object
                // (an unbounded static cache therefore always hits).
                fe.seed_static(cfg.composer.static_content, cfg.composer.static_bytes);
                fe
            })
            .collect();
        let bes: Vec<(BeSite, BeDataCenter)> = cfg
            .be_sites
            .iter()
            .enumerate()
            .map(|(k, site)| {
                let mut composer = cfg.composer.clone();
                composer.offset_ids(k as u64 * 100_000_000);
                let dc = BeDataCenter::new(cfg.seed, site.name, cfg.backend.clone(), composer);
                (*site, dc)
            })
            .collect();
        // Dedicated named stream: constructed unconditionally (named
        // streams are independent) but drawn from only when a retry
        // actually backs off, so fault-free runs stay byte-identical.
        let retry_rng = Rng::from_seed_and_name(cfg.seed, "cdnsim/retry");
        let n_fes = fes.len();
        let n_bes = bes.len();
        ServiceWorld {
            cfg,
            clients,
            fes,
            bes,
            corpus,
            dns,
            be_of_fe,
            free_pool: HashMap::new(),
            conn_info: HashMap::new(),
            warmup_progress: HashMap::new(),
            queries: HashMap::new(),
            actions: Vec::new(),
            completed: Vec::new(),
            next_qid: 1,
            retry_rng,
            dns_cache: HashMap::new(),
            fe_rank: HashMap::new(),
            be_rank: HashMap::new(),
            fe_inflight: vec![0; n_fes],
            be_inflight: vec![0; n_bes],
            retry_tokens: HashMap::new(),
            breakers: vec![BreakerState::new(); n_fes],
            metrics: MetricsRegistry::from_env(),
        }
    }

    /// True when any overload machinery may observably act: gates the
    /// high-water gauges (and nothing else) so metrics documents stay
    /// byte-identical when the subsystem is disabled.
    fn overload_active(&self) -> bool {
        self.cfg.load_model.is_some() || !self.cfg.overload.is_inert()
    }

    /// Current in-flight request count of an FE (testing/experiments).
    pub fn fe_inflight(&self, fe: usize) -> u32 {
        self.fe_inflight[fe]
    }

    /// Current in-flight fetch count of a BE site (testing/experiments).
    pub fn be_inflight(&self, be: usize) -> u32 {
        self.be_inflight[be]
    }

    /// The service-layer telemetry registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access to the service-layer telemetry registry.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Harvests the service-layer telemetry, leaving an empty registry
    /// with the same gate.
    pub fn take_metrics(&mut self) -> MetricsRegistry {
        self.metrics.take()
    }

    /// Node id of a client.
    pub fn client_node(client: usize) -> NodeId {
        NodeId(client as u32)
    }

    /// Node id of an FE.
    pub fn fe_node(fe: usize) -> NodeId {
        NodeId(FE_NODE_BASE + fe as u32)
    }

    /// Node id of a BE.
    pub fn be_node(be: usize) -> NodeId {
        NodeId(BE_NODE_BASE + be as u32)
    }

    /// The client vantage list.
    pub fn clients(&self) -> &[Vantage] {
        &self.clients
    }

    /// The keyword corpus.
    pub fn corpus(&self) -> &KeywordCorpus {
        &self.corpus
    }

    /// The DNS-default FE of a client.
    pub fn default_fe(&self, client: usize) -> usize {
        self.dns.fe_of(client)
    }

    /// The nearest BE of an FE.
    pub fn be_of_fe(&self, fe: usize) -> usize {
        self.be_of_fe[fe]
    }

    /// FE indices ranked by distance from a client (memoized).
    fn ranked_fes(&mut self, client: usize) -> Vec<usize> {
        if let Some(r) = self.fe_rank.get(&client) {
            return r.clone();
        }
        let pt = self.clients[client].pt;
        let mut idx: Vec<usize> = (0..self.fes.len()).collect();
        idx.sort_by(|&a, &b| {
            pt.distance_miles(&self.fes[a].site.pt)
                .total_cmp(&pt.distance_miles(&self.fes[b].site.pt))
        });
        self.fe_rank.insert(client, idx.clone());
        idx
    }

    /// BE indices ranked by distance from an FE (memoized).
    fn ranked_bes(&mut self, fe: usize) -> Vec<usize> {
        if let Some(r) = self.be_rank.get(&fe) {
            return r.clone();
        }
        let pt = self.fes[fe].site.pt;
        let mut idx: Vec<usize> = (0..self.bes.len()).collect();
        idx.sort_by(|&a, &b| {
            pt.distance_miles(&self.bes[a].0.pt)
                .total_cmp(&pt.distance_miles(&self.bes[b].0.pt))
        });
        self.be_rank.insert(fe, idx.clone());
        idx
    }

    /// Health-aware DNS: resolves a client's FE honoring the answer TTL.
    /// Without FE outages in the plan this is exactly the static nearest
    /// mapping (no cache reads or writes), preserving byte-identical
    /// trajectories.
    fn resolve_fe(&mut self, now: SimTime, client: usize) -> usize {
        if !self.cfg.faults.has_fe_outages() {
            return self.dns.fe_of(client);
        }
        if let Some(&(fe, at)) = self.dns_cache.get(&client) {
            if now.saturating_since(at) < self.cfg.dns_ttl {
                // The cached answer is honored until the TTL runs out,
                // even if the FE has since died — failover via DNS is
                // deliberately not instantaneous.
                return fe;
            }
        }
        let prev = self
            .dns_cache
            .get(&client)
            .map(|&(f, _)| f)
            .unwrap_or_else(|| self.dns.fe_of(client));
        let fe = self
            .ranked_fes(client)
            .into_iter()
            .find(|&f| !self.cfg.faults.fe_down(f, now))
            .unwrap_or_else(|| self.dns.fe_of(client));
        if fe != prev {
            self.metrics.inc("cdnsim.dns_remaps");
        }
        self.dns_cache.insert(client, (fe, now));
        fe
    }

    /// The BE an FE should fetch from at `now`: its nearest site, or the
    /// next-nearest live one when the primary is in an outage window.
    fn live_be_for(&mut self, fe: usize, now: SimTime) -> usize {
        let primary = self.be_of_fe[fe];
        if !self.cfg.faults.has_be_outages() || !self.cfg.faults.be_down(primary, now) {
            return primary;
        }
        let chosen = self
            .ranked_bes(fe)
            .into_iter()
            .find(|&b| !self.cfg.faults.be_down(b, now))
            .unwrap_or(primary);
        if chosen != primary {
            self.metrics.inc("cdnsim.be_failovers");
        }
        chosen
    }

    /// Number of FEs in the fleet.
    pub fn fe_count(&self) -> usize {
        self.fes.len()
    }

    /// Nominal client↔FE RTT in ms under the client's access profile.
    pub fn client_fe_rtt_ms(&self, client: usize, fe: usize) -> f64 {
        self.client_path(client, &self.fes[fe].site.pt.clone())
            .nominal_rtt_ms()
    }

    /// Nominal client↔BE RTT in ms under the client's access profile —
    /// what an ICMP ping to the data-center prefix would measure (used
    /// by the network-coordinate harness to place BEs in the embedding).
    pub fn client_be_rtt_ms(&self, client: usize, be: usize) -> f64 {
        self.client_path(client, &self.bes[be].0.pt.clone())
            .nominal_rtt_ms()
    }

    /// Nominal FE↔BE RTT in ms.
    pub fn fe_be_rtt_ms(&self, fe: usize, be: usize) -> f64 {
        PathModel::between(
            &self.fes[fe].site.pt,
            &self.bes[be].0.pt,
            &self.cfg.febe_profile,
        )
        .nominal_rtt_ms()
    }

    /// FE↔BE great-circle distance in miles.
    pub fn fe_be_distance_miles(&self, fe: usize, be: usize) -> f64 {
        self.fes[fe].site.pt.distance_miles(&self.bes[be].0.pt)
    }

    fn access_profile(&self, access: AccessKind) -> PathProfile {
        if let Some(p) = &self.cfg.access_override {
            return p.clone();
        }
        match access {
            AccessKind::Campus => PathProfile::campus_access(),
            AccessKind::Residential => PathProfile::residential_access(),
            AccessKind::Wireless => PathProfile::wireless_access(),
        }
    }

    fn client_path(&self, client: usize, to: &GeoPoint) -> PathModel {
        let v = &self.clients[client];
        PathModel::between(&v.pt, to, &self.access_profile(v.access))
    }

    fn to_params(m: &PathModel) -> PathParams {
        PathParams {
            base_owd_ms: m.base_owd_ms,
            jitter_ms: m.jitter_ms.clone(),
            loss: m.loss,
            bw_mbps: m.bw_mbps,
        }
    }

    fn push_action(&mut self, net: &mut Net, delay: SimDuration, action: Action) {
        let token = self.actions.len() as u64;
        self.actions.push(action);
        net.set_timer(delay, token);
    }

    fn push_action_at(&mut self, net: &mut Net, at: SimTime, action: Action) {
        let delay = at.saturating_since(net.now());
        self.push_action(net, delay, action);
    }

    /// Installs the configuration's fault plan into the simulator:
    /// packet-level episodes become `tcpsim` link faults, and
    /// control-plane episodes (outage starts, connection drops) are
    /// scheduled as world actions. Call once after building the sim,
    /// before scheduling queries. A no-op for an empty plan — no link
    /// faults, no timers, no RNG stream touched.
    pub fn install_faults(&mut self, net: &mut Net) {
        if self.cfg.faults.is_empty() {
            return;
        }
        let windows: Vec<FaultWindow> = self.cfg.faults.windows().to_vec();
        for (idx, w) in windows.iter().enumerate() {
            match w.kind {
                FaultKind::FeOutage { fe } => {
                    net.add_link_fault(LinkFault::node_outage(Self::fe_node(fe), w.start, w.end));
                    self.push_action_at(net, w.start, Action::FaultStart { window: idx });
                }
                FaultKind::BeOutage { be } => {
                    net.add_link_fault(LinkFault::node_outage(Self::be_node(be), w.start, w.end));
                    self.push_action_at(net, w.start, Action::FaultStart { window: idx });
                }
                FaultKind::ConnDrop { .. } => {
                    self.push_action_at(net, w.start, Action::FaultStart { window: idx });
                }
                FaultKind::ClientBurstLoss { client, fe, params } => {
                    net.add_link_fault(LinkFault::burst_loss(
                        Self::client_node(client),
                        Self::fe_node(fe),
                        w.start,
                        w.end,
                        params.p_enter,
                        params.p_exit,
                        params.bad_loss,
                    ));
                }
                FaultKind::FeBeBurstLoss { fe, be, params } => {
                    net.add_link_fault(LinkFault::burst_loss(
                        Self::fe_node(fe),
                        Self::be_node(be),
                        w.start,
                        w.end,
                        params.p_enter,
                        params.p_exit,
                        params.bad_loss,
                    ));
                }
                // Brownouts and capacity dips act on FE service times,
                // consulted at serve time; nothing to install up front.
                FaultKind::FeBrownout { .. } => {}
                FaultKind::FeCapacityDip { .. } => {}
            }
        }
    }

    /// Aborts every FE↔BE connection — pooled, warming or mid-fetch —
    /// whose (fe, be) pair matches, so a dead site does not leave
    /// endpoints retransmitting into a blackhole forever. Stalled
    /// queries are failed over by their fetch deadline (if configured).
    fn drop_fe_be_conns(&mut self, net: &mut Net, hit: impl Fn(usize, usize) -> bool) {
        for (&(f, b), v) in self.free_pool.iter_mut() {
            if hit(f, b) {
                for c in v.drain(..) {
                    net.abort(c);
                }
            }
        }
        let warm: Vec<ConnId> = self
            .conn_info
            .iter()
            .filter_map(|(c, i)| match i.leg {
                Leg::Warmup { fe, be } if hit(fe, be) => Some(*c),
                _ => None,
            })
            .collect();
        for c in warm {
            net.abort(c);
            self.conn_info.remove(&c);
            self.warmup_progress.remove(&c);
        }
        let stalled: Vec<ConnId> = self
            .queries
            .values()
            .flat_map(|q| {
                let mut v = Vec::new();
                if let (Some(f), Some(c)) = (q.fe, q.be_conn) {
                    if hit(f, q.be) && !q.resp_handled {
                        v.push(c);
                    }
                }
                if let (Some(f), Some(c), Some(hb)) = (q.fe, q.hedge_conn, q.hedge_be) {
                    if hit(f, hb) && !q.resp_handled {
                        v.push(c);
                    }
                }
                v
            })
            .collect();
        for c in stalled {
            net.abort(c);
        }
    }

    fn act_fault_start(&mut self, net: &mut Net, window: usize) {
        let w = self.cfg.faults.windows()[window];
        match w.kind {
            FaultKind::FeOutage { fe } => self.drop_fe_be_conns(net, |f, _| f == fe),
            FaultKind::BeOutage { be } => self.drop_fe_be_conns(net, |_, b| b == be),
            FaultKind::ConnDrop { fe, be } => self.drop_fe_be_conns(net, |f, b| f == fe && b == be),
            _ => {}
        }
    }

    /// Schedules a query to start `delay` from now.
    pub fn schedule_query(&mut self, net: &mut Net, delay: SimDuration, spec: QuerySpec) {
        self.push_action(net, delay, Action::Start(spec));
    }

    /// Drains the completed-query records accumulated so far.
    pub fn drain_completed(&mut self) -> Vec<CompletedQuery> {
        std::mem::take(&mut self.completed)
    }

    /// Number of queries still in flight.
    pub fn in_flight(&self) -> usize {
        self.queries.len()
    }

    /// Pre-warms `n` persistent FE↔BE connections for a pair: opens them
    /// and runs a filler exchange so their congestion windows are grown
    /// before the first measured query (split TCP's warm-connection
    /// premise).
    pub fn prewarm(&mut self, net: &mut Net, fe: usize, be: usize, n: usize) {
        for _ in 0..n {
            let conn = self.open_be_conn(net, fe, be, 0);
            self.conn_info.insert(
                conn,
                ConnInfo {
                    qid: 0,
                    leg: Leg::Warmup { fe, be },
                },
            );
            self.warmup_progress.insert(conn, (0, 0));
            net.send(conn, End::A, WARMUP_REQ_BYTES, Marker::Other, 0);
        }
    }

    fn open_be_conn(&mut self, net: &mut Net, fe: usize, be: usize, session: u64) -> ConnId {
        let path = PathModel::between(
            &self.fes[fe].site.pt,
            &self.bes[be].0.pt,
            &self.cfg.febe_profile,
        );
        net.open(
            Self::fe_node(fe),
            Self::be_node(be),
            Self::to_params(&path),
            self.cfg.fe_be_tcp.clone().persistent(),
            self.cfg.be_tcp.clone().persistent(),
            session,
        )
    }

    fn checkout_be_conn_as(
        &mut self,
        net: &mut Net,
        fe: usize,
        be: usize,
        qid: u64,
        leg: Leg,
    ) -> ConnId {
        // Skip pooled connections a fault has aborted since check-in.
        let conn = self.free_pool.get_mut(&(fe, be)).and_then(|v| {
            while let Some(c) = v.pop() {
                if !net.is_aborted(c) {
                    return Some(c);
                }
            }
            None
        });
        let conn = match conn {
            Some(c) => {
                net.set_session(c, qid);
                c
            }
            None => self.open_be_conn(net, fe, be, qid),
        };
        self.conn_info.insert(conn, ConnInfo { qid, leg });
        conn
    }

    fn checkout_be_conn(&mut self, net: &mut Net, fe: usize, be: usize, qid: u64) -> ConnId {
        self.checkout_be_conn_as(net, fe, be, qid, Leg::Be)
    }

    fn return_be_conn(&mut self, conn: ConnId, fe: usize, be: usize) {
        self.conn_info.remove(&conn);
        self.free_pool.entry((fe, be)).or_default().push(conn);
    }

    fn start_query(&mut self, net: &mut Net, spec: QuerySpec, attempt: u32) {
        let qid = self.next_qid;
        self.next_qid += 1;
        let kw = self.corpus.get(spec.keyword).clone();
        let req = RequestSpec::for_query_len(kw.chars(), 500_000_000_000 + qid);
        let now = net.now();
        let (fe, be, server_pt, rtt_fe_be_ms, dist_fe_be): (
            Option<usize>,
            usize,
            GeoPoint,
            f64,
            f64,
        ) = if self.cfg.split_tcp {
            let fe = match spec.fixed_fe {
                Some(f) => f,
                None => self.resolve_fe(now, spec.client),
            };
            let be = self.live_be_for(fe, now);
            (
                Some(fe),
                be,
                self.fes[fe].site.pt,
                self.fe_be_rtt_ms(fe, be),
                self.fe_be_distance_miles(fe, be),
            )
        } else {
            // No split TCP: straight to the nearest BE.
            let be =
                nettopo::geo::nearest(&self.clients[spec.client].pt, &self.cfg.be_sites, |s| s.pt)
                    .unwrap()
                    .0;
            (None, be, self.bes[be].0.pt, 0.0, 0.0)
        };
        let path = self.client_path(spec.client, &server_pt);
        let rtt_client = path.nominal_rtt_ms();
        let conn = net.open(
            Self::client_node(spec.client),
            match fe {
                Some(f) => Self::fe_node(f),
                None => Self::be_node(be),
            },
            Self::to_params(&path),
            self.cfg.client_tcp.clone(),
            self.cfg.fe_client_tcp.clone(),
            qid,
        );
        self.conn_info.insert(
            conn,
            ConnInfo {
                qid,
                leg: Leg::Client,
            },
        );
        self.queries.insert(
            qid,
            QueryState {
                client: spec.client,
                fe,
                be,
                keyword: spec.keyword,
                class: kw.class,
                instant_followup: spec.instant_followup,
                fixed_fe: spec.fixed_fe,
                attempt,
                fetch_attempts: 0,
                degraded: false,
                t_start: net.now(),
                client_conn: conn,
                be_conn: None,
                req,
                plan: None,
                proc_ms: 0.0,
                fe_overhead_ms: 0.0,
                fetch_start: None,
                fetch_done: None,
                rtt_client_fe_ms: rtt_client,
                rtt_fe_be_ms,
                dist_fe_be_miles: dist_fe_be,
                srv_progress: RecvProgress::new(),
                resp_progress: RecvProgress::new(),
                request_handled: false,
                be_handled: false,
                resp_handled: false,
                static_from_cache: false,
                shed: false,
                fe_counted: false,
                be_counted: None,
                hedge_conn: None,
                hedge_be: None,
                hedge_counted: None,
                hedge_plan: None,
                hedge_proc_ms: 0.0,
                hedge_srv_progress: RecvProgress::new(),
                hedge_resp_progress: RecvProgress::new(),
                hedge_be_handled: false,
            },
        );
        if let Some(deadline) = self.cfg.client_retry.as_ref().map(|p| p.deadline) {
            self.push_action(net, deadline, Action::ClientDeadline { qid });
        }
    }

    /// Spends one retry token from `client`'s bucket (lazy refill).
    /// Always true when no budget is configured; when the bucket is dry
    /// the retry is suppressed and the exhaustion counter ticks.
    fn try_spend_retry_token(&mut self, client: usize, now: SimTime) -> bool {
        let budget = match self.cfg.overload.retry_budget {
            Some(b) => b,
            None => return true,
        };
        let entry = self
            .retry_tokens
            .entry(client)
            .or_insert((budget.max_tokens, now));
        let dt_secs = now.saturating_since(entry.1).as_millis_f64() / 1_000.0;
        entry.0 = (entry.0 + dt_secs * budget.refill_per_sec).min(budget.max_tokens);
        entry.1 = now;
        if entry.0 >= 1.0 {
            entry.0 -= 1.0;
            true
        } else {
            self.metrics.inc("cdnsim.retry_budget_exhausted");
            false
        }
    }

    /// Whether FE `fe`'s circuit breaker admits a BE fetch at `now`.
    /// Closed: yes. Open: only once the cooldown has elapsed, which
    /// flips to half-open and admits exactly one trial fetch. Half-open:
    /// no (a trial is already outstanding).
    fn breaker_admits(&mut self, fe: usize, now: SimTime) -> bool {
        let policy = match self.cfg.overload.breaker {
            Some(p) => p,
            None => return true,
        };
        let b = &mut self.breakers[fe];
        match b.phase {
            BreakerPhase::Closed => true,
            BreakerPhase::Open => {
                if now.saturating_since(b.opened_at) >= policy.cooldown {
                    b.phase = BreakerPhase::HalfOpen;
                    true
                } else {
                    false
                }
            }
            BreakerPhase::HalfOpen => false,
        }
    }

    /// Records a BE fetch failure at FE `fe` (a fetch deadline fired).
    /// Opens the breaker at the failure threshold, or immediately when a
    /// half-open trial fails.
    fn breaker_record_failure(&mut self, fe: usize, now: SimTime) {
        let policy = match self.cfg.overload.breaker {
            Some(p) => p,
            None => return,
        };
        let b = &mut self.breakers[fe];
        b.fails += 1;
        let trip = b.phase == BreakerPhase::HalfOpen || b.fails >= policy.failure_threshold;
        if trip && b.phase != BreakerPhase::Open {
            b.phase = BreakerPhase::Open;
            b.opened_at = now;
            b.fails = 0;
            self.metrics.inc("cdnsim.breaker_opens");
        } else if trip {
            b.opened_at = now;
            b.fails = 0;
        }
    }

    /// Records a successful BE fetch at FE `fe`: closes the breaker and
    /// clears the failure streak.
    fn breaker_record_success(&mut self, fe: usize) {
        if self.cfg.overload.breaker.is_none() {
            return;
        }
        let b = &mut self.breakers[fe];
        b.phase = BreakerPhase::Closed;
        b.fails = 0;
    }

    /// Cancels an outstanding hedge leg (loser of the race, or cleanup
    /// on failover/deadline): aborts its connection and releases its
    /// BE in-flight slot.
    fn cancel_hedge(&mut self, net: &mut Net, qid: u64) {
        let (conn, counted) = match self.queries.get_mut(&qid) {
            Some(q) => (q.hedge_conn.take(), q.hedge_counted.take()),
            None => return,
        };
        if let Some(c) = conn {
            net.abort(c);
            self.conn_info.remove(&c);
        }
        if let Some(b) = counted {
            self.be_inflight[b] = self.be_inflight[b].saturating_sub(1);
        }
        if let Some(q) = self.queries.get_mut(&qid) {
            q.hedge_be = None;
            q.hedge_plan = None;
            q.hedge_be_handled = false;
            q.hedge_srv_progress = RecvProgress::new();
            q.hedge_resp_progress = RecvProgress::new();
        }
    }

    /// Admission-control rejection: answer immediately with the shed
    /// stub in place of the whole response. The client's FIN handling
    /// decides between a retry and a terminal `Shed` outcome.
    fn shed_query(&mut self, net: &mut Net, qid: u64) {
        self.metrics.inc("cdnsim.shed_queries");
        let client_conn = {
            let q = self.queries.get_mut(&qid).unwrap();
            q.shed = true;
            q.client_conn
        };
        net.send(
            client_conn,
            End::B,
            SHED_STUB_BYTES,
            Marker::Error,
            SHED_CONTENT_ID,
        );
        net.close(client_conn, End::B);
        let static_content = self.cfg.composer.static_content;
        let q = self.queries.get_mut(&qid).unwrap();
        // Nothing real was served; record a placeholder static portion
        // (ResponsePlan requires non-empty portions).
        q.plan = Some(ResponsePlan::new(
            1,
            static_content,
            SHED_STUB_BYTES,
            SHED_CONTENT_ID,
        ));
    }

    fn handle_request_arrived(&mut self, net: &mut Net, qid: u64) {
        let (split, fe, be, kw_id, followup) = {
            let q = &self.queries[&qid];
            (
                self.cfg.split_tcp,
                q.fe,
                q.be,
                q.keyword,
                q.instant_followup,
            )
        };
        if split {
            let fe = fe.expect("split mode has an FE");
            // Admission control: above the watermark the request is
            // answered with the shed stub before consuming any FE
            // capacity.
            if let Some(adm) = self.cfg.overload.admission {
                if self.fe_inflight[fe] >= adm.watermark {
                    self.shed_query(net, qid);
                    return;
                }
            }
            self.fe_inflight[fe] += 1;
            self.queries.get_mut(&qid).unwrap().fe_counted = true;
            if self.overload_active() {
                self.metrics
                    .set_gauge("cdnsim.fe_inflight_hiwater", self.fe_inflight[fe] as f64);
            }
            let mut overhead = self.fes[fe].request_overhead_at(net.now());
            // Brownout windows stretch FE processing.
            let slow = self.cfg.faults.fe_slowdown(fe, net.now());
            if slow > 1.0 {
                overhead = SimDuration::from_millis_f64(overhead.as_millis_f64() * slow);
            }
            // Concurrency-dependent queueing delay (the load model's
            // M/M/1-style curve), with capacity-dip fault windows
            // scaling the knee.
            if let Some(model) = self.cfg.load_model {
                let factor = self.cfg.faults.fe_capacity_factor(fe, net.now());
                let qslow = model.fe_slowdown(self.fe_inflight[fe], factor);
                if qslow > 1.0 {
                    overhead = SimDuration::from_millis_f64(overhead.as_millis_f64() * qslow);
                }
            }
            self.queries.get_mut(&qid).unwrap().fe_overhead_ms = overhead.as_millis_f64();
            self.push_action(net, overhead, Action::FeServe { qid });
        } else {
            let kw = self.corpus.get(kw_id).clone();
            let region = Some(self.clients[self.queries[&qid].client].region);
            let result = self.bes[be].1.handle_query(&kw, followup, region);
            {
                let q = self.queries.get_mut(&qid).unwrap();
                q.proc_ms = result.proc_time.as_millis_f64();
                q.plan = Some(result.plan);
            }
            self.push_action(net, result.proc_time, Action::BeDirectReply { qid });
        }
    }

    fn act_fe_serve(&mut self, net: &mut Net, qid: u64) {
        let (fe, be, client_conn, kw_id) = {
            // Stale timer: the client's deadline can fire before a
            // load-stretched FE service interval elapses, abandoning
            // the query while this action is still pending.
            let q = match self.queries.get(&qid) {
                Some(q) => q,
                None => return,
            };
            (q.fe.unwrap(), q.be, q.client_conn, q.keyword)
        };
        // (a) Burst the static portion when it is resident in the FE's
        // static cache. With the default unbounded prewarmed cache this
        // always hits; a bounded cache can miss, in which case the
        // static bytes ride the BE response and the cache is refilled
        // when that response completes.
        let mut static_hit = false;
        if self.cfg.cache_static {
            let content = self.cfg.composer.static_content;
            if self.fes[fe].static_cached(content, net.now()) {
                static_hit = true;
                self.metrics.inc("cdnsim.fe_static_cache_hits");
                net.send(
                    client_conn,
                    End::B,
                    self.cfg.composer.static_bytes,
                    Marker::Static,
                    content,
                );
            } else {
                self.metrics.inc("cdnsim.fe_static_cache_misses");
            }
        }
        self.queries.get_mut(&qid).unwrap().static_from_cache = static_hit;
        // Hypothetical FE result cache.
        if self.fes[fe].caches_results() {
            if let Some(plan) = self.fes[fe].lookup_result(kw_id, net.now()) {
                self.metrics.inc("cdnsim.fe_result_cache_hits");
                if !static_hit {
                    plan.send_static(net, client_conn, End::B);
                }
                plan.send_dynamic(net, client_conn, End::B);
                net.close(client_conn, End::B);
                let q = self.queries.get_mut(&qid).unwrap();
                q.plan = Some(plan);
                q.proc_ms = 0.0;
                return;
            }
            self.metrics.inc("cdnsim.fe_result_cache_misses");
        }
        // Circuit breaker: while open, fetches fast-fail straight to the
        // degraded response instead of hammering a struggling back-end.
        if !self.breaker_admits(fe, net.now()) {
            self.metrics.inc("cdnsim.breaker_fastfails");
            self.degrade_query(net, qid);
            return;
        }
        // (b) Forward the query over a persistent BE connection.
        let be_conn = self.checkout_be_conn(net, fe, be, qid);
        self.be_inflight[be] += 1;
        if self.overload_active() {
            self.metrics
                .set_gauge("cdnsim.be_inflight_hiwater", self.be_inflight[be] as f64);
        }
        {
            let q = self.queries.get_mut(&qid).unwrap();
            q.be_conn = Some(be_conn);
            q.be_counted = Some(be);
            q.fetch_start = Some(net.now());
        }
        let req = self.queries[&qid].req.clone();
        req.send_as_be_query(net, be_conn, End::A);
        if let Some(d) = self.cfg.fe_fetch_deadline {
            self.push_action(net, d, Action::FetchDeadline { qid, attempt: 0 });
        }
        if let Some(h) = self.cfg.overload.hedge {
            self.push_action(net, h.after, Action::HedgeFire { qid, attempt: 0 });
        }
    }

    fn act_be_reply(&mut self, net: &mut Net, qid: u64, attempt: u32) {
        let (be_conn, plan, send_static_too) = {
            let q = match self.queries.get(&qid) {
                Some(q) => q,
                None => return,
            };
            // A reply from a BE the query has since failed away from
            // (or a degraded query) is stale — drop it.
            if q.fetch_attempts != attempt || q.degraded {
                return;
            }
            let be_conn = match q.be_conn {
                Some(c) => c,
                None => return,
            };
            let plan = match q.plan.clone() {
                Some(p) => p,
                None => return,
            };
            (be_conn, plan, !q.static_from_cache)
        };
        if send_static_too {
            net.send(
                be_conn,
                End::B,
                plan.static_bytes,
                Marker::BeResponse,
                plan.static_content,
            );
        }
        plan.send_as_be_response(net, be_conn, End::B);
    }

    fn act_be_direct_reply(&mut self, net: &mut Net, qid: u64) {
        let (conn, plan) = {
            // Stale timer: the client deadline may have abandoned the
            // query while the BE was still processing it.
            let q = match self.queries.get(&qid) {
                Some(q) => q,
                None => return,
            };
            (q.client_conn, q.plan.clone().expect("direct reply plan"))
        };
        plan.send_static(net, conn, End::B);
        plan.send_dynamic(net, conn, End::B);
        net.close(conn, End::B);
    }

    fn handle_be_response_complete(&mut self, net: &mut Net, qid: u64) {
        let (fe, be, be_conn, client_conn, plan, kw_id, counted, static_from_cache) = {
            let q = self.queries.get_mut(&qid).unwrap();
            q.fetch_done = Some(net.now());
            (
                q.fe.unwrap(),
                q.be,
                q.be_conn.take().unwrap(),
                q.client_conn,
                q.plan.clone().unwrap(),
                q.keyword,
                q.be_counted.take(),
                q.static_from_cache,
            )
        };
        if let Some(b) = counted {
            self.be_inflight[b] = self.be_inflight[b].saturating_sub(1);
        }
        // The primary won the race: cancel any outstanding hedge.
        self.cancel_hedge(net, qid);
        self.breaker_record_success(fe);
        self.return_be_conn(be_conn, fe, be);
        if !static_from_cache {
            plan.send_static(net, client_conn, End::B);
        }
        plan.send_dynamic(net, client_conn, End::B);
        net.close(client_conn, End::B);
        // Refill the static cache after a miss-path fetch (only reachable
        // with a bounded static cache).
        if self.cfg.cache_static && !static_from_cache {
            self.fes[fe].fill_static(plan.static_content, plan.static_bytes, net.now());
            self.metrics.inc("cdnsim.fe_static_cache_fills");
        }
        if self.fes[fe].caches_results() {
            let out = self.fes[fe].store_result(kw_id, plan, net.now());
            if out.evicted > 0 {
                self.metrics
                    .add("cdnsim.fe_result_cache_evictions", out.evicted);
            }
        }
    }

    /// FE fetch deadline fired: the BE response for fetch attempt
    /// `attempt` has not fully arrived. Fail over to the next live BE
    /// site on a (possibly cold) connection, or degrade the response when
    /// no live site remains.
    fn act_fetch_deadline(&mut self, net: &mut Net, qid: u64, attempt: u32) {
        let (fe, cur_be, stalled_conn) = {
            let q = match self.queries.get(&qid) {
                Some(q) => q,
                None => return,
            };
            // Completed, degraded or already failed over: stale timer.
            if q.resp_handled || q.degraded || q.fetch_attempts != attempt {
                return;
            }
            let fe = match q.fe {
                Some(f) => f,
                None => return,
            };
            (fe, q.be, q.be_conn)
        };
        if let Some(conn) = stalled_conn {
            net.abort(conn);
            self.conn_info.remove(&conn);
        }
        // The fetch attempt failed: release its BE slot, cancel its
        // hedge leg, and feed the FE's circuit breaker.
        if let Some(b) = self.queries.get_mut(&qid).and_then(|q| q.be_counted.take()) {
            self.be_inflight[b] = self.be_inflight[b].saturating_sub(1);
        }
        self.cancel_hedge(net, qid);
        self.breaker_record_failure(fe, net.now());
        let now = net.now();
        let next_be = self
            .ranked_bes(fe)
            .into_iter()
            .find(|&b| b != cur_be && !self.cfg.faults.be_down(b, now));
        let next_be = match next_be {
            // One failover per site at most: once every site has been
            // given a deadline's worth of time, serve what we have.
            Some(b) if (attempt as usize) < self.bes.len().saturating_sub(1) => b,
            _ => {
                self.degrade_query(net, qid);
                return;
            }
        };
        let rtt = self.fe_be_rtt_ms(fe, next_be);
        let dist = self.fe_be_distance_miles(fe, next_be);
        self.metrics.inc("cdnsim.fetch_failovers");
        {
            let q = self.queries.get_mut(&qid).unwrap();
            q.be = next_be;
            q.fetch_attempts += 1;
            q.be_handled = false;
            q.plan = None;
            q.srv_progress = RecvProgress::new();
            q.resp_progress = RecvProgress::new();
            q.rtt_fe_be_ms = rtt;
            q.dist_fe_be_miles = dist;
        }
        let conn = self.checkout_be_conn(net, fe, next_be, qid);
        self.be_inflight[next_be] += 1;
        if self.overload_active() {
            self.metrics.set_gauge(
                "cdnsim.be_inflight_hiwater",
                self.be_inflight[next_be] as f64,
            );
        }
        {
            let q = self.queries.get_mut(&qid).unwrap();
            q.be_conn = Some(conn);
            q.be_counted = Some(next_be);
        }
        let req = self.queries[&qid].req.clone();
        req.send_as_be_query(net, conn, End::A);
        if let Some(d) = self.cfg.fe_fetch_deadline {
            self.push_action(
                net,
                d,
                Action::FetchDeadline {
                    qid,
                    attempt: attempt + 1,
                },
            );
        }
        if let Some(h) = self.cfg.overload.hedge {
            self.push_action(
                net,
                h.after,
                Action::HedgeFire {
                    qid,
                    attempt: attempt + 1,
                },
            );
        }
    }

    /// Hedge timer fired with the primary fetch still outstanding:
    /// duplicate the query to the next-nearest live BE site. First
    /// response wins; the loser is cancelled.
    fn act_hedge_fire(&mut self, net: &mut Net, qid: u64, attempt: u32) {
        let (fe, cur_be) = {
            let q = match self.queries.get(&qid) {
                Some(q) => q,
                None => return,
            };
            // Completed, degraded, failed over, or already hedged: the
            // timer is stale (hedges are per fetch attempt).
            if q.resp_handled
                || q.degraded
                || q.shed
                || q.fetch_attempts != attempt
                || q.hedge_conn.is_some()
                || q.be_conn.is_none()
            {
                return;
            }
            let fe = match q.fe {
                Some(f) => f,
                None => return,
            };
            (fe, q.be)
        };
        let now = net.now();
        let hedge_be = match self
            .ranked_bes(fe)
            .into_iter()
            .find(|&b| b != cur_be && !self.cfg.faults.be_down(b, now))
        {
            Some(b) => b,
            None => return, // nowhere to hedge to
        };
        self.metrics.inc("cdnsim.hedges_launched");
        let conn = self.checkout_be_conn_as(net, fe, hedge_be, qid, Leg::Hedge);
        self.be_inflight[hedge_be] += 1;
        if self.overload_active() {
            self.metrics.set_gauge(
                "cdnsim.be_inflight_hiwater",
                self.be_inflight[hedge_be] as f64,
            );
        }
        {
            let q = self.queries.get_mut(&qid).unwrap();
            q.hedge_conn = Some(conn);
            q.hedge_be = Some(hedge_be);
            q.hedge_counted = Some(hedge_be);
        }
        let req = self.queries[&qid].req.clone();
        req.send_as_be_query(net, conn, End::A);
    }

    /// The hedge BE finished processing: stream its response to the FE
    /// (mirror of [`Self::act_be_reply`] for the hedge leg).
    fn act_hedge_reply(&mut self, net: &mut Net, qid: u64, attempt: u32) {
        let (conn, plan, send_static_too) = {
            let q = match self.queries.get(&qid) {
                Some(q) => q,
                None => return,
            };
            if q.fetch_attempts != attempt || q.degraded || q.resp_handled {
                return;
            }
            let conn = match q.hedge_conn {
                Some(c) => c,
                None => return,
            };
            let plan = match q.hedge_plan.clone() {
                Some(p) => p,
                None => return,
            };
            (conn, plan, !q.static_from_cache)
        };
        if send_static_too {
            net.send(
                conn,
                End::B,
                plan.static_bytes,
                Marker::BeResponse,
                plan.static_content,
            );
        }
        plan.send_as_be_response(net, conn, End::B);
    }

    /// The hedge response arrived at the FE before the primary: the
    /// hedge wins. Adopt its result as the query's ground truth, cancel
    /// the primary fetch, and serve the client.
    fn hedge_response_complete(&mut self, net: &mut Net, qid: u64) {
        let (
            fe,
            hedge_be,
            hedge_conn,
            client_conn,
            plan,
            kw_id,
            counted,
            primary_conn,
            primary_counted,
            static_from_cache,
        ) = {
            let q = self.queries.get_mut(&qid).unwrap();
            q.fetch_done = Some(net.now());
            (
                q.fe.unwrap(),
                q.hedge_be.take().unwrap(),
                q.hedge_conn.take().unwrap(),
                q.client_conn,
                q.hedge_plan.take().unwrap(),
                q.keyword,
                q.hedge_counted.take(),
                q.be_conn.take(),
                q.be_counted.take(),
                q.static_from_cache,
            )
        };
        self.metrics.inc("cdnsim.hedge_wins");
        if let Some(b) = counted {
            self.be_inflight[b] = self.be_inflight[b].saturating_sub(1);
        }
        // Cancel the losing primary leg.
        if let Some(c) = primary_conn {
            net.abort(c);
            self.conn_info.remove(&c);
        }
        if let Some(b) = primary_counted {
            self.be_inflight[b] = self.be_inflight[b].saturating_sub(1);
        }
        self.breaker_record_success(fe);
        self.return_be_conn(hedge_conn, fe, hedge_be);
        let rtt = self.fe_be_rtt_ms(fe, hedge_be);
        let dist = self.fe_be_distance_miles(fe, hedge_be);
        {
            let q = self.queries.get_mut(&qid).unwrap();
            q.be = hedge_be;
            q.proc_ms = q.hedge_proc_ms;
            q.plan = Some(plan.clone());
            q.rtt_fe_be_ms = rtt;
            q.dist_fe_be_miles = dist;
        }
        if !static_from_cache {
            plan.send_static(net, client_conn, End::B);
        }
        plan.send_dynamic(net, client_conn, End::B);
        net.close(client_conn, End::B);
        if self.cfg.cache_static && !static_from_cache {
            self.fes[fe].fill_static(plan.static_content, plan.static_bytes, net.now());
            self.metrics.inc("cdnsim.fe_static_cache_fills");
        }
        if self.fes[fe].caches_results() {
            let out = self.fes[fe].store_result(kw_id, plan, net.now());
            if out.evicted > 0 {
                self.metrics
                    .add("cdnsim.fe_result_cache_evictions", out.evicted);
            }
        }
    }

    /// Graceful degradation: no back-end is reachable in time, so the FE
    /// closes the response with an error stub in place of the dynamic
    /// portion. The client still gets the cached static bytes (already
    /// burst at serve time when caching is on).
    fn degrade_query(&mut self, net: &mut Net, qid: u64) {
        self.metrics.inc("cdnsim.degraded_serves");
        let client_conn = {
            let q = self.queries.get_mut(&qid).unwrap();
            q.degraded = true;
            q.be_conn = None;
            q.client_conn
        };
        net.send(
            client_conn,
            End::B,
            DEGRADED_STUB_BYTES,
            Marker::Error,
            DEGRADED_CONTENT_ID,
        );
        net.close(client_conn, End::B);
        let static_bytes = if self.queries[&qid].static_from_cache {
            self.cfg.composer.static_bytes
        } else {
            // Static rides the BE response in the no-cache ablation (or
            // missed a bounded static cache), so nothing reached the
            // client; record a 1-byte placeholder (ResponsePlan requires
            // non-empty portions).
            1
        };
        let static_content = self.cfg.composer.static_content;
        let q = self.queries.get_mut(&qid).unwrap();
        q.plan = Some(ResponsePlan::new(
            static_bytes,
            static_content,
            DEGRADED_STUB_BYTES,
            DEGRADED_CONTENT_ID,
        ));
    }

    /// Client deadline fired with the query still in flight: abandon the
    /// attempt (aborting its connections, discarding its trace) and
    /// either schedule a retry with exponential backoff + jitter or
    /// record a timed-out query.
    fn act_client_deadline(&mut self, net: &mut Net, qid: u64) {
        let q = match self.queries.remove(&qid) {
            Some(q) => q,
            None => return, // completed before the deadline
        };
        net.abort(q.client_conn);
        self.conn_info.remove(&q.client_conn);
        if let Some(bc) = q.be_conn {
            net.abort(bc);
            self.conn_info.remove(&bc);
        }
        if let Some(hc) = q.hedge_conn {
            net.abort(hc);
            self.conn_info.remove(&hc);
        }
        // Release every in-flight slot the abandoned attempt held.
        if q.fe_counted {
            if let Some(fe) = q.fe {
                self.fe_inflight[fe] = self.fe_inflight[fe].saturating_sub(1);
            }
        }
        for b in [q.be_counted, q.hedge_counted].into_iter().flatten() {
            self.be_inflight[b] = self.be_inflight[b].saturating_sub(1);
        }
        let (trace, traced) = match net.trace_mut().try_take_session(qid) {
            Some(t) => (t, true),
            None => (Vec::new(), false),
        };
        let policy = self
            .cfg
            .client_retry
            .clone()
            .expect("deadline only armed when a retry policy is set");
        if q.attempt < policy.max_retries && self.try_spend_retry_token(q.client, net.now()) {
            // Exponential backoff with jitter, from the dedicated retry
            // stream (drawn only here and on shed retries, so fault-free
            // runs never touch it).
            let backoff = self.retry_backoff(&policy, q.attempt);
            let spec = QuerySpec {
                client: q.client,
                keyword: q.keyword,
                fixed_fe: q.fixed_fe,
                instant_followup: q.instant_followup,
            };
            self.push_action(
                net,
                backoff,
                Action::StartRetry {
                    spec,
                    attempt: q.attempt + 1,
                },
            );
            return;
        }
        // Retry count or budget exhausted: surface the failure with the
        // truncated trace of the final attempt so the measurement
        // pipeline can exercise its skip-and-count path.
        self.completed.push(CompletedQuery {
            qid,
            client: q.client,
            fe: q.fe,
            be: q.be,
            keyword: q.keyword,
            class: q.class,
            t_start: q.t_start,
            t_done: net.now(),
            plan: q
                .plan
                .unwrap_or_else(|| ResponsePlan::new(1, 0, 1, httpsim::CONTENT_ID_STATIC_BASE)),
            proc_ms: q.proc_ms,
            fe_overhead_ms: q.fe_overhead_ms,
            fetch_start: q.fetch_start,
            fetch_done: q.fetch_done,
            rtt_client_fe_ms: q.rtt_client_fe_ms,
            rtt_fe_be_ms: q.rtt_fe_be_ms,
            dist_fe_be_miles: q.dist_fe_be_miles,
            trace,
            traced,
            outcome: QueryOutcome::TimedOut {
                attempts: q.attempt + 1,
            },
        });
    }

    /// Exponential backoff with deterministic jitter for retry attempt
    /// `attempt + 1`, drawn from the dedicated `cdnsim/retry` stream.
    fn retry_backoff(&mut self, policy: &crate::service::RetryPolicy, attempt: u32) -> SimDuration {
        let u = self.retry_rng.next_f64();
        let factor = (1u64 << attempt.min(16)) as f64 * (1.0 + policy.jitter * u);
        SimDuration::from_millis_f64(policy.base_backoff.as_millis_f64() * factor)
    }

    fn finish_query(&mut self, net: &mut Net, qid: u64) {
        let q = match self.queries.remove(&qid) {
            Some(q) => q,
            None => return,
        };
        self.conn_info.remove(&q.client_conn);
        // Orderly close from the client side too.
        net.close(q.client_conn, End::A);
        // Release any in-flight slots still held (shed queries never
        // took one; served queries released the BE slot at response
        // completion).
        if q.fe_counted {
            if let Some(fe) = q.fe {
                self.fe_inflight[fe] = self.fe_inflight[fe].saturating_sub(1);
            }
        }
        for b in [q.be_counted, q.hedge_counted].into_iter().flatten() {
            self.be_inflight[b] = self.be_inflight[b].saturating_sub(1);
        }
        if let Some(hc) = q.hedge_conn {
            net.abort(hc);
            self.conn_info.remove(&hc);
        }
        let (trace, traced) = match net.trace_mut().try_take_session(qid) {
            Some(t) => (t, true),
            None => (Vec::new(), false),
        };
        // A shed response is a fast rejection: the client retries it
        // like a deadline miss (same backoff machinery, same budget)
        // when attempts remain.
        if q.shed {
            if let Some(policy) = self.cfg.client_retry.clone() {
                if q.attempt < policy.max_retries && self.try_spend_retry_token(q.client, net.now())
                {
                    drop(trace);
                    let backoff = self.retry_backoff(&policy, q.attempt);
                    let spec = QuerySpec {
                        client: q.client,
                        keyword: q.keyword,
                        fixed_fe: q.fixed_fe,
                        instant_followup: q.instant_followup,
                    };
                    self.push_action(
                        net,
                        backoff,
                        Action::StartRetry {
                            spec,
                            attempt: q.attempt + 1,
                        },
                    );
                    return;
                }
            }
        }
        let outcome = if q.shed {
            QueryOutcome::Shed {
                attempts: q.attempt + 1,
            }
        } else if q.degraded {
            QueryOutcome::Degraded
        } else if q.attempt > 0 {
            QueryOutcome::Retried(q.attempt)
        } else {
            QueryOutcome::Ok
        };
        self.completed.push(CompletedQuery {
            qid,
            client: q.client,
            fe: q.fe,
            be: q.be,
            keyword: q.keyword,
            class: q.class,
            t_start: q.t_start,
            t_done: net.now(),
            plan: q.plan.unwrap_or_else(|| {
                // Should not happen: a FIN implies a served response.
                ResponsePlan::new(1, 0, 1, httpsim::CONTENT_ID_STATIC_BASE)
            }),
            proc_ms: q.proc_ms,
            fe_overhead_ms: q.fe_overhead_ms,
            fetch_start: q.fetch_start,
            fetch_done: q.fetch_done,
            rtt_client_fe_ms: q.rtt_client_fe_ms,
            rtt_fe_be_ms: q.rtt_fe_be_ms,
            dist_fe_be_miles: q.dist_fe_be_miles,
            trace,
            traced,
            outcome,
        });
    }
}

impl App for ServiceWorld {
    fn on_established(&mut self, net: &mut Net, conn: ConnId, end: End) {
        let info = match self.conn_info.get(&conn) {
            Some(i) => *i,
            None => return,
        };
        if info.leg == Leg::Client && end == End::A {
            if let Some(q) = self.queries.get(&info.qid) {
                let req = q.req.clone();
                req.send(net, conn, End::A);
            }
        }
    }

    fn on_data(&mut self, net: &mut Net, conn: ConnId, end: End, spans: &[DeliveredSpan]) {
        let info = match self.conn_info.get(&conn) {
            Some(i) => *i,
            None => return,
        };
        match info.leg {
            Leg::Warmup { fe, be } => {
                let entry = self.warmup_progress.entry(conn).or_insert((0, 0));
                let bytes: u64 = spans.iter().map(|s| s.len as u64).sum();
                match end {
                    End::B => {
                        entry.0 += bytes;
                        if entry.0 >= WARMUP_REQ_BYTES {
                            net.send(conn, End::B, WARMUP_RESP_BYTES, Marker::Other, 0);
                        }
                    }
                    End::A => {
                        entry.1 += bytes;
                        if entry.1 >= WARMUP_RESP_BYTES {
                            self.warmup_progress.remove(&conn);
                            self.return_be_conn(conn, fe, be);
                        }
                    }
                }
            }
            Leg::Client => {
                let qid = info.qid;
                match end {
                    End::B => {
                        // Server side of the client leg (FE, or BE when
                        // split TCP is off): request bytes.
                        let ready = {
                            let q = match self.queries.get_mut(&qid) {
                                Some(q) => q,
                                None => return,
                            };
                            q.srv_progress.absorb(spans);
                            let done = q.srv_progress.complete(Marker::Request, q.req.bytes);
                            if done && !q.request_handled {
                                q.request_handled = true;
                                true
                            } else {
                                false
                            }
                        };
                        if ready {
                            self.handle_request_arrived(net, qid);
                        }
                    }
                    End::A => {
                        // Client receiving the response; completion is
                        // signalled by the FIN.
                        if let Some(q) = self.queries.get_mut(&qid) {
                            q.resp_progress.absorb(spans);
                        }
                    }
                }
            }
            Leg::Be => {
                let qid = info.qid;
                match end {
                    End::B => {
                        // BE receiving the forwarded query.
                        let ready = {
                            let q = match self.queries.get_mut(&qid) {
                                Some(q) => q,
                                None => return,
                            };
                            q.srv_progress.absorb(spans);
                            let done = q.srv_progress.complete(Marker::BeQuery, q.req.bytes);
                            if done && !q.be_handled {
                                q.be_handled = true;
                                true
                            } else {
                                false
                            }
                        };
                        if ready {
                            let (be, kw_id, followup) = {
                                let q = &self.queries[&qid];
                                (q.be, q.keyword, q.instant_followup)
                            };
                            let kw = self.corpus.get(kw_id).clone();
                            let region = Some(self.clients[self.queries[&qid].client].region);
                            let result = self.bes[be].1.handle_query(&kw, followup, region);
                            let mut proc = result.proc_time;
                            // BE concurrency slowdown: processing time
                            // stretches with the queue at this BE site.
                            if let Some(model) = self.cfg.load_model {
                                let slow = model.be_slowdown(self.be_inflight[be]);
                                if slow > 1.0 {
                                    proc =
                                        SimDuration::from_millis_f64(proc.as_millis_f64() * slow);
                                }
                            }
                            {
                                let q = self.queries.get_mut(&qid).unwrap();
                                q.proc_ms = proc.as_millis_f64();
                                q.plan = Some(result.plan);
                            }
                            let attempt = self.queries[&qid].fetch_attempts;
                            self.push_action(net, proc, Action::BeReply { qid, attempt });
                        }
                    }
                    End::A => {
                        // FE receiving the BE response.
                        let ready = {
                            let q = match self.queries.get_mut(&qid) {
                                Some(q) => q,
                                None => return,
                            };
                            q.resp_progress.absorb(spans);
                            let expected = match &q.plan {
                                Some(p) => {
                                    p.dynamic_bytes
                                        + if q.static_from_cache {
                                            0
                                        } else {
                                            p.static_bytes
                                        }
                                }
                                None => u64::MAX,
                            };
                            let done = q.resp_progress.complete(Marker::BeResponse, expected);
                            if done && !q.resp_handled {
                                q.resp_handled = true;
                                true
                            } else {
                                false
                            }
                        };
                        if ready {
                            self.handle_be_response_complete(net, qid);
                        }
                    }
                }
            }
            Leg::Hedge => {
                let qid = info.qid;
                match end {
                    End::B => {
                        // Hedge BE receiving the duplicated query.
                        let ready = {
                            let q = match self.queries.get_mut(&qid) {
                                Some(q) => q,
                                None => return,
                            };
                            q.hedge_srv_progress.absorb(spans);
                            let done = q.hedge_srv_progress.complete(Marker::BeQuery, q.req.bytes);
                            if done && !q.hedge_be_handled {
                                q.hedge_be_handled = true;
                                true
                            } else {
                                false
                            }
                        };
                        if ready {
                            let (be, kw_id, followup) = {
                                let q = &self.queries[&qid];
                                match q.hedge_be {
                                    Some(b) => (b, q.keyword, q.instant_followup),
                                    None => return,
                                }
                            };
                            let kw = self.corpus.get(kw_id).clone();
                            let region = Some(self.clients[self.queries[&qid].client].region);
                            let result = self.bes[be].1.handle_query(&kw, followup, region);
                            let mut proc = result.proc_time;
                            if let Some(model) = self.cfg.load_model {
                                let slow = model.be_slowdown(self.be_inflight[be]);
                                if slow > 1.0 {
                                    proc =
                                        SimDuration::from_millis_f64(proc.as_millis_f64() * slow);
                                }
                            }
                            {
                                let q = self.queries.get_mut(&qid).unwrap();
                                q.hedge_proc_ms = proc.as_millis_f64();
                                q.hedge_plan = Some(result.plan);
                            }
                            let attempt = self.queries[&qid].fetch_attempts;
                            self.push_action(net, proc, Action::HedgeReply { qid, attempt });
                        }
                    }
                    End::A => {
                        // FE receiving the hedge BE response; first
                        // complete response (primary or hedge) wins.
                        let ready = {
                            let q = match self.queries.get_mut(&qid) {
                                Some(q) => q,
                                None => return,
                            };
                            q.hedge_resp_progress.absorb(spans);
                            let expected = match &q.hedge_plan {
                                Some(p) => {
                                    p.dynamic_bytes
                                        + if q.static_from_cache {
                                            0
                                        } else {
                                            p.static_bytes
                                        }
                                }
                                None => u64::MAX,
                            };
                            let done = q.hedge_resp_progress.complete(Marker::BeResponse, expected);
                            if done && !q.resp_handled {
                                q.resp_handled = true;
                                true
                            } else {
                                false
                            }
                        };
                        if ready {
                            self.hedge_response_complete(net, qid);
                        }
                    }
                }
            }
        }
    }

    fn on_fin(&mut self, net: &mut Net, conn: ConnId, end: End) {
        let info = match self.conn_info.get(&conn) {
            Some(i) => *i,
            None => return,
        };
        if info.leg == Leg::Client && end == End::A {
            self.finish_query(net, info.qid);
        }
    }

    fn on_timer(&mut self, net: &mut Net, token: u64) {
        let action = self.actions[token as usize].clone();
        match action {
            Action::Start(spec) => self.start_query(net, spec, 0),
            Action::StartRetry { spec, attempt } => self.start_query(net, spec, attempt),
            Action::FeServe { qid } => self.act_fe_serve(net, qid),
            Action::BeReply { qid, attempt } => self.act_be_reply(net, qid, attempt),
            Action::BeDirectReply { qid } => self.act_be_direct_reply(net, qid),
            Action::ClientDeadline { qid } => self.act_client_deadline(net, qid),
            Action::FetchDeadline { qid, attempt } => self.act_fetch_deadline(net, qid, attempt),
            Action::HedgeFire { qid, attempt } => self.act_hedge_fire(net, qid, attempt),
            Action::HedgeReply { qid, attempt } => self.act_hedge_reply(net, qid, attempt),
            Action::FaultStart { window } => self.act_fault_start(net, window),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettopo::vantage::{planetlab_like, VantageConfig};
    use tcpsim::Sim;

    fn small_world(cfg: ServiceConfig) -> Sim<ServiceWorld> {
        let vantages = planetlab_like(
            cfg.seed,
            &VantageConfig {
                count: 20,
                ..VantageConfig::default()
            },
        );
        let corpus = KeywordCorpus::generate(cfg.seed, 200, 0.5);
        let world = ServiceWorld::new(cfg, vantages, corpus);
        let mut sim = Sim::new(7, world);
        sim.net().trace_mut().set_enabled(true);
        sim
    }

    fn run_one_query(cfg: ServiceConfig) -> CompletedQuery {
        let mut sim = small_world(cfg);
        sim.with(|w, net| {
            w.schedule_query(
                net,
                SimDuration::from_millis(1),
                QuerySpec {
                    client: 0,
                    keyword: 3,
                    fixed_fe: None,
                    instant_followup: false,
                },
            );
        });
        sim.run();
        let mut done = sim.with(|w, _| w.drain_completed());
        assert_eq!(done.len(), 1);
        done.pop().unwrap()
    }

    #[test]
    fn google_like_query_completes_with_ground_truth() {
        let cq = run_one_query(ServiceConfig::google_like(1));
        assert!(cq.fe.is_some());
        assert!(cq.proc_ms > 1.0, "proc {}", cq.proc_ms);
        assert!(cq.fe_overhead_ms > 0.0);
        assert!(cq.true_fetch_ms().unwrap() > cq.proc_ms);
        assert!(cq.overall_ms() > 0.0);
        assert!(!cq.trace.is_empty());
        assert_eq!(cq.plan.static_content, 1);
    }

    #[test]
    fn bing_like_query_completes() {
        let cq = run_one_query(ServiceConfig::bing_like(1));
        assert!(cq.proc_ms > 10.0);
        assert_eq!(cq.plan.static_content, 2);
        // Store-and-forward: fetch includes the response transfer.
        let fetch = cq.true_fetch_ms().unwrap();
        assert!(fetch >= cq.proc_ms + cq.rtt_fe_be_ms);
    }

    #[test]
    fn client_receives_exactly_the_planned_bytes() {
        let cq = run_one_query(ServiceConfig::google_like(2));
        // Client-side received data bytes from the trace.
        let client_node = ServiceWorld::client_node(0);
        let mut stat = 0u64;
        let mut dynamic = 0u64;
        for ev in &cq.trace {
            if ev.node == client_node && ev.dir == tcpsim::PktDir::Rx {
                for m in &ev.meta {
                    match m.marker {
                        Marker::Static => stat += m.len as u64,
                        Marker::Dynamic => dynamic += m.len as u64,
                        _ => {}
                    }
                }
            }
        }
        assert_eq!(stat, cq.plan.static_bytes);
        assert_eq!(dynamic, cq.plan.dynamic_bytes);
    }

    #[test]
    fn pool_reuses_connections_across_queries() {
        let mut sim = small_world(ServiceConfig::google_like(3));
        let fe = sim.with(|w, _| w.default_fe(0));
        for i in 0..3 {
            sim.with(|w, net| {
                w.schedule_query(
                    net,
                    SimDuration::from_millis(1 + i * 2_000),
                    QuerySpec {
                        client: 0,
                        keyword: i,
                        fixed_fe: Some(fe),
                        instant_followup: false,
                    },
                );
            });
        }
        sim.run();
        let done = sim.with(|w, _| w.drain_completed());
        assert_eq!(done.len(), 3);
        // Sequential queries through one FE must reuse the pooled conn:
        // the BE leg of queries 2 and 3 must carry no SYN.
        for cq in &done[1..] {
            let fe_node = ServiceWorld::fe_node(cq.fe.unwrap());
            let syn_on_be_leg = cq.trace.iter().any(|e| {
                e.node == fe_node && e.kind == tcpsim::PktKind::Syn && e.dir == tcpsim::PktDir::Tx
            });
            assert!(!syn_on_be_leg, "query {} reopened the BE conn", cq.qid);
        }
    }

    #[test]
    fn prewarm_grows_the_pool() {
        let mut sim = small_world(ServiceConfig::google_like(4));
        let fe = sim.with(|w, _| w.default_fe(0));
        let be = sim.with(|w, _| w.be_of_fe(fe));
        sim.with(|w, net| w.prewarm(net, fe, be, 2));
        sim.run();
        let pooled = sim.with(|w, _| w.free_pool.get(&(fe, be)).map(|v| v.len()).unwrap_or(0));
        assert_eq!(pooled, 2);
        // A subsequent query uses a warm conn (no SYN on the BE leg).
        sim.with(|w, net| {
            w.schedule_query(
                net,
                SimDuration::from_millis(1),
                QuerySpec {
                    client: 0,
                    keyword: 1,
                    fixed_fe: Some(fe),
                    instant_followup: false,
                },
            );
        });
        sim.run();
        let done = sim.with(|w, _| w.drain_completed());
        let cq = &done[0];
        let fe_node = ServiceWorld::fe_node(fe);
        assert!(!cq.trace.iter().any(|e| e.node == fe_node
            && e.kind == tcpsim::PktKind::Syn
            && e.dir == tcpsim::PktDir::Tx));
    }

    #[test]
    fn no_split_tcp_goes_straight_to_the_be() {
        let cq = run_one_query(ServiceConfig::google_like(5).without_split_tcp());
        assert!(cq.fe.is_none());
        assert!(cq.fetch_start.is_none());
        assert!(cq.proc_ms > 0.0);
        // The client's peer is a BE node.
        let be_node = ServiceWorld::be_node(cq.be);
        assert!(cq.trace.iter().any(|e| e.node == be_node));
    }

    #[test]
    fn static_cache_off_delays_static_delivery() {
        // With the cache on, static bytes reach the client well before
        // dynamic ones at small RTT; with it off they arrive only after
        // the fetch — compare first-static-arrival times.
        let first_static_ms = |cfg: ServiceConfig| -> f64 {
            let mut sim = small_world(cfg);
            sim.with(|w, net| {
                w.schedule_query(
                    net,
                    SimDuration::from_millis(1),
                    QuerySpec {
                        client: 0,
                        keyword: 3,
                        fixed_fe: None,
                        instant_followup: false,
                    },
                );
            });
            sim.run();
            let done = sim.with(|w, _| w.drain_completed());
            let cq = &done[0];
            let client_node = ServiceWorld::client_node(0);
            let t0 = cq.t_start;
            cq.trace
                .iter()
                .find(|e| {
                    e.node == client_node
                        && e.dir == tcpsim::PktDir::Rx
                        && e.meta.iter().any(|m| m.marker == Marker::Static)
                })
                .map(|e| e.t.saturating_since(t0).as_millis_f64())
                .unwrap()
        };
        let with_cache = first_static_ms(ServiceConfig::bing_like(6));
        let without = first_static_ms(ServiceConfig::bing_like(6).without_static_cache());
        assert!(
            without > with_cache + 50.0,
            "cache on: {with_cache}ms, off: {without}ms"
        );
    }

    #[test]
    fn fe_result_cache_skips_the_fetch_on_repeat() {
        let mut sim = small_world(ServiceConfig::google_like(8).with_fe_result_cache());
        let fe = sim.with(|w, _| w.default_fe(0));
        for i in 0..2 {
            sim.with(|w, net| {
                w.schedule_query(
                    net,
                    SimDuration::from_millis(1 + i * 3_000),
                    QuerySpec {
                        client: 0,
                        keyword: 5, // same keyword twice
                        fixed_fe: Some(fe),
                        instant_followup: false,
                    },
                );
            });
        }
        sim.run();
        let done = sim.with(|w, _| w.drain_completed());
        assert_eq!(done.len(), 2);
        assert!(done[0].true_fetch_ms().is_some(), "first query fetches");
        assert!(
            done[1].true_fetch_ms().is_none(),
            "second query must hit the FE cache"
        );
        assert_eq!(done[1].proc_ms, 0.0);
    }

    #[test]
    fn dataset_b_fixed_fe_overrides_dns() {
        let mut sim = small_world(ServiceConfig::google_like(9));
        let far_fe = sim.with(|w, _| {
            // Pick an FE that is NOT client 0's default.
            let def = w.default_fe(0);
            (0..w.fe_count()).find(|&f| f != def).unwrap()
        });
        sim.with(|w, net| {
            w.schedule_query(
                net,
                SimDuration::from_millis(1),
                QuerySpec {
                    client: 0,
                    keyword: 1,
                    fixed_fe: Some(far_fe),
                    instant_followup: false,
                },
            );
        });
        sim.run();
        let done = sim.with(|w, _| w.drain_completed());
        assert_eq!(done[0].fe, Some(far_fe));
    }

    #[test]
    fn clean_query_outcome_is_ok() {
        let cq = run_one_query(ServiceConfig::google_like(1));
        assert_eq!(cq.outcome, QueryOutcome::Ok);
    }

    #[test]
    fn empty_fault_plan_is_byte_identical() {
        // Attaching an empty FaultPlan (and installing it) must not
        // perturb a single packet relative to the plain configuration.
        let run = |with_plan: bool| -> CompletedQuery {
            let mut cfg = ServiceConfig::google_like(11);
            if with_plan {
                cfg = cfg.with_faults(nettopo::FaultPlan::default());
            }
            let mut sim = small_world(cfg);
            if with_plan {
                sim.with(|w, net| w.install_faults(net));
            }
            sim.with(|w, net| {
                w.schedule_query(
                    net,
                    SimDuration::from_millis(1),
                    QuerySpec {
                        client: 0,
                        keyword: 3,
                        fixed_fe: None,
                        instant_followup: false,
                    },
                );
            });
            sim.run();
            sim.with(|w, _| w.drain_completed()).pop().unwrap()
        };
        let plain = run(false);
        let faulted = run(true);
        assert_eq!(plain.t_done, faulted.t_done);
        assert_eq!(plain.trace.len(), faulted.trace.len());
        for (a, b) in plain.trace.iter().zip(faulted.trace.iter()) {
            assert_eq!(a, b);
        }
        assert_eq!(faulted.outcome, QueryOutcome::Ok);
    }

    #[test]
    fn degraded_when_every_be_site_is_down() {
        let mut plan = nettopo::FaultPlan::default();
        for be in 0..64 {
            plan = plan.be_outage(be, SimTime::ZERO, SimTime::from_millis(60_000));
        }
        let cfg = ServiceConfig::google_like(12)
            .with_faults(plan)
            .with_fe_fetch_deadline(SimDuration::from_millis(1_000));
        let mut sim = small_world(cfg);
        sim.with(|w, net| {
            w.install_faults(net);
            w.schedule_query(
                net,
                SimDuration::from_millis(1),
                QuerySpec {
                    client: 0,
                    keyword: 3,
                    fixed_fe: None,
                    instant_followup: false,
                },
            );
        });
        sim.run();
        let done = sim.with(|w, _| w.drain_completed());
        assert_eq!(done.len(), 1);
        let cq = &done[0];
        assert_eq!(cq.outcome, QueryOutcome::Degraded);
        // The degraded response carries the error stub, not real results.
        assert_eq!(cq.plan.dynamic_bytes, DEGRADED_STUB_BYTES);
        assert_eq!(cq.plan.dynamic_content, DEGRADED_CONTENT_ID);
        // The client actually received error-marked bytes.
        let client_node = ServiceWorld::client_node(0);
        let err_bytes: u64 = cq
            .trace
            .iter()
            .filter(|e| e.node == client_node && e.dir == tcpsim::PktDir::Rx)
            .flat_map(|e| e.meta.iter())
            .filter(|m| m.marker == Marker::Error)
            .map(|m| m.len as u64)
            .sum();
        assert_eq!(err_bytes, DEGRADED_STUB_BYTES);
        assert_eq!(sim.with(|w, _| w.in_flight()), 0);
    }

    #[test]
    fn be_outage_steers_fetch_to_live_site() {
        // Learn the primary BE, then knock it out for the whole run: the
        // FE must route the fetch to another live site and still answer.
        let mut probe = small_world(ServiceConfig::google_like(13));
        let (fe, primary_be) = probe.with(|w, _| {
            let fe = w.default_fe(0);
            (fe, w.be_of_fe(fe))
        });
        let plan = nettopo::FaultPlan::default().be_outage(
            primary_be,
            SimTime::ZERO,
            SimTime::from_millis(60_000),
        );
        let cfg = ServiceConfig::google_like(13)
            .with_faults(plan)
            .with_fe_fetch_deadline(SimDuration::from_millis(1_000));
        let mut sim = small_world(cfg);
        sim.with(|w, net| {
            w.install_faults(net);
            w.schedule_query(
                net,
                SimDuration::from_millis(1),
                QuerySpec {
                    client: 0,
                    keyword: 3,
                    fixed_fe: Some(fe),
                    instant_followup: false,
                },
            );
        });
        sim.run();
        let done = sim.with(|w, _| w.drain_completed());
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].outcome, QueryOutcome::Ok);
        assert_ne!(done[0].be, primary_be, "fetch must avoid the dead site");
    }

    #[test]
    fn fe_outage_retries_until_recovery() {
        // All FEs dark for the first 5 s; the client's deadline/backoff
        // loop must carry the query past the outage and then succeed.
        let mut plan = nettopo::FaultPlan::default();
        for fe in 0..512 {
            plan = plan.fe_outage(fe, SimTime::ZERO, SimTime::from_millis(5_000));
        }
        let cfg = ServiceConfig::google_like(14)
            .with_faults(plan)
            .with_client_retry(crate::service::RetryPolicy {
                deadline: SimDuration::from_millis(2_000),
                max_retries: 3,
                base_backoff: SimDuration::from_millis(500),
                jitter: 0.3,
            });
        let mut sim = small_world(cfg);
        sim.with(|w, net| {
            w.install_faults(net);
            w.schedule_query(
                net,
                SimDuration::from_millis(1),
                QuerySpec {
                    client: 0,
                    keyword: 3,
                    fixed_fe: None,
                    instant_followup: false,
                },
            );
        });
        sim.run();
        let done = sim.with(|w, _| w.drain_completed());
        assert_eq!(done.len(), 1);
        match done[0].outcome {
            QueryOutcome::Retried(n) => assert!(n >= 1, "retry count {n}"),
            other => panic!("expected Retried, got {other:?}"),
        }
        assert!(
            done[0].t_done >= SimTime::from_millis(5_000),
            "success only after the outage lifts"
        );
        assert_eq!(sim.with(|w, _| w.in_flight()), 0);
    }

    #[test]
    fn fe_outage_outlasting_retry_budget_times_out() {
        let mut plan = nettopo::FaultPlan::default();
        for fe in 0..512 {
            plan = plan.fe_outage(fe, SimTime::ZERO, SimTime::from_millis(60_000));
        }
        let cfg = ServiceConfig::google_like(15)
            .with_faults(plan)
            .with_client_retry(crate::service::RetryPolicy {
                deadline: SimDuration::from_millis(1_000),
                max_retries: 1,
                base_backoff: SimDuration::from_millis(200),
                jitter: 0.3,
            });
        let mut sim = small_world(cfg);
        sim.with(|w, net| {
            w.install_faults(net);
            w.schedule_query(
                net,
                SimDuration::from_millis(1),
                QuerySpec {
                    client: 0,
                    keyword: 3,
                    fixed_fe: None,
                    instant_followup: false,
                },
            );
        });
        sim.run();
        let done = sim.with(|w, _| w.drain_completed());
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].outcome, QueryOutcome::TimedOut { attempts: 2 });
        assert_eq!(sim.with(|w, _| w.in_flight()), 0);
    }

    #[test]
    fn conn_drop_forces_cold_reconnect() {
        // A persistent-connection drop empties the FE's pool; the next
        // query must open a fresh (cold) BE connection — visible as a SYN
        // on the FE's BE leg.
        let run = |drop_conns: bool| -> CompletedQuery {
            let mut probe = small_world(ServiceConfig::google_like(16));
            let (fe, be) = probe.with(|w, _| {
                let fe = w.default_fe(0);
                (fe, w.be_of_fe(fe))
            });
            let mut cfg = ServiceConfig::google_like(16);
            if drop_conns {
                cfg = cfg.with_faults(nettopo::FaultPlan::default().conn_drop(
                    fe,
                    be,
                    SimTime::from_millis(500),
                ));
            }
            let mut sim = small_world(cfg);
            sim.with(|w, net| {
                w.install_faults(net);
                w.prewarm(net, fe, be, 1);
            });
            sim.run(); // warm the pool
            sim.with(|w, net| {
                w.schedule_query(
                    net,
                    SimDuration::from_millis(1_000),
                    QuerySpec {
                        client: 0,
                        keyword: 3,
                        fixed_fe: Some(fe),
                        instant_followup: false,
                    },
                );
            });
            sim.run();
            sim.with(|w, _| w.drain_completed()).pop().unwrap()
        };
        let syn_on_be_leg = |cq: &CompletedQuery| {
            let fe_node = ServiceWorld::fe_node(cq.fe.unwrap());
            cq.trace.iter().any(|e| {
                e.node == fe_node && e.kind == tcpsim::PktKind::Syn && e.dir == tcpsim::PktDir::Tx
            })
        };
        let warm = run(false);
        let cold = run(true);
        assert!(!syn_on_be_leg(&warm), "control run must reuse the pool");
        assert!(syn_on_be_leg(&cold), "dropped pool must force a cold SYN");
        // Cold handshake + slow start make the fetch strictly slower.
        assert!(cold.true_fetch_ms().unwrap() > warm.true_fetch_ms().unwrap());
    }

    #[test]
    fn many_concurrent_clients_all_complete() {
        let mut sim = small_world(ServiceConfig::bing_like(10));
        for c in 0..20 {
            sim.with(|w, net| {
                w.schedule_query(
                    net,
                    SimDuration::from_millis(1 + (c as u64 * 13) % 500),
                    QuerySpec {
                        client: c,
                        keyword: c as u64,
                        fixed_fe: None,
                        instant_followup: false,
                    },
                );
            });
        }
        sim.run();
        let done = sim.with(|w, _| w.drain_completed());
        assert_eq!(done.len(), 20);
        assert_eq!(sim.with(|w, _| w.in_flight()), 0);
    }

    /// Schedules `n` clients at t = 1 ms, all pinned to client 0's
    /// default FE, and runs to completion.
    fn run_burst(cfg: ServiceConfig, n: usize) -> (Vec<CompletedQuery>, Sim<ServiceWorld>) {
        let mut sim = small_world(cfg);
        let fe = sim.with(|w, _| w.default_fe(0));
        for c in 0..n {
            sim.with(|w, net| {
                w.schedule_query(
                    net,
                    SimDuration::from_millis(1),
                    QuerySpec {
                        client: c,
                        keyword: c as u64,
                        fixed_fe: Some(fe),
                        instant_followup: false,
                    },
                );
            });
        }
        sim.run();
        let done = sim.with(|w, _| w.drain_completed());
        (done, sim)
    }

    #[test]
    fn admission_watermark_sheds_excess_load() {
        // Watermark 1 on a burst of 8 simultaneous queries at one FE:
        // whoever arrives while another query is in flight is answered
        // with the shed stub immediately (no retry policy configured).
        let cfg = ServiceConfig::google_like(21).with_admission_control(1);
        let (done, mut sim) = run_burst(cfg, 8);
        assert_eq!(done.len(), 8);
        let shed: Vec<_> = done
            .iter()
            .filter(|cq| matches!(cq.outcome, QueryOutcome::Shed { .. }))
            .collect();
        assert!(!shed.is_empty(), "burst of 8 over watermark 1 must shed");
        for cq in &shed {
            assert_eq!(cq.outcome, QueryOutcome::Shed { attempts: 1 });
            assert_eq!(cq.plan.dynamic_bytes, SHED_STUB_BYTES);
            assert!(!cq.outcome.served());
        }
        assert!(done.iter().any(|cq| cq.outcome == QueryOutcome::Ok));
        let shed_metric = sim.with(|w, _| w.metrics().counter("cdnsim.shed_queries"));
        assert_eq!(shed_metric, Some(shed.len() as u64));
        // Every slot was released.
        assert_eq!(sim.with(|w, _| w.in_flight()), 0);
        let fe = sim.with(|w, _| w.default_fe(0));
        assert_eq!(sim.with(|w, _| w.fe_inflight(fe)), 0);
    }

    #[test]
    fn shed_queries_retry_under_policy_and_stop_on_empty_budget() {
        // With a retry policy, shed queries come back after backoff and
        // eventually land under the watermark.
        let retry = crate::service::RetryPolicy {
            deadline: SimDuration::from_millis(30_000),
            max_retries: 5,
            base_backoff: SimDuration::from_millis(300),
            jitter: 0.3,
        };
        let cfg = ServiceConfig::google_like(22)
            .with_admission_control(1)
            .with_client_retry(retry.clone());
        let (done, _) = run_burst(cfg, 6);
        assert_eq!(done.len(), 6);
        assert!(
            done.iter().all(|cq| cq.outcome.served()),
            "retries must drain the shed burst: {:?}",
            done.iter().map(|cq| cq.outcome).collect::<Vec<_>>()
        );
        assert!(done
            .iter()
            .any(|cq| matches!(cq.outcome, QueryOutcome::Retried(_))));

        // Same burst with a zero retry budget: the shed replies are
        // terminal even though the retry policy would allow 5 attempts.
        let cfg = ServiceConfig::google_like(22)
            .with_admission_control(1)
            .with_client_retry(retry)
            .with_retry_budget(crate::service::RetryBudget {
                max_tokens: 0.0,
                refill_per_sec: 0.0,
            });
        let (done, mut sim) = run_burst(cfg, 6);
        assert_eq!(done.len(), 6);
        for cq in &done {
            assert!(
                matches!(
                    cq.outcome,
                    QueryOutcome::Ok | QueryOutcome::Shed { attempts: 1 }
                ),
                "zero budget forbids retries: {:?}",
                cq.outcome
            );
        }
        let exhausted = sim.with(|w, _| w.metrics().counter("cdnsim.retry_budget_exhausted"));
        assert!(exhausted.unwrap_or(0) > 0);
    }

    #[test]
    fn retry_budget_caps_deadline_retries() {
        // The fe_outage_outlasting_retry_budget_times_out scenario, but
        // the budget (1 token, no refill) runs out before the retry
        // policy (3 retries) does: exactly 2 attempts are made.
        let mut plan = nettopo::FaultPlan::default();
        for fe in 0..512 {
            plan = plan.fe_outage(fe, SimTime::ZERO, SimTime::from_millis(120_000));
        }
        let cfg = ServiceConfig::google_like(23)
            .with_faults(plan)
            .with_client_retry(crate::service::RetryPolicy {
                deadline: SimDuration::from_millis(1_000),
                max_retries: 3,
                base_backoff: SimDuration::from_millis(200),
                jitter: 0.3,
            })
            .with_retry_budget(crate::service::RetryBudget {
                max_tokens: 1.0,
                refill_per_sec: 0.0,
            });
        let mut sim = small_world(cfg);
        sim.with(|w, net| {
            w.install_faults(net);
            w.schedule_query(
                net,
                SimDuration::from_millis(1),
                QuerySpec {
                    client: 0,
                    keyword: 3,
                    fixed_fe: None,
                    instant_followup: false,
                },
            );
        });
        sim.run();
        let done = sim.with(|w, _| w.drain_completed());
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].outcome, QueryOutcome::TimedOut { attempts: 2 });
        assert_eq!(
            sim.with(|w, _| w.metrics().counter("cdnsim.retry_budget_exhausted")),
            Some(1)
        );
    }

    #[test]
    fn hedged_fetch_wins_when_primary_be_stalls() {
        // The default BE goes dark at 2 ms — after the query (started at
        // 1 ms) was routed to it, so routing cannot steer away. The
        // primary fetch stalls forever; the hedge fires 5 ms in and
        // serves from the next-nearest live site. First response wins.
        let mut probe = small_world(ServiceConfig::google_like(24));
        let fe = probe.with(|w, _| w.default_fe(0));
        let be = probe.with(|w, _| w.be_of_fe(fe));
        let cfg = ServiceConfig::google_like(24)
            .with_faults(nettopo::FaultPlan::default().be_outage(
                be,
                SimTime::from_millis(2),
                SimTime::from_millis(60_000),
            ))
            .with_hedged_fetches(SimDuration::from_millis(5));
        let mut sim = small_world(cfg);
        sim.with(|w, net| {
            w.install_faults(net);
            w.schedule_query(
                net,
                SimDuration::from_millis(1),
                QuerySpec {
                    client: 0,
                    keyword: 3,
                    fixed_fe: Some(fe),
                    instant_followup: false,
                },
            );
        });
        sim.run();
        let done = sim.with(|w, _| w.drain_completed());
        assert_eq!(done.len(), 1);
        let cq = &done[0];
        assert_eq!(cq.outcome, QueryOutcome::Ok);
        assert_ne!(cq.be, be, "the hedge BE must have served the response");
        assert!(cq.proc_ms > 0.0);
        assert_eq!(
            sim.with(|w, _| w.metrics().counter("cdnsim.hedge_wins")),
            Some(1)
        );
        assert_eq!(sim.with(|w, _| w.in_flight()), 0);
        let n_bes = sim.with(|w, _| w.cfg.be_sites.len());
        for b in 0..n_bes {
            assert_eq!(sim.with(|w, _| w.be_inflight(b)), 0, "BE {b} slot leaked");
        }
    }

    #[test]
    fn breaker_opens_then_fast_fails_later_fetches() {
        // Every BE dark, 500 ms fetch deadline, breaker trips after one
        // failure with a long cooldown. Query 1 pays the deadline and
        // degrades; query 2 (1 s later) fast-fails straight to the
        // degraded response without ever starting a fetch.
        let mut plan = nettopo::FaultPlan::default();
        for be in 0..64 {
            plan = plan.be_outage(be, SimTime::ZERO, SimTime::from_millis(60_000));
        }
        let cfg = ServiceConfig::google_like(25)
            .with_faults(plan)
            .with_fe_fetch_deadline(SimDuration::from_millis(500))
            .with_circuit_breaker(crate::service::BreakerPolicy {
                failure_threshold: 1,
                cooldown: SimDuration::from_millis(30_000),
            });
        let mut sim = small_world(cfg);
        let fe = sim.with(|w, _| w.default_fe(0));
        sim.with(|w, net| {
            w.install_faults(net);
            for (client, at) in [(0usize, 1u64), (1, 1_000)] {
                w.schedule_query(
                    net,
                    SimDuration::from_millis(at),
                    QuerySpec {
                        client,
                        keyword: client as u64,
                        fixed_fe: Some(fe),
                        instant_followup: false,
                    },
                );
            }
        });
        sim.run();
        let mut done = sim.with(|w, _| w.drain_completed());
        done.sort_by_key(|cq| cq.client);
        assert_eq!(done.len(), 2);
        assert!(done.iter().all(|cq| cq.outcome == QueryOutcome::Degraded));
        assert!(done[0].fetch_start.is_some(), "query 1 attempted a fetch");
        assert!(done[1].fetch_start.is_none(), "query 2 must fast-fail");
        assert_eq!(
            sim.with(|w, _| w.metrics().counter("cdnsim.breaker_opens")),
            Some(1)
        );
        assert_eq!(
            sim.with(|w, _| w.metrics().counter("cdnsim.breaker_fastfails")),
            Some(1)
        );
    }

    #[test]
    fn load_model_stretches_fe_overhead_under_concurrency() {
        let model = crate::service::LoadModel {
            fe_capacity: 2,
            be_capacity: 64,
            max_slowdown: 20.0,
        };
        // Alone, the load model is inert: a lone query sees slowdown 1.
        let plain = run_one_query(ServiceConfig::google_like(26));
        let modeled = run_one_query(ServiceConfig::google_like(26).with_load_model(model));
        assert_eq!(plain.fe_overhead_ms, modeled.fe_overhead_ms);
        assert_eq!(plain.t_done, modeled.t_done);

        // Under a concurrent burst the modeled FE queues: its worst
        // per-query overhead must exceed the load-oblivious one.
        let (base, _) = run_burst(ServiceConfig::google_like(26), 8);
        let (loaded, _) = run_burst(ServiceConfig::google_like(26).with_load_model(model), 8);
        let worst = |v: &[CompletedQuery]| {
            v.iter()
                .map(|cq| cq.fe_overhead_ms)
                .fold(0.0f64, |a, b| a.max(b))
        };
        assert!(
            worst(&loaded) > worst(&base) * 1.5,
            "loaded {} vs base {}",
            worst(&loaded),
            worst(&base)
        );
    }

    #[test]
    fn inert_overload_policies_do_not_change_a_run() {
        // Policies that never trigger (huge watermark, hedge delay
        // longer than the run, closed breaker, untouched budget) must
        // leave the packet trace and timings byte-identical.
        let plain = run_one_query(ServiceConfig::google_like(27));
        let guarded = run_one_query(
            ServiceConfig::google_like(27)
                .with_admission_control(10_000)
                .with_retry_budget(crate::service::RetryBudget::default())
                .with_hedged_fetches(SimDuration::from_millis(3_600_000))
                .with_circuit_breaker(crate::service::BreakerPolicy::default()),
        );
        assert_eq!(plain.outcome, guarded.outcome);
        assert_eq!(plain.t_done, guarded.t_done);
        assert_eq!(plain.proc_ms, guarded.proc_ms);
        assert_eq!(plain.fe_overhead_ms, guarded.fe_overhead_ms);
        assert_eq!(plain.trace.len(), guarded.trace.len());
        for (a, b) in plain.trace.iter().zip(guarded.trace.iter()) {
            assert_eq!(a.t, b.t);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.len, b.len);
        }
    }
}
