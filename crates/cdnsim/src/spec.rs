//! Descriptor-based world construction.
//!
//! A [`WorldSpec`] is everything needed to construct one ready-to-run
//! simulator world: the service configuration, the shared vantage
//! population and keyword corpus, the network-side seed, and the trace
//! switch. Campaign runners hold a list of these descriptors and build
//! each world independently — on whichever worker thread picks the run
//! up — which is only sound because construction here depends on nothing
//! but the descriptor's own fields.

use crate::service::ServiceConfig;
use crate::world::ServiceWorld;
use nettopo::vantage::Vantage;
use searchbe::keywords::KeywordCorpus;
use tcpsim::Sim;

/// Everything needed to construct one simulator world.
#[derive(Clone, Debug)]
pub struct WorldSpec {
    /// The service under test (carries its own model seed, fault plan,
    /// retry policy and ablation switches).
    pub cfg: ServiceConfig,
    /// The vantage-point population.
    pub vantages: Vec<Vantage>,
    /// The keyword corpus.
    pub corpus: KeywordCorpus,
    /// Seed of the network-side randomness (path jitter, loss draws).
    /// The FE/BE stochastic models are keyed on `cfg.seed` instead.
    pub world_seed: u64,
    /// Whether packet tracing is enabled (required for timeline
    /// extraction; off only for throwaway planning worlds).
    pub trace: bool,
}

impl WorldSpec {
    /// Builds the ready-to-run simulator: constructs the world, seeds the
    /// network, enables tracing as configured, and installs any fault
    /// plan attached to the config (a no-op for the default empty plan).
    pub fn build(&self) -> Sim<ServiceWorld> {
        let world = ServiceWorld::new(self.cfg.clone(), self.vantages.clone(), self.corpus.clone());
        let mut sim = Sim::new(self.world_seed, world);
        sim.net().trace_mut().set_enabled(self.trace);
        sim.with(|w, net| w.install_faults(net));
        sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettopo::vantage::{planetlab_like, VantageConfig};

    fn spec(world_seed: u64) -> WorldSpec {
        WorldSpec {
            cfg: ServiceConfig::google_like(5),
            vantages: planetlab_like(
                5,
                &VantageConfig {
                    count: 6,
                    ..VantageConfig::default()
                },
            ),
            corpus: KeywordCorpus::generate(5, 50, 0.5),
            world_seed,
            trace: true,
        }
    }

    #[test]
    fn identical_specs_build_identical_worlds() {
        let mut a = spec(77).build();
        let mut b = spec(77).build();
        assert_eq!(
            a.with(|w, _| w.client_fe_rtt_ms(0, 0)),
            b.with(|w, _| w.client_fe_rtt_ms(0, 0))
        );
        // Same network seed: the jitter streams coincide too.
        assert_eq!(a.net().rng().next_u64(), b.net().rng().next_u64());
    }

    #[test]
    fn world_seed_only_touches_the_network_side() {
        let mut a = spec(77).build();
        let mut b = spec(78).build();
        // Geometry and service models are identical …
        assert_eq!(
            a.with(|w, _| w.default_fe(3)),
            b.with(|w, _| w.default_fe(3))
        );
        // … only the network randomness differs.
        assert_ne!(a.net().rng().next_u64(), b.net().rng().next_u64());
    }
}
