//! The first-class FE cache model: LRU, LFU and TTL eviction behind one
//! trait, with per-object sizes, byte-capacity accounting and full
//! hit/miss/eviction statistics.
//!
//! [`ObjectCache`] replaces the old unbounded `HashMap` behind a bool in
//! `fe.rs`. It is **observe-only deterministic**: no RNG, no scheduling,
//! and every eviction decision is a total order over
//! `(policy rank, insertion tick, key)` — so identical operation
//! sequences produce identical cache states on any thread count, and an
//! unbounded configuration (the default) behaves exactly like the plain
//! map it replaced.
//!
//! Semantics pinned by `tests/cache_model.rs`:
//! * `hits + misses == lookups` under any interleaving;
//! * `bytes_resident <= capacity_bytes` and `len <= max_entries` at all
//!   times;
//! * TTL entries expire **at** the exact virtual-time boundary
//!   (`now >= inserted_at + ttl` is a miss, counted as an expiration);
//! * an object larger than the byte capacity is rejected, never
//!   admitted-then-evicted; a zero-capacity cache holds nothing.

use simcore::time::{SimDuration, SimTime};
use std::collections::{BTreeSet, HashMap};

/// Eviction policy of an [`ObjectCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CachePolicy {
    /// Evict the least-recently-used entry (recency updated on hit).
    Lru,
    /// Evict the least-frequently-used entry (ties broken LRU-style by
    /// last-touch order).
    Lfu,
    /// Entries expire `ttl` after insertion (refreshing an entry resets
    /// its clock); capacity pressure evicts the soonest-to-expire entry
    /// first.
    Ttl(SimDuration),
}

/// Provisioning of one cache: policy plus optional byte and entry caps.
/// The default ([`CacheConfig::unbounded`]) is **inert**: LRU bookkeeping
/// over infinite capacity never evicts and never expires, reproducing
/// the unbounded-map behaviour byte for byte.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheConfig {
    /// Eviction policy.
    pub policy: CachePolicy,
    /// Byte capacity; `None` = unlimited.
    pub capacity_bytes: Option<u64>,
    /// Entry-count cap; `None` = unlimited.
    pub max_entries: Option<usize>,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig::unbounded()
    }
}

impl CacheConfig {
    /// The inert configuration: LRU over unlimited capacity.
    pub fn unbounded() -> CacheConfig {
        CacheConfig {
            policy: CachePolicy::Lru,
            capacity_bytes: None,
            max_entries: None,
        }
    }

    /// LRU with a byte capacity.
    pub fn lru(capacity_bytes: u64) -> CacheConfig {
        CacheConfig {
            policy: CachePolicy::Lru,
            capacity_bytes: Some(capacity_bytes),
            max_entries: None,
        }
    }

    /// LFU with a byte capacity.
    pub fn lfu(capacity_bytes: u64) -> CacheConfig {
        CacheConfig {
            policy: CachePolicy::Lfu,
            capacity_bytes: Some(capacity_bytes),
            max_entries: None,
        }
    }

    /// TTL expiry with a byte capacity.
    pub fn ttl(ttl: SimDuration, capacity_bytes: u64) -> CacheConfig {
        CacheConfig {
            policy: CachePolicy::Ttl(ttl),
            capacity_bytes: Some(capacity_bytes),
            max_entries: None,
        }
    }

    /// Adds an entry-count cap.
    pub fn with_max_entries(mut self, n: usize) -> CacheConfig {
        self.max_entries = Some(n);
        self
    }

    /// True when the configuration can never evict or expire anything:
    /// unlimited bytes and entries under a non-expiring policy. Such a
    /// cache is behaviourally identical to a plain map.
    pub fn is_unbounded(&self) -> bool {
        self.capacity_bytes.is_none()
            && self.max_entries.is_none()
            && !matches!(self.policy, CachePolicy::Ttl(_))
    }
}

/// Running statistics of one cache. All counters are cumulative;
/// `hits + misses == lookups` is invariant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total lookups.
    pub lookups: u64,
    /// Lookups that returned a resident, unexpired entry.
    pub hits: u64,
    /// Lookups that found nothing usable (absent or expired).
    pub misses: u64,
    /// Successful inserts (refreshes included).
    pub insertions: u64,
    /// Entries removed by capacity pressure.
    pub evictions: u64,
    /// Entries removed because their TTL elapsed.
    pub expirations: u64,
    /// Inserts rejected because the object can never fit.
    pub rejections: u64,
}

/// What one [`Cache::insert`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InsertOutcome {
    /// The object is now resident.
    pub inserted: bool,
    /// Entries evicted by capacity pressure to make room.
    pub evicted: u64,
    /// Entries that expired (TTL) while making room.
    pub expired: u64,
}

/// The uniform interface every eviction policy sits behind. One
/// implementation — [`ObjectCache`] — serves all policies; the trait is
/// the seam harnesses and tests program against.
pub trait Cache<V> {
    /// Looks up `key` at virtual time `now`, counting a hit or miss and
    /// updating recency/frequency. An entry whose TTL has elapsed
    /// (`now >= inserted_at + ttl`) is removed and counted as an
    /// expiration plus a miss.
    fn get(&mut self, key: u64, now: SimTime) -> Option<&V>;

    /// Inserts `key` with a `size`-byte object at `now`, evicting in
    /// policy order until it fits. Re-inserting a resident key refreshes
    /// it in place (not an eviction). Objects that can never fit are
    /// rejected.
    fn insert(&mut self, key: u64, value: V, size: u64, now: SimTime) -> InsertOutcome;

    /// Cumulative statistics.
    fn stats(&self) -> CacheStats;

    /// Bytes currently resident.
    fn bytes_resident(&self) -> u64;

    /// Entries currently resident.
    fn len(&self) -> usize;

    /// True when nothing is resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[derive(Clone, Debug)]
struct Entry<V> {
    value: V,
    size: u64,
    /// Monotone operation tick of the last insert/touch (recency).
    tick: u64,
    /// Hit count + 1 (frequency, for LFU).
    freq: u64,
    /// Absolute expiry instant (TTL policy only).
    expires_at: Option<SimTime>,
}

/// The cache model: a keyed object store with deterministic,
/// policy-ordered eviction. See the module docs for the invariants.
#[derive(Clone, Debug)]
pub struct ObjectCache<V> {
    cfg: CacheConfig,
    map: HashMap<u64, Entry<V>>,
    /// Eviction index: `(policy rank, tick, key)`, smallest evicts
    /// first. Rank is recency (LRU), frequency (LFU) or expiry instant
    /// (TTL); the `(tick, key)` tail makes the order total and
    /// deterministic.
    order: BTreeSet<(u64, u64, u64)>,
    bytes: u64,
    tick: u64,
    stats: CacheStats,
}

impl<V> ObjectCache<V> {
    /// An empty cache under `cfg`.
    pub fn new(cfg: CacheConfig) -> ObjectCache<V> {
        ObjectCache {
            cfg,
            map: HashMap::new(),
            order: BTreeSet::new(),
            bytes: 0,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// True when `key` is resident and unexpired at `now`, without
    /// touching statistics or recency.
    pub fn contains(&self, key: u64, now: SimTime) -> bool {
        self.map
            .get(&key)
            .is_some_and(|e| e.expires_at.is_none_or(|x| now < x))
    }

    fn rank(&self, e: &Entry<V>) -> u64 {
        match self.cfg.policy {
            CachePolicy::Lru => e.tick,
            CachePolicy::Lfu => e.freq,
            CachePolicy::Ttl(_) => e.expires_at.expect("TTL entries carry expiry").as_nanos(),
        }
    }

    fn order_key(&self, key: u64, e: &Entry<V>) -> (u64, u64, u64) {
        (self.rank(e), e.tick, key)
    }

    /// Removes `key` unconditionally; returns its entry.
    fn remove_entry(&mut self, key: u64) -> Option<Entry<V>> {
        let e = self.map.remove(&key)?;
        let ok = self.order.remove(&self.order_key(key, &e));
        debug_assert!(ok, "order index out of sync for key {key}");
        self.bytes -= e.size;
        Some(e)
    }

    fn over_capacity_with(&self, extra_bytes: u64) -> bool {
        if let Some(cap) = self.cfg.capacity_bytes {
            if self.bytes + extra_bytes > cap {
                return true;
            }
        }
        if let Some(max) = self.cfg.max_entries {
            if self.map.len() + 1 > max {
                return true;
            }
        }
        false
    }
}

impl<V> Cache<V> for ObjectCache<V> {
    fn get(&mut self, key: u64, now: SimTime) -> Option<&V> {
        self.stats.lookups += 1;
        match self.map.get(&key) {
            None => {
                self.stats.misses += 1;
                None
            }
            Some(e) if e.expires_at.is_some_and(|x| now >= x) => {
                self.remove_entry(key);
                self.stats.expirations += 1;
                self.stats.misses += 1;
                None
            }
            Some(_) => {
                self.stats.hits += 1;
                // Touch: bump recency and frequency, reorder the index.
                let old = self.order_key(key, &self.map[&key]);
                self.order.remove(&old);
                self.tick += 1;
                let tick = self.tick;
                let e = self.map.get_mut(&key).expect("checked resident");
                e.tick = tick;
                e.freq += 1;
                let new = self.order_key(key, &self.map[&key]);
                self.order.insert(new);
                self.map.get(&key).map(|e| &e.value)
            }
        }
    }

    fn insert(&mut self, key: u64, value: V, size: u64, now: SimTime) -> InsertOutcome {
        // Refresh: drop the old entry silently (neither an eviction nor
        // an expiration — the object is being replaced by its owner).
        self.remove_entry(key);
        // Reject what can never fit: an oversized object, or anything at
        // all when the entry cap is zero.
        if self.cfg.capacity_bytes.is_some_and(|cap| size > cap) || self.cfg.max_entries == Some(0)
        {
            self.stats.rejections += 1;
            return InsertOutcome::default();
        }
        let mut out = InsertOutcome {
            inserted: true,
            ..InsertOutcome::default()
        };
        while self.over_capacity_with(size) {
            let &(_, _, victim) = self.order.iter().next().expect("over capacity but empty");
            let e = self.remove_entry(victim).expect("victim resident");
            if e.expires_at.is_some_and(|x| now >= x) {
                self.stats.expirations += 1;
                out.expired += 1;
            } else {
                self.stats.evictions += 1;
                out.evicted += 1;
            }
        }
        self.tick += 1;
        let expires_at = match self.cfg.policy {
            CachePolicy::Ttl(ttl) => Some(now + ttl),
            _ => None,
        };
        let e = Entry {
            value,
            size,
            tick: self.tick,
            freq: 1,
            expires_at,
        };
        self.order.insert(self.order_key(key, &e));
        self.map.insert(key, e);
        self.bytes += size;
        self.stats.insertions += 1;
        out
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn bytes_resident(&self) -> u64 {
        self.bytes
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn lru_evicts_in_recency_order() {
        let mut c: ObjectCache<u32> = ObjectCache::new(CacheConfig::lru(30));
        c.insert(1, 10, 10, t(0));
        c.insert(2, 20, 10, t(1));
        c.insert(3, 30, 10, t(2));
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(c.get(1, t(3)), Some(&10));
        c.insert(4, 40, 10, t(4));
        assert!(c.contains(1, t(5)) && c.contains(3, t(5)) && c.contains(4, t(5)));
        assert!(!c.contains(2, t(5)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn lfu_evicts_cold_entries_with_lru_tiebreak() {
        let mut c: ObjectCache<u32> = ObjectCache::new(CacheConfig::lfu(30));
        c.insert(1, 0, 10, t(0));
        c.insert(2, 0, 10, t(1));
        c.insert(3, 0, 10, t(2));
        c.get(1, t(3));
        c.get(1, t(4));
        c.get(3, t(5));
        // Frequencies: 1→3, 2→1, 3→2. Key 2 is the LFU victim.
        c.insert(4, 0, 10, t(6));
        assert!(!c.contains(2, t(7)));
        // Now 4 (freq 1) ties with nothing; 3 (freq 2) vs 4 (freq 1):
        // the next insert evicts 4, the least frequent.
        c.insert(5, 0, 10, t(8));
        assert!(!c.contains(4, t(9)));
        assert!(c.contains(1, t(9)) && c.contains(3, t(9)) && c.contains(5, t(9)));
    }

    #[test]
    fn ttl_expires_at_exact_boundary() {
        let ttl = SimDuration::from_millis(100);
        let mut c: ObjectCache<u32> = ObjectCache::new(CacheConfig::ttl(ttl, 1_000));
        c.insert(7, 70, 10, t(50));
        assert_eq!(c.get(7, t(149)), Some(&70));
        // now == inserted_at + ttl: expired, by definition.
        assert_eq!(c.get(7, t(150)), None);
        let s = c.stats();
        assert_eq!(s.expirations, 1);
        assert_eq!((s.hits, s.misses, s.lookups), (1, 1, 2));
        assert_eq!(c.bytes_resident(), 0);
        // Refresh resets the clock.
        c.insert(7, 71, 10, t(200));
        assert_eq!(c.get(7, t(299)), Some(&71));
    }

    #[test]
    fn byte_and_entry_caps_bind_independently() {
        let mut c: ObjectCache<u32> = ObjectCache::new(CacheConfig::lru(100).with_max_entries(2));
        c.insert(1, 0, 10, t(0));
        c.insert(2, 0, 10, t(1));
        // Bytes ample (20/100) but the entry cap binds.
        c.insert(3, 0, 10, t(2));
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        // Entry cap ample but bytes bind.
        c.insert(4, 0, 95, t(3));
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes_resident(), 95);
    }

    #[test]
    fn zero_capacity_and_oversized_objects_are_rejected() {
        let mut c: ObjectCache<u32> = ObjectCache::new(CacheConfig::lru(50));
        assert_eq!(
            c.insert(1, 0, 51, t(0)),
            InsertOutcome {
                inserted: false,
                evicted: 0,
                expired: 0
            }
        );
        assert_eq!(c.stats().rejections, 1);
        assert_eq!(c.len(), 0);
        let mut z: ObjectCache<u32> = ObjectCache::new(CacheConfig::lru(0));
        assert!(!z.insert(1, 0, 1, t(0)).inserted);
        let mut e: ObjectCache<u32> =
            ObjectCache::new(CacheConfig::unbounded().with_max_entries(0));
        assert!(!e.insert(1, 0, 1, t(0)).inserted);
        // A zero-byte object fits a zero-byte cache (vacuously).
        assert!(z.insert(2, 0, 0, t(0)).inserted);
    }

    #[test]
    fn refresh_replaces_in_place_without_eviction() {
        let mut c: ObjectCache<u32> = ObjectCache::new(CacheConfig::lru(30));
        c.insert(1, 10, 10, t(0));
        c.insert(1, 11, 20, t(1));
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes_resident(), 20);
        assert_eq!(c.get(1, t(2)), Some(&11));
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.stats().insertions, 2);
    }

    #[test]
    fn unbounded_default_never_evicts() {
        let cfg = CacheConfig::default();
        assert!(cfg.is_unbounded());
        assert!(!CacheConfig::lru(10).is_unbounded());
        assert!(!CacheConfig::ttl(SimDuration::from_secs(1), u64::MAX).is_unbounded());
        let mut c: ObjectCache<u64> = ObjectCache::new(cfg);
        for k in 0..10_000u64 {
            assert!(c.insert(k, k, 1_000, t(k)).inserted);
        }
        assert_eq!(c.len(), 10_000);
        let s = c.stats();
        assert_eq!((s.evictions, s.expirations, s.rejections), (0, 0, 0));
    }
}
