//! Whole-service configuration: everything that distinguishes the two
//! measured deployments, plus the ablation switches.

use crate::cache::CacheConfig;
use nettopo::faults::FaultPlan;
use nettopo::path::PathProfile;
use nettopo::placement::{dense_edge, sparse_pop, FeSite};
use nettopo::sites::{BeSite, BING_BE_SITES, GOOGLE_BE_SITES};
use searchbe::proctime::BackendProfile;
use searchbe::response::PageComposer;
use simcore::dist::Dist;
use simcore::time::SimDuration;
use tcpsim::TcpOptions;

/// Client-side robustness policy: per-query deadline plus bounded
/// retries with exponential backoff and jitter.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Per-attempt deadline: if the response is not complete by then the
    /// attempt is abandoned.
    pub deadline: SimDuration,
    /// Maximum number of retries after the first attempt (0 = give up
    /// immediately on the first deadline).
    pub max_retries: u32,
    /// Base backoff before the first retry; attempt `n` waits
    /// `base_backoff · 2^(n-1) · (1 + jitter·u)` with `u` uniform in
    /// [0, 1) from the dedicated retry RNG stream.
    pub base_backoff: SimDuration,
    /// Multiplicative jitter fraction (0 disables jitter).
    pub jitter: f64,
}

impl Default for RetryPolicy {
    /// A browser-like policy: 10 s deadline, two retries, half-second
    /// base backoff with 30% jitter.
    fn default() -> RetryPolicy {
        RetryPolicy {
            deadline: SimDuration::from_secs(10),
            max_retries: 2,
            base_backoff: SimDuration::from_millis(500),
            jitter: 0.3,
        }
    }
}

/// Deterministic concurrency-dependent service-time model for FE and BE
/// sites — the M/M/1-style queueing-delay curve the paper's load
/// observations imply (`Tstatic` responds to FE load, `Tproc` to BE
/// load).
///
/// The multiplier for a site holding `n` in-flight requests is
/// `1 / (1 - q/capacity)` with `q = n - 1` queued behind the newest one,
/// clamped to `max_slowdown`; a lone request sees exactly 1.0, so the
/// model is inert at low load and the existing goldens (single queries
/// in flight) are untouched even when it is enabled. No randomness: the
/// curve is a pure function of the in-flight count, so trajectories stay
/// byte-deterministic at any shard split.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadModel {
    /// Per-FE concurrency knee: in-flight requests beyond which the FE
    /// service-time multiplier saturates at `max_slowdown`.
    pub fe_capacity: u32,
    /// Per-BE concurrency knee for `Tproc` scaling.
    pub be_capacity: u32,
    /// Ceiling on the queueing multiplier (keeps a saturated site's
    /// service time finite and the simulation terminating).
    pub max_slowdown: f64,
}

impl LoadModel {
    /// The queueing multiplier for a site with `inflight` concurrent
    /// requests (including the one being priced) and knee `capacity`.
    pub fn slowdown(&self, inflight: u32, capacity: u32) -> f64 {
        let cap = capacity.max(1) as f64;
        let queued = inflight.saturating_sub(1) as f64;
        if queued >= cap {
            self.max_slowdown
        } else {
            (1.0 / (1.0 - queued / cap)).min(self.max_slowdown)
        }
    }

    /// FE-side multiplier for `inflight` concurrent requests, with the
    /// knee scaled by `capacity_factor` (capacity-dip fault windows).
    pub fn fe_slowdown(&self, inflight: u32, capacity_factor: f64) -> f64 {
        let cap = ((self.fe_capacity as f64 * capacity_factor) as u32).max(1);
        self.slowdown(inflight, cap)
    }

    /// BE-side multiplier for `inflight` concurrent fetches.
    pub fn be_slowdown(&self, inflight: u32) -> f64 {
        self.slowdown(inflight, self.be_capacity)
    }
}

impl Default for LoadModel {
    /// A mid-size site: knee at 16 in-flight requests per FE, 64 per BE,
    /// slowdown capped at 20x.
    fn default() -> LoadModel {
        LoadModel {
            fe_capacity: 16,
            be_capacity: 64,
            max_slowdown: 20.0,
        }
    }
}

/// Admission control at the FE: above the watermark new requests are
/// shed immediately with a typed `Shed` outcome instead of queueing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionControl {
    /// In-flight requests per FE above which new arrivals are shed.
    pub watermark: u32,
}

/// Per-client retry budget: a token bucket spent on every retry attempt.
/// When empty, the retry is suppressed and the query fails with its
/// final-attempt cause — the mechanism that breaks retry-storm
/// hysteresis in `exp_metastable`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryBudget {
    /// Bucket capacity (tokens; one retry costs one token).
    pub max_tokens: f64,
    /// Refill rate in tokens per virtual second.
    pub refill_per_sec: f64,
}

impl Default for RetryBudget {
    /// A tight budget: 3 tokens refilling at 0.1/s — enough for fault
    /// blips, starved by a sustained storm.
    fn default() -> RetryBudget {
        RetryBudget {
            max_tokens: 3.0,
            refill_per_sec: 0.1,
        }
    }
}

/// Hedged FE→BE fetches: if the primary fetch has not completed after
/// `after`, a duplicate is sent to the next-nearest live BE; the first
/// response wins and the loser is cancelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HedgePolicy {
    /// Delay after the fetch starts before the hedge fires (pick ~p95 of
    /// the healthy fetch-time distribution).
    pub after: SimDuration,
}

/// Per-FE circuit breaker over BE fetch failures: `failure_threshold`
/// consecutive fetch failures open the breaker; while open, fetches
/// fast-fail to the degraded response; after `cooldown` of virtual time
/// one trial fetch (half-open) decides between closing and re-opening.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive fetch failures that open the breaker.
    pub failure_threshold: u32,
    /// Virtual-time cooldown before a half-open trial fetch.
    pub cooldown: SimDuration,
}

impl Default for BreakerPolicy {
    /// 5 consecutive failures, 10 s cooldown.
    fn default() -> BreakerPolicy {
        BreakerPolicy {
            failure_threshold: 5,
            cooldown: SimDuration::from_secs(10),
        }
    }
}

/// The composable overload-protection policy set. Every member defaults
/// to `None`/off: a default `OverloadPolicy` is inert and leaves
/// simulation trajectories byte-identical to a build without the
/// subsystem.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OverloadPolicy {
    /// FE admission control (load shedding above a watermark).
    pub admission: Option<AdmissionControl>,
    /// Per-client retry budgets (requires `client_retry` to matter).
    pub retry_budget: Option<RetryBudget>,
    /// Hedged FE→BE fetches.
    pub hedge: Option<HedgePolicy>,
    /// Per-FE circuit breaker on BE fetch failures.
    pub breaker: Option<BreakerPolicy>,
}

impl OverloadPolicy {
    /// True when every protection mechanism is disabled.
    pub fn is_inert(&self) -> bool {
        self.admission.is_none()
            && self.retry_budget.is_none()
            && self.hedge.is_none()
            && self.breaker.is_none()
    }
}

/// Front-end load/service-time profile.
#[derive(Clone, Debug)]
pub struct FeLoadProfile {
    /// Base per-request service time (ms).
    pub service_ms: Dist,
    /// Peak multiplicative slowdown − 1 (tenancy-dependent).
    pub load_amplitude: f64,
    /// Load-process volatility per request.
    pub load_volatility: f64,
}

impl FeLoadProfile {
    /// Dedicated single-tenant FE (Google-like): fast and stable.
    pub fn dedicated() -> FeLoadProfile {
        FeLoadProfile {
            service_ms: Dist::lognormal_median_spread(4.0, 1.25),
            load_amplitude: 0.25,
            load_volatility: 0.05,
        }
    }

    /// Shared multi-tenant FE (Akamai-like): slower, heavy-tailed,
    /// bursty.
    pub fn shared() -> FeLoadProfile {
        FeLoadProfile {
            service_ms: Dist::Mix {
                p: 0.85,
                a: Box::new(Dist::lognormal_median_spread(12.0, 1.5)),
                b: Box::new(Dist::lognormal_median_spread(45.0, 1.6)),
            },
            load_amplitude: 1.2,
            load_volatility: 0.08,
        }
    }
}

/// Full configuration of one dynamic-content service.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Service label ("bing-like", "google-like", or a scenario name).
    pub name: String,
    /// Experiment seed (drives every stochastic component).
    pub seed: u64,
    /// Front-end fleet.
    pub fe_fleet: Vec<FeSite>,
    /// Back-end data-center sites.
    pub be_sites: Vec<BeSite>,
    /// Back-end processing profile.
    pub backend: BackendProfile,
    /// Page composition (static/dynamic sizes and identities).
    pub composer: PageComposer,
    /// FE load profile.
    pub fe_load: FeLoadProfile,
    /// FE↔BE path class.
    pub febe_profile: PathProfile,
    /// TCP options for client endpoints.
    pub client_tcp: TcpOptions,
    /// TCP options for the FE's client-facing endpoints.
    pub fe_client_tcp: TcpOptions,
    /// TCP options for the FE side of persistent BE connections. The
    /// receive window here is the paper's constant `C` knob: it bounds
    /// how many RTTbe rounds the BE response needs ("C ... depends on the
    /// TCP window size on the BE data center", Sec. 2).
    pub fe_be_tcp: TcpOptions,
    /// TCP options for the BE endpoints.
    pub be_tcp: TcpOptions,
    /// FE caches and immediately serves the static portion (true for
    /// both real services; the `abl_cache` ablation turns it off).
    pub cache_static: bool,
    /// Split TCP at the FE (true for both real services; the `abl_split`
    /// ablation sends clients straight to the BE).
    pub split_tcp: bool,
    /// Hypothetical FE result caching (false for both real services —
    /// the Sec. 3 experiments exist to demonstrate exactly that).
    pub fe_caches_results: bool,
    /// Provisioning of the FE result cache (policy + capacity). The
    /// default is unbounded — the PR 2 `with_fe_result_cache` behaviour;
    /// `with_result_cache` bounds it for the popularity experiments.
    pub fe_result_cache: CacheConfig,
    /// Provisioning of the FE static-content cache. Unbounded by
    /// default: the prewarmed static object always hits, exactly the
    /// pre-cache-model behaviour.
    pub fe_static_cache: CacheConfig,
    /// When set, every client's access path uses this profile instead of
    /// its `AccessKind`-derived one — the Sec. 6 loss-sweep knob.
    pub access_override: Option<PathProfile>,
    /// Parallel request slots per FE (the FIFO queue's service
    /// capacity).
    pub fe_workers: usize,
    /// Scripted fault schedule. Empty by default: with no windows the
    /// recovery machinery is inert and trajectories are byte-identical
    /// to a fault-free build.
    pub faults: FaultPlan,
    /// Client-side deadline/retry policy; `None` (the default) arms no
    /// deadline timers at all.
    pub client_retry: Option<RetryPolicy>,
    /// FE-side BE-fetch deadline: past it the FE fails over to the next
    /// live BE site, or degrades the response (cached static portion +
    /// error stub) when none is reachable. `None` disables failover.
    pub fe_fetch_deadline: Option<SimDuration>,
    /// DNS answer TTL: how long clients keep using a resolved FE before
    /// re-resolving (only consulted when the fault plan contains FE
    /// outages — failover away from a dead FE is not instantaneous).
    pub dns_ttl: SimDuration,
    /// Concurrency-dependent service-time model; `None` (the default)
    /// keeps FEs and BEs load-oblivious, byte-identical to older builds.
    pub load_model: Option<LoadModel>,
    /// Overload-protection policies; all off by default.
    pub overload: OverloadPolicy,
}

impl ServiceConfig {
    /// The Bing-like deployment: dense shared Akamai edge, public-transit
    /// FE↔BE paths, slow and variable back-end.
    pub fn bing_like(seed: u64) -> ServiceConfig {
        ServiceConfig {
            name: "bing-like".into(),
            seed,
            fe_fleet: dense_edge(seed),
            be_sites: BING_BE_SITES.to_vec(),
            backend: BackendProfile::bing_like(),
            composer: PageComposer::bing_like(),
            fe_load: FeLoadProfile::shared(),
            febe_profile: PathProfile::public_transit(),
            client_tcp: TcpOptions::default(),
            fe_client_tcp: TcpOptions::default(),
            fe_be_tcp: TcpOptions {
                rwnd: 16 * 1024,
                ..TcpOptions::default()
            },
            be_tcp: TcpOptions::default(),
            cache_static: true,
            split_tcp: true,
            fe_caches_results: false,
            fe_result_cache: CacheConfig::unbounded(),
            fe_static_cache: CacheConfig::unbounded(),
            access_override: None,
            fe_workers: 8,
            faults: FaultPlan::new(),
            client_retry: None,
            fe_fetch_deadline: None,
            dns_ttl: SimDuration::from_secs(60),
            load_model: None,
            overload: OverloadPolicy::default(),
        }
    }

    /// The Google-like deployment: sparse dedicated POPs, private WAN,
    /// fast stable back-end.
    pub fn google_like(seed: u64) -> ServiceConfig {
        ServiceConfig {
            name: "google-like".into(),
            seed,
            fe_fleet: sparse_pop(seed, 14),
            be_sites: GOOGLE_BE_SITES.to_vec(),
            backend: BackendProfile::google_like(),
            composer: PageComposer::google_like(),
            fe_load: FeLoadProfile::dedicated(),
            febe_profile: PathProfile::private_wan(),
            client_tcp: TcpOptions::default(),
            fe_client_tcp: TcpOptions::default(),
            fe_be_tcp: TcpOptions {
                rwnd: 8 * 1024,
                ..TcpOptions::default()
            },
            be_tcp: TcpOptions::default(),
            cache_static: true,
            split_tcp: true,
            fe_caches_results: false,
            fe_result_cache: CacheConfig::unbounded(),
            fe_static_cache: CacheConfig::unbounded(),
            access_override: None,
            fe_workers: 8,
            faults: FaultPlan::new(),
            client_retry: None,
            fe_fetch_deadline: None,
            dns_ttl: SimDuration::from_secs(60),
            load_model: None,
            overload: OverloadPolicy::default(),
        }
    }

    /// Ablation: disable the FE static cache (static bytes must round-trip
    /// to the BE).
    pub fn without_static_cache(mut self) -> ServiceConfig {
        self.cache_static = false;
        self.name = format!("{}+nocache", self.name);
        self
    }

    /// Ablation: disable split TCP (clients connect end-to-end to the
    /// BE, as in the no-proxy baseline of Pathak et al., PAM'10).
    pub fn without_split_tcp(mut self) -> ServiceConfig {
        self.split_tcp = false;
        self.name = format!("{}+nosplit", self.name);
        self
    }

    /// Hypothetical: make FEs cache search results (to validate the
    /// Sec. 3 caching detector, which must flag this configuration).
    pub fn with_fe_result_cache(mut self) -> ServiceConfig {
        self.fe_caches_results = true;
        self.name = format!("{}+fecache", self.name);
        self
    }

    /// Enables FE result caching under the given provisioning (policy +
    /// capacity) — the popularity experiments' sweep knob.
    pub fn with_result_cache(mut self, cache: CacheConfig) -> ServiceConfig {
        self.fe_result_cache = cache;
        if !self.fe_caches_results {
            self.fe_caches_results = true;
            self.name = format!("{}+fecache", self.name);
        }
        self
    }

    /// Bounds the FE static-content cache (unbounded and always-hitting
    /// by default).
    pub fn with_static_cache(mut self, cache: CacheConfig) -> ServiceConfig {
        self.fe_static_cache = cache;
        self
    }

    /// Overrides the FE client-facing initial window (IW sweep ablation).
    pub fn with_fe_initial_window(mut self, segs: u32) -> ServiceConfig {
        self.fe_client_tcp = self.fe_client_tcp.with_initial_window(segs);
        self
    }

    /// Forces every client onto the given access profile (loss sweeps).
    pub fn with_access_override(mut self, profile: PathProfile) -> ServiceConfig {
        self.access_override = Some(profile);
        self
    }

    /// Sets the per-FE parallel request slots (the load experiment's
    /// capacity knob).
    pub fn with_fe_workers(mut self, workers: usize) -> ServiceConfig {
        assert!(workers > 0);
        self.fe_workers = workers;
        self
    }

    /// Installs a scripted fault schedule.
    pub fn with_faults(mut self, plan: FaultPlan) -> ServiceConfig {
        self.faults = plan;
        self.name = format!("{}+faults", self.name);
        self
    }

    /// Enables the client deadline/retry policy.
    pub fn with_client_retry(mut self, policy: RetryPolicy) -> ServiceConfig {
        self.client_retry = Some(policy);
        self
    }

    /// Enables FE-side fetch deadlines (BE failover + degradation).
    pub fn with_fe_fetch_deadline(mut self, deadline: SimDuration) -> ServiceConfig {
        self.fe_fetch_deadline = Some(deadline);
        self
    }

    /// Overrides the DNS answer TTL.
    pub fn with_dns_ttl(mut self, ttl: SimDuration) -> ServiceConfig {
        self.dns_ttl = ttl;
        self
    }

    /// Enables the concurrency-dependent service-time model.
    pub fn with_load_model(mut self, model: LoadModel) -> ServiceConfig {
        self.load_model = Some(model);
        self
    }

    /// Enables FE admission control with the given in-flight watermark.
    pub fn with_admission_control(mut self, watermark: u32) -> ServiceConfig {
        assert!(watermark > 0, "a zero watermark would shed everything");
        self.overload.admission = Some(AdmissionControl { watermark });
        self
    }

    /// Enables per-client retry budgets.
    pub fn with_retry_budget(mut self, budget: RetryBudget) -> ServiceConfig {
        assert!(budget.max_tokens >= 0.0 && budget.refill_per_sec >= 0.0);
        self.overload.retry_budget = Some(budget);
        self
    }

    /// Enables hedged FE→BE fetches after the given delay.
    pub fn with_hedged_fetches(mut self, after: SimDuration) -> ServiceConfig {
        self.overload.hedge = Some(HedgePolicy { after });
        self
    }

    /// Enables the per-FE circuit breaker on BE fetch failures.
    pub fn with_circuit_breaker(mut self, policy: BreakerPolicy) -> ServiceConfig {
        assert!(policy.failure_threshold > 0);
        self.overload.breaker = Some(policy);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_the_documented_ways() {
        let b = ServiceConfig::bing_like(1);
        let g = ServiceConfig::google_like(1);
        assert!(b.fe_fleet.len() > 3 * g.fe_fleet.len());
        assert!(b.fe_fleet[0].shared_tenancy);
        assert!(!g.fe_fleet[0].shared_tenancy);
        assert!(b.backend.nominal_ms() > 3.0 * g.backend.nominal_ms());
        assert_eq!(b.febe_profile.name, "public-transit");
        assert_eq!(g.febe_profile.name, "private-wan");
        assert!(b.cache_static && g.cache_static);
        assert!(b.split_tcp && g.split_tcp);
        assert!(!b.fe_caches_results && !g.fe_caches_results);
    }

    #[test]
    fn ablation_builders() {
        let c = ServiceConfig::bing_like(1).without_static_cache();
        assert!(!c.cache_static);
        assert!(c.name.contains("nocache"));
        let c2 = ServiceConfig::google_like(1).without_split_tcp();
        assert!(!c2.split_tcp);
        let c3 = ServiceConfig::bing_like(1).with_fe_result_cache();
        assert!(c3.fe_caches_results);
        assert!(c3.fe_result_cache.is_unbounded());
        let c5 = ServiceConfig::bing_like(1).with_result_cache(CacheConfig::lru(1 << 20));
        assert!(c5.fe_caches_results);
        assert!(!c5.fe_result_cache.is_unbounded());
        assert!(c5.name.ends_with("+fecache"));
        // Enabling twice does not double the name suffix.
        let c6 = c5.with_result_cache(CacheConfig::lfu(1 << 20));
        assert!(c6.name.ends_with("+fecache") && !c6.name.contains("+fecache+fecache"));
        let c7 = ServiceConfig::bing_like(1).with_static_cache(CacheConfig::lru(64 << 10));
        assert!(!c7.fe_caches_results);
        assert!(!c7.fe_static_cache.is_unbounded());
        let c4 = ServiceConfig::bing_like(1).with_fe_initial_window(10);
        assert_eq!(c4.fe_client_tcp.initial_window_segs, 10);
    }

    #[test]
    fn fault_and_retry_knobs_default_off() {
        use simcore::time::SimTime;
        let b = ServiceConfig::bing_like(1);
        assert!(b.faults.is_empty());
        assert!(b.client_retry.is_none());
        assert!(b.fe_fetch_deadline.is_none());
        assert!(b.load_model.is_none());
        assert!(b.overload.is_inert());
        let g = ServiceConfig::google_like(1);
        assert!(g.load_model.is_none());
        assert!(g.overload.is_inert());
        let c = b
            .with_faults(FaultPlan::new().be_outage(
                0,
                SimTime::from_secs(1),
                SimTime::from_secs(2),
            ))
            .with_client_retry(RetryPolicy::default())
            .with_fe_fetch_deadline(SimDuration::from_millis(800))
            .with_dns_ttl(SimDuration::from_secs(5));
        assert!(!c.faults.is_empty());
        assert!(c.name.contains("faults"));
        assert_eq!(c.client_retry.as_ref().unwrap().max_retries, 2);
        assert_eq!(c.fe_fetch_deadline, Some(SimDuration::from_millis(800)));
        assert_eq!(c.dns_ttl, SimDuration::from_secs(5));
    }

    #[test]
    fn load_model_slowdown_curve() {
        let m = LoadModel {
            fe_capacity: 4,
            be_capacity: 8,
            max_slowdown: 10.0,
        };
        // A lone request is never slowed.
        assert_eq!(m.slowdown(1, 4), 1.0);
        assert_eq!(m.slowdown(0, 4), 1.0);
        // M/M/1 knee: 1/(1 - q/cap) for q queued behind the newest.
        assert!((m.slowdown(2, 4) - 4.0 / 3.0).abs() < 1e-12);
        assert!((m.slowdown(3, 4) - 2.0).abs() < 1e-12);
        assert!((m.slowdown(4, 4) - 4.0).abs() < 1e-12);
        // At and past the knee the multiplier saturates at the ceiling.
        assert_eq!(m.slowdown(5, 4), 10.0);
        assert_eq!(m.slowdown(100, 4), 10.0);
        // Monotone in the in-flight count.
        let mut prev = 0.0;
        for n in 0..32 {
            let s = m.slowdown(n, 8);
            assert!(s >= prev, "n={n}: {s} < {prev}");
            prev = s;
        }
        // Capacity dips scale the FE knee: the same in-flight count is
        // pricier with half the capacity.
        assert!(m.fe_slowdown(3, 0.5) > m.fe_slowdown(3, 1.0));
        assert_eq!(m.be_slowdown(1), 1.0);
    }

    #[test]
    fn overload_builders_set_policies() {
        let c = ServiceConfig::google_like(1)
            .with_load_model(LoadModel::default())
            .with_admission_control(32)
            .with_retry_budget(RetryBudget::default())
            .with_hedged_fetches(SimDuration::from_millis(250))
            .with_circuit_breaker(BreakerPolicy::default());
        assert_eq!(c.load_model.unwrap().fe_capacity, 16);
        assert_eq!(c.overload.admission.unwrap().watermark, 32);
        assert_eq!(c.overload.retry_budget.unwrap().max_tokens, 3.0);
        assert_eq!(
            c.overload.hedge.unwrap().after,
            SimDuration::from_millis(250)
        );
        assert_eq!(c.overload.breaker.unwrap().failure_threshold, 5);
        assert!(!c.overload.is_inert());
    }

    #[test]
    fn be_window_knob_differs() {
        let b = ServiceConfig::bing_like(1);
        let g = ServiceConfig::google_like(1);
        assert_eq!(b.fe_be_tcp.rwnd, 16 * 1024);
        assert_eq!(g.fe_be_tcp.rwnd, 8 * 1024);
    }
}
