//! Whole-service configuration: everything that distinguishes the two
//! measured deployments, plus the ablation switches.

use nettopo::faults::FaultPlan;
use nettopo::path::PathProfile;
use nettopo::placement::{dense_edge, sparse_pop, FeSite};
use nettopo::sites::{BeSite, BING_BE_SITES, GOOGLE_BE_SITES};
use searchbe::proctime::BackendProfile;
use searchbe::response::PageComposer;
use simcore::dist::Dist;
use simcore::time::SimDuration;
use tcpsim::TcpOptions;

/// Client-side robustness policy: per-query deadline plus bounded
/// retries with exponential backoff and jitter.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Per-attempt deadline: if the response is not complete by then the
    /// attempt is abandoned.
    pub deadline: SimDuration,
    /// Maximum number of retries after the first attempt (0 = give up
    /// immediately on the first deadline).
    pub max_retries: u32,
    /// Base backoff before the first retry; attempt `n` waits
    /// `base_backoff · 2^(n-1) · (1 + jitter·u)` with `u` uniform in
    /// [0, 1) from the dedicated retry RNG stream.
    pub base_backoff: SimDuration,
    /// Multiplicative jitter fraction (0 disables jitter).
    pub jitter: f64,
}

impl Default for RetryPolicy {
    /// A browser-like policy: 10 s deadline, two retries, half-second
    /// base backoff with 30% jitter.
    fn default() -> RetryPolicy {
        RetryPolicy {
            deadline: SimDuration::from_secs(10),
            max_retries: 2,
            base_backoff: SimDuration::from_millis(500),
            jitter: 0.3,
        }
    }
}

/// Front-end load/service-time profile.
#[derive(Clone, Debug)]
pub struct FeLoadProfile {
    /// Base per-request service time (ms).
    pub service_ms: Dist,
    /// Peak multiplicative slowdown − 1 (tenancy-dependent).
    pub load_amplitude: f64,
    /// Load-process volatility per request.
    pub load_volatility: f64,
}

impl FeLoadProfile {
    /// Dedicated single-tenant FE (Google-like): fast and stable.
    pub fn dedicated() -> FeLoadProfile {
        FeLoadProfile {
            service_ms: Dist::lognormal_median_spread(4.0, 1.25),
            load_amplitude: 0.25,
            load_volatility: 0.05,
        }
    }

    /// Shared multi-tenant FE (Akamai-like): slower, heavy-tailed,
    /// bursty.
    pub fn shared() -> FeLoadProfile {
        FeLoadProfile {
            service_ms: Dist::Mix {
                p: 0.85,
                a: Box::new(Dist::lognormal_median_spread(12.0, 1.5)),
                b: Box::new(Dist::lognormal_median_spread(45.0, 1.6)),
            },
            load_amplitude: 1.2,
            load_volatility: 0.08,
        }
    }
}

/// Full configuration of one dynamic-content service.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Service label ("bing-like", "google-like", or a scenario name).
    pub name: String,
    /// Experiment seed (drives every stochastic component).
    pub seed: u64,
    /// Front-end fleet.
    pub fe_fleet: Vec<FeSite>,
    /// Back-end data-center sites.
    pub be_sites: Vec<BeSite>,
    /// Back-end processing profile.
    pub backend: BackendProfile,
    /// Page composition (static/dynamic sizes and identities).
    pub composer: PageComposer,
    /// FE load profile.
    pub fe_load: FeLoadProfile,
    /// FE↔BE path class.
    pub febe_profile: PathProfile,
    /// TCP options for client endpoints.
    pub client_tcp: TcpOptions,
    /// TCP options for the FE's client-facing endpoints.
    pub fe_client_tcp: TcpOptions,
    /// TCP options for the FE side of persistent BE connections. The
    /// receive window here is the paper's constant `C` knob: it bounds
    /// how many RTTbe rounds the BE response needs ("C ... depends on the
    /// TCP window size on the BE data center", Sec. 2).
    pub fe_be_tcp: TcpOptions,
    /// TCP options for the BE endpoints.
    pub be_tcp: TcpOptions,
    /// FE caches and immediately serves the static portion (true for
    /// both real services; the `abl_cache` ablation turns it off).
    pub cache_static: bool,
    /// Split TCP at the FE (true for both real services; the `abl_split`
    /// ablation sends clients straight to the BE).
    pub split_tcp: bool,
    /// Hypothetical FE result caching (false for both real services —
    /// the Sec. 3 experiments exist to demonstrate exactly that).
    pub fe_caches_results: bool,
    /// When set, every client's access path uses this profile instead of
    /// its `AccessKind`-derived one — the Sec. 6 loss-sweep knob.
    pub access_override: Option<PathProfile>,
    /// Parallel request slots per FE (the FIFO queue's service
    /// capacity).
    pub fe_workers: usize,
    /// Scripted fault schedule. Empty by default: with no windows the
    /// recovery machinery is inert and trajectories are byte-identical
    /// to a fault-free build.
    pub faults: FaultPlan,
    /// Client-side deadline/retry policy; `None` (the default) arms no
    /// deadline timers at all.
    pub client_retry: Option<RetryPolicy>,
    /// FE-side BE-fetch deadline: past it the FE fails over to the next
    /// live BE site, or degrades the response (cached static portion +
    /// error stub) when none is reachable. `None` disables failover.
    pub fe_fetch_deadline: Option<SimDuration>,
    /// DNS answer TTL: how long clients keep using a resolved FE before
    /// re-resolving (only consulted when the fault plan contains FE
    /// outages — failover away from a dead FE is not instantaneous).
    pub dns_ttl: SimDuration,
}

impl ServiceConfig {
    /// The Bing-like deployment: dense shared Akamai edge, public-transit
    /// FE↔BE paths, slow and variable back-end.
    pub fn bing_like(seed: u64) -> ServiceConfig {
        ServiceConfig {
            name: "bing-like".into(),
            seed,
            fe_fleet: dense_edge(seed),
            be_sites: BING_BE_SITES.to_vec(),
            backend: BackendProfile::bing_like(),
            composer: PageComposer::bing_like(),
            fe_load: FeLoadProfile::shared(),
            febe_profile: PathProfile::public_transit(),
            client_tcp: TcpOptions::default(),
            fe_client_tcp: TcpOptions::default(),
            fe_be_tcp: TcpOptions {
                rwnd: 16 * 1024,
                ..TcpOptions::default()
            },
            be_tcp: TcpOptions::default(),
            cache_static: true,
            split_tcp: true,
            fe_caches_results: false,
            access_override: None,
            fe_workers: 8,
            faults: FaultPlan::new(),
            client_retry: None,
            fe_fetch_deadline: None,
            dns_ttl: SimDuration::from_secs(60),
        }
    }

    /// The Google-like deployment: sparse dedicated POPs, private WAN,
    /// fast stable back-end.
    pub fn google_like(seed: u64) -> ServiceConfig {
        ServiceConfig {
            name: "google-like".into(),
            seed,
            fe_fleet: sparse_pop(seed, 14),
            be_sites: GOOGLE_BE_SITES.to_vec(),
            backend: BackendProfile::google_like(),
            composer: PageComposer::google_like(),
            fe_load: FeLoadProfile::dedicated(),
            febe_profile: PathProfile::private_wan(),
            client_tcp: TcpOptions::default(),
            fe_client_tcp: TcpOptions::default(),
            fe_be_tcp: TcpOptions {
                rwnd: 8 * 1024,
                ..TcpOptions::default()
            },
            be_tcp: TcpOptions::default(),
            cache_static: true,
            split_tcp: true,
            fe_caches_results: false,
            access_override: None,
            fe_workers: 8,
            faults: FaultPlan::new(),
            client_retry: None,
            fe_fetch_deadline: None,
            dns_ttl: SimDuration::from_secs(60),
        }
    }

    /// Ablation: disable the FE static cache (static bytes must round-trip
    /// to the BE).
    pub fn without_static_cache(mut self) -> ServiceConfig {
        self.cache_static = false;
        self.name = format!("{}+nocache", self.name);
        self
    }

    /// Ablation: disable split TCP (clients connect end-to-end to the
    /// BE, as in the no-proxy baseline of Pathak et al., PAM'10).
    pub fn without_split_tcp(mut self) -> ServiceConfig {
        self.split_tcp = false;
        self.name = format!("{}+nosplit", self.name);
        self
    }

    /// Hypothetical: make FEs cache search results (to validate the
    /// Sec. 3 caching detector, which must flag this configuration).
    pub fn with_fe_result_cache(mut self) -> ServiceConfig {
        self.fe_caches_results = true;
        self.name = format!("{}+fecache", self.name);
        self
    }

    /// Overrides the FE client-facing initial window (IW sweep ablation).
    pub fn with_fe_initial_window(mut self, segs: u32) -> ServiceConfig {
        self.fe_client_tcp = self.fe_client_tcp.with_initial_window(segs);
        self
    }

    /// Forces every client onto the given access profile (loss sweeps).
    pub fn with_access_override(mut self, profile: PathProfile) -> ServiceConfig {
        self.access_override = Some(profile);
        self
    }

    /// Sets the per-FE parallel request slots (the load experiment's
    /// capacity knob).
    pub fn with_fe_workers(mut self, workers: usize) -> ServiceConfig {
        assert!(workers > 0);
        self.fe_workers = workers;
        self
    }

    /// Installs a scripted fault schedule.
    pub fn with_faults(mut self, plan: FaultPlan) -> ServiceConfig {
        self.faults = plan;
        self.name = format!("{}+faults", self.name);
        self
    }

    /// Enables the client deadline/retry policy.
    pub fn with_client_retry(mut self, policy: RetryPolicy) -> ServiceConfig {
        self.client_retry = Some(policy);
        self
    }

    /// Enables FE-side fetch deadlines (BE failover + degradation).
    pub fn with_fe_fetch_deadline(mut self, deadline: SimDuration) -> ServiceConfig {
        self.fe_fetch_deadline = Some(deadline);
        self
    }

    /// Overrides the DNS answer TTL.
    pub fn with_dns_ttl(mut self, ttl: SimDuration) -> ServiceConfig {
        self.dns_ttl = ttl;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_the_documented_ways() {
        let b = ServiceConfig::bing_like(1);
        let g = ServiceConfig::google_like(1);
        assert!(b.fe_fleet.len() > 3 * g.fe_fleet.len());
        assert!(b.fe_fleet[0].shared_tenancy);
        assert!(!g.fe_fleet[0].shared_tenancy);
        assert!(b.backend.nominal_ms() > 3.0 * g.backend.nominal_ms());
        assert_eq!(b.febe_profile.name, "public-transit");
        assert_eq!(g.febe_profile.name, "private-wan");
        assert!(b.cache_static && g.cache_static);
        assert!(b.split_tcp && g.split_tcp);
        assert!(!b.fe_caches_results && !g.fe_caches_results);
    }

    #[test]
    fn ablation_builders() {
        let c = ServiceConfig::bing_like(1).without_static_cache();
        assert!(!c.cache_static);
        assert!(c.name.contains("nocache"));
        let c2 = ServiceConfig::google_like(1).without_split_tcp();
        assert!(!c2.split_tcp);
        let c3 = ServiceConfig::bing_like(1).with_fe_result_cache();
        assert!(c3.fe_caches_results);
        let c4 = ServiceConfig::bing_like(1).with_fe_initial_window(10);
        assert_eq!(c4.fe_client_tcp.initial_window_segs, 10);
    }

    #[test]
    fn fault_and_retry_knobs_default_off() {
        use simcore::time::SimTime;
        let b = ServiceConfig::bing_like(1);
        assert!(b.faults.is_empty());
        assert!(b.client_retry.is_none());
        assert!(b.fe_fetch_deadline.is_none());
        let c = b
            .with_faults(FaultPlan::new().be_outage(
                0,
                SimTime::from_secs(1),
                SimTime::from_secs(2),
            ))
            .with_client_retry(RetryPolicy::default())
            .with_fe_fetch_deadline(SimDuration::from_millis(800))
            .with_dns_ttl(SimDuration::from_secs(5));
        assert!(!c.faults.is_empty());
        assert!(c.name.contains("faults"));
        assert_eq!(c.client_retry.as_ref().unwrap().max_retries, 2);
        assert_eq!(c.fe_fetch_deadline, Some(SimDuration::from_millis(800)));
        assert_eq!(c.dns_ttl, SimDuration::from_secs(5));
    }

    #[test]
    fn be_window_knob_differs() {
        let b = ServiceConfig::bing_like(1);
        let g = ServiceConfig::google_like(1);
        assert_eq!(b.fe_be_tcp.rwnd, 16 * 1024);
        assert_eq!(g.fe_be_tcp.rwnd, 8 * 1024);
    }
}
