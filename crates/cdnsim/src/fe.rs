//! The front-end server model.
//!
//! Sec. 4.2 of the paper speculates: "a plausible reason that Bing has
//! higher and more variable `Tstatic` values may be due to the higher and
//! more variable loads at the Akamai FE servers, as they are shared with
//! a number of other services; while ... Google FE servers ... are likely
//! dedicated to distribution of search results." The FE model makes that
//! mechanism concrete: each request pays a sampled service time scaled by
//! a persistent load process whose amplitude depends on tenancy.

use crate::cache::{Cache, CacheConfig, InsertOutcome, ObjectCache};
use nettopo::placement::FeSite;
use searchbe::proctime::LoadProcess;
use simcore::dist::{Dist, Sampler};
use simcore::rng::Rng;
use simcore::time::{SimDuration, SimTime};

/// Cache provisioning for one FE server: the static-content cache plus
/// the hypothetical per-keyword result cache. The default is the
/// realistic configuration — results caching disabled, both caches
/// unbounded — which is behaviourally identical to the pre-cache-model
/// FE (an always-hitting static cache and no result cache).
#[derive(Clone, Debug, Default)]
pub struct FeCaches {
    /// Whether the FE caches whole query results (disabled in the real
    /// services; enabled only to validate the caching detector).
    pub results_enabled: bool,
    /// Provisioning of the result cache.
    pub result_cache: CacheConfig,
    /// Provisioning of the static-content cache.
    pub static_cache: CacheConfig,
}

impl FeCaches {
    /// Result caching enabled over an unbounded store — the PR 2
    /// `fe_caches_results` behaviour.
    pub fn results_unbounded() -> FeCaches {
        FeCaches {
            results_enabled: true,
            ..FeCaches::default()
        }
    }
}

/// A front-end server instance.
///
/// Request handling is a FIFO queue over `workers` parallel request
/// slots: a request's overhead is its queueing delay (if all slots are
/// busy) plus its own sampled service time. Under light offered load the
/// queue is empty and the overhead reduces to the service-time sample;
/// under bursts, waiting time appears mechanistically — the "load on FE
/// servers" factor of the paper's Sec. 2 list.
#[derive(Debug)]
pub struct FeServer {
    /// Placement record (location, tenancy).
    pub site: FeSite,
    service_ms: Dist,
    load: LoadProcess,
    rng: Rng,
    requests_served: u64,
    /// Per-slot busy-until times (FIFO to the earliest-free slot).
    slots: Vec<SimTime>,
    /// Whether results caching is on (the realistic answer is no).
    caches_results: bool,
    /// Hypothetical per-keyword result cache, now bounded and policy-
    /// driven (disabled in the real services; enabled only to validate
    /// the caching detector and for the popularity experiments).
    result_cache: ObjectCache<httpsim::ResponsePlan>,
    /// Static-content cache, keyed by content id. Unbounded and
    /// prewarmed in the realistic configuration (the paper's FEs always
    /// serve static parts from cache); bounding it models edge churn.
    static_cache: ObjectCache<u64>,
}

impl FeServer {
    /// Builds an FE server. `service_ms` is the per-request service-time
    /// distribution; `load_amplitude`/`load_volatility` parameterise the
    /// tenancy-dependent load process.
    pub fn new(
        seed: u64,
        site: FeSite,
        service_ms: Dist,
        load_amplitude: f64,
        load_volatility: f64,
        caches: FeCaches,
    ) -> FeServer {
        let rng = Rng::from_seed_and_name(seed, &format!("cdnsim/fe/{}", site.id));
        FeServer {
            site,
            service_ms,
            load: LoadProcess::new(load_amplitude, load_volatility),
            rng,
            requests_served: 0,
            slots: vec![SimTime::ZERO; 8],
            caches_results: caches.results_enabled,
            result_cache: ObjectCache::new(caches.result_cache),
            static_cache: ObjectCache::new(caches.static_cache),
        }
    }

    /// Number of parallel request slots (default 8).
    pub fn set_workers(&mut self, workers: usize) {
        assert!(workers > 0);
        self.slots = vec![SimTime::ZERO; workers];
    }

    /// Samples the request-handling overhead for one incoming query: the
    /// time between the GET fully arriving and the FE emitting the cached
    /// static burst and the BE-bound query. `now` is the arrival time;
    /// the overhead includes any FIFO queueing delay behind requests
    /// already in service.
    pub fn request_overhead_at(&mut self, now: SimTime) -> SimDuration {
        let service = self.sample_service();
        // Earliest-free slot.
        let slot = self
            .slots
            .iter_mut()
            .min_by_key(|t| **t)
            .expect("at least one worker slot");
        let start = if *slot > now { *slot } else { now };
        let done = start + service;
        *slot = done;
        done.since(now)
    }

    /// The pure service-time sample, ignoring the queue (light-load
    /// behaviour; also used directly by unit tests).
    pub fn request_overhead(&mut self) -> SimDuration {
        self.sample_service()
    }

    fn sample_service(&mut self) -> SimDuration {
        self.requests_served += 1;
        let load = self.load.step(&mut self.rng);
        let ms = self.service_ms.sample(&mut self.rng).max(0.05) * load;
        SimDuration::from_millis_f64(ms)
    }

    /// Whether this FE caches whole query results.
    pub fn caches_results(&self) -> bool {
        self.caches_results
    }

    /// Looks up a hypothetically cached result for `keyword` at `now`,
    /// counting a hit or miss against the result cache. Always `None`
    /// in the realistic (caching-disabled) configuration, without
    /// touching statistics.
    pub fn lookup_result(&mut self, keyword: u64, now: SimTime) -> Option<httpsim::ResponsePlan> {
        if !self.caches_results {
            return None;
        }
        self.result_cache.get(keyword, now).cloned()
    }

    /// Stores a result in the hypothetical cache, evicting per policy
    /// (no-op when caching is disabled). The object's size is the plan's
    /// total response bytes.
    pub fn store_result(
        &mut self,
        keyword: u64,
        plan: httpsim::ResponsePlan,
        now: SimTime,
    ) -> InsertOutcome {
        if !self.caches_results {
            return InsertOutcome::default();
        }
        let size = plan.total_bytes();
        self.result_cache.insert(keyword, plan, size, now)
    }

    /// Prewarms the static cache with `content` (`bytes` long) at
    /// virtual time zero, as the build step does for the realistic
    /// always-cached configuration.
    pub fn seed_static(&mut self, content: u64, bytes: u64) {
        self.static_cache
            .insert(content, content, bytes, SimTime::ZERO);
    }

    /// Checks whether `content` is resident in the static cache at
    /// `now`, counting a hit or miss.
    pub fn static_cached(&mut self, content: u64, now: SimTime) -> bool {
        self.static_cache.get(content, now).is_some()
    }

    /// Refills the static cache after a miss-path fetch completed.
    pub fn fill_static(&mut self, content: u64, bytes: u64, now: SimTime) -> InsertOutcome {
        self.static_cache.insert(content, content, bytes, now)
    }

    /// The result cache (for telemetry).
    pub fn result_cache(&self) -> &ObjectCache<httpsim::ResponsePlan> {
        &self.result_cache
    }

    /// The static cache (for telemetry).
    pub fn static_cache(&self) -> &ObjectCache<u64> {
        &self.static_cache
    }

    /// Requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Current load factor.
    pub fn current_load(&self) -> f64 {
        self.load.current()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettopo::geo::GeoPoint;

    fn site(shared: bool) -> FeSite {
        FeSite {
            id: 0,
            name: "fe-test".into(),
            pt: GeoPoint::new(40.0, -75.0),
            shared_tenancy: shared,
            campus_colocated: false,
        }
    }

    fn dedicated() -> FeServer {
        FeServer::new(
            1,
            site(false),
            Dist::lognormal_median_spread(4.0, 1.25),
            0.2,
            0.05,
            FeCaches::default(),
        )
    }

    fn shared() -> FeServer {
        FeServer::new(
            1,
            site(true),
            Dist::lognormal_median_spread(14.0, 1.7),
            1.2,
            0.08,
            FeCaches::default(),
        )
    }

    #[test]
    fn shared_tenancy_is_slower_and_more_variable() {
        let mut d = dedicated();
        let mut s = shared();
        let sample = |fe: &mut FeServer| -> Vec<f64> {
            (0..5000)
                .map(|_| fe.request_overhead().as_millis_f64())
                .collect()
        };
        let ds = sample(&mut d);
        let ss = sample(&mut s);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let std = |v: &[f64]| {
            let m = mean(v);
            (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
        };
        assert!(mean(&ss) > 2.0 * mean(&ds));
        assert!(std(&ss) > 3.0 * std(&ds));
    }

    #[test]
    fn overheads_are_positive_and_counted() {
        let mut fe = dedicated();
        for _ in 0..100 {
            assert!(fe.request_overhead() > SimDuration::ZERO);
        }
        assert_eq!(fe.requests_served(), 100);
        assert!(fe.current_load() >= 1.0);
    }

    #[test]
    fn result_cache_disabled_by_default() {
        let mut fe = dedicated();
        assert!(!fe.caches_results());
        let out = fe.store_result(
            7,
            httpsim::ResponsePlan::new(9000, 1, 20000, 1000),
            SimTime::ZERO,
        );
        assert!(!out.inserted);
        assert!(fe.lookup_result(7, SimTime::ZERO).is_none());
        // Disabled caching never touches the statistics.
        assert_eq!(fe.result_cache().stats().lookups, 0);
    }

    #[test]
    fn result_cache_when_enabled() {
        let mut fe = FeServer::new(
            1,
            site(true),
            Dist::Constant(5.0),
            0.0,
            0.0,
            FeCaches::results_unbounded(),
        );
        assert!(fe.lookup_result(7, SimTime::ZERO).is_none());
        let plan = httpsim::ResponsePlan::new(9000, 1, 20000, 1000);
        let t = SimTime::from_millis(5);
        assert!(fe.store_result(7, plan.clone(), t).inserted);
        assert_eq!(fe.lookup_result(7, t), Some(plan));
        let s = fe.result_cache().stats();
        assert_eq!((s.lookups, s.hits, s.misses), (2, 1, 1));
    }

    #[test]
    fn bounded_result_cache_evicts_per_policy() {
        use crate::cache::CacheConfig;
        let caches = FeCaches {
            results_enabled: true,
            // Room for two 29 kB plans; the third insert evicts the LRU.
            result_cache: CacheConfig::lru(60_000).with_max_entries(2),
            static_cache: CacheConfig::default(),
        };
        let mut fe = FeServer::new(1, site(true), Dist::Constant(5.0), 0.0, 0.0, caches);
        let plan = httpsim::ResponsePlan::new(9000, 1, 20000, 1000);
        for k in 0..3u64 {
            fe.store_result(k, plan.clone(), SimTime::from_millis(k));
        }
        assert!(fe.lookup_result(0, SimTime::from_millis(10)).is_none());
        assert!(fe.lookup_result(2, SimTime::from_millis(10)).is_some());
        assert_eq!(fe.result_cache().stats().evictions, 1);
    }

    #[test]
    fn static_cache_hits_after_seeding() {
        let mut fe = dedicated();
        let t = SimTime::from_millis(3);
        assert!(!fe.static_cached(9000, t));
        fe.seed_static(9000, 20_000);
        assert!(fe.static_cached(9000, t));
        let s = fe.static_cache().stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = dedicated();
        let mut b = dedicated();
        for _ in 0..50 {
            assert_eq!(a.request_overhead(), b.request_overhead());
        }
    }

    #[test]
    fn queue_adds_waiting_time_under_bursts() {
        use simcore::time::SimTime;
        let mut fe = FeServer::new(
            1,
            site(false),
            Dist::Constant(10.0), // 10 ms deterministic service
            0.0,
            0.0,
            FeCaches::default(),
        );
        fe.set_workers(2);
        let t = SimTime::from_millis(100);
        // Four simultaneous arrivals on two workers: the first two are
        // served immediately (10 ms), the next two queue behind them
        // (20 ms).
        let o: Vec<f64> = (0..4)
            .map(|_| fe.request_overhead_at(t).as_millis_f64())
            .collect();
        assert_eq!(o, vec![10.0, 10.0, 20.0, 20.0]);
        // Much later, the queue has drained.
        let later = fe.request_overhead_at(SimTime::from_secs(10));
        assert_eq!(later.as_millis_f64(), 10.0);
    }

    #[test]
    fn spaced_arrivals_do_not_queue() {
        use simcore::time::SimTime;
        let mut fe = FeServer::new(
            1,
            site(false),
            Dist::Constant(5.0),
            0.0,
            0.0,
            FeCaches::default(),
        );
        for i in 0..20u64 {
            let t = SimTime::from_millis(i * 100);
            assert_eq!(fe.request_overhead_at(t).as_millis_f64(), 5.0);
        }
    }
}
