//! The front-end server model.
//!
//! Sec. 4.2 of the paper speculates: "a plausible reason that Bing has
//! higher and more variable `Tstatic` values may be due to the higher and
//! more variable loads at the Akamai FE servers, as they are shared with
//! a number of other services; while ... Google FE servers ... are likely
//! dedicated to distribution of search results." The FE model makes that
//! mechanism concrete: each request pays a sampled service time scaled by
//! a persistent load process whose amplitude depends on tenancy.

use nettopo::placement::FeSite;
use searchbe::proctime::LoadProcess;
use simcore::dist::{Dist, Sampler};
use simcore::rng::Rng;
use simcore::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// A front-end server instance.
///
/// Request handling is a FIFO queue over `workers` parallel request
/// slots: a request's overhead is its queueing delay (if all slots are
/// busy) plus its own sampled service time. Under light offered load the
/// queue is empty and the overhead reduces to the service-time sample;
/// under bursts, waiting time appears mechanistically — the "load on FE
/// servers" factor of the paper's Sec. 2 list.
#[derive(Debug)]
pub struct FeServer {
    /// Placement record (location, tenancy).
    pub site: FeSite,
    service_ms: Dist,
    load: LoadProcess,
    rng: Rng,
    requests_served: u64,
    /// Per-slot busy-until times (FIFO to the earliest-free slot).
    slots: Vec<SimTime>,
    /// Hypothetical per-keyword result cache (disabled in the real
    /// services; enabled only to validate the caching detector).
    result_cache: Option<HashMap<u64, httpsim::ResponsePlan>>,
}

impl FeServer {
    /// Builds an FE server. `service_ms` is the per-request service-time
    /// distribution; `load_amplitude`/`load_volatility` parameterise the
    /// tenancy-dependent load process.
    pub fn new(
        seed: u64,
        site: FeSite,
        service_ms: Dist,
        load_amplitude: f64,
        load_volatility: f64,
        caches_results: bool,
    ) -> FeServer {
        let rng = Rng::from_seed_and_name(seed, &format!("cdnsim/fe/{}", site.id));
        FeServer {
            site,
            service_ms,
            load: LoadProcess::new(load_amplitude, load_volatility),
            rng,
            requests_served: 0,
            slots: vec![SimTime::ZERO; 8],
            result_cache: if caches_results {
                Some(HashMap::new())
            } else {
                None
            },
        }
    }

    /// Number of parallel request slots (default 8).
    pub fn set_workers(&mut self, workers: usize) {
        assert!(workers > 0);
        self.slots = vec![SimTime::ZERO; workers];
    }

    /// Samples the request-handling overhead for one incoming query: the
    /// time between the GET fully arriving and the FE emitting the cached
    /// static burst and the BE-bound query. `now` is the arrival time;
    /// the overhead includes any FIFO queueing delay behind requests
    /// already in service.
    pub fn request_overhead_at(&mut self, now: SimTime) -> SimDuration {
        let service = self.sample_service();
        // Earliest-free slot.
        let slot = self
            .slots
            .iter_mut()
            .min_by_key(|t| **t)
            .expect("at least one worker slot");
        let start = if *slot > now { *slot } else { now };
        let done = start + service;
        *slot = done;
        done.since(now)
    }

    /// The pure service-time sample, ignoring the queue (light-load
    /// behaviour; also used directly by unit tests).
    pub fn request_overhead(&mut self) -> SimDuration {
        self.sample_service()
    }

    fn sample_service(&mut self) -> SimDuration {
        self.requests_served += 1;
        let load = self.load.step(&mut self.rng);
        let ms = self.service_ms.sample(&mut self.rng).max(0.05) * load;
        SimDuration::from_millis_f64(ms)
    }

    /// Looks up a hypothetically cached result for `keyword`. Always
    /// `None` in the realistic configuration.
    pub fn cached_result(&self, keyword: u64) -> Option<&httpsim::ResponsePlan> {
        self.result_cache.as_ref().and_then(|c| c.get(&keyword))
    }

    /// Stores a result in the hypothetical cache (no-op when caching is
    /// disabled).
    pub fn store_result(&mut self, keyword: u64, plan: httpsim::ResponsePlan) {
        if let Some(c) = self.result_cache.as_mut() {
            c.insert(keyword, plan);
        }
    }

    /// Requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Current load factor.
    pub fn current_load(&self) -> f64 {
        self.load.current()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettopo::geo::GeoPoint;

    fn site(shared: bool) -> FeSite {
        FeSite {
            id: 0,
            name: "fe-test".into(),
            pt: GeoPoint::new(40.0, -75.0),
            shared_tenancy: shared,
            campus_colocated: false,
        }
    }

    fn dedicated() -> FeServer {
        FeServer::new(
            1,
            site(false),
            Dist::lognormal_median_spread(4.0, 1.25),
            0.2,
            0.05,
            false,
        )
    }

    fn shared() -> FeServer {
        FeServer::new(
            1,
            site(true),
            Dist::lognormal_median_spread(14.0, 1.7),
            1.2,
            0.08,
            false,
        )
    }

    #[test]
    fn shared_tenancy_is_slower_and_more_variable() {
        let mut d = dedicated();
        let mut s = shared();
        let sample = |fe: &mut FeServer| -> Vec<f64> {
            (0..5000)
                .map(|_| fe.request_overhead().as_millis_f64())
                .collect()
        };
        let ds = sample(&mut d);
        let ss = sample(&mut s);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let std = |v: &[f64]| {
            let m = mean(v);
            (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
        };
        assert!(mean(&ss) > 2.0 * mean(&ds));
        assert!(std(&ss) > 3.0 * std(&ds));
    }

    #[test]
    fn overheads_are_positive_and_counted() {
        let mut fe = dedicated();
        for _ in 0..100 {
            assert!(fe.request_overhead() > SimDuration::ZERO);
        }
        assert_eq!(fe.requests_served(), 100);
        assert!(fe.current_load() >= 1.0);
    }

    #[test]
    fn result_cache_disabled_by_default() {
        let mut fe = dedicated();
        fe.store_result(7, httpsim::ResponsePlan::new(9000, 1, 20000, 1000));
        assert!(fe.cached_result(7).is_none());
    }

    #[test]
    fn result_cache_when_enabled() {
        let mut fe = FeServer::new(1, site(true), Dist::Constant(5.0), 0.0, 0.0, true);
        assert!(fe.cached_result(7).is_none());
        let plan = httpsim::ResponsePlan::new(9000, 1, 20000, 1000);
        fe.store_result(7, plan.clone());
        assert_eq!(fe.cached_result(7), Some(&plan));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = dedicated();
        let mut b = dedicated();
        for _ in 0..50 {
            assert_eq!(a.request_overhead(), b.request_overhead());
        }
    }

    #[test]
    fn queue_adds_waiting_time_under_bursts() {
        use simcore::time::SimTime;
        let mut fe = FeServer::new(
            1,
            site(false),
            Dist::Constant(10.0), // 10 ms deterministic service
            0.0,
            0.0,
            false,
        );
        fe.set_workers(2);
        let t = SimTime::from_millis(100);
        // Four simultaneous arrivals on two workers: the first two are
        // served immediately (10 ms), the next two queue behind them
        // (20 ms).
        let o: Vec<f64> = (0..4)
            .map(|_| fe.request_overhead_at(t).as_millis_f64())
            .collect();
        assert_eq!(o, vec![10.0, 10.0, 20.0, 20.0]);
        // Much later, the queue has drained.
        let later = fe.request_overhead_at(SimTime::from_secs(10));
        assert_eq!(later.as_millis_f64(), 10.0);
    }

    #[test]
    fn spaced_arrivals_do_not_queue() {
        use simcore::time::SimTime;
        let mut fe = FeServer::new(1, site(false), Dist::Constant(5.0), 0.0, 0.0, false);
        for i in 0..20u64 {
            let t = SimTime::from_millis(i * 100);
            assert_eq!(fe.request_overhead_at(t).as_millis_f64(), 5.0);
        }
    }
}
