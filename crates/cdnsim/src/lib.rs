//! # cdnsim — front-end servers, split TCP, and whole-service assembly
//!
//! This crate wires the substrates together into the two services the
//! paper measures:
//!
//! * [`cache`] — the first-class FE cache model: LRU/LFU/TTL eviction
//!   behind one trait with per-object sizes, byte-capacity accounting,
//!   and hit/miss/eviction statistics;
//! * [`fe`] — the front-end server model: per-request service time with a
//!   tenancy-dependent load process (Akamai FEs are shared with many
//!   customers; Google FEs are dedicated), the static-content cache, and
//!   an optional hypothetical result cache (used to validate the paper's
//!   "FEs do not cache search results" detector);
//! * [`dns`] — the client → default-FE mapping (nearest FE, as DNS-based
//!   redirection approximates);
//! * [`service`] — [`ServiceConfig`]: everything that distinguishes a
//!   Bing-like deployment (dense shared Akamai edge, public-transit
//!   FE↔BE paths, slow variable back-end) from a Google-like one (sparse
//!   dedicated POPs, private WAN, fast stable back-end), plus ablation
//!   switches (split TCP off, static cache off, FE result caching on);
//! * [`spec`] — [`WorldSpec`]: a self-contained descriptor (config +
//!   vantages + corpus + network seed) from which a ready-to-run world is
//!   constructed; the unit of sharding for parallel campaign execution;
//! * [`world`] — [`ServiceWorld`], the `tcpsim::App` implementation: it
//!   owns clients, FE servers, BE data centers, persistent FE↔BE
//!   connection pools, and executes the full query lifecycle
//!   (handshake → GET → FE static burst ∥ FE→BE fetch → dynamic burst →
//!   FIN), producing per-query records with ground truth attached.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod dns;
pub mod fe;
pub mod service;
pub mod spec;
pub mod world;

pub use cache::{Cache, CacheConfig, CachePolicy, CacheStats, InsertOutcome, ObjectCache};
pub use dns::{DnsMap, DnsPolicy, DnsResolver};
pub use fe::{FeCaches, FeServer};
pub use service::{
    AdmissionControl, BreakerPolicy, FeLoadProfile, HedgePolicy, LoadModel, OverloadPolicy,
    RetryBudget, RetryPolicy, ServiceConfig,
};
pub use spec::WorldSpec;
pub use world::{CompletedQuery, QueryOutcome, QuerySpec, ServiceWorld};
