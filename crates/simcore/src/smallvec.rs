//! A hand-rolled small-vector: inline storage for the first `N` elements,
//! heap spill beyond.
//!
//! The simulator's packet hot path attaches a short list of content spans
//! to every data segment; the overwhelmingly common case is 0–2 spans
//! (a segment inside one application chunk, or straddling one boundary).
//! Storing those inline makes segment construction, trace recording and
//! event delivery allocation-free, which is worth a measured ~1.5–2× in
//! simulator events/sec (see `bench_tcpsim`). No external dependency:
//! the workspace is offline-only, and the type needs a dozen methods, not
//! a crate.
//!
//! Design constraints:
//! * `T: Copy + Default` — the element slots are plain values, so the
//!   implementation stays safe (`simcore` forbids `unsafe`) and `clone`
//!   of an un-spilled vector is a bitwise copy.
//! * Equality, ordering of iteration and `Debug` all go through
//!   [`SmallVec::as_slice`], so an inline vector and a spilled vector
//!   with equal elements are equal — representation is invisible.
//! * Once spilled, a vector stays spilled (no shrink-back on `clear`):
//!   re-inlining would save nothing on the hot path, which never spills.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// The backing representation: inline slots or a spilled `Vec`.
#[derive(Clone)]
enum Repr<T, const N: usize> {
    Inline { len: u8, buf: [T; N] },
    Heap(Vec<T>),
}

/// A vector with inline capacity `N`, spilling to the heap beyond.
#[derive(Clone)]
pub struct SmallVec<T: Copy + Default, const N: usize> {
    repr: Repr<T, N>,
}

impl<T: Copy + Default, const N: usize> SmallVec<T, N> {
    /// Creates an empty vector (no allocation).
    pub fn new() -> SmallVec<T, N> {
        SmallVec {
            repr: Repr::Inline {
                len: 0,
                buf: [T::default(); N],
            },
        }
    }

    /// The inline capacity `N`.
    pub const fn inline_capacity() -> usize {
        N
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(v) => v.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once the contents have spilled to the heap.
    pub fn spilled(&self) -> bool {
        matches!(self.repr, Repr::Heap(_))
    }

    /// Appends an element, spilling to the heap on overflow of the
    /// inline capacity.
    pub fn push(&mut self, value: T) {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                let n = *len as usize;
                if n < N {
                    buf[n] = value;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(N * 2 + 1);
                    v.extend_from_slice(&buf[..n]);
                    v.push(value);
                    self.repr = Repr::Heap(v);
                }
            }
            Repr::Heap(v) => v.push(value),
        }
    }

    /// Removes and returns the last element, or `None` when empty. The
    /// representation is kept: a spilled vector stays spilled even when
    /// popped back under the inline capacity (mirroring [`clear`]).
    ///
    /// [`clear`]: SmallVec::clear
    pub fn pop(&mut self) -> Option<T> {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                if *len == 0 {
                    None
                } else {
                    *len -= 1;
                    Some(buf[*len as usize])
                }
            }
            Repr::Heap(v) => v.pop(),
        }
    }

    /// Removes all elements (keeps the current representation).
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Inline { len, .. } => *len = 0,
            Repr::Heap(v) => v.clear(),
        }
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Heap(v) => v.as_slice(),
        }
    }

    /// The elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match &mut self.repr {
            Repr::Inline { len, buf } => &mut buf[..*len as usize],
            Repr::Heap(v) => v.as_mut_slice(),
        }
    }

    /// Iterates by reference (same order as insertion).
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        SmallVec::new()
    }
}

impl<T: Copy + Default, const N: usize> Deref for SmallVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> DerefMut for SmallVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for SmallVec<T, N> {}

impl<T: Copy + Default, const N: usize> Extend<T> for SmallVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = SmallVec::new();
        out.extend(iter);
        out
    }
}

impl<T: Copy + Default, const N: usize> From<Vec<T>> for SmallVec<T, N> {
    fn from(v: Vec<T>) -> Self {
        if v.len() <= N {
            v.into_iter().collect()
        } else {
            SmallVec {
                repr: Repr::Heap(v),
            }
        }
    }
}

impl<T: Copy + Default, const N: usize> From<&[T]> for SmallVec<T, N> {
    fn from(s: &[T]) -> Self {
        s.iter().copied().collect()
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Owned iterator: yields elements by value (they are `Copy`).
pub struct IntoIter<T: Copy + Default, const N: usize> {
    inner: SmallVec<T, N>,
    pos: usize,
}

impl<T: Copy + Default, const N: usize> Iterator for IntoIter<T, N> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        let out = self.inner.as_slice().get(self.pos).copied();
        self.pos += out.is_some() as usize;
        out
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.inner.len() - self.pos;
        (rem, Some(rem))
    }
}

impl<T: Copy + Default, const N: usize> ExactSizeIterator for IntoIter<T, N> {}

impl<T: Copy + Default, const N: usize> IntoIterator for SmallVec<T, N> {
    type Item = T;
    type IntoIter = IntoIter<T, N>;
    fn into_iter(self) -> Self::IntoIter {
        IntoIter {
            inner: self,
            pos: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Sv = SmallVec<u32, 2>;

    #[test]
    fn starts_empty_and_inline() {
        let v = Sv::new();
        assert_eq!(v.len(), 0);
        assert!(v.is_empty());
        assert!(!v.spilled());
        assert_eq!(v.as_slice(), &[] as &[u32]);
        assert_eq!(Sv::inline_capacity(), 2);
    }

    #[test]
    fn inline_to_spill_transition() {
        let mut v = Sv::new();
        v.push(1);
        assert!(!v.spilled());
        v.push(2);
        assert!(!v.spilled(), "exactly N elements still inline");
        assert_eq!(v.as_slice(), &[1, 2]);
        v.push(3);
        assert!(v.spilled(), "N+1 elements must spill");
        assert_eq!(v.as_slice(), &[1, 2, 3]);
        v.push(4);
        assert_eq!(v.as_slice(), &[1, 2, 3, 4]);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn clone_and_eq_are_representation_independent() {
        // An inline vector and a spilled vector with the same elements
        // compare equal.
        let inline: Sv = vec![7, 8].into();
        let mut spilled = Sv::new();
        for x in [7, 8, 9] {
            spilled.push(x);
        }
        assert!(spilled.spilled());
        spilled.clear();
        spilled.push(7);
        spilled.push(8);
        assert!(spilled.spilled(), "clear keeps the heap representation");
        assert!(!inline.spilled());
        assert_eq!(inline, spilled);

        let c = spilled.clone();
        assert_eq!(c, spilled);
        let c2 = inline.clone();
        assert_eq!(c2, inline);
        assert!(!c2.spilled());
    }

    #[test]
    fn iteration_preserves_insertion_order() {
        let mut v = Sv::new();
        for x in 0..10 {
            v.push(x);
        }
        let by_ref: Vec<u32> = v.iter().copied().collect();
        assert_eq!(by_ref, (0..10).collect::<Vec<_>>());
        let owned: Vec<u32> = v.clone().into_iter().collect();
        assert_eq!(owned, by_ref);
        // ExactSizeIterator agrees.
        assert_eq!(v.clone().into_iter().len(), 10);
        // Deref gives slice iteration too.
        let slice_sum: u32 = v.iter().sum();
        assert_eq!(slice_sum, 45);
    }

    #[test]
    fn from_vec_inlines_small_and_adopts_large() {
        let small: Sv = vec![1].into();
        assert!(!small.spilled());
        let large: Sv = vec![1, 2, 3, 4].into();
        assert!(large.spilled());
        assert_eq!(large.as_slice(), &[1, 2, 3, 4]);
        let from_slice: Sv = (&[5u32, 6][..]).into();
        assert_eq!(from_slice.as_slice(), &[5, 6]);
    }

    #[test]
    fn mutation_through_slice() {
        let mut v: Sv = vec![1, 2].into();
        v[0] = 9;
        assert_eq!(v.as_slice(), &[9, 2]);
        let mut w: Sv = vec![1, 2, 3].into();
        w[2] = 7;
        assert_eq!(w.as_slice(), &[1, 2, 7]);
    }

    #[test]
    fn extend_and_collect() {
        let mut v = Sv::new();
        v.extend([1, 2, 3]);
        assert_eq!(v.len(), 3);
        let w: Sv = (0..5).collect();
        assert_eq!(w.as_slice(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn push_pop_across_the_spill_boundary() {
        // Walk len 0→3→0 across the N=2 boundary and back: contents
        // stay LIFO-correct through the spill, and the representation
        // is sticky (spilling is one-way, popping never re-inlines).
        let mut v = Sv::new();
        assert_eq!(v.pop(), None, "pop on empty inline is None");
        v.push(1);
        v.push(2);
        assert!(!v.spilled());
        v.push(3);
        assert!(v.spilled(), "crossing len 2→3 spills");
        assert_eq!(
            v.pop(),
            Some(3),
            "crossing len 3→2 pops the spilled element"
        );
        assert!(v.spilled(), "popping back under N keeps the heap repr");
        assert_eq!(v.as_slice(), &[1, 2]);
        v.push(3);
        assert!(v.spilled());
        assert_eq!(v.as_slice(), &[1, 2, 3]);
        assert_eq!(v.pop(), Some(3));
        assert_eq!(v.pop(), Some(2));
        assert_eq!(v.pop(), Some(1));
        assert_eq!(v.pop(), None, "pop on empty heap repr is None");
        assert!(v.is_empty());
        assert!(v.spilled());

        // The same walk entirely inside the inline capacity never
        // allocates a heap repr.
        let mut w = Sv::new();
        w.push(8);
        w.push(9);
        assert_eq!(w.pop(), Some(9));
        assert_eq!(w.pop(), Some(8));
        assert_eq!(w.pop(), None);
        assert!(!w.spilled(), "inline-only push/pop must stay inline");
    }

    #[test]
    fn clone_then_mutate_does_not_alias() {
        // Inline clones are bitwise copies and heap clones deep-copy
        // the Vec; mutating either side must never show through on the
        // other, in any mutation direction.
        let original: Sv = vec![1, 2].into();
        let mut copy = original.clone();
        copy[0] = 99;
        copy.push(3);
        assert_eq!(original.as_slice(), &[1, 2], "inline clone aliased");
        assert_eq!(copy.as_slice(), &[99, 2, 3]);

        let mut spilled: Sv = vec![4, 5, 6].into();
        assert!(spilled.spilled());
        let frozen = spilled.clone();
        spilled[1] = 0;
        spilled.pop();
        assert_eq!(frozen.as_slice(), &[4, 5, 6], "heap clone aliased");
        assert_eq!(spilled.as_slice(), &[4, 0]);

        // Mutating the original after cloning leaves the clone alone too.
        let mut base = Sv::new();
        base.push(7);
        let snap = base.clone();
        base.push(8);
        base.push(9); // spills base, not snap
        assert!(base.spilled());
        assert!(!snap.spilled());
        assert_eq!(snap.as_slice(), &[7]);
    }

    #[test]
    fn eq_across_inline_and_spilled_representations() {
        // Equality is contents-only in all four repr pairings.
        let inline_a: Sv = vec![1, 2].into();
        let inline_b: Sv = vec![1, 2].into();
        let mut heap_a: Sv = vec![1, 2, 3].into();
        heap_a.pop();
        let mut heap_b: Sv = vec![9, 9, 9].into();
        heap_b.clear();
        heap_b.extend([1, 2]);
        assert!(heap_a.spilled() && heap_b.spilled());

        assert_eq!(inline_a, inline_b); // inline == inline
        assert_eq!(inline_a, heap_a); // inline == heap
        assert_eq!(heap_a, inline_a); // heap == inline
        assert_eq!(heap_a, heap_b); // heap == heap

        // ...and inequality is detected regardless of representation.
        let other_inline: Sv = vec![1, 9].into();
        assert_ne!(inline_a, other_inline);
        assert_ne!(heap_a, other_inline);
        let mut longer = heap_b.clone();
        longer.push(3);
        assert_ne!(heap_a, longer);
        // Empty inline == empty (cleared) heap.
        let empty_heap = {
            let mut v: Sv = vec![1, 2, 3].into();
            v.clear();
            v
        };
        assert_eq!(Sv::new(), empty_heap);
    }
}
