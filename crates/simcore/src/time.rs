//! Virtual time for the discrete-event simulator.
//!
//! Time is an unsigned integer count of **nanoseconds** since the start of
//! the simulation. Nanosecond resolution comfortably resolves packet
//! serialisation times on 10 Gb/s links (a 1500-byte frame is 1.2 µs) while
//! a `u64` still spans ~584 years of virtual time, far beyond any
//! experiment in this workspace.
//!
//! Two types are provided, mirroring `std::time`:
//! [`SimTime`] is an absolute instant, [`SimDuration`] a span. Mixing them
//! up is a unit error the type system should catch, which is the entire
//! reason these are not bare `u64`s.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of virtual time, in nanoseconds since simulation
/// start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinitely far"
    /// sentinel for disabled timers).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs an instant from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Constructs an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Constructs an instant from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// This instant expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is in fact later (which can happen when comparing jittered
    /// timestamps from different observers).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The span from `earlier` to `self`; panics in debug builds on
    /// negative spans.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            self.0 >= earlier.0,
            "SimTime::since: {self:?} earlier than {earlier:?}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable span (sentinel for "never").
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Constructs a span from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Constructs a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Constructs a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs a span from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Constructs a span from fractional milliseconds, rounding to the
    /// nearest nanosecond and saturating at zero for negative inputs.
    ///
    /// This is the bridge from the floating-point latency/processing
    /// models (which work in milliseconds) into integer virtual time.
    pub fn from_millis_f64(ms: f64) -> Self {
        if !ms.is_finite() || ms <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = (ms * 1.0e6).round();
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Constructs a span from fractional seconds (same conventions as
    /// [`SimDuration::from_millis_f64`]).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration::from_millis_f64(s * 1.0e3)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// This span in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scales the span by a non-negative float factor (used by RTO backoff
    /// and jitter models), saturating at the representable range.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0, "SimDuration::mul_f64: negative factor {k}");
        let ns = self.0 as f64 * k;
        if !ns.is_finite() || ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns.max(0.0) as u64)
        }
    }

    /// True for the zero-length span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= other.0, "SimDuration underflow");
        SimDuration(self.0 - other.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        debug_assert!(self.0 >= other.0, "SimDuration underflow");
        self.0 -= other.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.as_millis_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_secs(2).as_millis_f64(), 2000.0);
        assert_eq!(SimDuration::from_millis(1).as_millis_f64(), 1.0);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
    }

    #[test]
    fn arithmetic_works() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_millis(5));
        assert_eq!(
            SimDuration::from_millis(4) * 3,
            SimDuration::from_millis(12)
        );
        assert_eq!(
            SimDuration::from_millis(12) / 4,
            SimDuration::from_millis(3)
        );
    }

    #[test]
    fn float_bridges() {
        assert_eq!(SimDuration::from_millis_f64(1.5).as_nanos(), 1_500_000);
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_millis_f64(f64::INFINITY),
            SimDuration::ZERO
        );
        assert_eq!(SimDuration::from_secs_f64(0.001).as_nanos(), 1_000_000);
    }

    #[test]
    fn mul_f64_saturates() {
        assert_eq!(SimDuration::MAX.mul_f64(2.0), SimDuration::MAX);
        assert_eq!(
            SimDuration::from_millis(10).mul_f64(1.5),
            SimDuration::from_millis(15)
        );
        assert_eq!(SimDuration::from_millis(10).mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(9);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_millis(4));
    }

    #[test]
    fn min_max_helpers() {
        let a = SimDuration::from_millis(3);
        let b = SimDuration::from_millis(7);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(SimDuration::ZERO.is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }

    #[test]
    fn display_formats_in_millis() {
        assert_eq!(format!("{}", SimTime::from_micros(1500)), "1.500");
        assert_eq!(format!("{:?}", SimDuration::from_micros(250)), "0.250ms");
    }
}
