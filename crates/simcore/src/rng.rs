//! Deterministic pseudo-random number generation with named streams.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded through
//! SplitMix64 as its authors recommend. It is implemented here rather than
//! pulled from a crate so that the exact sequence — and therefore every
//! packet trace in the repository — is pinned by this source file alone.
//!
//! ## Streams
//!
//! Experiments derive *named* sub-streams from a single experiment seed:
//!
//! ```
//! use simcore::rng::Rng;
//! let mut path_rng = Rng::from_seed_and_name(42, "path/client17->fe3");
//! let mut load_rng = Rng::from_seed_and_name(42, "fe3/load");
//! assert_ne!(path_rng.next_u64(), load_rng.next_u64());
//! ```
//!
//! Because each component owns its stream, adding a new stochastic
//! component (or reordering draws inside one) never perturbs the sequence
//! seen by any other component — experiment results stay comparable across
//! code revisions that do not touch the component in question.

/// SplitMix64 step; used for seeding and for hashing stream names.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a 64-bit hash of a byte string (stable across platforms; used only
/// to turn stream names into seed material, not for security).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Derives the 64-bit seed of a named child stream from a root seed.
///
/// This is the campaign-level counterpart of [`Rng::from_seed_and_name`]:
/// instead of constructing a generator it returns raw seed material, so a
/// whole simulator world (network jitter, loss draws, …) can be keyed on
/// `(campaign seed, run label)`. The root is diffused through SplitMix64
/// before the name hash is folded in, so structured roots (consecutive
/// campaign seeds) still yield decorrelated children, and the family tag
/// keeps these seeds disjoint from the `from_seed_and_name` streams.
/// Adding a run to a campaign therefore never perturbs any other run.
pub fn stream_seed(root: u64, name: &str) -> u64 {
    // ASCII "campaign": separates this derivation family from others.
    let mut sm = root ^ 0x6361_6D70_6169_676E;
    let diffused = splitmix64(&mut sm);
    diffused ^ fnv1a(name.as_bytes()).rotate_left(31)
}

/// A deterministic xoshiro256++ PRNG.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a raw 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start in the all-zero state; splitmix64 output
        // of any seed is never all-zero across four draws, but be defensive.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng { s }
    }

    /// Creates an independent named stream: the stream for `(seed, name)`
    /// is stable across runs and distinct (with overwhelming probability)
    /// from every other name.
    pub fn from_seed_and_name(seed: u64, name: &str) -> Self {
        Rng::from_seed(seed ^ fnv1a(name.as_bytes()).rotate_left(17))
    }

    /// Derives a child stream from this generator's current state and a
    /// name. Consumes one draw from `self`.
    pub fn derive(&mut self, name: &str) -> Rng {
        let base = self.next_u64();
        Rng::from_seed(base ^ fnv1a(name.as_bytes()))
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in the open interval `(0, 1)` — safe to pass to `ln`.
    pub fn next_f64_open(&mut self) -> f64 {
        loop {
            let x = self.next_f64();
            if x > 0.0 {
                return x;
            }
        }
    }

    /// Uniform integer in `[0, n)` via Lemire's multiply-shift rejection
    /// method (unbiased). Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let low = m as u64;
            if low >= n {
                return (m >> 64) as u64;
            }
            // rejection zone
            let threshold = n.wrapping_neg() % n;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64: lo > hi");
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Chooses a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.next_below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = Rng::from_seed(7);
        let mut b = Rng::from_seed(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::from_seed(1);
        let mut b = Rng::from_seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn named_streams_are_independent_and_stable() {
        let mut a1 = Rng::from_seed_and_name(42, "alpha");
        let mut a2 = Rng::from_seed_and_name(42, "alpha");
        let mut b = Rng::from_seed_and_name(42, "beta");
        assert_eq!(a1.next_u64(), a2.next_u64());
        let mut a3 = Rng::from_seed_and_name(42, "alpha");
        assert_ne!(a3.next_u64(), b.next_u64());
    }

    #[test]
    fn derive_produces_distinct_children() {
        let mut root = Rng::from_seed(9);
        let mut c1 = root.derive("one");
        let mut c2 = root.derive("two");
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn stream_seed_is_stable_and_name_sensitive() {
        assert_eq!(stream_seed(42, "run/a"), stream_seed(42, "run/a"));
        assert_ne!(stream_seed(42, "run/a"), stream_seed(42, "run/b"));
        assert_ne!(stream_seed(42, "run/a"), stream_seed(43, "run/a"));
    }

    #[test]
    fn stream_seed_decorrelates_consecutive_roots() {
        // Consecutive campaign seeds must not yield nearby child seeds.
        let a = stream_seed(1, "x");
        let b = stream_seed(2, "x");
        assert!((a ^ b).count_ones() > 8, "{a:#x} vs {b:#x}");
    }

    #[test]
    fn stream_seed_family_is_disjoint_from_named_streams() {
        // A world seeded by stream_seed must not replay an existing
        // from_seed_and_name stream for the same (seed, name).
        let mut world = Rng::from_seed(stream_seed(42, "alpha"));
        let mut named = Rng::from_seed_and_name(42, "alpha");
        assert_ne!(world.next_u64(), named.next_u64());
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut r = Rng::from_seed(11);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut r = Rng::from_seed(13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut r = Rng::from_seed(17);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn range_helpers() {
        let mut r = Rng::from_seed(19);
        for _ in 0..1000 {
            let x = r.range_u64(5, 9);
            assert!((5..=9).contains(&x));
            let y = r.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&y));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::from_seed(23);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::from_seed(29);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements_eventually() {
        let mut r = Rng::from_seed(31);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[*r.choose(&items) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
