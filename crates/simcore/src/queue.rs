//! The event queue driving the discrete-event simulation.
//!
//! A binary heap that (a) orders events by virtual time, and (b) breaks
//! ties between simultaneous events by insertion order. The FIFO
//! tie-break matters: without it, two packets enqueued for the same
//! instant would pop in an order depending on heap internals, and
//! simulation runs would not be bit-reproducible across refactorings.
//!
//! Payloads live in a slab indexed by the heap entries rather than in
//! the heap itself: sift operations then move 24-byte `(time, seq, idx)`
//! records instead of full event payloads (a packet-delivery event
//! carries a whole segment, ~100 bytes). Freed slab slots are recycled
//! through a free list, so a steady-state simulation allocates nothing
//! per event. The slot an event lands in never influences ordering —
//! only `(time, seq)` does — so recycling cannot perturb trajectories.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A heap entry: the scheduled instant, a monotone sequence number, and
/// the payload's slab slot.
struct Entry {
    at: SimTime,
    seq: u64,
    idx: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue with stable FIFO ordering of simultaneous
/// events.
///
/// The queue also tracks the current virtual time: [`EventQueue::pop`]
/// advances the clock to the popped event's timestamp. Scheduling into the
/// past is a logic error and panics in debug builds (it is clamped to
/// "now" in release builds, which keeps long batch runs alive while still
/// surfacing the bug under test).
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry>,
    slab: Vec<Option<E>>,
    free: Vec<u32>,
    now: SimTime,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            popped: 0,
        }
    }

    /// Current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events popped so far (a cheap progress metric for
    /// harnesses and runaway-simulation guards).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Number of payload slots the slab has ever allocated. Because freed
    /// slots are recycled before the slab grows, this is exactly the
    /// high-water mark of concurrently pending events — the
    /// `tcpsim.slab_high_water` telemetry gauge.
    pub fn slab_slots(&self) -> usize {
        self.slab.len()
    }

    /// Schedules `payload` at the absolute instant `at`.
    ///
    /// Debug-panics if `at` is in the past; clamps to `now` in release.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < {:?}",
            self.now
        );
        let at = if at < self.now { self.now } else { at };
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i as usize] = Some(payload);
                i
            }
            None => {
                self.slab.push(Some(payload));
                (self.slab.len() - 1) as u32
            }
        };
        self.heap.push(Entry { at, seq, idx });
    }

    /// Schedules `payload` after a relative delay from the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "event queue time went backwards");
        self.now = entry.at;
        self.popped += 1;
        let payload = self.slab[entry.idx as usize]
            .take()
            .expect("heap entry without slab payload");
        self.free.push(entry.idx);
        Some((entry.at, payload))
    }

    /// Drops all pending events, keeping the clock where it is.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.slab.clear();
        self.free.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(30), "c");
        q.schedule_at(SimTime::from_millis(10), "a");
        q.schedule_at(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_in(SimDuration::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(7));
        assert_eq!(q.now(), SimTime::from_millis(7));
        assert_eq!(q.events_processed(), 1);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_in(SimDuration::from_millis(10), 1u8);
        q.pop();
        q.schedule_in(SimDuration::from_millis(10), 2u8);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 2);
        assert_eq!(t, SimTime::from_millis(20));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_keeps_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(3), ());
        q.pop();
        q.schedule_at(SimTime::from_millis(9), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_millis(3));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(5), ());
        q.pop();
        q.schedule_at(SimTime::from_millis(1), ());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_sorted() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(1), 1);
        q.schedule_at(SimTime::from_millis(100), 100);
        let (_, first) = q.pop().unwrap();
        assert_eq!(first, 1);
        q.schedule_at(SimTime::from_millis(50), 50);
        let (_, second) = q.pop().unwrap();
        assert_eq!(second, 50);
        let (_, third) = q.pop().unwrap();
        assert_eq!(third, 100);
    }

    #[test]
    fn slab_slots_are_recycled() {
        // Heavy schedule/pop churn must not grow the slab beyond the
        // high-water mark of concurrently pending events.
        let mut q = EventQueue::new();
        for round in 0..1_000u64 {
            for k in 0..4u64 {
                q.schedule_in(SimDuration::from_millis(k + 1), round * 4 + k);
            }
            for _ in 0..4 {
                q.pop().unwrap();
            }
        }
        assert!(q.is_empty());
        assert!(
            q.slab.len() <= 8,
            "slab grew to {} slots for 4 pending events",
            q.slab.len()
        );
        assert_eq!(q.events_processed(), 4_000);
    }
}
