//! Probability distributions for the latency, loss, load and
//! processing-time models.
//!
//! Implemented in-tree (rather than via `rand_distr`) to keep the exact
//! draw sequences pinned by this repository. Each distribution documents
//! the sampling algorithm it uses. [`Dist`] is the enum used in model
//! configuration (serialisable as plain data), [`Sampler`] the common
//! sampling interface.

use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};

/// Common interface: draw one `f64` sample.
pub trait Sampler {
    /// Draws one sample using the supplied generator.
    fn sample(&self, rng: &mut Rng) -> f64;

    /// The distribution's mean, if finite and known in closed form.
    fn mean(&self) -> Option<f64>;
}

/// A configurable distribution over `f64`.
///
/// Negative-valued samples are meaningful for some uses (e.g. symmetric
/// jitter); users that need a non-negative quantity should wrap in
/// [`Dist::TruncatedBelow`] or clamp at the call site.
#[derive(Clone, Debug, PartialEq)]
pub enum Dist {
    /// Always the same value.
    Constant(f64),
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// Exponential with the given mean (inverse-CDF sampling).
    Exponential {
        /// Mean (= 1/λ).
        mean: f64,
    },
    /// Normal via the Box–Muller transform.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std: f64,
    },
    /// Log-normal: `exp(N(mu, sigma))` where `mu`/`sigma` are the
    /// parameters of the underlying normal (i.e. of `ln X`).
    LogNormal {
        /// Mean of `ln X`.
        mu: f64,
        /// Standard deviation of `ln X`.
        sigma: f64,
    },
    /// Pareto (Lomax-style tail) with scale `xmin > 0` and shape
    /// `alpha > 0`: heavy-tailed service/load bursts.
    Pareto {
        /// Minimum value (scale).
        xmin: f64,
        /// Tail index (shape); means exist for `alpha > 1`.
        alpha: f64,
    },
    /// Weibull with scale `lambda` and shape `k` (inverse-CDF sampling).
    Weibull {
        /// Scale parameter.
        lambda: f64,
        /// Shape parameter.
        k: f64,
    },
    /// Mixture of two components: with probability `p` draw from `a`,
    /// otherwise from `b`. Captures bimodal server-load regimes
    /// (quiescent vs busy multi-tenant FE).
    Mix {
        /// Probability of drawing from `a`.
        p: f64,
        /// First component.
        a: Box<Dist>,
        /// Second component.
        b: Box<Dist>,
    },
    /// Shifts another distribution by a constant offset.
    Shifted {
        /// Offset added to every sample.
        offset: f64,
        /// Underlying distribution.
        inner: Box<Dist>,
    },
    /// Rejection-free lower truncation: samples below `lo` are clamped.
    TruncatedBelow {
        /// Floor applied to every sample.
        lo: f64,
        /// Underlying distribution.
        inner: Box<Dist>,
    },
    /// Resampling from recorded values (workload replay): each draw
    /// picks a stored sample uniformly. Panics on empty data at sample
    /// time.
    Empirical(Vec<f64>),
}

impl Dist {
    /// Convenience constructor for a log-normal specified by its *linear*
    /// median and a multiplicative spread factor `s` (the ratio of the
    /// ~84th percentile to the median). `median > 0`, `s > 1`.
    ///
    /// This parameterisation reads naturally in latency models: "median
    /// 15 ms, spread 1.6×".
    pub fn lognormal_median_spread(median: f64, s: f64) -> Dist {
        assert!(median > 0.0 && s > 1.0, "bad lognormal parameters");
        Dist::LogNormal {
            mu: median.ln(),
            sigma: s.ln(),
        }
    }

    /// Convenience: a non-negative normal (clamped at zero).
    pub fn normal_nonneg(mean: f64, std: f64) -> Dist {
        Dist::TruncatedBelow {
            lo: 0.0,
            inner: Box::new(Dist::Normal { mean, std }),
        }
    }
}

impl Sampler for Dist {
    fn sample(&self, rng: &mut Rng) -> f64 {
        match self {
            Dist::Constant(v) => *v,
            Dist::Uniform { lo, hi } => rng.range_f64(*lo, *hi),
            Dist::Exponential { mean } => -mean * rng.next_f64_open().ln(),
            Dist::Normal { mean, std } => {
                // Box–Muller; one draw discarded for statelessness.
                let u1 = rng.next_f64_open();
                let u2 = rng.next_f64();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                mean + std * z
            }
            Dist::LogNormal { mu, sigma } => {
                let n = Dist::Normal {
                    mean: *mu,
                    std: *sigma,
                };
                n.sample(rng).exp()
            }
            Dist::Pareto { xmin, alpha } => xmin / rng.next_f64_open().powf(1.0 / alpha),
            Dist::Weibull { lambda, k } => lambda * (-rng.next_f64_open().ln()).powf(1.0 / k),
            Dist::Mix { p, a, b } => {
                if rng.chance(*p) {
                    a.sample(rng)
                } else {
                    b.sample(rng)
                }
            }
            Dist::Shifted { offset, inner } => offset + inner.sample(rng),
            Dist::TruncatedBelow { lo, inner } => inner.sample(rng).max(*lo),
            Dist::Empirical(data) => *rng.choose(data),
        }
    }

    fn mean(&self) -> Option<f64> {
        match self {
            Dist::Constant(v) => Some(*v),
            Dist::Uniform { lo, hi } => Some(0.5 * (lo + hi)),
            Dist::Exponential { mean } => Some(*mean),
            Dist::Normal { mean, .. } => Some(*mean),
            Dist::LogNormal { mu, sigma } => Some((mu + 0.5 * sigma * sigma).exp()),
            Dist::Pareto { xmin, alpha } => {
                if *alpha > 1.0 {
                    Some(alpha * xmin / (alpha - 1.0))
                } else {
                    None
                }
            }
            Dist::Weibull { .. } => None, // needs the gamma function
            Dist::Mix { p, a, b } => Some(p * a.mean()? + (1.0 - p) * b.mean()?),
            Dist::Shifted { offset, inner } => Some(offset + inner.mean()?),
            Dist::TruncatedBelow { .. } => None,
            Dist::Empirical(data) => {
                if data.is_empty() {
                    None
                } else {
                    Some(data.iter().sum::<f64>() / data.len() as f64)
                }
            }
        }
    }
}

/// Draws from a Zipf distribution over ranks `1..=n` with exponent `s`,
/// by inverse-CDF on a precomputed table. Used for keyword popularity.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the rank table for `n` items with exponent `s >= 0`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf over zero items");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the table is empty (never: `new` requires `n > 0`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a 0-based rank (0 = most popular).
    pub fn sample_rank(&self, rng: &mut Rng) -> usize {
        let u = rng.next_f64();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).unwrap())
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// A flash-crowd window: while `start <= now < start + duration`, each
/// draw is redirected to the window's flash item with probability
/// `weight` (the item itself is chosen once per window from the
/// process's own churn stream).
#[derive(Clone, Debug, PartialEq)]
pub struct FlashCrowd {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window length.
    pub duration: SimDuration,
    /// Probability a draw inside the window goes to the flash item.
    pub weight: f64,
}

impl FlashCrowd {
    /// True while the window is in force at `now`.
    pub fn active_at(&self, now: SimTime) -> bool {
        self.weight > 0.0 && now >= self.start && now.since(self.start) < self.duration
    }
}

/// Dynamic-popularity workload model: a Zipf law whose rank→item mapping
/// drifts under shot-noise churn, with an optional diurnal arrival-rate
/// wave and flash-crowd windows.
///
/// The churn follows the shot-noise model of cache-analysis literature:
/// content renewal events arrive as a Poisson process at `churn_per_sec`;
/// each shot promotes a uniformly drawn catalog item into a
/// Zipf-distributed popularity rank (displacing the item currently
/// there), so the popular set slowly rotates while the marginal rank
/// distribution stays exactly Zipf. With `churn_per_sec == 0` and no
/// flash windows the model is **inert**: a [`PopularityProcess`] draws
/// nothing from its churn stream and reproduces plain
/// [`Zipf::sample_rank`] draws exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct PopularityModel {
    /// Zipf exponent of the marginal rank distribution.
    pub exponent: f64,
    /// Shot-noise churn rate (popularity-renewal shots per virtual
    /// second). 0 disables churn entirely.
    pub churn_per_sec: f64,
    /// Diurnal arrival-rate wave amplitude `A` in
    /// `rate(t) = 1 + A·sin(2πt/T)`; 0 keeps the rate flat. Consulted by
    /// workload generators via [`PopularityModel::rate_factor`], never by
    /// the draw path.
    pub diurnal_amplitude: f64,
    /// Diurnal wave period `T`.
    pub diurnal_period: SimDuration,
    /// Flash-crowd windows (each overrides draws with one hot item at
    /// its `weight` while active).
    pub flash: Vec<FlashCrowd>,
}

impl PopularityModel {
    /// A static Zipf law: no churn, no diurnal wave, no flash crowds —
    /// the inert configuration.
    pub fn static_zipf(exponent: f64) -> PopularityModel {
        PopularityModel {
            exponent,
            churn_per_sec: 0.0,
            diurnal_amplitude: 0.0,
            diurnal_period: SimDuration::from_secs(86_400),
            flash: Vec::new(),
        }
    }

    /// Enables shot-noise churn at `per_sec` renewal shots per second.
    pub fn with_churn(mut self, per_sec: f64) -> PopularityModel {
        assert!(per_sec >= 0.0, "negative churn rate");
        self.churn_per_sec = per_sec;
        self
    }

    /// Enables the diurnal arrival-rate wave.
    pub fn with_diurnal(mut self, amplitude: f64, period: SimDuration) -> PopularityModel {
        assert!(
            (0.0..1.0).contains(&amplitude),
            "diurnal amplitude must be in [0, 1) so the rate stays positive"
        );
        assert!(!period.is_zero(), "diurnal period must be positive");
        self.diurnal_amplitude = amplitude;
        self.diurnal_period = period;
        self
    }

    /// Adds a flash-crowd window.
    pub fn with_flash_crowd(
        mut self,
        start: SimTime,
        duration: SimDuration,
        weight: f64,
    ) -> PopularityModel {
        assert!((0.0..=1.0).contains(&weight), "flash weight out of range");
        self.flash.push(FlashCrowd {
            start,
            duration,
            weight,
        });
        self
    }

    /// True when the draw path is inert (no churn, no flash windows): a
    /// process over this model reproduces plain Zipf draws byte-for-byte
    /// and never touches its churn stream.
    pub fn is_static(&self) -> bool {
        self.churn_per_sec == 0.0 && self.flash.iter().all(|f| f.weight == 0.0)
    }

    /// The arrival-rate multiplier `1 + A·sin(2πt/T)` at `now` (exactly
    /// 1.0 when the amplitude is 0).
    pub fn rate_factor(&self, now: SimTime) -> f64 {
        if self.diurnal_amplitude == 0.0 {
            return 1.0;
        }
        let phase = now.as_secs_f64() / self.diurnal_period.as_secs_f64();
        1.0 + self.diurnal_amplitude * (2.0 * std::f64::consts::PI * phase).sin()
    }
}

/// The evolving state of a [`PopularityModel`] over a catalog of `n`
/// items: a [`Zipf`] rank law composed with a churning rank→item
/// permutation.
///
/// Churn shots are drawn from the process's **own** RNG stream (passed
/// at construction, conventionally a named child stream), never from the
/// caller's draw stream — so arming churn perturbs only the mapping, and
/// a zero-churn process consumes the caller's stream exactly like a bare
/// `Zipf`. Advancing is lazy: shots up to `now` are applied on the next
/// [`sample`](PopularityProcess::sample) or
/// [`advance`](PopularityProcess::advance) call.
#[derive(Clone, Debug)]
pub struct PopularityProcess {
    model: PopularityModel,
    zipf: Zipf,
    /// rank → item id (identity until the first shot).
    slots: Vec<u64>,
    /// item id → rank (inverse of `slots`).
    rank_of: Vec<usize>,
    churn: Rng,
    next_shot: Option<SimTime>,
    /// Per-window flash item, chosen lazily from the churn stream.
    flash_items: Vec<Option<u64>>,
}

impl PopularityProcess {
    /// Builds the process over `n` catalog items. `churn_rng` must be a
    /// stream owned by this process (e.g.
    /// `Rng::from_seed_and_name(seed, "emulator/popularity")`); it is
    /// only drawn from when the model has churn or an active flash
    /// window needs its item picked.
    pub fn new(n: usize, model: PopularityModel, mut churn_rng: Rng) -> PopularityProcess {
        let zipf = Zipf::new(n, model.exponent);
        let next_shot = if model.churn_per_sec > 0.0 {
            Some(SimTime::ZERO + exp_gap(&mut churn_rng, model.churn_per_sec))
        } else {
            None
        };
        let flash_items = vec![None; model.flash.len()];
        PopularityProcess {
            model,
            zipf,
            slots: (0..n as u64).collect(),
            rank_of: (0..n).collect(),
            churn: churn_rng,
            next_shot,
            flash_items,
        }
    }

    /// The model this process evolves.
    pub fn model(&self) -> &PopularityModel {
        &self.model
    }

    /// Catalog size.
    pub fn catalog(&self) -> usize {
        self.slots.len()
    }

    /// The item currently occupying popularity rank `rank` (0 = most
    /// popular).
    pub fn item_at_rank(&self, rank: usize) -> u64 {
        self.slots[rank]
    }

    /// Applies every churn shot at or before `now`. A shot at time `t`
    /// affects all draws at `t` and later.
    pub fn advance(&mut self, now: SimTime) {
        while let Some(t) = self.next_shot {
            if t > now {
                break;
            }
            // One shot: promote a uniformly drawn item into a
            // Zipf-drawn rank, swapping with the incumbent so the
            // mapping stays a permutation.
            let item = self.churn.next_below(self.slots.len() as u64);
            let rank = self.zipf.sample_rank(&mut self.churn);
            let old_rank = self.rank_of[item as usize];
            let displaced = self.slots[rank];
            self.slots.swap(rank, old_rank);
            self.rank_of[item as usize] = rank;
            self.rank_of[displaced as usize] = old_rank;
            self.next_shot = t.checked_add(exp_gap(&mut self.churn, self.model.churn_per_sec));
        }
    }

    /// Draws one item id at virtual time `now` using the caller's
    /// `draw_rng`. Exactly one `Zipf` rank draw from `draw_rng` in the
    /// common case; inside an active flash window one extra Bernoulli
    /// draw decides whether the flash item overrides.
    pub fn sample(&mut self, now: SimTime, draw_rng: &mut Rng) -> u64 {
        self.advance(now);
        for (i, w) in self.model.flash.iter().enumerate() {
            if w.active_at(now) {
                if self.flash_items[i].is_none() {
                    self.flash_items[i] = Some(self.churn.next_below(self.slots.len() as u64));
                }
                if draw_rng.chance(w.weight) {
                    return self.flash_items[i].expect("just filled");
                }
                break;
            }
        }
        self.slots[self.zipf.sample_rank(draw_rng)]
    }
}

/// One exponential inter-shot gap for rate `per_sec` (> 0).
fn exp_gap(rng: &mut Rng, per_sec: f64) -> SimDuration {
    let secs = -(1.0 / per_sec) * rng.next_f64_open().ln();
    SimDuration::from_secs_f64(secs).max(SimDuration::from_nanos(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::from_seed(12345)
    }

    fn empirical_mean(d: &Dist, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let d = Dist::Constant(4.2);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), 4.2);
        }
        assert_eq!(d.mean(), Some(4.2));
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Dist::Uniform { lo: 2.0, hi: 6.0 };
        let mut r = rng();
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!((2.0..6.0).contains(&x));
        }
        assert!((empirical_mean(&d, 50_000) - 4.0).abs() < 0.05);
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Dist::Exponential { mean: 3.0 };
        assert!((empirical_mean(&d, 200_000) - 3.0).abs() < 0.05);
        let mut r = rng();
        for _ in 0..1000 {
            assert!(d.sample(&mut r) >= 0.0);
        }
    }

    #[test]
    fn normal_mean_and_spread() {
        let d = Dist::Normal {
            mean: 10.0,
            std: 2.0,
        };
        assert!((empirical_mean(&d, 200_000) - 10.0).abs() < 0.05);
        let mut r = rng();
        let within: usize = (0..100_000)
            .filter(|_| (d.sample(&mut r) - 10.0).abs() < 2.0)
            .count();
        // ~68.3% within one sigma
        assert!((66_000..71_000).contains(&within), "within {within}");
    }

    #[test]
    fn lognormal_median_spread_parameterisation() {
        let d = Dist::lognormal_median_spread(15.0, 1.6);
        let mut r = rng();
        let mut samples: Vec<f64> = (0..100_001).map(|_| d.sample(&mut r)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[50_000];
        assert!((median - 15.0).abs() < 0.5, "median {median}");
        let p84 = samples[84_134];
        assert!(
            (p84 / median - 1.6).abs() < 0.1,
            "p84/median {}",
            p84 / median
        );
    }

    #[test]
    fn pareto_is_heavy_tailed_and_bounded_below() {
        let d = Dist::Pareto {
            xmin: 1.0,
            alpha: 2.0,
        };
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) >= 1.0);
        }
        assert!((empirical_mean(&d, 500_000) - 2.0).abs() < 0.15);
        assert_eq!(d.mean(), Some(2.0));
        assert_eq!(
            Dist::Pareto {
                xmin: 1.0,
                alpha: 0.9
            }
            .mean(),
            None
        );
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let d = Dist::Weibull {
            lambda: 2.0,
            k: 1.0,
        };
        assert!((empirical_mean(&d, 200_000) - 2.0).abs() < 0.05);
    }

    #[test]
    fn mix_interpolates_means() {
        let d = Dist::Mix {
            p: 0.75,
            a: Box::new(Dist::Constant(0.0)),
            b: Box::new(Dist::Constant(8.0)),
        };
        assert_eq!(d.mean(), Some(2.0));
        assert!((empirical_mean(&d, 100_000) - 2.0).abs() < 0.1);
    }

    #[test]
    fn shifted_and_truncated() {
        let d = Dist::Shifted {
            offset: 5.0,
            inner: Box::new(Dist::Constant(1.0)),
        };
        assert_eq!(d.mean(), Some(6.0));
        let t = Dist::normal_nonneg(0.0, 1.0);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(t.sample(&mut r) >= 0.0);
        }
    }

    #[test]
    fn empirical_resamples_recorded_values() {
        let data = vec![1.0, 2.0, 4.0, 8.0];
        let d = Dist::Empirical(data.clone());
        let mut r = rng();
        for _ in 0..1000 {
            assert!(data.contains(&d.sample(&mut r)));
        }
        assert_eq!(d.mean(), Some(3.75));
        assert!((empirical_mean(&d, 100_000) - 3.75).abs() < 0.05);
        assert_eq!(Dist::Empirical(vec![]).mean(), None);
    }

    #[test]
    fn zipf_is_monotone_decreasing_in_rank() {
        let z = Zipf::new(100, 1.0);
        let mut r = rng();
        let mut counts = vec![0u32; 100];
        for _ in 0..200_000 {
            counts[z.sample_rank(&mut r)] += 1;
        }
        assert!(counts[0] > counts[9]);
        assert!(counts[9] > counts[49]);
        // rank-1 frequency for s=1, n=100: 1/H(100) ≈ 0.1928
        let f0 = counts[0] as f64 / 200_000.0;
        assert!((f0 - 0.1928).abs() < 0.01, "f0 {f0}");
        assert_eq!(z.len(), 100);
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        let mut r = rng();
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample_rank(&mut r)] += 1;
        }
        for &c in &counts {
            assert!((8_500..11_500).contains(&c), "count {c}");
        }
    }

    #[test]
    fn static_popularity_process_matches_plain_zipf() {
        // The inert contract: churn 0 + no flash must reproduce bare
        // Zipf draws from the caller's stream exactly, and never touch
        // the churn stream (compared via the untouched clone).
        let model = PopularityModel::static_zipf(0.9);
        assert!(model.is_static());
        let mut p = PopularityProcess::new(500, model, Rng::from_seed(777));
        let untouched = Rng::from_seed(777);
        let z = Zipf::new(500, 0.9);
        let mut a = rng();
        let mut b = rng();
        for i in 0..5_000u64 {
            let t = SimTime::from_millis(i * 13);
            assert_eq!(p.sample(t, &mut a), z.sample_rank(&mut b) as u64);
        }
        // No churn draws: the process's stream state is untouched.
        assert_eq!(p.churn.clone().next_u64(), untouched.clone().next_u64());
    }

    #[test]
    fn churn_rotates_the_popular_set_deterministically() {
        let model = PopularityModel::static_zipf(0.9).with_churn(5.0);
        assert!(!model.is_static());
        let mk = || PopularityProcess::new(300, model.clone(), Rng::from_seed_and_name(9, "pop"));
        let mut p = mk();
        let mut q = mk();
        p.advance(SimTime::from_secs(200));
        q.advance(SimTime::from_secs(200));
        // ~1000 shots: the identity mapping cannot have survived.
        let moved = (0..300).filter(|&r| p.item_at_rank(r) != r as u64).count();
        assert!(moved > 100, "only {moved} ranks moved after 1000 shots");
        // Same stream, same shots: byte-deterministic evolution, and
        // incremental advance equals one big advance.
        let mut inc = mk();
        for s in 0..200u64 {
            inc.advance(SimTime::from_secs(s + 1));
        }
        for r in 0..300 {
            assert_eq!(p.item_at_rank(r), q.item_at_rank(r));
            assert_eq!(p.item_at_rank(r), inc.item_at_rank(r));
        }
        // The mapping stays a permutation.
        let mut seen: Vec<u64> = (0..300).map(|r| p.item_at_rank(r)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..300u64).collect::<Vec<_>>());
    }

    #[test]
    fn churned_marginal_stays_zipf_shaped() {
        // Churn rotates *which* item is popular, not how popular the
        // top rank is: rank-0 draws keep their Zipf frequency.
        let model = PopularityModel::static_zipf(1.0).with_churn(2.0);
        let mut p = PopularityProcess::new(100, model, Rng::from_seed_and_name(3, "pop"));
        let mut r = rng();
        let mut top = 0u32;
        let n = 100_000u64;
        for i in 0..n {
            let t = SimTime::from_millis(i * 10);
            let item = p.sample(t, &mut r);
            if p.item_at_rank(0) == item {
                top += 1;
            }
        }
        let f0 = top as f64 / n as f64;
        assert!((f0 - 0.1928).abs() < 0.015, "rank-0 frequency {f0}");
    }

    #[test]
    fn diurnal_rate_factor_waves_around_one() {
        let flat = PopularityModel::static_zipf(0.9);
        assert_eq!(flat.rate_factor(SimTime::from_secs(12_345)), 1.0);
        let m = flat.with_diurnal(0.5, SimDuration::from_secs(1_000));
        assert!((m.rate_factor(SimTime::ZERO) - 1.0).abs() < 1e-12);
        assert!((m.rate_factor(SimTime::from_secs(250)) - 1.5).abs() < 1e-9);
        assert!((m.rate_factor(SimTime::from_secs(750)) - 0.5).abs() < 1e-9);
        // Never non-positive for amplitude < 1.
        for s in 0..2_000u64 {
            assert!(m.rate_factor(SimTime::from_secs(s)) > 0.0);
        }
    }

    #[test]
    fn flash_crowd_dominates_inside_its_window_only() {
        let model = PopularityModel::static_zipf(0.9).with_flash_crowd(
            SimTime::from_secs(100),
            SimDuration::from_secs(50),
            0.9,
        );
        let mut p = PopularityProcess::new(1_000, model, Rng::from_seed_and_name(4, "pop"));
        let mut r = rng();
        // Inside the window: the flash item takes ~90% of draws.
        let mut counts = std::collections::HashMap::new();
        for i in 0..5_000u64 {
            let t = SimTime::from_millis(100_000 + i * 10);
            *counts.entry(p.sample(t, &mut r)).or_insert(0u32) += 1;
        }
        let (&hot, &hot_n) = counts.iter().max_by_key(|(_, &n)| n).unwrap();
        assert!(hot_n > 4_200, "flash item drew {hot_n}/5000");
        // Outside the window: back to plain Zipf (the hot item reverts
        // to its catalog popularity, far below 50%).
        let mut hot_after = 0u32;
        for i in 0..5_000u64 {
            let t = SimTime::from_millis(200_000 + i * 10);
            if p.sample(t, &mut r) == hot {
                hot_after += 1;
            }
        }
        assert!(hot_after < 2_500, "flash item still hot: {hot_after}");
        // Exact boundary: the window is [start, start+duration).
        let w = &p.model().flash[0];
        assert!(w.active_at(SimTime::from_secs(100)));
        assert!(!w.active_at(SimTime::from_secs(150)));
    }
}
