//! Probability distributions for the latency, loss, load and
//! processing-time models.
//!
//! Implemented in-tree (rather than via `rand_distr`) to keep the exact
//! draw sequences pinned by this repository. Each distribution documents
//! the sampling algorithm it uses. [`Dist`] is the enum used in model
//! configuration (serialisable as plain data), [`Sampler`] the common
//! sampling interface.

use crate::rng::Rng;

/// Common interface: draw one `f64` sample.
pub trait Sampler {
    /// Draws one sample using the supplied generator.
    fn sample(&self, rng: &mut Rng) -> f64;

    /// The distribution's mean, if finite and known in closed form.
    fn mean(&self) -> Option<f64>;
}

/// A configurable distribution over `f64`.
///
/// Negative-valued samples are meaningful for some uses (e.g. symmetric
/// jitter); users that need a non-negative quantity should wrap in
/// [`Dist::TruncatedBelow`] or clamp at the call site.
#[derive(Clone, Debug, PartialEq)]
pub enum Dist {
    /// Always the same value.
    Constant(f64),
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// Exponential with the given mean (inverse-CDF sampling).
    Exponential {
        /// Mean (= 1/λ).
        mean: f64,
    },
    /// Normal via the Box–Muller transform.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std: f64,
    },
    /// Log-normal: `exp(N(mu, sigma))` where `mu`/`sigma` are the
    /// parameters of the underlying normal (i.e. of `ln X`).
    LogNormal {
        /// Mean of `ln X`.
        mu: f64,
        /// Standard deviation of `ln X`.
        sigma: f64,
    },
    /// Pareto (Lomax-style tail) with scale `xmin > 0` and shape
    /// `alpha > 0`: heavy-tailed service/load bursts.
    Pareto {
        /// Minimum value (scale).
        xmin: f64,
        /// Tail index (shape); means exist for `alpha > 1`.
        alpha: f64,
    },
    /// Weibull with scale `lambda` and shape `k` (inverse-CDF sampling).
    Weibull {
        /// Scale parameter.
        lambda: f64,
        /// Shape parameter.
        k: f64,
    },
    /// Mixture of two components: with probability `p` draw from `a`,
    /// otherwise from `b`. Captures bimodal server-load regimes
    /// (quiescent vs busy multi-tenant FE).
    Mix {
        /// Probability of drawing from `a`.
        p: f64,
        /// First component.
        a: Box<Dist>,
        /// Second component.
        b: Box<Dist>,
    },
    /// Shifts another distribution by a constant offset.
    Shifted {
        /// Offset added to every sample.
        offset: f64,
        /// Underlying distribution.
        inner: Box<Dist>,
    },
    /// Rejection-free lower truncation: samples below `lo` are clamped.
    TruncatedBelow {
        /// Floor applied to every sample.
        lo: f64,
        /// Underlying distribution.
        inner: Box<Dist>,
    },
    /// Resampling from recorded values (workload replay): each draw
    /// picks a stored sample uniformly. Panics on empty data at sample
    /// time.
    Empirical(Vec<f64>),
}

impl Dist {
    /// Convenience constructor for a log-normal specified by its *linear*
    /// median and a multiplicative spread factor `s` (the ratio of the
    /// ~84th percentile to the median). `median > 0`, `s > 1`.
    ///
    /// This parameterisation reads naturally in latency models: "median
    /// 15 ms, spread 1.6×".
    pub fn lognormal_median_spread(median: f64, s: f64) -> Dist {
        assert!(median > 0.0 && s > 1.0, "bad lognormal parameters");
        Dist::LogNormal {
            mu: median.ln(),
            sigma: s.ln(),
        }
    }

    /// Convenience: a non-negative normal (clamped at zero).
    pub fn normal_nonneg(mean: f64, std: f64) -> Dist {
        Dist::TruncatedBelow {
            lo: 0.0,
            inner: Box::new(Dist::Normal { mean, std }),
        }
    }
}

impl Sampler for Dist {
    fn sample(&self, rng: &mut Rng) -> f64 {
        match self {
            Dist::Constant(v) => *v,
            Dist::Uniform { lo, hi } => rng.range_f64(*lo, *hi),
            Dist::Exponential { mean } => -mean * rng.next_f64_open().ln(),
            Dist::Normal { mean, std } => {
                // Box–Muller; one draw discarded for statelessness.
                let u1 = rng.next_f64_open();
                let u2 = rng.next_f64();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                mean + std * z
            }
            Dist::LogNormal { mu, sigma } => {
                let n = Dist::Normal {
                    mean: *mu,
                    std: *sigma,
                };
                n.sample(rng).exp()
            }
            Dist::Pareto { xmin, alpha } => xmin / rng.next_f64_open().powf(1.0 / alpha),
            Dist::Weibull { lambda, k } => lambda * (-rng.next_f64_open().ln()).powf(1.0 / k),
            Dist::Mix { p, a, b } => {
                if rng.chance(*p) {
                    a.sample(rng)
                } else {
                    b.sample(rng)
                }
            }
            Dist::Shifted { offset, inner } => offset + inner.sample(rng),
            Dist::TruncatedBelow { lo, inner } => inner.sample(rng).max(*lo),
            Dist::Empirical(data) => *rng.choose(data),
        }
    }

    fn mean(&self) -> Option<f64> {
        match self {
            Dist::Constant(v) => Some(*v),
            Dist::Uniform { lo, hi } => Some(0.5 * (lo + hi)),
            Dist::Exponential { mean } => Some(*mean),
            Dist::Normal { mean, .. } => Some(*mean),
            Dist::LogNormal { mu, sigma } => Some((mu + 0.5 * sigma * sigma).exp()),
            Dist::Pareto { xmin, alpha } => {
                if *alpha > 1.0 {
                    Some(alpha * xmin / (alpha - 1.0))
                } else {
                    None
                }
            }
            Dist::Weibull { .. } => None, // needs the gamma function
            Dist::Mix { p, a, b } => Some(p * a.mean()? + (1.0 - p) * b.mean()?),
            Dist::Shifted { offset, inner } => Some(offset + inner.mean()?),
            Dist::TruncatedBelow { .. } => None,
            Dist::Empirical(data) => {
                if data.is_empty() {
                    None
                } else {
                    Some(data.iter().sum::<f64>() / data.len() as f64)
                }
            }
        }
    }
}

/// Draws from a Zipf distribution over ranks `1..=n` with exponent `s`,
/// by inverse-CDF on a precomputed table. Used for keyword popularity.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the rank table for `n` items with exponent `s >= 0`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf over zero items");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the table is empty (never: `new` requires `n > 0`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a 0-based rank (0 = most popular).
    pub fn sample_rank(&self, rng: &mut Rng) -> usize {
        let u = rng.next_f64();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).unwrap())
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::from_seed(12345)
    }

    fn empirical_mean(d: &Dist, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let d = Dist::Constant(4.2);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), 4.2);
        }
        assert_eq!(d.mean(), Some(4.2));
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Dist::Uniform { lo: 2.0, hi: 6.0 };
        let mut r = rng();
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!((2.0..6.0).contains(&x));
        }
        assert!((empirical_mean(&d, 50_000) - 4.0).abs() < 0.05);
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Dist::Exponential { mean: 3.0 };
        assert!((empirical_mean(&d, 200_000) - 3.0).abs() < 0.05);
        let mut r = rng();
        for _ in 0..1000 {
            assert!(d.sample(&mut r) >= 0.0);
        }
    }

    #[test]
    fn normal_mean_and_spread() {
        let d = Dist::Normal {
            mean: 10.0,
            std: 2.0,
        };
        assert!((empirical_mean(&d, 200_000) - 10.0).abs() < 0.05);
        let mut r = rng();
        let within: usize = (0..100_000)
            .filter(|_| (d.sample(&mut r) - 10.0).abs() < 2.0)
            .count();
        // ~68.3% within one sigma
        assert!((66_000..71_000).contains(&within), "within {within}");
    }

    #[test]
    fn lognormal_median_spread_parameterisation() {
        let d = Dist::lognormal_median_spread(15.0, 1.6);
        let mut r = rng();
        let mut samples: Vec<f64> = (0..100_001).map(|_| d.sample(&mut r)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[50_000];
        assert!((median - 15.0).abs() < 0.5, "median {median}");
        let p84 = samples[84_134];
        assert!(
            (p84 / median - 1.6).abs() < 0.1,
            "p84/median {}",
            p84 / median
        );
    }

    #[test]
    fn pareto_is_heavy_tailed_and_bounded_below() {
        let d = Dist::Pareto {
            xmin: 1.0,
            alpha: 2.0,
        };
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) >= 1.0);
        }
        assert!((empirical_mean(&d, 500_000) - 2.0).abs() < 0.15);
        assert_eq!(d.mean(), Some(2.0));
        assert_eq!(
            Dist::Pareto {
                xmin: 1.0,
                alpha: 0.9
            }
            .mean(),
            None
        );
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let d = Dist::Weibull {
            lambda: 2.0,
            k: 1.0,
        };
        assert!((empirical_mean(&d, 200_000) - 2.0).abs() < 0.05);
    }

    #[test]
    fn mix_interpolates_means() {
        let d = Dist::Mix {
            p: 0.75,
            a: Box::new(Dist::Constant(0.0)),
            b: Box::new(Dist::Constant(8.0)),
        };
        assert_eq!(d.mean(), Some(2.0));
        assert!((empirical_mean(&d, 100_000) - 2.0).abs() < 0.1);
    }

    #[test]
    fn shifted_and_truncated() {
        let d = Dist::Shifted {
            offset: 5.0,
            inner: Box::new(Dist::Constant(1.0)),
        };
        assert_eq!(d.mean(), Some(6.0));
        let t = Dist::normal_nonneg(0.0, 1.0);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(t.sample(&mut r) >= 0.0);
        }
    }

    #[test]
    fn empirical_resamples_recorded_values() {
        let data = vec![1.0, 2.0, 4.0, 8.0];
        let d = Dist::Empirical(data.clone());
        let mut r = rng();
        for _ in 0..1000 {
            assert!(data.contains(&d.sample(&mut r)));
        }
        assert_eq!(d.mean(), Some(3.75));
        assert!((empirical_mean(&d, 100_000) - 3.75).abs() < 0.05);
        assert_eq!(Dist::Empirical(vec![]).mean(), None);
    }

    #[test]
    fn zipf_is_monotone_decreasing_in_rank() {
        let z = Zipf::new(100, 1.0);
        let mut r = rng();
        let mut counts = vec![0u32; 100];
        for _ in 0..200_000 {
            counts[z.sample_rank(&mut r)] += 1;
        }
        assert!(counts[0] > counts[9]);
        assert!(counts[9] > counts[49]);
        // rank-1 frequency for s=1, n=100: 1/H(100) ≈ 0.1928
        let f0 = counts[0] as f64 / 200_000.0;
        assert!((f0 - 0.1928).abs() < 0.01, "f0 {f0}");
        assert_eq!(z.len(), 100);
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        let mut r = rng();
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample_rank(&mut r)] += 1;
        }
        for &c in &counts {
            assert!((8_500..11_500).contains(&c), "count {c}");
        }
    }
}
