//! # simcore — deterministic discrete-event simulation core
//!
//! Foundation for the `fecdn` packet-level network simulator. Provides:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond virtual time. All
//!   simulation state advances only through the event queue, never through
//!   wall-clock reads, so every run is exactly reproducible.
//! * [`EventQueue`] — a binary-heap event queue with stable FIFO ordering
//!   for simultaneous events (ties are broken by insertion sequence, never
//!   by payload contents).
//! * [`rng`] — a small, self-contained xoshiro256++ PRNG with *named
//!   streams*: every stochastic component derives its own independent
//!   stream from the experiment seed, so adding a component never perturbs
//!   the draws seen by any other component.
//! * [`dist`] — the probability distributions used by the latency, loss,
//!   load and processing-time models (uniform, exponential, normal,
//!   log-normal, Pareto, Weibull, Bernoulli, empirical).
//! * [`SmallVec`] — a hand-rolled inline-first small-vector; the packet
//!   hot path uses it to carry content spans without heap allocation.
//! * [`telemetry`] — deterministic counters/gauges/histograms and
//!   virtual/wall-time spans ([`MetricsRegistry`]), gated at runtime by
//!   `FECDN_METRICS` and at compile time by the `telemetry-off` feature.
//!
//! The crate is `std`-only and single-threaded by design (its only
//! dependency is the workspace's own `stats` crate, which backs the
//! telemetry histograms): reproducibility of packet traces is a core
//! requirement of the measurement-reproduction study this workspace
//! implements.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod dist;
pub mod queue;
pub mod rng;
pub mod smallvec;
pub mod telemetry;
pub mod time;

pub use dist::{Dist, Sampler};
pub use queue::EventQueue;
pub use rng::Rng;
pub use smallvec::SmallVec;
pub use telemetry::{MetricsRegistry, METRICS_TSV_HEADER};
pub use time::{SimDuration, SimTime};
