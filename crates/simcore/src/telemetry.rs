//! Deterministic, near-zero-overhead metrics: counters, gauges,
//! histograms and spans.
//!
//! The observability layer follows the same determinism contract as the
//! campaign result pipeline: every simulator component records into a
//! [`MetricsRegistry`] it **owns privately** (one per run, living inside
//! the run's `Net`/world, never a global), and campaign workers merge
//! per-run registries back **in descriptor order** — so the rendered
//! metrics document is byte-identical at any worker-thread count,
//! exactly like the query TSV.
//!
//! Two kinds of measurements coexist and are flagged apart:
//!
//! * **Deterministic** metrics (counters, gauges, virtual-time span
//!   histograms) depend only on the simulated trajectory. They render
//!   through [`MetricsRegistry::render_rows`] with `include_wall =
//!   false` and are what the conformance suite byte-compares.
//! * **Wall-clock** metrics (wall-time spans, queue-wait gauges) vary
//!   run to run; they are rendered only when a caller explicitly asks
//!   for them (`include_wall = true`, stderr diagnostics) and are never
//!   part of a byte-compared document.
//!
//! Recording follows the `TraceLog` recycled-arena idiom: after a metric
//! name's first touch, counters and gauges update in place with no
//! allocation, and histograms amortize through the bounded
//! [`stats::SummaryAcc`] buffer (exact below its cap, deterministic
//! sketch above) — steady-state recording on the hot path stays
//! allocation-free.
//!
//! Two gates exist, both benchmarked in `bench_tcpsim`:
//!
//! * the **runtime** gate — `FECDN_METRICS=0` (or `off`/`false`)
//!   disables recording at registry construction; sampled once, no
//!   per-record env read;
//! * the **compile-time** gate — the `telemetry-off` cargo feature
//!   compiles every record path down to a no-op.
//!
//! Neither gate may change simulated behaviour: the registry is
//! observe-only (it draws no randomness and schedules nothing), so
//! golden traces are byte-identical with telemetry enabled, disabled or
//! compiled out.

use crate::time::{SimDuration, SimTime};
use stats::SummaryAcc;
use std::collections::BTreeMap;
use std::time::Instant;

/// Histogram buffer cap: exact (bit-reproducible vs batch helpers)
/// below, deterministic sketch above. Sized for per-run span counts of
/// typical campaigns.
pub const HIST_CAP: usize = 4096;

/// Column header of the per-run metrics TSV (`metrics.tsv`). Rows are
/// produced by [`MetricsRegistry::render_rows`], one per metric, with
/// `-` for cells a kind does not define.
pub const METRICS_TSV_HEADER: &str = "run\tmetric\tkind\tcount\tvalue\tmin\tp50\tp95\tmax\n";

/// Parses a `FECDN_METRICS`-style value: `0`, `off` and `false` disable,
/// anything else (including unset) enables. Pure, so tests can pin the
/// parsing without racing on process-global environment state.
pub fn metrics_enabled_from(value: Option<&str>) -> bool {
    !matches!(value, Some("0") | Some("off") | Some("false"))
}

/// Reads the runtime telemetry gate from `FECDN_METRICS`. Sampled once
/// per registry construction — never on the record path.
pub fn metrics_enabled_from_env() -> bool {
    metrics_enabled_from(std::env::var("FECDN_METRICS").ok().as_deref())
}

/// The value payload of one named metric.
#[derive(Clone, Debug)]
enum Value {
    /// Monotone event count.
    Counter(u64),
    /// Last-written value plus the high-water mark of all writes.
    Gauge { last: f64, max: f64 },
    /// Distribution of observed samples.
    Hist(SummaryAcc),
}

/// One named metric: its payload plus the deterministic/wall flag.
#[derive(Clone, Debug)]
struct Metric {
    value: Value,
    /// True for wall-clock measurements (excluded from deterministic
    /// rendering and byte-comparison).
    wall: bool,
}

/// An in-flight virtual-time span: closed against the registry with
/// [`MetricsRegistry::end_virt`], recording the elapsed virtual
/// duration into a deterministic histogram.
#[derive(Clone, Copy, Debug)]
pub struct VirtSpan {
    name: &'static str,
    start: SimTime,
}

/// An in-flight wall-clock span: closed with
/// [`MetricsRegistry::end_wall`], recording elapsed wall milliseconds
/// into a wall-flagged histogram.
#[derive(Clone, Copy, Debug)]
pub struct WallSpan {
    name: &'static str,
    start: Instant,
}

/// A registry of named counters, gauges and histograms.
///
/// Names are `&'static str` (instrumentation sites name their metrics
/// in code); storage is a name-ordered map, so rendering and merging
/// are deterministic by construction. All record methods are no-ops
/// when the registry is disabled (runtime gate) or when the
/// `telemetry-off` feature is active (compile-time gate).
#[derive(Clone, Debug)]
pub struct MetricsRegistry {
    enabled: bool,
    metrics: BTreeMap<&'static str, Metric>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty, enabled registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::with_enabled(true)
    }

    /// An empty registry with the recording gate set explicitly.
    pub fn with_enabled(enabled: bool) -> MetricsRegistry {
        MetricsRegistry {
            enabled,
            metrics: BTreeMap::new(),
        }
    }

    /// An empty registry gated by `FECDN_METRICS` (see
    /// [`metrics_enabled_from_env`]).
    pub fn from_env() -> MetricsRegistry {
        MetricsRegistry::with_enabled(metrics_enabled_from_env())
    }

    /// Whether recording is currently enabled.
    pub fn is_enabled(&self) -> bool {
        #[cfg(feature = "telemetry-off")]
        {
            false
        }
        #[cfg(not(feature = "telemetry-off"))]
        {
            self.enabled
        }
    }

    /// Sets the runtime recording gate (already-recorded metrics are
    /// kept).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Moves the recorded metrics out, leaving an empty registry with
    /// the same gate — how runners harvest a component's registry at
    /// quiescence.
    pub fn take(&mut self) -> MetricsRegistry {
        MetricsRegistry {
            enabled: self.enabled,
            metrics: std::mem::take(&mut self.metrics),
        }
    }

    /// True when no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Number of recorded metric names.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    fn record(&mut self, name: &'static str, wall: bool, f: impl FnOnce(&mut Value), init: Value) {
        #[cfg(feature = "telemetry-off")]
        {
            let _ = (name, wall, f, init);
        }
        #[cfg(not(feature = "telemetry-off"))]
        {
            if !self.enabled {
                return;
            }
            let m = self
                .metrics
                .entry(name)
                .or_insert(Metric { value: init, wall });
            debug_assert_eq!(m.wall, wall, "metric {name:?} redefined with a new class");
            f(&mut m.value);
        }
    }

    /// Increments the counter `name` by one.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Adds `n` to the counter `name`.
    pub fn add(&mut self, name: &'static str, n: u64) {
        self.record(
            name,
            false,
            |v| match v {
                Value::Counter(c) => *c += n,
                _ => panic!("metric {name:?} is not a counter"),
            },
            Value::Counter(0),
        );
    }

    fn gauge_impl(&mut self, name: &'static str, wall: bool, x: f64) {
        self.record(
            name,
            wall,
            |v| match v {
                Value::Gauge { last, max } => {
                    *last = x;
                    *max = max.max(x);
                }
                _ => panic!("metric {name:?} is not a gauge"),
            },
            Value::Gauge { last: x, max: x },
        );
    }

    /// Sets the deterministic gauge `name` (tracks last value and
    /// high-water mark).
    pub fn set_gauge(&mut self, name: &'static str, x: f64) {
        self.gauge_impl(name, false, x);
    }

    /// Sets the wall-clock gauge `name` (excluded from deterministic
    /// rendering).
    pub fn set_wall_gauge(&mut self, name: &'static str, x: f64) {
        self.gauge_impl(name, true, x);
    }

    fn observe_impl(&mut self, name: &'static str, wall: bool, x: f64) {
        self.record(
            name,
            wall,
            |v| match v {
                Value::Hist(h) => h.push(x),
                _ => panic!("metric {name:?} is not a histogram"),
            },
            Value::Hist(SummaryAcc::with_cap(HIST_CAP)),
        );
        // The init value above is empty; push the first sample too.
        // (record() runs `f` on both the fresh and the existing entry,
        // so the sample lands exactly once either way.)
    }

    /// Folds one sample into the deterministic histogram `name`.
    pub fn observe(&mut self, name: &'static str, x: f64) {
        self.observe_impl(name, false, x);
    }

    /// Folds one wall-clock sample (milliseconds) into the wall
    /// histogram `name`.
    pub fn observe_wall_ms(&mut self, name: &'static str, ms: f64) {
        self.observe_impl(name, true, ms);
    }

    /// Folds a virtual duration (as milliseconds) into the
    /// deterministic histogram `name`.
    pub fn observe_virt(&mut self, name: &'static str, d: SimDuration) {
        self.observe(name, d.as_millis_f64());
    }

    /// Opens a virtual-time span at `now`. Close with
    /// [`MetricsRegistry::end_virt`].
    pub fn virt_span(&self, name: &'static str, now: SimTime) -> VirtSpan {
        VirtSpan { name, start: now }
    }

    /// Closes a virtual-time span, recording its duration (ms of
    /// virtual time) into a deterministic histogram.
    pub fn end_virt(&mut self, span: VirtSpan, now: SimTime) {
        self.observe_virt(span.name, now.saturating_since(span.start));
    }

    /// Opens a wall-clock span. Close with
    /// [`MetricsRegistry::end_wall`] (or use the [`span!`](crate::span)
    /// macro around a block).
    pub fn wall_span(&self, name: &'static str) -> WallSpan {
        WallSpan {
            name,
            start: Instant::now(),
        }
    }

    /// Closes a wall-clock span, recording elapsed milliseconds into a
    /// wall-flagged histogram.
    pub fn end_wall(&mut self, span: WallSpan) {
        self.observe_wall_ms(span.name, span.start.elapsed().as_secs_f64() * 1e3);
    }

    /// Merges `other` into `self`, name by name. The caller fixes the
    /// merge order (campaigns merge per-run registries in descriptor
    /// order); same-name metrics must agree on kind and class.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, m) in &other.metrics {
            match self.metrics.get_mut(name) {
                None => {
                    self.metrics.insert(name, m.clone());
                }
                Some(mine) => {
                    assert_eq!(
                        mine.wall, m.wall,
                        "metric {name:?} merged across det/wall classes"
                    );
                    match (&mut mine.value, &m.value) {
                        (Value::Counter(a), Value::Counter(b)) => *a += b,
                        (Value::Gauge { last, max }, Value::Gauge { last: l2, max: m2 }) => {
                            *last = *l2;
                            *max = max.max(*m2);
                        }
                        (Value::Hist(a), Value::Hist(b)) => a.merge(b),
                        _ => panic!("metric {name:?} merged across kinds"),
                    }
                }
            }
        }
    }

    /// The counter `name`'s total, if it exists.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name)?.value {
            Value::Counter(c) => Some(c),
            _ => None,
        }
    }

    /// The gauge `name` as `(last, max)`, if it exists.
    pub fn gauge(&self, name: &str) -> Option<(f64, f64)> {
        match self.metrics.get(name)?.value {
            Value::Gauge { last, max } => Some((last, max)),
            _ => None,
        }
    }

    /// The histogram `name`'s sample count, if it exists.
    pub fn hist_count(&self, name: &str) -> Option<u64> {
        match &self.metrics.get(name)?.value {
            Value::Hist(h) => Some(h.count()),
            _ => None,
        }
    }

    /// The histogram `name`'s summary, if it exists and is non-empty.
    pub fn hist_summary(&self, name: &str) -> Option<stats::Summary> {
        match &self.metrics.get(name)?.value {
            Value::Hist(h) => h.summary(),
            _ => None,
        }
    }

    /// Recorded metric names, in render (lexicographic) order.
    pub fn names(&self) -> Vec<&'static str> {
        self.metrics.keys().copied().collect()
    }

    /// Appends one TSV row per metric to `out`, prefixed with the `run`
    /// label, in name order. With `include_wall = false` only
    /// deterministic metrics render — the byte-comparable document; with
    /// `true`, wall-clock metrics follow too (kinds `wall_gauge` /
    /// `wall_hist`), for stderr diagnostics only.
    pub fn render_rows(&self, run: &str, include_wall: bool, out: &mut String) {
        use std::fmt::Write;
        for (name, m) in &self.metrics {
            if m.wall && !include_wall {
                continue;
            }
            match &m.value {
                Value::Counter(c) => {
                    writeln!(out, "{run}\t{name}\tcounter\t-\t{c}\t-\t-\t-\t-").unwrap();
                }
                Value::Gauge { last, max } => {
                    let kind = if m.wall { "wall_gauge" } else { "gauge" };
                    writeln!(
                        out,
                        "{run}\t{name}\t{kind}\t-\t{last:.3}\t-\t-\t-\t{max:.3}"
                    )
                    .unwrap();
                }
                Value::Hist(h) => {
                    let kind = if m.wall { "wall_hist" } else { "hist" };
                    match h.summary() {
                        Some(s) => writeln!(
                            out,
                            "{run}\t{name}\t{kind}\t{}\t-\t{:.3}\t{:.3}\t{:.3}\t{:.3}",
                            h.count(),
                            s.min,
                            s.median,
                            s.p95,
                            s.max
                        )
                        .unwrap(),
                        None => writeln!(out, "{run}\t{name}\t{kind}\t0\t-\t-\t-\t-").unwrap(),
                    }
                }
            }
        }
    }

    /// The registry as a standalone metrics TSV document (header plus
    /// deterministic rows for the pseudo-run label `all`).
    pub fn to_tsv(&self) -> String {
        let mut out = String::from(METRICS_TSV_HEADER);
        self.render_rows("all", false, &mut out);
        out
    }

    /// The registry as a JSON object (deterministic metrics only, name
    /// order), for `BENCH_metrics.json`-style artifacts. Hand-rolled
    /// like the bench emitters: the workspace is offline, no serde.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\n");
        let mut first = true;
        for (name, m) in &self.metrics {
            if m.wall {
                continue;
            }
            if !first {
                out.push_str(",\n");
            }
            first = false;
            match &m.value {
                Value::Counter(c) => {
                    write!(
                        out,
                        "  \"{name}\": {{\"kind\": \"counter\", \"value\": {c}}}"
                    )
                    .unwrap();
                }
                Value::Gauge { last, max } => {
                    write!(
                        out,
                        "  \"{name}\": {{\"kind\": \"gauge\", \"value\": {last:.3}, \"max\": {max:.3}}}"
                    )
                    .unwrap();
                }
                Value::Hist(h) => match h.summary() {
                    Some(s) => write!(
                        out,
                        "  \"{name}\": {{\"kind\": \"hist\", \"count\": {}, \"min\": {:.3}, \
                         \"p50\": {:.3}, \"p95\": {:.3}, \"max\": {:.3}}}",
                        h.count(),
                        s.min,
                        s.median,
                        s.p95,
                        s.max
                    )
                    .unwrap(),
                    None => {
                        write!(out, "  \"{name}\": {{\"kind\": \"hist\", \"count\": 0}}").unwrap()
                    }
                },
            }
        }
        out.push_str("\n}\n");
        out
    }
}

/// Times a block against a wall-clock span:
/// `span!(registry, "tcp.handshake", { body })` evaluates the body,
/// records its wall duration into the registry's `"tcp.handshake"`
/// histogram, and yields the body's value. Compiles to just the body
/// under the `telemetry-off` feature's no-op record path.
#[macro_export]
macro_rules! span {
    ($reg:expr, $name:literal, $body:expr) => {{
        let __span = $reg.wall_span($name);
        let __out = $body;
        $reg.end_wall(__span);
        __out
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_hists_round_trip() {
        let mut m = MetricsRegistry::new();
        m.inc("a.count");
        m.add("a.count", 4);
        m.set_gauge("b.gauge", 3.0);
        m.set_gauge("b.gauge", 2.0);
        for x in [1.0, 2.0, 3.0, 4.0] {
            m.observe("c.hist", x);
        }
        if cfg!(feature = "telemetry-off") {
            assert!(m.is_empty());
            return;
        }
        assert_eq!(m.counter("a.count"), Some(5));
        assert_eq!(m.gauge("b.gauge"), Some((2.0, 3.0)));
        assert_eq!(m.hist_count("c.hist"), Some(4));
        let s = m.hist_summary("c.hist").unwrap();
        assert_eq!((s.min, s.max), (1.0, 4.0));
        assert_eq!(m.names(), vec!["a.count", "b.gauge", "c.hist"]);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut m = MetricsRegistry::with_enabled(false);
        m.inc("x");
        m.observe("y", 1.0);
        m.set_gauge("z", 2.0);
        assert!(m.is_empty());
        assert_eq!(m.to_tsv(), METRICS_TSV_HEADER);
        m.set_enabled(true);
        m.inc("x");
        assert_eq!(m.is_empty(), cfg!(feature = "telemetry-off"));
    }

    #[test]
    fn env_gate_parsing() {
        assert!(metrics_enabled_from(None));
        assert!(metrics_enabled_from(Some("1")));
        assert!(metrics_enabled_from(Some("anything")));
        assert!(!metrics_enabled_from(Some("0")));
        assert!(!metrics_enabled_from(Some("off")));
        assert!(!metrics_enabled_from(Some("false")));
    }

    #[test]
    fn merge_is_by_name_and_deterministic() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.inc("n");
        b.add("n", 2);
        b.inc("only_b");
        a.set_gauge("g", 1.0);
        b.set_gauge("g", 5.0);
        a.observe("h", 1.0);
        b.observe("h", 3.0);
        a.merge(&b);
        if cfg!(feature = "telemetry-off") {
            assert!(a.is_empty());
            return;
        }
        assert_eq!(a.counter("n"), Some(3));
        assert_eq!(a.counter("only_b"), Some(2 - 1));
        assert_eq!(a.gauge("g"), Some((5.0, 5.0)));
        assert_eq!(a.hist_count("h"), Some(2));
    }

    #[test]
    fn virt_and_wall_spans_record() {
        let mut m = MetricsRegistry::new();
        let t0 = SimTime::from_millis(10);
        let sp = m.virt_span("virt.ms", t0);
        m.end_virt(sp, SimTime::from_millis(35));
        let out = span!(m, "wall.ms", { 7 * 6 });
        assert_eq!(out, 42);
        if cfg!(feature = "telemetry-off") {
            assert!(m.is_empty());
            return;
        }
        assert_eq!(m.hist_count("virt.ms"), Some(1));
        let s = m.hist_summary("virt.ms").unwrap();
        assert_eq!(s.min, 25.0);
        // Wall histograms exist but stay out of the deterministic TSV.
        assert_eq!(m.hist_count("wall.ms"), Some(1));
        assert!(!m.to_tsv().contains("wall.ms"));
        let mut all = String::new();
        m.render_rows("r", true, &mut all);
        assert!(all.contains("wall.ms"));
    }

    #[test]
    fn render_and_json_are_name_ordered() {
        let mut m = MetricsRegistry::new();
        m.inc("z.last");
        m.inc("a.first");
        m.observe("m.mid", 2.5);
        let tsv = m.to_tsv();
        if cfg!(feature = "telemetry-off") {
            assert_eq!(tsv, METRICS_TSV_HEADER);
            return;
        }
        let lines: Vec<&str> = tsv.lines().skip(1).collect();
        assert!(lines[0].starts_with("all\ta.first\tcounter"));
        assert!(lines[1].starts_with("all\tm.mid\thist\t1"));
        assert!(lines[2].starts_with("all\tz.last\tcounter"));
        let json = m.to_json();
        assert!(json.find("a.first").unwrap() < json.find("z.last").unwrap());
    }

    #[test]
    fn take_leaves_empty_registry_with_same_gate() {
        let mut m = MetricsRegistry::with_enabled(false);
        m.set_enabled(true);
        m.inc("x");
        let taken = m.take();
        assert!(m.is_empty());
        assert_eq!(
            taken.counter("x"),
            Some(1).filter(|_| !cfg!(feature = "telemetry-off"))
        );
        assert!(m.is_enabled() || cfg!(feature = "telemetry-off"));
    }
}
