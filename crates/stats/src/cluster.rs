//! One-dimensional temporal clustering.
//!
//! Sec. 4.1 of the paper identifies, in each query's packet timeline,
//! "temporal clusters of packet events": the TCP handshake, the static
//! burst, and the dynamic burst. At small RTT the three clusters are
//! clearly separated; as RTT grows the static and dynamic clusters merge —
//! exactly the model's prediction.
//!
//! [`gap_clusters`] implements the classifier: a new cluster starts
//! whenever the gap to the previous event exceeds a threshold.
//! [`adaptive_gap_threshold`] picks that threshold from the data itself
//! (largest-gap heuristic), which is what the capture pipeline uses so no
//! magic constant leaks into the analysis.

/// A contiguous run of events forming one temporal cluster.
#[derive(Clone, Debug, PartialEq)]
pub struct Cluster {
    /// Index of the first event in the cluster (into the input slice).
    pub start_idx: usize,
    /// Index one past the last event.
    pub end_idx: usize,
    /// Timestamp of the first event.
    pub t_first: f64,
    /// Timestamp of the last event.
    pub t_last: f64,
}

impl Cluster {
    /// Number of events in the cluster.
    pub fn len(&self) -> usize {
        self.end_idx - self.start_idx
    }

    /// True when the cluster contains no events (never produced by
    /// [`gap_clusters`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Temporal extent of the cluster.
    pub fn span(&self) -> f64 {
        self.t_last - self.t_first
    }
}

/// Splits a **sorted** sequence of event timestamps into clusters wherever
/// consecutive events are separated by more than `gap`.
///
/// Panics in debug builds if the input is unsorted.
pub fn gap_clusters(times: &[f64], gap: f64) -> Vec<Cluster> {
    debug_assert!(
        times.windows(2).all(|w| w[0] <= w[1]),
        "gap_clusters: input not sorted"
    );
    let mut out = Vec::new();
    if times.is_empty() {
        return out;
    }
    let mut start = 0usize;
    for i in 1..times.len() {
        if times[i] - times[i - 1] > gap {
            out.push(Cluster {
                start_idx: start,
                end_idx: i,
                t_first: times[start],
                t_last: times[i - 1],
            });
            start = i;
        }
    }
    out.push(Cluster {
        start_idx: start,
        end_idx: times.len(),
        t_first: times[start],
        t_last: times[times.len() - 1],
    });
    out
}

/// Chooses a gap threshold adaptively: the threshold is placed just below
/// the `k`-th largest inter-event gap, so the sequence splits into at most
/// `k + 1` clusters at its most prominent gaps — but only where those gaps
/// are "prominent" (at least `min_ratio` times the median gap; gaps below
/// that are considered within-burst pacing, not cluster boundaries).
///
/// Returns `None` when the input has fewer than 2 events or no prominent
/// gap exists (a single merged cluster — the paper's large-RTT regime).
pub fn adaptive_gap_threshold(times: &[f64], k: usize, min_ratio: f64) -> Option<f64> {
    if times.len() < 2 || k == 0 {
        return None;
    }
    let mut gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
    gaps.sort_by(|a, b| a.partial_cmp(b).expect("NaN gap"));
    let median_gap = crate::quantile::quantile_sorted(&gaps, 0.5);
    let floor = if median_gap > 0.0 {
        median_gap * min_ratio
    } else {
        0.0
    };
    // Find the k largest gaps that clear the prominence floor.
    let prominent: Vec<f64> = gaps
        .iter()
        .rev()
        .take(k)
        .copied()
        .filter(|&g| g > floor && g > 0.0)
        .collect();
    let smallest_prominent = *prominent.last()?;
    // Threshold strictly below the smallest prominent gap, above all
    // smaller (within-burst) gaps.
    let below = gaps
        .iter()
        .rev()
        .find(|&&g| g < smallest_prominent)
        .copied()
        .unwrap_or(0.0);
    Some((smallest_prominent + below) / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_three_obvious_bursts() {
        // handshake @ ~0, static @ ~100, dynamic @ ~300
        let times = [0.0, 0.1, 100.0, 100.2, 100.4, 300.0, 300.1, 300.2, 300.3];
        let clusters = gap_clusters(&times, 10.0);
        assert_eq!(clusters.len(), 3);
        assert_eq!(clusters[0].len(), 2);
        assert_eq!(clusters[1].len(), 3);
        assert_eq!(clusters[2].len(), 4);
        assert_eq!(clusters[1].t_first, 100.0);
        assert!((clusters[2].span() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn single_event_single_cluster() {
        let clusters = gap_clusters(&[5.0], 1.0);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 1);
        assert_eq!(clusters[0].span(), 0.0);
        assert!(!clusters[0].is_empty());
    }

    #[test]
    fn empty_input() {
        assert!(gap_clusters(&[], 1.0).is_empty());
    }

    #[test]
    fn merged_when_gap_large() {
        let times = [0.0, 1.0, 2.0, 3.0];
        let clusters = gap_clusters(&times, 10.0);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 4);
    }

    #[test]
    fn cluster_indices_partition_input() {
        let times = [0.0, 0.5, 20.0, 20.5, 40.0];
        let clusters = gap_clusters(&times, 5.0);
        let mut covered = 0;
        for c in &clusters {
            assert_eq!(c.start_idx, covered);
            covered = c.end_idx;
        }
        assert_eq!(covered, times.len());
    }

    #[test]
    fn adaptive_threshold_finds_two_boundaries() {
        let times = [0.0, 0.2, 0.4, 50.0, 50.2, 50.4, 120.0, 120.2];
        let thr = adaptive_gap_threshold(&times, 2, 3.0).unwrap();
        let clusters = gap_clusters(&times, thr);
        assert_eq!(clusters.len(), 3);
    }

    #[test]
    fn adaptive_threshold_none_when_uniform() {
        // Evenly spaced events: no gap is ≥ 3× the median gap.
        let times: Vec<f64> = (0..20).map(|i| i as f64).collect();
        assert_eq!(adaptive_gap_threshold(&times, 2, 3.0), None);
    }

    #[test]
    fn adaptive_threshold_handles_merged_tail() {
        // Static and dynamic back-to-back (large-RTT regime): only the
        // handshake gap is prominent → 2 clusters, not 3.
        let times = [0.0, 0.1, 80.0, 80.1, 80.2, 80.3, 80.4, 80.5];
        let thr = adaptive_gap_threshold(&times, 2, 5.0).unwrap();
        let clusters = gap_clusters(&times, thr);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn adaptive_threshold_degenerate_inputs() {
        assert_eq!(adaptive_gap_threshold(&[], 2, 3.0), None);
        assert_eq!(adaptive_gap_threshold(&[1.0], 2, 3.0), None);
        assert_eq!(adaptive_gap_threshold(&[1.0, 2.0], 0, 3.0), None);
    }
}
