//! Mergeable online reducers for the streaming result pipeline.
//!
//! Campaign runs fold every processed query into accumulators as it
//! completes instead of buffering `Vec<ProcessedQuery>` columns for a
//! batch pass at the end. Two regimes coexist:
//!
//! * **Exact** accumulators ([`QuantileAcc::exact`], [`SummaryAcc`] in
//!   exact mode) buffer raw values in arrival order and, at finish time,
//!   sort a copy and call the *same* batch helpers as the legacy path
//!   ([`quantile_sorted`], [`Summary::of`]). Because sorting erases
//!   arrival order, their results are **bit-identical** to the batch
//!   functions — for any shard split, as long as shards are merged by
//!   concatenation (the campaign merges run reports in descriptor
//!   order). Figures that assert shapes on exact quantiles use these so
//!   golden TSVs stay byte-identical.
//! * **Sketch** accumulators ([`Welford`], [`QuantileAcc::with_cap`]
//!   past its cap) keep O(1)/O(cap) state and trade bit-exactness for
//!   bounded memory. They are deterministic — compaction is a pure
//!   function of the pushed sequence, with no randomization — so a
//!   campaign merged in descriptor order still yields byte-identical
//!   reports at any thread count.
//!
//! The merge-order determinism rule: every accumulator's `merge` is a
//! pure function of `(self, other)` state. Campaign shards therefore
//! must be merged in a canonical order (descriptor order); exact-mode
//! accumulators happen to be merge-order *independent* as well, sketch
//! accumulators are not.

use crate::ecdf::Ecdf;
use crate::quantile::{quantile_sorted, Summary};

/// Default buffer cap for [`QuantileAcc::new`]: exact below, sketch at
/// and above. Chosen so a per-run accumulator over typical quick-scale
/// campaigns (hundreds to a few thousand queries) stays exact.
pub const DEFAULT_QUANTILE_CAP: usize = 8192;

// ---------------------------------------------------------------------
// Welford mean / variance
// ---------------------------------------------------------------------

/// Online mean/variance in O(1) state (Welford's algorithm), mergeable
/// with Chan et al.'s pairwise combination. Also tracks min/max.
///
/// Numerically stable but not bit-identical to the two-pass batch
/// [`crate::quantile::variance`]; use it where approximate moments are
/// acceptable (monitoring, sketch-mode summaries).
#[derive(Clone, Copy, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Welford {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds in one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator (Chan's parallel combine).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.mean += delta * other.n as f64 / n as f64;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples folded so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean; `None` before the first sample.
    pub fn mean(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.mean)
        }
    }

    /// Population variance (n denominator); `None` before the first
    /// sample.
    pub fn variance(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.m2 / self.n as f64)
        }
    }

    /// Sample standard deviation (n−1 denominator); `None` below two
    /// samples.
    pub fn sample_std(&self) -> Option<f64> {
        if self.n < 2 {
            None
        } else {
            Some((self.m2 / (self.n - 1) as f64).sqrt())
        }
    }

    /// Smallest sample; `None` before the first sample.
    pub fn min(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest sample; `None` before the first sample.
    pub fn max(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.max)
        }
    }
}

// ---------------------------------------------------------------------
// Arrival-order running mean
// ---------------------------------------------------------------------

/// Running left-to-right sum and count — reproduces the batch
/// [`crate::quantile::mean`] bit-for-bit when samples are pushed in the
/// same order the batch slice held them (f64 addition is
/// order-sensitive; this accumulator preserves it).
#[derive(Clone, Copy, Debug, Default)]
pub struct MeanAcc {
    n: u64,
    sum: f64,
}

impl MeanAcc {
    /// An empty accumulator.
    pub fn new() -> MeanAcc {
        MeanAcc::default()
    }

    /// Folds in one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
    }

    /// Appends another accumulator's samples after this one's
    /// (`sum + other.sum` — exact only when the concatenation order
    /// matches the batch order).
    pub fn merge(&mut self, other: &MeanAcc) {
        self.n += other.n;
        self.sum += other.sum;
    }

    /// Number of samples folded so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The mean; `None` before the first sample.
    pub fn mean(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.sum / self.n as f64)
        }
    }
}

// ---------------------------------------------------------------------
// Exact-when-small / sketch-when-huge quantile accumulator
// ---------------------------------------------------------------------

/// Quantile accumulator that is exact below a cap and degrades to a
/// deterministic weighted-centroid sketch above it.
///
/// * **Exact mode** (`len < cap`): values are buffered in arrival
///   order; every query sorts a copy and delegates to the batch
///   [`quantile_sorted`], so results are bit-identical to
///   [`crate::quantile::quantile`] on the same multiset — including
///   after arbitrary shard splits merged by concatenation.
/// * **Sketch mode** (cap reached): the buffer is collapsed into
///   weighted centroids by merging adjacent (sorted) pairs, halving the
///   entry count; quantiles interpolate on the cumulative-weight curve.
///   Compaction is a pure function of the pushed sequence (no
///   randomness), so results stay deterministic, but they are
///   approximate and merge-order dependent.
#[derive(Clone, Debug)]
pub struct QuantileAcc {
    /// `(value, weight)`; weight is 1 for every entry while exact.
    entries: Vec<(f64, u64)>,
    cap: usize,
    exact: bool,
    n: u64,
}

impl QuantileAcc {
    /// An accumulator with the default cap
    /// ([`DEFAULT_QUANTILE_CAP`]).
    pub fn new() -> QuantileAcc {
        QuantileAcc::with_cap(DEFAULT_QUANTILE_CAP)
    }

    /// An accumulator that stays exact forever (unbounded buffer). Use
    /// for figures whose golden output asserts exact quantiles.
    pub fn exact() -> QuantileAcc {
        QuantileAcc {
            entries: Vec::new(),
            cap: usize::MAX,
            exact: true,
            n: 0,
        }
    }

    /// An accumulator that switches to sketch mode once `cap` entries
    /// are buffered. Panics if `cap < 8` (too coarse to interpolate).
    pub fn with_cap(cap: usize) -> QuantileAcc {
        assert!(cap >= 8, "QuantileAcc cap too small");
        QuantileAcc {
            entries: Vec::new(),
            cap,
            exact: true,
            n: 0,
        }
    }

    /// Folds in one sample. NaN is rejected with a panic — it indicates
    /// an upstream bug (matching the batch helpers).
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN sample in QuantileAcc");
        self.n += 1;
        self.entries.push((x, 1));
        if self.entries.len() >= self.cap {
            self.compact();
        }
    }

    /// Merges another accumulator by concatenating its entries after
    /// this one's. Exact + exact under the cap stays exact (and is
    /// merge-order independent); otherwise the result is a sketch.
    pub fn merge(&mut self, other: &QuantileAcc) {
        self.n += other.n;
        self.exact &= other.exact;
        self.entries.extend_from_slice(&other.entries);
        if self.entries.len() >= self.cap {
            self.compact();
        }
    }

    /// Collapses sorted adjacent pairs into weighted centroids until
    /// the entry count is at most half the cap.
    fn compact(&mut self) {
        self.exact = false;
        while self.entries.len() >= self.cap {
            self.entries
                .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN in QuantileAcc"));
            let mut out = Vec::with_capacity(self.entries.len() / 2 + 1);
            let mut it = self.entries.chunks_exact(2);
            for pair in &mut it {
                let (v0, w0) = pair[0];
                let (v1, w1) = pair[1];
                let w = w0 + w1;
                out.push(((v0 * w0 as f64 + v1 * w1 as f64) / w as f64, w));
            }
            if let [last] = it.remainder() {
                out.push(*last);
            }
            self.entries = out;
        }
    }

    /// Number of samples folded so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// True while no compaction has happened (results bit-identical to
    /// the batch helpers).
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// Bytes retained by the buffer — the quantity the memory benchmark
    /// tracks.
    pub fn retained_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(f64, u64)>()
    }

    /// The buffered values in arrival order; `None` once sketched. Lets
    /// finishers reuse batch consumers ([`Summary::of`],
    /// [`crate::BoxSummary`]) unchanged.
    pub fn values(&self) -> Option<Vec<f64>> {
        if self.exact {
            Some(self.entries.iter().map(|&(v, _)| v).collect())
        } else {
            None
        }
    }

    /// Quantile `q ∈ [0, 1]`; `None` when empty or out of range.
    /// Bit-identical to [`crate::quantile::quantile`] while exact.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.entries.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let mut v = self.entries.clone();
        v.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN in QuantileAcc"));
        if self.exact {
            let sorted: Vec<f64> = v.iter().map(|&(x, _)| x).collect();
            return Some(quantile_sorted(&sorted, q));
        }
        // Weighted type-7-style interpolation on centroid midranks.
        let total: u64 = v.iter().map(|&(_, w)| w).sum();
        if total == 1 {
            return Some(v[0].0);
        }
        let h = q * (total - 1) as f64;
        let mut cum = 0u64;
        let mut prev: Option<(f64, f64)> = None; // (midrank, value)
        for &(val, w) in &v {
            let mid = cum as f64 + (w as f64 - 1.0) / 2.0;
            if let Some((pm, pv)) = prev {
                if h <= mid {
                    if (mid - pm).abs() < f64::EPSILON {
                        return Some(val);
                    }
                    let frac = (h - pm) / (mid - pm);
                    return Some(pv * (1.0 - frac) + val * frac);
                }
            } else if h <= mid {
                return Some(val);
            }
            prev = Some((mid, val));
            cum += w;
        }
        Some(v.last().unwrap().0)
    }

    /// The median; `None` when empty.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Interquartile range; `None` when empty.
    pub fn iqr(&self) -> Option<f64> {
        Some(self.quantile(0.75)? - self.quantile(0.25)?)
    }

    /// Builds an [`Ecdf`] over the buffered samples; `None` once
    /// sketched (an ECDF needs every sample).
    pub fn ecdf(&self) -> Option<Ecdf> {
        self.values().map(|v| Ecdf::new(&v))
    }
}

impl Default for QuantileAcc {
    fn default() -> QuantileAcc {
        QuantileAcc::new()
    }
}

// ---------------------------------------------------------------------
// Streaming Summary
// ---------------------------------------------------------------------

/// Streaming counterpart of [`Summary`]: an exact buffer (finish calls
/// [`Summary::of`] verbatim → bit-identical) backed by a [`Welford`]
/// fallback once the buffer is sketched.
#[derive(Clone, Debug)]
pub struct SummaryAcc {
    q: QuantileAcc,
    w: Welford,
}

impl SummaryAcc {
    /// An accumulator that stays exact forever.
    pub fn exact() -> SummaryAcc {
        SummaryAcc {
            q: QuantileAcc::exact(),
            w: Welford::new(),
        }
    }

    /// An accumulator with a buffer cap (sketch beyond).
    pub fn with_cap(cap: usize) -> SummaryAcc {
        SummaryAcc {
            q: QuantileAcc::with_cap(cap),
            w: Welford::new(),
        }
    }

    /// Folds in one sample.
    pub fn push(&mut self, x: f64) {
        self.q.push(x);
        self.w.push(x);
    }

    /// Merges another accumulator (concatenation order).
    pub fn merge(&mut self, other: &SummaryAcc) {
        self.q.merge(&other.q);
        self.w.merge(&other.w);
    }

    /// Number of samples folded so far.
    pub fn count(&self) -> u64 {
        self.w.count()
    }

    /// True while the summary is bit-identical to [`Summary::of`].
    pub fn is_exact(&self) -> bool {
        self.q.is_exact()
    }

    /// Bytes retained by the buffer.
    pub fn retained_bytes(&self) -> usize {
        self.q.retained_bytes()
    }

    /// The summary; `None` when empty. Exact mode delegates to
    /// [`Summary::of`] on the buffered values; sketch mode assembles
    /// the summary from Welford moments and sketch quantiles.
    pub fn summary(&self) -> Option<Summary> {
        if self.count() == 0 {
            return None;
        }
        if let Some(v) = self.q.values() {
            return Summary::of(&v);
        }
        Some(Summary {
            n: self.w.count() as usize,
            mean: self.w.mean().unwrap(),
            std: self.w.sample_std().unwrap_or(0.0),
            min: self.w.min().unwrap(),
            p25: self.q.quantile(0.25).unwrap(),
            median: self.q.quantile(0.5).unwrap(),
            p75: self.q.quantile(0.75).unwrap(),
            p95: self.q.quantile(0.95).unwrap(),
            max: self.w.max().unwrap(),
        })
    }
}

impl Default for SummaryAcc {
    fn default() -> SummaryAcc {
        SummaryAcc::exact()
    }
}

// ---------------------------------------------------------------------
// Group-by-key medians
// ---------------------------------------------------------------------

/// Group-by-key quantile accumulators: one [`QuantileAcc`] per `u64`
/// key, iterated in key order (deterministic output).
#[derive(Clone, Debug)]
pub struct GroupedMedians {
    groups: std::collections::BTreeMap<u64, QuantileAcc>,
    exact: bool,
    cap: usize,
}

impl GroupedMedians {
    /// Per-group accumulators that stay exact forever.
    pub fn exact() -> GroupedMedians {
        GroupedMedians {
            groups: std::collections::BTreeMap::new(),
            exact: true,
            cap: 0,
        }
    }

    /// Per-group accumulators with a buffer cap each.
    pub fn with_cap(cap: usize) -> GroupedMedians {
        GroupedMedians {
            groups: std::collections::BTreeMap::new(),
            exact: false,
            cap,
        }
    }

    fn make_acc(&self) -> QuantileAcc {
        if self.exact {
            QuantileAcc::exact()
        } else {
            QuantileAcc::with_cap(self.cap)
        }
    }

    /// Folds one sample into `key`'s accumulator.
    pub fn push(&mut self, key: u64, x: f64) {
        let acc = self.make_acc();
        self.groups.entry(key).or_insert(acc).push(x);
    }

    /// Merges per-key (concatenation order within each key).
    pub fn merge(&mut self, other: &GroupedMedians) {
        for (k, acc) in &other.groups {
            match self.groups.get_mut(k) {
                Some(mine) => mine.merge(acc),
                None => {
                    self.groups.insert(*k, acc.clone());
                }
            }
        }
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when no sample has been pushed.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The accumulator for `key`, if any sample arrived for it.
    pub fn get(&self, key: u64) -> Option<&QuantileAcc> {
        self.groups.get(&key)
    }

    /// Iterates `(key, accumulator)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &QuantileAcc)> {
        self.groups.iter().map(|(&k, a)| (k, a))
    }

    /// `(key, median)` pairs in key order.
    pub fn medians(&self) -> Vec<(u64, f64)> {
        self.groups
            .iter()
            .map(|(&k, a)| (k, a.median().unwrap()))
            .collect()
    }

    /// Total bytes retained across groups.
    pub fn retained_bytes(&self) -> usize {
        self.groups.values().map(|a| a.retained_bytes()).sum()
    }
}

impl Default for GroupedMedians {
    fn default() -> GroupedMedians {
        GroupedMedians::exact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::{mean, median, quantile, sample_std, variance};

    fn ramp(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 37) % 101) as f64 * 0.75).collect()
    }

    #[test]
    fn welford_matches_batch_moments() {
        let xs = ramp(500);
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 500);
        assert!((w.mean().unwrap() - mean(&xs).unwrap()).abs() < 1e-9);
        assert!((w.variance().unwrap() - variance(&xs).unwrap()).abs() < 1e-9);
        assert!((w.sample_std().unwrap() - sample_std(&xs).unwrap()).abs() < 1e-9);
        assert_eq!(
            w.min().unwrap(),
            xs.iter().cloned().fold(f64::INFINITY, f64::min)
        );
    }

    #[test]
    fn welford_merge_matches_single_stream() {
        let xs = ramp(301);
        for split in [0, 1, 150, 300, 301] {
            let (a, b) = xs.split_at(split);
            let mut wa = Welford::new();
            let mut wb = Welford::new();
            a.iter().for_each(|&x| wa.push(x));
            b.iter().for_each(|&x| wb.push(x));
            wa.merge(&wb);
            assert!((wa.mean().unwrap() - mean(&xs).unwrap()).abs() < 1e-9);
            assert!((wa.variance().unwrap() - variance(&xs).unwrap()).abs() < 1e-8);
        }
    }

    #[test]
    fn mean_acc_is_bit_identical_in_arrival_order() {
        let xs = ramp(777);
        let mut m = MeanAcc::new();
        for &x in &xs {
            m.push(x);
        }
        assert_eq!(m.mean().unwrap(), mean(&xs).unwrap());
    }

    #[test]
    fn exact_quantiles_are_bit_identical() {
        let xs = ramp(400);
        let mut q = QuantileAcc::exact();
        for &x in &xs {
            q.push(x);
        }
        assert!(q.is_exact());
        for p in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0] {
            assert_eq!(q.quantile(p), quantile(&xs, p));
        }
        assert_eq!(q.median(), median(&xs));
        assert_eq!(q.iqr(), crate::quantile::iqr(&xs));
    }

    #[test]
    fn exact_merge_is_bit_identical_for_any_split() {
        let xs = ramp(250);
        for split in [0, 1, 97, 249, 250] {
            let (a, b) = xs.split_at(split);
            let mut qa = QuantileAcc::exact();
            let mut qb = QuantileAcc::exact();
            a.iter().for_each(|&x| qa.push(x));
            b.iter().for_each(|&x| qb.push(x));
            qa.merge(&qb);
            assert!(qa.is_exact());
            assert_eq!(qa.median(), median(&xs));
            assert_eq!(qa.quantile(0.95), quantile(&xs, 0.95));
        }
    }

    #[test]
    fn sketch_mode_bounds_memory_and_stays_close() {
        let n: u64 = 200_000;
        let mut q = QuantileAcc::with_cap(512);
        for i in 0..n {
            // Deterministic pseudo-shuffle of a uniform grid.
            q.push(((i * 48_271) % n) as f64);
        }
        assert!(!q.is_exact());
        assert!(q.entries.len() < 512);
        assert!(q.retained_bytes() < 512 * 16 * 2);
        assert_eq!(q.count(), n);
        let med = q.median().unwrap();
        let expect = (n - 1) as f64 / 2.0;
        assert!(
            (med - expect).abs() < expect * 0.02,
            "sketch median {med} vs {expect}"
        );
        // Monotone in q, clamped to range.
        let mut last = f64::NEG_INFINITY;
        for i in 0..=20 {
            let v = q.quantile(i as f64 / 20.0).unwrap();
            assert!(v >= last && v >= 0.0 && v <= (n - 1) as f64);
            last = v;
        }
    }

    #[test]
    fn sketch_is_deterministic() {
        let push_all = || {
            let mut q = QuantileAcc::with_cap(64);
            for i in 0..10_000u64 {
                q.push(((i * 2_654_435_761) % 10_000) as f64);
            }
            q
        };
        let a = push_all();
        let b = push_all();
        assert_eq!(a.entries, b.entries);
        assert_eq!(a.quantile(0.9), b.quantile(0.9));
    }

    #[test]
    fn summary_acc_exact_matches_batch_summary() {
        let xs = ramp(321);
        let mut s = SummaryAcc::exact();
        for &x in &xs {
            s.push(x);
        }
        assert!(s.is_exact());
        assert_eq!(s.summary(), Summary::of(&xs));
        assert!(SummaryAcc::exact().summary().is_none());
    }

    #[test]
    fn summary_acc_sketch_mode_is_sane() {
        let mut s = SummaryAcc::with_cap(128);
        for i in 0..50_000u64 {
            s.push(((i * 7919) % 1000) as f64);
        }
        assert!(!s.is_exact());
        let sum = s.summary().unwrap();
        assert_eq!(sum.n, 50_000);
        assert_eq!(sum.min, 0.0);
        assert_eq!(sum.max, 999.0);
        assert!((sum.mean - 499.5).abs() < 5.0);
        assert!(sum.p25 < sum.median && sum.median < sum.p75 && sum.p75 < sum.p95);
    }

    #[test]
    fn grouped_medians_match_batch_per_group() {
        let mut g = GroupedMedians::exact();
        let mut raw: std::collections::BTreeMap<u64, Vec<f64>> = Default::default();
        for i in 0..600u64 {
            let key = i % 7;
            let x = ((i * 31) % 113) as f64;
            g.push(key, x);
            raw.entry(key).or_default().push(x);
        }
        assert_eq!(g.len(), 7);
        for (k, m) in g.medians() {
            assert_eq!(Some(m), median(&raw[&k]));
        }
        assert!(g.retained_bytes() > 0);
    }

    #[test]
    fn grouped_merge_concatenates_per_key() {
        let xs: Vec<(u64, f64)> = (0..200u64).map(|i| (i % 5, (i * 13 % 47) as f64)).collect();
        let (a, b) = xs.split_at(83);
        let mut ga = GroupedMedians::exact();
        let mut gb = GroupedMedians::exact();
        a.iter().for_each(|&(k, x)| ga.push(k, x));
        b.iter().for_each(|&(k, x)| gb.push(k, x));
        ga.merge(&gb);
        let mut gall = GroupedMedians::exact();
        xs.iter().for_each(|&(k, x)| gall.push(k, x));
        assert_eq!(ga.medians(), gall.medians());
    }

    #[test]
    fn ecdf_from_exact_acc() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        let mut q = QuantileAcc::exact();
        xs.iter().for_each(|&x| q.push(x));
        let e = q.ecdf().unwrap();
        assert_eq!(e.fraction_le(3.0), 0.6);
        let mut sk = QuantileAcc::with_cap(8);
        (0..100).for_each(|i| sk.push(i as f64));
        assert!(sk.ecdf().is_none());
    }

    // ---------- merge edge cases (telemetry relies on these) ----------

    #[test]
    fn merge_with_empty_is_identity_in_either_direction() {
        let xs = ramp(120);

        let mut w = Welford::new();
        xs.iter().for_each(|&x| w.push(x));
        let mut w_right = w;
        w_right.merge(&Welford::new());
        let mut w_left = Welford::new();
        w_left.merge(&w);
        for got in [&w_right, &w_left] {
            assert_eq!(got.count(), w.count());
            assert_eq!(got.mean().unwrap().to_bits(), w.mean().unwrap().to_bits());
            assert_eq!(
                got.variance().unwrap().to_bits(),
                w.variance().unwrap().to_bits()
            );
            assert_eq!(got.min().unwrap().to_bits(), w.min().unwrap().to_bits());
            assert_eq!(got.max().unwrap().to_bits(), w.max().unwrap().to_bits());
        }

        let mut m = MeanAcc::new();
        xs.iter().for_each(|&x| m.push(x));
        let mut m_right = m;
        m_right.merge(&MeanAcc::new());
        let mut m_left = MeanAcc::new();
        m_left.merge(&m);
        assert_eq!(m_right.count(), m.count());
        assert_eq!(m_left.count(), m.count());
        assert_eq!(
            m_right.mean().unwrap().to_bits(),
            m.mean().unwrap().to_bits()
        );
        assert_eq!(
            m_left.mean().unwrap().to_bits(),
            m.mean().unwrap().to_bits()
        );

        let mut q = QuantileAcc::exact();
        xs.iter().for_each(|&x| q.push(x));
        let mut q_right = q.clone();
        q_right.merge(&QuantileAcc::exact());
        let mut q_left = QuantileAcc::exact();
        q_left.merge(&q);
        for got in [&q_right, &q_left] {
            assert_eq!(got.count(), q.count());
            assert!(got.is_exact());
            assert_eq!(got.values(), q.values());
        }

        let mut s = SummaryAcc::exact();
        xs.iter().for_each(|&x| s.push(x));
        let mut s_right = SummaryAcc::exact();
        xs.iter().for_each(|&x| s_right.push(x));
        s_right.merge(&SummaryAcc::exact());
        let mut s_left = SummaryAcc::exact();
        s_left.merge(&s);
        assert_eq!(s_right.summary(), s.summary());
        assert_eq!(s_left.summary(), s.summary());

        // Empty ∪ empty stays empty (no spurious zero-count summary).
        let mut e = SummaryAcc::exact();
        e.merge(&SummaryAcc::exact());
        assert_eq!(e.count(), 0);
        assert!(e.summary().is_none());
    }

    #[test]
    fn quantile_acc_at_exact_to_sketch_cap_boundary() {
        // cap = 8: exactness must survive exactly up to (cap - 1)
        // buffered entries and flip on the push that reaches the cap.
        let mut q = QuantileAcc::with_cap(8);
        for i in 0..7 {
            q.push(i as f64);
            assert!(q.is_exact(), "exactness lost before the cap (i={i})");
        }
        assert_eq!(q.values().unwrap().len(), 7);
        q.push(7.0);
        assert!(!q.is_exact(), "push reaching the cap must compact");
        assert_eq!(q.count(), 8, "compaction must not lose the count");
        assert!(q.values().is_none());
        // The sketch still answers with in-range, ordered quantiles.
        let (p25, p50, p95) = (
            q.quantile(0.25).unwrap(),
            q.quantile(0.5).unwrap(),
            q.quantile(0.95).unwrap(),
        );
        assert!((0.0..=7.0).contains(&p25));
        assert!(p25 <= p50 && p50 <= p95);

        // The merge path crosses the same boundary: 4 + 4 entries into
        // a cap-8 accumulator compacts, 4 + 3 stays exact.
        let mut four_a = QuantileAcc::with_cap(8);
        let mut four_b = QuantileAcc::with_cap(8);
        (0..4).for_each(|i| four_a.push(i as f64));
        (4..8).for_each(|i| four_b.push(i as f64));
        four_a.merge(&four_b);
        assert!(!four_a.is_exact());
        assert_eq!(four_a.count(), 8);

        let mut three = QuantileAcc::with_cap(8);
        (0..3).for_each(|i| three.push(i as f64));
        let mut four_c = QuantileAcc::with_cap(8);
        (0..4).for_each(|i| four_c.push(i as f64));
        four_c.merge(&three);
        assert!(four_c.is_exact(), "7 entries under an 8 cap stays exact");
        assert_eq!(four_c.values().unwrap().len(), 7);
    }

    #[test]
    #[should_panic(expected = "cap too small")]
    fn quantile_acc_rejects_caps_below_eight() {
        let _ = QuantileAcc::with_cap(7);
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Merging three shards is associative: ((a∪b)∪c) and (a∪(b∪c))
        /// agree with each other and with single-stream accumulation —
        /// bitwise for the exact quantile buffer (concatenation order
        /// is identical), exactly for counts, and within float-merge
        /// tolerance for Welford/MeanAcc moments (their merges are not
        /// bitwise associative).
        #[test]
        fn three_way_split_merge_is_associative(
            xs in prop::collection::vec(0.0f64..1.0e6, 0..150),
            cut_a in 0u64..151,
            cut_b in 0u64..151,
        ) {
            let (mut i, mut j) = (
                (cut_a as usize).min(xs.len()),
                (cut_b as usize).min(xs.len()),
            );
            if i > j {
                std::mem::swap(&mut i, &mut j);
            }
            let parts = [&xs[..i], &xs[i..j], &xs[j..]];

            // Exact quantile buffers: bitwise associative.
            let fill_q = |part: &[f64]| {
                let mut q = QuantileAcc::exact();
                part.iter().for_each(|&x| q.push(x));
                q
            };
            let [qb, qc] = [fill_q(parts[1]), fill_q(parts[2])];
            let mut left = fill_q(parts[0]);
            left.merge(&qb);
            left.merge(&qc);
            let mut bc = fill_q(parts[1]);
            bc.merge(&qc);
            let mut right = fill_q(parts[0]);
            right.merge(&bc);
            let single = fill_q(&xs);
            prop_assert_eq!(left.count(), single.count());
            prop_assert_eq!(right.count(), single.count());
            let want = single.values();
            prop_assert_eq!(left.values(), want.clone());
            prop_assert_eq!(right.values(), want);

            // Moment accumulators: counts exact, moments near-equal.
            let fill_w = |part: &[f64]| {
                let mut w = Welford::new();
                part.iter().for_each(|&x| w.push(x));
                w
            };
            let mut wl = fill_w(parts[0]);
            wl.merge(&fill_w(parts[1]));
            wl.merge(&fill_w(parts[2]));
            let mut wbc = fill_w(parts[1]);
            wbc.merge(&fill_w(parts[2]));
            let mut wr = fill_w(parts[0]);
            wr.merge(&wbc);
            let ws = fill_w(&xs);
            prop_assert_eq!(wl.count(), ws.count());
            prop_assert_eq!(wr.count(), ws.count());
            if !xs.is_empty() {
                let m = ws.mean().unwrap();
                let tol = 1e-9 * m.abs().max(1.0);
                prop_assert!((wl.mean().unwrap() - m).abs() <= tol);
                prop_assert!((wr.mean().unwrap() - m).abs() <= tol);
                let v = ws.variance().unwrap();
                let vtol = 1e-6 * v.abs().max(1.0);
                prop_assert!((wl.variance().unwrap() - v).abs() <= vtol);
                prop_assert!((wr.variance().unwrap() - v).abs() <= vtol);
                // min/max are order-free: bitwise equal.
                prop_assert_eq!(
                    wl.min().unwrap().to_bits(),
                    ws.min().unwrap().to_bits()
                );
                prop_assert_eq!(
                    wr.max().unwrap().to_bits(),
                    ws.max().unwrap().to_bits()
                );
            }

            let fill_m = |part: &[f64]| {
                let mut m = MeanAcc::new();
                part.iter().for_each(|&x| m.push(x));
                m
            };
            let mut ml = fill_m(parts[0]);
            ml.merge(&fill_m(parts[1]));
            ml.merge(&fill_m(parts[2]));
            let ms = fill_m(&xs);
            prop_assert_eq!(ml.count(), ms.count());
            if !xs.is_empty() {
                let m = ms.mean().unwrap();
                prop_assert!((ml.mean().unwrap() - m).abs() <= 1e-9 * m.abs().max(1.0));
            }
        }
    }
}
