//! Two-sample Kolmogorov–Smirnov statistics.
//!
//! The Sec. 3 "do FE servers cache search results?" experiment compares
//! the `Tdynamic` distribution of *repeated identical* queries against
//! that of *all-distinct* queries to the same FE. If the FE cached
//! results, the repeated-query distribution would collapse toward
//! `Tstatic`-like values and the two distributions would separate sharply.
//! The KS distance is the natural two-sample test for that comparison.

use crate::ecdf::Ecdf;

/// The two-sample KS distance `sup_x |F_a(x) − F_b(x)|`.
///
/// Returns `None` if either sample is empty.
pub fn ks_distance(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let fa = Ecdf::new(a);
    let fb = Ecdf::new(b);
    let mut xs: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
    xs.sort_by(|p, q| p.partial_cmp(q).expect("NaN in ks_distance"));
    let mut d: f64 = 0.0;
    for &x in &xs {
        d = d.max((fa.fraction_le(x) - fb.fraction_le(x)).abs());
    }
    Some(d)
}

/// The critical KS distance at significance level α ≈ 0.05 for samples of
/// sizes `n` and `m` (asymptotic formula `c(α)·sqrt((n+m)/(n·m))` with
/// `c(0.05) = 1.358`).
pub fn ks_critical_005(n: usize, m: usize) -> f64 {
    assert!(n > 0 && m > 0);
    1.358 * (((n + m) as f64) / ((n * m) as f64)).sqrt()
}

/// Outcome of the same-vs-distinct-query comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KsVerdict {
    /// Distributions are statistically indistinguishable at α = 0.05.
    Indistinguishable,
    /// Distributions differ significantly.
    Distinct,
}

/// Convenience wrapper: compares two samples and issues a verdict.
/// Returns `None` if either sample is empty.
pub fn ks_test(a: &[f64], b: &[f64]) -> Option<(f64, KsVerdict)> {
    let d = ks_distance(a, b)?;
    let crit = ks_critical_005(a.len(), b.len());
    let verdict = if d > crit {
        KsVerdict::Distinct
    } else {
        KsVerdict::Indistinguishable
    };
    Some((d, verdict))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_distance_zero() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ks_distance(&a, &a), Some(0.0));
    }

    #[test]
    fn disjoint_samples_distance_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0];
        assert_eq!(ks_distance(&a, &b), Some(1.0));
    }

    #[test]
    fn empty_input_is_none() {
        assert_eq!(ks_distance(&[], &[1.0]), None);
        assert_eq!(ks_distance(&[1.0], &[]), None);
        assert!(ks_test(&[], &[1.0]).is_none());
    }

    #[test]
    fn shifted_distributions_partial_overlap() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = (50..150).map(|i| i as f64).collect();
        let d = ks_distance(&a, &b).unwrap();
        assert!((d - 0.5).abs() < 0.02, "d {d}");
    }

    #[test]
    fn critical_value_shrinks_with_sample_size() {
        assert!(ks_critical_005(1000, 1000) < ks_critical_005(10, 10));
        // Known value: c·sqrt(2/n) for equal sizes.
        let crit = ks_critical_005(100, 100);
        assert!((crit - 1.358 * (0.02f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn verdicts() {
        // Same uniform grid, slightly jittered: indistinguishable.
        let a: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..200).map(|i| i as f64 + 0.1).collect();
        let (_, v) = ks_test(&a, &b).unwrap();
        assert_eq!(v, KsVerdict::Indistinguishable);

        // Strongly separated: distinct.
        let c: Vec<f64> = (1000..1200).map(|i| i as f64).collect();
        let (_, v2) = ks_test(&a, &c).unwrap();
        assert_eq!(v2, KsVerdict::Distinct);
    }
}
