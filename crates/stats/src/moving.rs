//! Moving (rolling) statistics.
//!
//! The paper smooths per-query time series with a **moving median of
//! window 10** before plotting Fig. 3 ("as the performance is susceptible
//! to short-term fluctuations, we plot the moving median with the sample
//! window size being 10"). [`moving_median`] reproduces that exactly;
//! [`moving_mean`] is provided for ablations.

use crate::quantile::quantile_sorted;

/// Moving median with a trailing window of `window` samples.
///
/// Output has the same length as the input; the first `window − 1`
/// positions use the partial window available so far (the convention that
/// keeps plotted series aligned with their sample index, as in Fig. 3).
/// Panics if `window == 0`.
pub fn moving_median(xs: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "moving_median: zero window");
    let mut out = Vec::with_capacity(xs.len());
    let mut buf: Vec<f64> = Vec::with_capacity(window);
    for (i, &x) in xs.iter().enumerate() {
        let start = i.saturating_sub(window - 1);
        buf.clear();
        buf.extend_from_slice(&xs[start..=i]);
        buf.sort_by(|a, b| a.partial_cmp(b).expect("NaN in moving_median"));
        out.push(quantile_sorted(&buf, 0.5));
        let _ = x;
    }
    out
}

/// Moving mean with the same trailing-window convention as
/// [`moving_median`].
pub fn moving_mean(xs: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "moving_mean: zero window");
    let mut out = Vec::with_capacity(xs.len());
    let mut sum = 0.0;
    for i in 0..xs.len() {
        sum += xs[i];
        if i >= window {
            sum -= xs[i - window];
        }
        let n = (i + 1).min(window);
        out.push(sum / n as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_one_is_identity() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0];
        assert_eq!(moving_median(&xs, 1), xs.to_vec());
        assert_eq!(moving_mean(&xs, 1), xs.to_vec());
    }

    #[test]
    fn median_suppresses_spikes() {
        let mut xs = vec![10.0; 50];
        xs[25] = 1000.0; // a one-sample spike
        let sm = moving_median(&xs, 10);
        assert!(sm.iter().all(|&v| v == 10.0));
    }

    #[test]
    fn partial_windows_at_start() {
        let xs = [1.0, 100.0, 2.0];
        let sm = moving_median(&xs, 3);
        assert_eq!(sm[0], 1.0); // window = [1]
        assert_eq!(sm[1], 50.5); // window = [1, 100]
        assert_eq!(sm[2], 2.0); // window = [1, 100, 2] → median 2
    }

    #[test]
    fn mean_matches_manual_computation() {
        let xs = [2.0, 4.0, 6.0, 8.0];
        let mm = moving_mean(&xs, 2);
        assert_eq!(mm, vec![2.0, 3.0, 5.0, 7.0]);
    }

    #[test]
    fn output_length_matches_input() {
        let xs: Vec<f64> = (0..37).map(|i| i as f64).collect();
        assert_eq!(moving_median(&xs, 10).len(), 37);
        assert_eq!(moving_mean(&xs, 10).len(), 37);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        assert!(moving_median(&[], 10).is_empty());
        assert!(moving_mean(&[], 10).is_empty());
    }

    #[test]
    #[should_panic(expected = "zero window")]
    fn zero_window_panics() {
        moving_median(&[1.0], 0);
    }
}
