//! Linear regression.
//!
//! Sec. 5 of the paper fits `Tdynamic` against the FE↔BE geographical
//! distance with ordinary least squares and reads the Y-intercept as the
//! back-end processing time `Tproc` and the slope as the network
//! contribution per mile. [`ols`] reproduces that fit (with R²);
//! [`theil_sen`] is the robust median-of-pairwise-slopes estimator used
//! as a cross-check, since a handful of overloaded-FE outliers can drag an
//! OLS intercept badly.

/// A fitted line `y = slope·x + intercept`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Y-intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination (R²); 1.0 for a perfect fit. For
    /// Theil–Sen this is the R² of the robust line, computed the same way.
    pub r2: f64,
    /// Number of points used.
    pub n: usize,
}

impl Fit {
    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

fn r_squared(xs: &[f64], ys: &[f64], slope: f64, intercept: f64) -> f64 {
    let my = ys.iter().sum::<f64>() / ys.len() as f64;
    let ss_tot: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(&x, &y)| {
            let e = y - (slope * x + intercept);
            e * e
        })
        .sum();
    if ss_tot <= 0.0 {
        if ss_res <= 1e-18 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Ordinary least squares fit of `y` on `x`.
///
/// Returns `None` when fewer than two points are supplied or all `x`
/// coincide (vertical line).
pub fn ols(xs: &[f64], ys: &[f64]) -> Option<Fit> {
    assert_eq!(xs.len(), ys.len(), "ols: length mismatch");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    if sxx <= 0.0 {
        return None;
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(&x, &y)| (x - mx) * (y - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    Some(Fit {
        slope,
        intercept,
        r2: r_squared(xs, ys, slope, intercept),
        n,
    })
}

/// Pearson correlation coefficient; `None` for fewer than two points or
/// zero variance in either variable.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(&x, &y)| (x - mx) * (y - my)).sum();
    Some(sxy / (sxx * syy).sqrt())
}

/// Theil–Sen robust regression: slope is the median of all pairwise
/// slopes, intercept the median of `y − slope·x`.
///
/// O(n²) pairwise slopes — fine for the few hundred points per figure in
/// this study. Returns `None` for fewer than two points or when all `x`
/// coincide.
pub fn theil_sen(xs: &[f64], ys: &[f64]) -> Option<Fit> {
    assert_eq!(xs.len(), ys.len(), "theil_sen: length mismatch");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let mut slopes = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = xs[j] - xs[i];
            if dx.abs() > 1e-12 {
                slopes.push((ys[j] - ys[i]) / dx);
            }
        }
    }
    if slopes.is_empty() {
        return None;
    }
    slopes.sort_by(|a, b| a.partial_cmp(b).expect("NaN slope"));
    let slope = crate::quantile::quantile_sorted(&slopes, 0.5);
    let mut residuals: Vec<f64> = xs.iter().zip(ys).map(|(&x, &y)| y - slope * x).collect();
    residuals.sort_by(|a, b| a.partial_cmp(b).expect("NaN residual"));
    let intercept = crate::quantile::quantile_sorted(&residuals, 0.5);
    Some(Fit {
        slope,
        intercept,
        r2: r_squared(xs, ys, slope, intercept),
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ols_recovers_exact_line() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.08 * x + 250.0).collect();
        let f = ols(&xs, &ys).unwrap();
        assert!((f.slope - 0.08).abs() < 1e-12);
        assert!((f.intercept - 250.0).abs() < 1e-9);
        assert!((f.r2 - 1.0).abs() < 1e-12);
        assert_eq!(f.n, 50);
        assert!((f.predict(100.0) - 258.0).abs() < 1e-9);
    }

    #[test]
    fn ols_with_symmetric_noise_keeps_slope() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x + 10.0 + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let f = ols(&xs, &ys).unwrap();
        assert!((f.slope - 2.0).abs() < 0.01);
        assert!(f.r2 > 0.999);
    }

    #[test]
    fn ols_degenerate_inputs() {
        assert!(ols(&[1.0], &[2.0]).is_none());
        assert!(ols(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]).is_none());
        assert!(ols(&[], &[]).is_none());
    }

    #[test]
    fn theil_sen_ignores_outliers() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let mut ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 5.0).collect();
        ys[7] = 1e6; // gross outlier
        ys[23] = -1e6;
        let robust = theil_sen(&xs, &ys).unwrap();
        assert!((robust.slope - 3.0).abs() < 0.2, "slope {}", robust.slope);
        assert!((robust.intercept - 5.0).abs() < 3.0);
        let naive = ols(&xs, &ys).unwrap();
        assert!((naive.slope - 3.0).abs() > 1.0, "OLS should be dragged");
    }

    #[test]
    fn theil_sen_matches_ols_on_clean_data() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 10.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.099 * x + 34.0).collect();
        let a = ols(&xs, &ys).unwrap();
        let b = theil_sen(&xs, &ys).unwrap();
        assert!((a.slope - b.slope).abs() < 1e-9);
        assert!((a.intercept - b.intercept).abs() < 1e-6);
    }

    #[test]
    fn r2_zero_for_flat_y_with_residuals() {
        // All y equal but the line has nonzero slope → ss_tot = 0, residuals > 0.
        let r2 = r_squared(&[0.0, 1.0], &[5.0, 5.0], 1.0, 0.0);
        assert_eq!(r2, 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = ols(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn pearson_known_values() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
        // Orthogonal alternating signal: correlation ≈ 0.
        let alt: Vec<f64> = (0..50)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(pearson(&xs, &alt).unwrap().abs() < 0.1);
        // Degenerate inputs.
        assert!(pearson(&[1.0], &[2.0]).is_none());
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_none());
    }
}
