//! # stats — the statistics toolkit behind the measurement analysis
//!
//! Everything the paper's analysis pipeline needs, implemented from
//! scratch and dependency-free:
//!
//! * [`mod@quantile`] — medians, arbitrary quantiles, mean/variance summaries;
//! * [`moving`] — the moving median (window 10) used for Fig. 3;
//! * [`ecdf`] — empirical CDFs (Fig. 6);
//! * [`boxplot`] — five-number summaries for the per-vantage box plots of
//!   Fig. 8;
//! * [`regress`] — ordinary least squares (the Fig. 9 fit) and the robust
//!   Theil–Sen estimator used to cross-check it;
//! * [`cluster`] — one-dimensional temporal gap clustering for the
//!   packet-event clusters of Fig. 4;
//! * [`ks`] — two-sample Kolmogorov–Smirnov distance for the
//!   "do FE servers cache results?" experiment of Sec. 3;
//! * [`hist`] — fixed-width histograms used by reports;
//! * [`streaming`] — mergeable online reducers (Welford moments,
//!   exact-when-small/sketch-when-huge quantiles, group-by-key medians)
//!   backing the bounded-memory campaign result pipeline.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod boxplot;
pub mod cluster;
pub mod ecdf;
pub mod hist;
pub mod ks;
pub mod moving;
pub mod quantile;
pub mod regress;
pub mod streaming;

pub use boxplot::BoxSummary;
pub use cluster::gap_clusters;
pub use ecdf::Ecdf;
pub use hist::Histogram;
pub use ks::ks_distance;
pub use moving::moving_median;
pub use quantile::{mean, median, quantile, Summary};
pub use regress::{ols, pearson, theil_sen, Fit};
pub use streaming::{GroupedMedians, MeanAcc, QuantileAcc, SummaryAcc, Welford};
