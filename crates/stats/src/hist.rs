//! Fixed-width histograms for report output.

/// A histogram over `[lo, hi)` with equal-width bins. Samples outside the
/// range are counted in saturating edge bins so no data is silently lost.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    below: u64,
    above: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    /// Panics if `bins == 0` or the range is empty/invalid.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0, "Histogram: zero bins");
        assert!(
            hi > lo && lo.is_finite() && hi.is_finite(),
            "Histogram: bad range"
        );
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            below: 0,
            above: 0,
            total: 0,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.below += 1;
        } else if x >= self.hi {
            self.above += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Adds every sample in a slice.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Total number of samples seen (including out-of-range).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Out-of-range counts `(below_lo, at_or_above_hi)`.
    pub fn overflow(&self) -> (u64, u64) {
        (self.below, self.above)
    }

    /// The bins as `(bin_center, count)` pairs.
    pub fn bins(&self) -> Vec<(f64, u64)> {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + width * (i as f64 + 0.5), c))
            .collect()
    }

    /// Merges another histogram's counts into this one. Panics when the
    /// two histograms were built over different ranges or bin counts —
    /// merging incompatible binnings silently would corrupt reports.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len(),
            "Histogram::merge: incompatible binning"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.below += other.below;
        self.above += other.above;
        self.total += other.total;
    }

    /// The index of the fullest bin, or `None` if all bins are empty.
    pub fn mode_bin(&self) -> Option<usize> {
        let (idx, &max) = self.counts.iter().enumerate().max_by_key(|&(_, c)| *c)?;
        if max == 0 {
            None
        } else {
            Some(idx)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_in_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.extend(&[0.5, 1.5, 1.6, 9.99]);
        let bins = h.bins();
        assert_eq!(bins[0].1, 1);
        assert_eq!(bins[1].1, 2);
        assert_eq!(bins[9].1, 1);
        assert_eq!(h.total(), 4);
        assert_eq!(h.overflow(), (0, 0));
    }

    #[test]
    fn out_of_range_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.extend(&[-5.0, 0.5, 2.0, 1.0]);
        assert_eq!(h.overflow(), (1, 2)); // 1.0 is at hi → above
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 10.0, 5);
        let centers: Vec<f64> = h.bins().iter().map(|b| b.0).collect();
        assert_eq!(centers, vec![1.0, 3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn mode_bin() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        assert_eq!(h.mode_bin(), None);
        h.extend(&[0.1, 1.1, 1.2, 2.5]);
        assert_eq!(h.mode_bin(), Some(1));
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn invalid_range_panics() {
        Histogram::new(5.0, 5.0, 3);
    }
}
