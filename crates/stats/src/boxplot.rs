//! Box-plot (five-number) summaries.
//!
//! Fig. 8 of the paper shows, per PlanetLab node, a box plot of the
//! overall response-time distribution. [`BoxSummary`] computes the
//! standard Tukey box: quartiles, whiskers at the last sample within
//! 1.5·IQR of the box, and the outliers beyond them.

use crate::quantile::quantile_sorted;

/// A Tukey box-plot summary of one sample set.
#[derive(Clone, Debug, PartialEq)]
pub struct BoxSummary {
    /// Number of samples.
    pub n: usize,
    /// Lower whisker (smallest sample ≥ q1 − 1.5·IQR).
    pub whisker_lo: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Upper whisker (largest sample ≤ q3 + 1.5·IQR).
    pub whisker_hi: f64,
    /// Samples outside the whiskers, in ascending order.
    pub outliers: Vec<f64>,
}

impl BoxSummary {
    /// Computes the box summary; `None` for empty input.
    pub fn of(xs: &[f64]) -> Option<BoxSummary> {
        if xs.is_empty() {
            return None;
        }
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in BoxSummary input"));
        let q1 = quantile_sorted(&v, 0.25);
        let median = quantile_sorted(&v, 0.5);
        let q3 = quantile_sorted(&v, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        // Whisker = most extreme sample within the fence, clamped to the
        // box (with few samples, every low datum can be an outlier and
        // the nearest in-fence sample may sit above Q1 — plotting
        // convention keeps whiskers attached to the box).
        let whisker_lo = v
            .iter()
            .find(|&&x| x >= lo_fence)
            .expect("q1 is within the fence")
            .min(q1);
        let whisker_hi = v
            .iter()
            .rev()
            .find(|&&x| x <= hi_fence)
            .expect("q3 is within the fence")
            .max(q3);
        let outliers: Vec<f64> = v
            .iter()
            .copied()
            .filter(|&x| x < lo_fence || x > hi_fence)
            .collect();
        Some(BoxSummary {
            n: v.len(),
            whisker_lo,
            q1,
            median,
            q3,
            whisker_hi,
            outliers,
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// The whisker span — a robust variability measure used when ranking
    /// services by response-time stability.
    pub fn whisker_span(&self) -> f64 {
        self.whisker_hi - self.whisker_lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_data_without_outliers() {
        let xs: Vec<f64> = (1..=11).map(|i| i as f64).collect();
        let b = BoxSummary::of(&xs).unwrap();
        assert_eq!(b.median, 6.0);
        assert_eq!(b.q1, 3.5);
        assert_eq!(b.q3, 8.5);
        assert_eq!(b.whisker_lo, 1.0);
        assert_eq!(b.whisker_hi, 11.0);
        assert!(b.outliers.is_empty());
        assert_eq!(b.iqr(), 5.0);
        assert_eq!(b.whisker_span(), 10.0);
    }

    #[test]
    fn detects_outliers() {
        let mut xs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        xs.push(1000.0);
        let b = BoxSummary::of(&xs).unwrap();
        assert_eq!(b.outliers, vec![1000.0]);
        assert!(b.whisker_hi <= 20.0);
    }

    #[test]
    fn constant_data_degenerates_cleanly() {
        let b = BoxSummary::of(&[5.0; 9]).unwrap();
        assert_eq!(b.q1, 5.0);
        assert_eq!(b.q3, 5.0);
        assert_eq!(b.whisker_lo, 5.0);
        assert_eq!(b.whisker_hi, 5.0);
        assert!(b.outliers.is_empty());
    }

    #[test]
    fn empty_is_none() {
        assert!(BoxSummary::of(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let b = BoxSummary::of(&[3.0]).unwrap();
        assert_eq!(b.n, 1);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.whisker_lo, 3.0);
        assert_eq!(b.whisker_hi, 3.0);
    }

    #[test]
    fn outliers_on_both_sides() {
        let mut xs: Vec<f64> = (10..=30).map(|i| i as f64).collect();
        xs.push(-500.0);
        xs.push(500.0);
        let b = BoxSummary::of(&xs).unwrap();
        assert_eq!(b.outliers, vec![-500.0, 500.0]);
    }
}
