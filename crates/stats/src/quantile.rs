//! Quantiles, medians and moment summaries.
//!
//! Quantiles use linear interpolation between order statistics (type 7 in
//! the Hyndman–Fan taxonomy, the R/NumPy default), which is what the
//! paper's MATLAB-era analysis would have used for its medians.

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance; `None` for an empty slice.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Sample standard deviation (n−1 denominator); `None` for fewer than two
/// samples.
pub fn sample_std(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    Some((ss / (xs.len() - 1) as f64).sqrt())
}

/// Quantile `q ∈ [0, 1]` of an **unsorted** slice (copies and sorts).
/// `None` for an empty slice or out-of-range `q`.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    Some(quantile_sorted(&v, q))
}

/// Quantile of an already-sorted slice (no allocation). Panics on empty
/// input in debug builds; returns the single element for length-1 input.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    debug_assert!((0.0..=1.0).contains(&q));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = h - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median of an unsorted slice.
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Interquartile range.
pub fn iqr(xs: &[f64]) -> Option<f64> {
    Some(quantile(xs, 0.75)? - quantile(xs, 0.25)?)
}

/// A compact distribution summary used throughout the experiment reports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 when n < 2).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary; `None` for empty input.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in Summary input"));
        Some(Summary {
            n: v.len(),
            mean: mean(&v).unwrap(),
            std: sample_std(&v).unwrap_or(0.0),
            min: v[0],
            p25: quantile_sorted(&v, 0.25),
            median: quantile_sorted(&v, 0.5),
            p75: quantile_sorted(&v, 0.75),
            p95: quantile_sorted(&v, 0.95),
            max: *v.last().unwrap(),
        })
    }

    /// Coefficient of variation (std/mean); `None` when the mean is ~0.
    pub fn cv(&self) -> Option<f64> {
        if self.mean.abs() < 1e-12 {
            None
        } else {
            Some(self.std / self.mean)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(variance(&[1.0, 1.0, 1.0]), Some(0.0));
        assert!((variance(&[1.0, 3.0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sample_std_needs_two() {
        assert_eq!(sample_std(&[1.0]), None);
        assert!((sample_std(&[2.0, 4.0]).unwrap() - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&xs, 0.0), Some(10.0));
        assert_eq!(quantile(&xs, 1.0), Some(40.0));
        assert!((quantile(&xs, 0.25).unwrap() - 17.5).abs() < 1e-12);
        assert_eq!(quantile(&xs, 1.5), None);
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile(&[7.0], 0.3), Some(7.0));
    }

    #[test]
    fn iqr_of_uniform_grid() {
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        assert!((iqr(&xs).unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn summary_fields_consistent() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&xs).unwrap();
        assert_eq!(s.n, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.median - 50.5).abs() < 1e-9);
        assert!(s.p25 < s.median && s.median < s.p75 && s.p75 < s.p95);
        assert!(s.cv().unwrap() > 0.0);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn cv_none_for_zero_mean() {
        let s = Summary::of(&[-1.0, 1.0]).unwrap();
        assert!(s.cv().is_none());
    }
}
