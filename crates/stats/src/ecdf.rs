//! Empirical cumulative distribution functions.
//!
//! Fig. 6 of the paper compares the RTT distributions of the two services
//! as CDFs and reads off "fraction of vantage points with RTT below
//! 20 ms". [`Ecdf`] supports exactly those queries plus sampling the curve
//! for plotting.

/// An empirical CDF over a set of samples.
#[derive(Clone, Debug)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF (copies and sorts the samples). NaN samples are
    /// rejected with a panic — they indicate an upstream bug.
    pub fn new(samples: &[f64]) -> Ecdf {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample in Ecdf"));
        Ecdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when built from no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)` — the fraction of samples `≤ x`. Returns 0 for an empty
    /// ECDF.
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point: first index whose sample is > x.
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: the smallest sample `x` with `F(x) ≥ q`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        Some(self.sorted[idx])
    }

    /// The full step curve as `(x, F(x))` pairs, one per distinct sample —
    /// what a plotting harness writes out.
    pub fn curve(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (i, &x) in self.sorted.iter().enumerate() {
            let y = (i + 1) as f64 / n as f64;
            match out.last_mut() {
                Some(last) if last.0 == x => last.1 = y,
                _ => out.push((x, y)),
            }
        }
        out
    }

    /// Samples the curve at `k + 1` evenly spaced x positions spanning the
    /// data range — convenient fixed-size series for TSV output.
    pub fn sampled_curve(&self, k: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || k == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().unwrap();
        (0..=k)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / k as f64;
                (x, self.fraction_le(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_le_basics() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.fraction_le(0.5), 0.0);
        assert_eq!(e.fraction_le(1.0), 0.25);
        assert_eq!(e.fraction_le(2.5), 0.5);
        assert_eq!(e.fraction_le(10.0), 1.0);
    }

    #[test]
    fn handles_duplicates() {
        let e = Ecdf::new(&[5.0, 5.0, 5.0, 9.0]);
        assert_eq!(e.fraction_le(5.0), 0.75);
        assert_eq!(e.fraction_le(4.9), 0.0);
        let curve = e.curve();
        assert_eq!(curve, vec![(5.0, 0.75), (9.0, 1.0)]);
    }

    #[test]
    fn quantile_inverts() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(e.quantile(0.2), Some(10.0));
        assert_eq!(e.quantile(0.5), Some(30.0));
        assert_eq!(e.quantile(1.0), Some(50.0));
        assert_eq!(e.quantile(1.2), None);
    }

    #[test]
    fn empty_is_graceful() {
        let e = Ecdf::new(&[]);
        assert!(e.is_empty());
        assert_eq!(e.fraction_le(1.0), 0.0);
        assert_eq!(e.quantile(0.5), None);
        assert!(e.curve().is_empty());
        assert!(e.sampled_curve(10).is_empty());
    }

    #[test]
    fn sampled_curve_is_monotone() {
        let xs: Vec<f64> = (0..200).map(|i| (i * 7 % 97) as f64).collect();
        let e = Ecdf::new(&xs);
        let c = e.sampled_curve(50);
        assert_eq!(c.len(), 51);
        for w in c.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].0 >= w[0].0);
        }
        assert_eq!(c.last().unwrap().1, 1.0);
    }

    #[test]
    fn paper_style_query() {
        // "more than 80% of PlanetLab nodes observe an RTT of less than
        // 20ms" is a fraction_le query.
        let rtts = [5.0, 8.0, 11.0, 15.0, 19.0, 19.5, 22.0, 30.0, 12.0, 9.0];
        let e = Ecdf::new(&rtts);
        assert_eq!(e.fraction_le(20.0), 0.8);
    }
}
