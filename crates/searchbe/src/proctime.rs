//! Back-end processing-time models.
//!
//! The Fig. 9 regression puts the two services' per-query computation
//! times an order of magnitude apart (Y-intercepts ≈ 260 ms for Bing vs
//! ≈ 34 ms for Google), and Sec. 4.2 attributes Bing's extra `Tdynamic`
//! variance to "processing capability and load fluctuations on the BE
//! data centers, the search algorithm being used". The models here encode
//! exactly those degrees of freedom:
//!
//! * a base `Tproc` distribution per service,
//! * per-keyword-class multipliers (popular queries are warm in BE
//!   caches; complex/uncorrelated queries walk more of the index),
//! * a slowly varying multiplicative *load process* (AR(1)-style), with
//!   service-specific variance.

use crate::keywords::KeywordClass;
use simcore::dist::{Dist, Sampler};
use simcore::rng::Rng;

/// A slowly varying multiplicative load factor in `[1, 1 + amplitude]`.
///
/// Each step nudges the level by a bounded random increment — busy spells
/// persist across consecutive queries, which is what makes Bing's
/// `Tdynamic` wander in Fig. 3 rather than just jitter.
#[derive(Clone, Debug)]
pub struct LoadProcess {
    level: f64,
    amplitude: f64,
    volatility: f64,
}

impl LoadProcess {
    /// Creates a load process with the given peak `amplitude` (0 = no
    /// load effect) and per-step `volatility`.
    pub fn new(amplitude: f64, volatility: f64) -> LoadProcess {
        assert!(amplitude >= 0.0 && volatility >= 0.0);
        LoadProcess {
            level: 0.3, // start mildly loaded, not at an extreme
            amplitude,
            volatility,
        }
    }

    /// Advances the process one step and returns the current
    /// multiplicative factor (≥ 1).
    pub fn step(&mut self, rng: &mut Rng) -> f64 {
        let nudge = (rng.next_f64() - 0.5) * 2.0 * self.volatility;
        self.level = (self.level + nudge).clamp(0.0, 1.0);
        1.0 + self.level * self.amplitude
    }

    /// Current factor without advancing.
    pub fn current(&self) -> f64 {
        1.0 + self.level * self.amplitude
    }
}

/// The processing-time profile of one back-end service.
#[derive(Clone, Debug)]
pub struct BackendProfile {
    /// Service name (report labels).
    pub name: &'static str,
    /// Base `Tproc` distribution in ms (for a Refined-class query at
    /// load 1.0).
    pub base_ms: Dist,
    /// Multipliers per [`KeywordClass`] (indexed by `class.index()`).
    pub class_mult: [f64; 4],
    /// Load-process amplitude (peak multiplicative slowdown − 1).
    pub load_amplitude: f64,
    /// Load-process volatility per query.
    pub load_volatility: f64,
    /// Processing-time discount applied to correlated follow-up queries
    /// in "search as you type" sessions (Sec. 6: "the search query
    /// processing times ... are generally reduced because the subsequent
    /// queries are highly correlated with previous queries").
    pub instant_discount: f64,
}

impl BackendProfile {
    /// The Google-like back-end: fast, stable `Tproc` (Fig. 9 intercept
    /// ≈ 34 ms).
    pub fn google_like() -> BackendProfile {
        BackendProfile {
            name: "google-like",
            base_ms: Dist::lognormal_median_spread(30.0, 1.18),
            class_mult: [0.6, 1.0, 1.7, 1.4],
            load_amplitude: 0.25,
            load_volatility: 0.05,
            instant_discount: 0.45,
        }
    }

    /// The Bing-like back-end: slower and far more variable `Tproc`
    /// (Fig. 9 intercept ≈ 260 ms; Figs. 3/7/8 variance).
    pub fn bing_like() -> BackendProfile {
        BackendProfile {
            name: "bing-like",
            base_ms: Dist::lognormal_median_spread(120.0, 1.4),
            class_mult: [0.55, 1.0, 1.9, 1.5],
            load_amplitude: 0.6,
            load_volatility: 0.08,
            instant_discount: 0.5,
        }
    }

    /// Draws one `Tproc` sample in ms for a query of `class` under the
    /// supplied load factor.
    pub fn sample_ms(&self, class: KeywordClass, load: f64, rng: &mut Rng) -> f64 {
        let base = self.base_ms.sample(rng).max(1.0);
        base * self.class_mult[class.index()] * load
    }

    /// Nominal (median-ish) `Tproc` for a Refined query at load 1 — used
    /// by calibration assertions and reports.
    pub fn nominal_ms(&self) -> f64 {
        self.base_ms.mean().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_process_stays_in_bounds_and_wanders() {
        let mut lp = LoadProcess::new(1.0, 0.1);
        let mut rng = Rng::from_seed(3);
        let mut min = f64::MAX;
        let mut max: f64 = 0.0;
        for _ in 0..10_000 {
            let f = lp.step(&mut rng);
            assert!((1.0..=2.0).contains(&f), "factor {f}");
            min = min.min(f);
            max = max.max(f);
        }
        assert!(max - min > 0.5, "process should explore its range");
    }

    #[test]
    fn zero_amplitude_means_constant_one() {
        let mut lp = LoadProcess::new(0.0, 0.1);
        let mut rng = Rng::from_seed(4);
        for _ in 0..100 {
            assert_eq!(lp.step(&mut rng), 1.0);
        }
        assert_eq!(lp.current(), 1.0);
    }

    #[test]
    fn load_is_persistent_across_steps() {
        // Consecutive factors should be highly correlated (small steps).
        let mut lp = LoadProcess::new(1.0, 0.05);
        let mut rng = Rng::from_seed(5);
        let mut prev = lp.step(&mut rng);
        for _ in 0..1000 {
            let cur = lp.step(&mut rng);
            assert!((cur - prev).abs() <= 0.051, "jump {} too large", cur - prev);
            prev = cur;
        }
    }

    #[test]
    fn bing_like_is_slower_and_more_variable_than_google_like() {
        let g = BackendProfile::google_like();
        let b = BackendProfile::bing_like();
        let mut rng = Rng::from_seed(6);
        let sample = |p: &BackendProfile, rng: &mut Rng| -> Vec<f64> {
            (0..20_000)
                .map(|_| p.sample_ms(KeywordClass::Refined, 1.0, rng))
                .collect()
        };
        let gs = sample(&g, &mut rng);
        let bs = sample(&b, &mut rng);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let std = |v: &[f64]| {
            let m = mean(v);
            (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
        };
        assert!(
            mean(&bs) > 3.0 * mean(&gs),
            "bing {} vs google {}",
            mean(&bs),
            mean(&gs)
        );
        assert!(std(&bs) > 3.0 * std(&gs));
    }

    #[test]
    fn class_ordering_matches_expectations() {
        let p = BackendProfile::bing_like();
        let mut rng = Rng::from_seed(7);
        let avg = |class: KeywordClass, rng: &mut Rng| {
            (0..5000).map(|_| p.sample_ms(class, 1.0, rng)).sum::<f64>() / 5000.0
        };
        let popular = avg(KeywordClass::Popular, &mut rng);
        let refined = avg(KeywordClass::Refined, &mut rng);
        let complex = avg(KeywordClass::Complex, &mut rng);
        let mix = avg(KeywordClass::UncorrelatedMix, &mut rng);
        assert!(popular < refined && refined < mix && mix < complex);
    }

    #[test]
    fn load_multiplies_processing_time() {
        let p = BackendProfile::google_like();
        let mut r1 = Rng::from_seed(9);
        let mut r2 = Rng::from_seed(9);
        let unloaded = p.sample_ms(KeywordClass::Refined, 1.0, &mut r1);
        let loaded = p.sample_ms(KeywordClass::Refined, 2.0, &mut r2);
        assert!((loaded / unloaded - 2.0).abs() < 1e-9);
    }

    #[test]
    fn nominal_gap_is_order_of_magnitude() {
        let g = BackendProfile::google_like().nominal_ms();
        let b = BackendProfile::bing_like().nominal_ms();
        assert!(b / g > 4.0, "gap {}x", b / g);
    }
}
