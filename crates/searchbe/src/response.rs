//! Search-result page composition.
//!
//! The paper's content analysis (Sec. 3) splits each result page into the
//! static portion ("the HTTP header, HTML header, CSS style files, and
//! the static menu bar ... placed on top of each search result page") and
//! the dynamic remainder ("the keyword-dependent dynamic menu bar, search
//! results and ads"). Footnote 2 notes that "although users are
//! distributed globally, the size of the returned search results are
//! quite similar" — sizes depend on the query, not on the client.
//!
//! The static portion's size is chosen so that, at the default initial
//! window of 4 MSS-sized segments, its delivery spans the initial window
//! plus one additional ACK-clocked round — which is what couples
//! `Tstatic` to the client↔FE RTT and, through it, produces the paper's
//! `Tdelta`-goes-to-zero threshold behaviour.

use crate::keywords::{Keyword, KeywordClass};
use httpsim::{ResponsePlan, CONTENT_ID_STATIC_BASE};
use nettopo::metro::Region;
use simcore::dist::{Dist, Sampler};
use simcore::rng::Rng;

/// Regional size multiplier for the dynamic portion.
///
/// Review #2 of the paper: "queries and answers in both Google and Bing
/// highly depend on the user region". The services localise result
/// pages (ads inventory, local results), which perturbs the dynamic
/// size slightly per region — while the paper's footnote 2 observes the
/// sizes stay "quite similar" globally. A few percent captures both.
pub fn regional_size_factor(region: Option<Region>) -> f64 {
    match region {
        Some(Region::NorthAmerica) | None => 1.0,
        Some(Region::Europe) => 0.97,
        Some(Region::Asia) => 1.04,
        Some(Region::SouthAmerica) => 0.94,
        Some(Region::Oceania) => 0.96,
    }
}

/// Composes response plans for one service.
#[derive(Clone, Debug)]
pub struct PageComposer {
    /// Size of the static portion in bytes.
    pub static_bytes: u64,
    /// Content identity of the static portion (one per service).
    pub static_content: u64,
    /// Dynamic-portion size distributions per keyword class.
    dynamic_bytes: [Dist; 4],
    next_dynamic_content: u64,
    composed_count: u64,
}

impl PageComposer {
    /// Google-like page: ~9.5 KB static head, 20–40 KB of results.
    pub fn google_like() -> PageComposer {
        PageComposer::new(9_500, 1)
    }

    /// Bing-like page: ~9 KB static head, slightly larger result bodies.
    pub fn bing_like() -> PageComposer {
        PageComposer::new(9_000, 2)
    }

    /// Builds a composer with explicit static size/identity.
    pub fn new(static_bytes: u64, static_content: u64) -> PageComposer {
        let size = |mean: f64| Dist::TruncatedBelow {
            lo: 4_000.0,
            inner: Box::new(Dist::Normal {
                mean,
                std: mean * 0.12,
            }),
        };
        PageComposer {
            static_bytes,
            static_content,
            dynamic_bytes: [
                size(24_000.0), // Popular: lean, well-curated page
                size(28_000.0), // Refined
                size(34_000.0), // Complex: more snippets
                size(22_000.0), // UncorrelatedMix: few good hits
            ],
            next_dynamic_content: CONTENT_ID_STATIC_BASE,
            composed_count: 0,
        }
    }

    /// Composes the response plan for one query. Each call allocates a
    /// fresh dynamic content identity — search results are personalised,
    /// so two responses to the *same* keyword still differ byte-wise
    /// (the paper's explanation for why FEs do not cache results).
    /// `region` applies the [`regional_size_factor`] localisation.
    pub fn compose(&mut self, kw: &Keyword, region: Option<Region>, rng: &mut Rng) -> ResponsePlan {
        let dyn_bytes = (self.dynamic_bytes[kw.class.index()].sample(rng)
            * regional_size_factor(region))
        .round() as u64;
        let content = self.next_dynamic_content;
        self.next_dynamic_content += 1;
        self.composed_count += 1;
        ResponsePlan::new(self.static_bytes, self.static_content, dyn_bytes, content)
    }

    /// Shifts the dynamic-content id space by `offset` — every data
    /// center must allocate from a disjoint range, otherwise the
    /// cross-session content classifier would see two *different*
    /// queries sharing "identical bytes" and misfile them as static.
    pub fn offset_ids(&mut self, offset: u64) {
        self.next_dynamic_content = CONTENT_ID_STATIC_BASE + offset;
    }

    /// Number of dynamic parts composed so far.
    pub fn composed(&self) -> u64 {
        self.composed_count
    }

    /// Mean dynamic size for a class (for workload documentation).
    pub fn mean_dynamic_bytes(&self, class: KeywordClass) -> f64 {
        match &self.dynamic_bytes[class.index()] {
            Dist::TruncatedBelow { inner, .. } => inner.mean().unwrap_or(0.0),
            d => d.mean().unwrap_or(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keywords::KeywordCorpus;

    #[test]
    fn static_sizes_span_iw_plus_one_round() {
        // With MSS 1460 and IW 4 (5,840 bytes), the static portion must
        // exceed one initial window but fit within the doubled window —
        // the mechanism behind the Fig. 5 threshold.
        for c in [PageComposer::google_like(), PageComposer::bing_like()] {
            assert!(c.static_bytes > 4 * 1460, "{}", c.static_bytes);
            assert!(c.static_bytes <= 12 * 1460, "{}", c.static_bytes);
        }
    }

    #[test]
    fn distinct_static_identities_per_service() {
        assert_ne!(
            PageComposer::google_like().static_content,
            PageComposer::bing_like().static_content
        );
    }

    #[test]
    fn compose_allocates_fresh_dynamic_identity_every_time() {
        let corpus = KeywordCorpus::generate(1, 10, 0.5);
        let mut c = PageComposer::google_like();
        let mut rng = Rng::from_seed(2);
        let kw = corpus.get(0);
        let a = c.compose(kw, None, &mut rng);
        let b = c.compose(kw, None, &mut rng); // same keyword!
        assert_eq!(a.static_content, b.static_content);
        assert_ne!(a.dynamic_content, b.dynamic_content);
        assert_eq!(c.composed(), 2);
    }

    #[test]
    fn dynamic_sizes_depend_on_class_not_client() {
        let corpus = KeywordCorpus::generate(3, 4000, 0.5);
        let mut c = PageComposer::bing_like();
        let mut rng = Rng::from_seed(4);
        let mut by_class: [Vec<f64>; 4] = Default::default();
        for kw in corpus.all() {
            let plan = c.compose(kw, None, &mut rng);
            by_class[kw.class.index()].push(plan.dynamic_bytes as f64);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&by_class[2]) > mean(&by_class[0]), "complex > popular");
        assert!(mean(&by_class[2]) > mean(&by_class[3]), "complex > mix");
        // All sizes respect the floor.
        for v in &by_class {
            assert!(v.iter().all(|&b| b >= 4_000.0));
        }
    }

    #[test]
    fn regional_personalisation_shifts_sizes_slightly() {
        let corpus = KeywordCorpus::generate(5, 100, 0.5);
        let kw = corpus.get(0);
        // Same RNG state for each region → the only difference is the
        // regional factor.
        let size_for = |region: Option<Region>| {
            let mut c = PageComposer::google_like();
            let mut rng = Rng::from_seed(9);
            c.compose(kw, region, &mut rng).dynamic_bytes as f64
        };
        let na = size_for(Some(Region::NorthAmerica));
        let asia = size_for(Some(Region::Asia));
        let sa = size_for(Some(Region::SouthAmerica));
        assert!(asia > na && na > sa);
        // ... but stays "quite similar" (footnote 2): within ±10%.
        assert!((asia / na - 1.0).abs() < 0.10);
        assert!((sa / na - 1.0).abs() < 0.10);
        assert_eq!(size_for(None), na);
    }

    #[test]
    fn mean_dynamic_bytes_reports_model_means() {
        let c = PageComposer::google_like();
        assert_eq!(c.mean_dynamic_bytes(KeywordClass::Popular), 24_000.0);
        assert_eq!(c.mean_dynamic_bytes(KeywordClass::Complex), 34_000.0);
    }
}
