//! # searchbe — the back-end search-service model
//!
//! The paper treats the back-end data center as a black box that, given a
//! query, produces a response after a processing time `Tproc` — but its
//! experiments deliberately vary the *inputs* to that black box: keyword
//! popularity, granularity (refined multi-word queries) and complexity
//! (long queries, uncorrelated keyword mixtures), 40,000-keyword corpora
//! for the caching probes, and per-letter "search as you type" queries.
//! This crate models all of that:
//!
//! * [`keywords`] — keyword classes, synthetic corpora, query-text
//!   generation;
//! * [`proctime`] — per-service `Tproc` distributions, keyword-class
//!   multipliers and a slowly varying load process;
//! * [`response`] — page composition: the static portion (HTTP/HTML
//!   head, CSS, menu bar — same bytes for every query) and the
//!   keyword-dependent dynamic portion;
//! * [`datacenter`] — the BE server: draws `Tproc`, composes the
//!   response plan, tracks load;
//! * [`instant`] — the "search as you type" sessioniser (Sec. 6).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod datacenter;
pub mod instant;
pub mod keywords;
pub mod proctime;
pub mod response;

pub use datacenter::BeDataCenter;
pub use keywords::{Keyword, KeywordClass, KeywordCorpus};
pub use proctime::{BackendProfile, LoadProcess};
pub use response::PageComposer;
