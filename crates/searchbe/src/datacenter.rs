//! The back-end data center: query in, `(Tproc, ResponsePlan)` out.

use crate::keywords::Keyword;
use crate::proctime::{BackendProfile, LoadProcess};
use crate::response::PageComposer;
use nettopo::metro::Region;
use simcore::rng::Rng;
use simcore::time::SimDuration;

/// One back-end data center instance.
///
/// Owns its processing-time profile, load process, page composer and RNG
/// stream; every query advances the load process, so busy spells persist
/// across consecutive queries — the temporal structure visible in Fig. 3.
#[derive(Debug)]
pub struct BeDataCenter {
    /// Service profile.
    pub profile: BackendProfile,
    load: LoadProcess,
    composer: PageComposer,
    rng: Rng,
    queries_served: u64,
}

/// The outcome of one back-end query.
#[derive(Clone, Debug)]
pub struct BeResult {
    /// Query processing time at the data center.
    pub proc_time: SimDuration,
    /// The composed response.
    pub plan: httpsim::ResponsePlan,
    /// Load factor in effect while processing.
    pub load_factor: f64,
}

impl BeDataCenter {
    /// Creates a Google-like data center.
    pub fn google_like(seed: u64, site: &str) -> BeDataCenter {
        BeDataCenter::new(
            seed,
            site,
            BackendProfile::google_like(),
            PageComposer::google_like(),
        )
    }

    /// Creates a Bing-like data center.
    pub fn bing_like(seed: u64, site: &str) -> BeDataCenter {
        BeDataCenter::new(
            seed,
            site,
            BackendProfile::bing_like(),
            PageComposer::bing_like(),
        )
    }

    /// Creates a data center from explicit models.
    pub fn new(
        seed: u64,
        site: &str,
        profile: BackendProfile,
        composer: PageComposer,
    ) -> BeDataCenter {
        let rng = Rng::from_seed_and_name(seed, &format!("searchbe/dc/{site}"));
        let load = LoadProcess::new(profile.load_amplitude, profile.load_volatility);
        BeDataCenter {
            profile,
            load,
            composer,
            rng,
            queries_served: 0,
        }
    }

    /// Processes one query: draws `Tproc` under the current load and
    /// composes the response. `instant_followup` applies the
    /// correlated-query discount of "search as you type" sessions;
    /// `region` localises the result page (review #2's concern — sizes
    /// shift a few percent per region, per the paper's footnote 2).
    pub fn handle_query(
        &mut self,
        kw: &Keyword,
        instant_followup: bool,
        region: Option<Region>,
    ) -> BeResult {
        self.queries_served += 1;
        let load_factor = self.load.step(&mut self.rng);
        let mut ms = self.profile.sample_ms(kw.class, load_factor, &mut self.rng);
        if instant_followup {
            ms *= self.profile.instant_discount;
        }
        let plan = self.composer.compose(kw, region, &mut self.rng);
        BeResult {
            proc_time: SimDuration::from_millis_f64(ms),
            plan,
            load_factor,
        }
    }

    /// Number of queries served.
    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }

    /// Current load factor (≥ 1).
    pub fn current_load(&self) -> f64 {
        self.load.current()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keywords::KeywordCorpus;

    #[test]
    fn serves_queries_deterministically() {
        let corpus = KeywordCorpus::generate(1, 100, 0.5);
        let run = || {
            let mut dc = BeDataCenter::google_like(42, "Lenoir NC");
            (0..50)
                .map(|i| dc.handle_query(corpus.get(i % 100), false, None).proc_time)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn google_like_is_faster_than_bing_like() {
        let corpus = KeywordCorpus::generate(2, 100, 0.5);
        let mut g = BeDataCenter::google_like(42, "x");
        let mut b = BeDataCenter::bing_like(42, "y");
        let kw = corpus.get(1);
        let avg = |dc: &mut BeDataCenter| {
            (0..2000)
                .map(|_| dc.handle_query(kw, false, None).proc_time.as_millis_f64())
                .sum::<f64>()
                / 2000.0
        };
        let ga = avg(&mut g);
        let ba = avg(&mut b);
        assert!(ba > 2.5 * ga, "bing {ba} vs google {ga}");
    }

    #[test]
    fn instant_followups_are_discounted() {
        let corpus = KeywordCorpus::generate(3, 10, 0.5);
        let kw = corpus.get(0);
        let avg = |followup: bool| {
            let mut dc = BeDataCenter::google_like(7, "z");
            (0..3000)
                .map(|_| {
                    dc.handle_query(kw, followup, None)
                        .proc_time
                        .as_millis_f64()
                })
                .sum::<f64>()
                / 3000.0
        };
        let full = avg(false);
        let disc = avg(true);
        assert!(
            (disc / full - BackendProfile::google_like().instant_discount).abs() < 0.05,
            "ratio {}",
            disc / full
        );
    }

    #[test]
    fn load_factor_reported_and_bounded() {
        let corpus = KeywordCorpus::generate(4, 10, 0.5);
        let mut dc = BeDataCenter::bing_like(11, "w");
        for _ in 0..500 {
            let r = dc.handle_query(corpus.get(0), false, None);
            assert!(r.load_factor >= 1.0);
            assert!(r.load_factor <= 1.0 + dc.profile.load_amplitude + 1e-9);
        }
        assert_eq!(dc.queries_served(), 500);
        assert!(dc.current_load() >= 1.0);
    }
}
