//! "Search as you type" sessions (Sec. 6).
//!
//! The paper's preliminary look at interactive search found that "after
//! each letter a user has typed, a separate query (using a new TCP
//! connection) is sent to the FE server. The delivery of each query hence
//! still fits our basic model; although ... the search query processing
//! times at the BE data centers are generally reduced because the
//! subsequent queries are highly correlated with previous queries."
//!
//! [`instant_session`] expands a final query into the per-keystroke
//! sub-query sequence with typing gaps; the emulator issues each
//! sub-query over a fresh connection, flagging all but the first as
//! correlated follow-ups (which the BE discounts).

use crate::keywords::Keyword;
use simcore::dist::{Dist, Sampler};
use simcore::rng::Rng;
use simcore::time::SimDuration;

/// One keystroke-triggered sub-query.
#[derive(Clone, Debug)]
pub struct InstantQuery {
    /// Prefix length in characters.
    pub prefix_chars: usize,
    /// Delay after the previous sub-query was issued (typing gap).
    pub gap: SimDuration,
    /// True for every sub-query after the first (BE applies its
    /// correlated-query discount).
    pub followup: bool,
}

/// Expands `kw` into its per-keystroke sub-queries. Sub-queries start
/// once the prefix reaches `min_prefix` characters; typing gaps are drawn
/// from a per-keystroke distribution (~180 ms median).
pub fn instant_session(kw: &Keyword, min_prefix: usize, rng: &mut Rng) -> Vec<InstantQuery> {
    let total = kw.chars();
    if total < min_prefix {
        return vec![InstantQuery {
            prefix_chars: total,
            gap: SimDuration::ZERO,
            followup: false,
        }];
    }
    let gap_dist = Dist::lognormal_median_spread(180.0, 1.5);
    let mut out = Vec::with_capacity(total - min_prefix + 1);
    for (i, prefix_chars) in (min_prefix..=total).enumerate() {
        let gap = if i == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_millis_f64(gap_dist.sample(rng))
        };
        out.push(InstantQuery {
            prefix_chars,
            gap,
            followup: i > 0,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keywords::KeywordCorpus;

    fn kw() -> Keyword {
        KeywordCorpus::generate(1, 10, 0.5).get(0).clone()
    }

    #[test]
    fn one_subquery_per_keystroke_after_min_prefix() {
        let k = kw();
        let mut rng = Rng::from_seed(1);
        let session = instant_session(&k, 3, &mut rng);
        assert_eq!(session.len(), k.chars() - 3 + 1);
        assert_eq!(session[0].prefix_chars, 3);
        assert_eq!(session.last().unwrap().prefix_chars, k.chars());
    }

    #[test]
    fn first_query_is_not_a_followup() {
        let k = kw();
        let mut rng = Rng::from_seed(2);
        let session = instant_session(&k, 3, &mut rng);
        assert!(!session[0].followup);
        assert!(session[1..].iter().all(|q| q.followup));
    }

    #[test]
    fn typing_gaps_are_humanlike() {
        let k = kw();
        let mut rng = Rng::from_seed(3);
        let session = instant_session(&k, 3, &mut rng);
        assert_eq!(session[0].gap, SimDuration::ZERO);
        for q in &session[1..] {
            let ms = q.gap.as_millis_f64();
            assert!(ms > 20.0 && ms < 2_000.0, "gap {ms}ms");
        }
    }

    #[test]
    fn short_query_degenerates_to_single_query() {
        let mut k = kw();
        k.text = "ab".to_string();
        let mut rng = Rng::from_seed(4);
        let session = instant_session(&k, 3, &mut rng);
        assert_eq!(session.len(), 1);
        assert!(!session[0].followup);
        assert_eq!(session[0].prefix_chars, 2);
    }
}
