//! Keyword classes and synthetic corpora.
//!
//! Sec. 3 of the paper: "we use different sets of search keywords with
//! varying popularity, granularity, and complexity", e.g. the Bing
//! popular-keyword list, concatenated refinements ("Computer Science
//! Department at University of Minnesota"), and uncorrelated mixtures
//! ("computer and potato"). The caching probes use a 40,000-keyword
//! corpus mixing suggestion-box keywords with unsuggested ones.

use simcore::dist::Zipf;
use simcore::rng::Rng;

/// The four keyword classes of Fig. 3 (key1–key4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KeywordClass {
    /// A currently popular keyword (Bing front-page list): likely warm in
    /// BE caches, cheap to process.
    Popular,
    /// A refined, concatenated query ("Computer Science Department at
    /// University of Minnesota"): moderate cost, narrower index walk.
    Refined,
    /// A long, complex query: expensive to process.
    Complex,
    /// A mixture of uncorrelated keywords ("computer and potato"):
    /// expensive — intersecting unrelated posting lists.
    UncorrelatedMix,
}

impl KeywordClass {
    /// All classes in Fig. 3 order (key1..key4).
    pub const ALL: [KeywordClass; 4] = [
        KeywordClass::Popular,
        KeywordClass::Refined,
        KeywordClass::Complex,
        KeywordClass::UncorrelatedMix,
    ];

    /// Stable index (0..4).
    pub fn index(self) -> usize {
        match self {
            KeywordClass::Popular => 0,
            KeywordClass::Refined => 1,
            KeywordClass::Complex => 2,
            KeywordClass::UncorrelatedMix => 3,
        }
    }

    /// Display label used in figure output ("key1".."key4").
    pub fn label(self) -> &'static str {
        match self {
            KeywordClass::Popular => "key1-popular",
            KeywordClass::Refined => "key2-refined",
            KeywordClass::Complex => "key3-complex",
            KeywordClass::UncorrelatedMix => "key4-mix",
        }
    }

    /// Typical number of words in a query of this class.
    pub fn word_count(self) -> usize {
        match self {
            KeywordClass::Popular => 2,
            KeywordClass::Refined => 6,
            KeywordClass::Complex => 10,
            KeywordClass::UncorrelatedMix => 3,
        }
    }
}

/// One search keyword/query.
#[derive(Clone, Debug)]
pub struct Keyword {
    /// Stable id (also used to derive the dynamic content identity).
    pub id: u64,
    /// The query text.
    pub text: String,
    /// Class.
    pub class: KeywordClass,
    /// Popularity rank (0 = most popular) within the corpus, used by the
    /// BE cache-warmth model.
    pub rank: usize,
    /// Whether the keyword appears in the services' suggestion box
    /// (the caching probes draw from both populations).
    pub suggested: bool,
}

impl Keyword {
    /// Query length in characters.
    pub fn chars(&self) -> usize {
        self.text.len()
    }
}

const SYLLABLES: &[&str] = &[
    "com", "pu", "ter", "sci", "ence", "cloud", "mo", "bile", "data", "cen", "net", "work", "po",
    "ta", "to", "uni", "ver", "si", "ty", "min", "ne", "so", "search", "que", "ry", "lab", "sys",
    "tem", "web", "ser", "vice",
];

fn synth_word(rng: &mut Rng) -> String {
    let n = 2 + rng.next_below(3) as usize;
    let mut w = String::new();
    for _ in 0..n {
        w.push_str(rng.choose(SYLLABLES) as &str);
    }
    w
}

fn synth_query(rng: &mut Rng, words: usize) -> String {
    let mut parts = Vec::with_capacity(words);
    for _ in 0..words {
        parts.push(synth_word(rng));
    }
    parts.join(" ")
}

/// A deterministic synthetic keyword corpus.
#[derive(Clone, Debug)]
pub struct KeywordCorpus {
    keywords: Vec<Keyword>,
    zipf: Zipf,
}

impl KeywordCorpus {
    /// Generates `n` keywords (the caching probes use n = 40,000). The
    /// class mix is dominated by `Popular`/`Refined` with a tail of
    /// complex and mixed queries; `suggested_frac` of keywords are marked
    /// as appearing in the suggestion box.
    pub fn generate(seed: u64, n: usize, suggested_frac: f64) -> KeywordCorpus {
        assert!(n > 0);
        let mut rng = Rng::from_seed_and_name(seed, "searchbe/corpus");
        let mut keywords = Vec::with_capacity(n);
        for id in 0..n {
            let u = rng.next_f64();
            let class = if u < 0.40 {
                KeywordClass::Popular
            } else if u < 0.75 {
                KeywordClass::Refined
            } else if u < 0.90 {
                KeywordClass::Complex
            } else {
                KeywordClass::UncorrelatedMix
            };
            let text = synth_query(&mut rng, class.word_count());
            let suggested = rng.chance(suggested_frac);
            keywords.push(Keyword {
                id: id as u64,
                text,
                class,
                rank: id, // rank = generation order; sampling is Zipf over it
                suggested,
            });
        }
        KeywordCorpus {
            zipf: Zipf::new(n, 0.9),
            keywords,
        }
    }

    /// Number of keywords.
    pub fn len(&self) -> usize {
        self.keywords.len()
    }

    /// True when empty (never: generation requires n > 0).
    pub fn is_empty(&self) -> bool {
        self.keywords.is_empty()
    }

    /// The full keyword list.
    pub fn all(&self) -> &[Keyword] {
        &self.keywords
    }

    /// A specific keyword by id.
    pub fn get(&self, id: u64) -> &Keyword {
        &self.keywords[id as usize]
    }

    /// Draws a keyword by Zipf popularity (rank 0 most likely) — the
    /// Dataset A workload.
    pub fn sample(&self, rng: &mut Rng) -> &Keyword {
        &self.keywords[self.zipf.sample_rank(rng)]
    }

    /// One representative keyword per class (the Fig. 3 "key1..key4"
    /// picks), chosen deterministically as the lowest-rank member of each
    /// class.
    pub fn fig3_picks(&self) -> [&Keyword; 4] {
        let mut picks: [Option<&Keyword>; 4] = [None; 4];
        for kw in &self.keywords {
            let idx = kw.class.index();
            if picks[idx].is_none() {
                picks[idx] = Some(kw);
            }
        }
        picks.map(|p| p.expect("corpus missing a keyword class"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_sized() {
        let a = KeywordCorpus::generate(1, 1000, 0.5);
        let b = KeywordCorpus::generate(1, 1000, 0.5);
        assert_eq!(a.len(), 1000);
        for (x, y) in a.all().iter().zip(b.all()) {
            assert_eq!(x.text, y.text);
            assert_eq!(x.class, y.class);
        }
    }

    #[test]
    fn class_mix_is_reasonable() {
        let c = KeywordCorpus::generate(2, 10_000, 0.5);
        let mut counts = [0usize; 4];
        for kw in c.all() {
            counts[kw.class.index()] += 1;
        }
        assert!(counts[0] > counts[2], "popular should outnumber complex");
        for (i, &n) in counts.iter().enumerate() {
            assert!(n > 100, "class {i} underrepresented: {n}");
        }
    }

    #[test]
    fn word_counts_by_class() {
        let c = KeywordCorpus::generate(3, 2000, 0.5);
        for kw in c.all() {
            let words = kw.text.split(' ').count();
            assert_eq!(words, kw.class.word_count(), "{:?}", kw.class);
        }
        // Complex queries are textually longer than popular ones.
        let avg = |class: KeywordClass| {
            let v: Vec<usize> = c
                .all()
                .iter()
                .filter(|k| k.class == class)
                .map(|k| k.chars())
                .collect();
            v.iter().sum::<usize>() as f64 / v.len() as f64
        };
        assert!(avg(KeywordClass::Complex) > 2.0 * avg(KeywordClass::Popular));
    }

    #[test]
    fn zipf_sampling_prefers_low_ranks() {
        let c = KeywordCorpus::generate(4, 1000, 0.5);
        let mut rng = Rng::from_seed(9);
        let mut low = 0;
        for _ in 0..10_000 {
            if c.sample(&mut rng).rank < 100 {
                low += 1;
            }
        }
        // Top 10% of ranks should receive far more than 10% of draws.
        assert!(low > 3_000, "low-rank draws: {low}");
    }

    #[test]
    fn fig3_picks_cover_all_classes() {
        let c = KeywordCorpus::generate(5, 500, 0.5);
        let picks = c.fig3_picks();
        let classes: Vec<KeywordClass> = picks.iter().map(|k| k.class).collect();
        assert_eq!(classes, KeywordClass::ALL.to_vec());
    }

    #[test]
    fn suggested_fraction_respected() {
        let c = KeywordCorpus::generate(6, 20_000, 0.3);
        let suggested = c.all().iter().filter(|k| k.suggested).count();
        let frac = suggested as f64 / c.len() as f64;
        assert!((frac - 0.3).abs() < 0.02, "suggested frac {frac}");
    }

    #[test]
    fn forty_thousand_keyword_corpus_generates_quickly() {
        let c = KeywordCorpus::generate(7, 40_000, 0.5);
        assert_eq!(c.len(), 40_000);
        assert_eq!(c.get(39_999).id, 39_999);
    }
}
