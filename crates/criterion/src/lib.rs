//! # criterion (offline shim)
//!
//! A self-contained, dependency-free subset of the `criterion` crate,
//! vendored so `cargo bench` works **with no network access** (the real
//! crates-io registry is unreachable in this environment; see DESIGN.md
//! §5). It implements exactly the surface this workspace's benches use:
//!
//! * [`Criterion::default`] + [`Criterion::sample_size`],
//! * [`Criterion::bench_function`] and [`Criterion::benchmark_group`],
//! * [`Bencher::iter`],
//! * [`criterion_group!`] (both forms) and [`criterion_main!`].
//!
//! There is no statistical analysis, outlier rejection or HTML report:
//! each bench runs `sample_size` timed iterations after one warm-up and
//! prints min/mean/max wall-clock times in a stable single-line format.
//! That is enough to spot order-of-magnitude regressions by eye, which
//! is what these benches are for offline; the numbers are **not**
//! comparable with real-criterion output.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// The benchmark driver: configuration plus result reporting.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each bench runs (min 1).
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(id);
        self
    }

    /// Opens a named group; benches inside report as `group/bench`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Finishes the group (reporting happens per bench; this is a
    /// no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each bench closure; times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` once untimed (warm-up), then `sample_size` timed
    /// times, recording each duration.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("bench {id:<40} (no samples — iter() never called)");
            return;
        }
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        println!(
            "bench {id:<40} mean {:>12} min {:>12} max {:>12} ({} samples)",
            fmt_duration(mean),
            fmt_duration(*min),
            fmt_duration(*max),
            self.samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions.
///
/// Both real-criterion forms are accepted:
/// `criterion_group!(name, target_a, target_b)` and the long form with
/// `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        /// Runs every benchmark in this group.
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default().sample_size(3);
        let mut count = 0u32;
        c.bench_function("shim_smoke", |b| b.iter(|| count += 1));
        // 1 warm-up + 3 timed samples.
        assert_eq!(count, 4);
    }

    #[test]
    fn group_prefixes_and_finishes() {
        let mut c = Criterion::default().sample_size(1);
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("inner", |b| b.iter(|| ran = true));
        group.finish();
        assert!(ran);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }

    criterion_group!(smoke_group, smoke_target);

    fn smoke_target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        smoke_group();
    }
}
