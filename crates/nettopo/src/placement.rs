//! Front-end server placement strategies.
//!
//! The paper contrasts two real deployments:
//!
//! * **Bing via Akamai** — a *dense edge* fleet: caches in nearly every
//!   metro, often co-located inside university campus networks (Sec. 6
//!   explicitly notes "some Akamai frontend servers are placed closer to
//!   University campus networks"), and **shared** with many other Akamai
//!   customers — the paper's candidate explanation for Bing's higher and
//!   more variable `Tstatic`.
//! * **Google's own FEs** — a *sparse POP* fleet: fewer sites at major
//!   metros only, but **dedicated** to Google's traffic.
//!
//! [`dense_edge`] and [`sparse_pop`] generate the two fleets. Fig. 6's
//! headline numbers (>80 % of vantages within 20 ms of a Bing FE vs ~60 %
//! for Google) emerge from these placements plus the path model.

use crate::geo::GeoPoint;
use crate::metro::{top_metros, WORLD_METROS};
use simcore::dist::{Dist, Sampler};
use simcore::rng::Rng;

/// A front-end server site.
#[derive(Clone, Debug)]
pub struct FeSite {
    /// Stable identifier (index into the generated fleet).
    pub id: usize,
    /// Human-readable name.
    pub name: String,
    /// Location.
    pub pt: GeoPoint,
    /// True when the FE is a shared multi-tenant cache (Akamai-like);
    /// false for a dedicated single-service FE (Google-like). Drives the
    /// FE load model in `cdnsim`.
    pub shared_tenancy: bool,
    /// True when the FE sits inside a campus/edge network — vantages in
    /// the same metro see an extra-short last mile.
    pub campus_colocated: bool,
}

/// Dense Akamai-like placement: one or more shared FEs in *every* metro,
/// plus campus-colocated FEs in university metros.
///
/// Deterministic in `seed`.
pub fn dense_edge(seed: u64) -> Vec<FeSite> {
    let mut rng = Rng::from_seed_and_name(seed, "nettopo/dense_edge");
    let scatter = Dist::Normal {
        mean: 0.0,
        std: 8.0,
    };
    let mut out = Vec::new();
    for metro in WORLD_METROS {
        // Every metro gets a city-core cache cluster.
        let n_core = 1 + (metro.weight / 1.5) as usize;
        for k in 0..n_core {
            let pt = metro
                .pt
                .offset_miles(scatter.sample(&mut rng), scatter.sample(&mut rng));
            out.push(FeSite {
                id: out.len(),
                name: format!("akamai-{}-{}", metro.name.replace(' ', ""), k),
                pt,
                shared_tenancy: true,
                campus_colocated: false,
            });
        }
        // University metros additionally get an on-campus cache.
        if metro.university_hub {
            let pt = metro.pt.offset_miles(
                scatter.sample(&mut rng) * 0.3,
                scatter.sample(&mut rng) * 0.3,
            );
            out.push(FeSite {
                id: out.len(),
                name: format!("akamai-campus-{}", metro.name.replace(' ', "")),
                pt,
                shared_tenancy: true,
                campus_colocated: true,
            });
        }
    }
    out
}

/// Sparse Google-like placement: one dedicated FE POP in each of the
/// `pop_count` highest-weight metros.
///
/// Deterministic in `seed`.
pub fn sparse_pop(seed: u64, pop_count: usize) -> Vec<FeSite> {
    let mut rng = Rng::from_seed_and_name(seed, "nettopo/sparse_pop");
    let scatter = Dist::Normal {
        mean: 0.0,
        std: 5.0,
    };
    top_metros(pop_count)
        .into_iter()
        .enumerate()
        .map(|(id, metro)| FeSite {
            id,
            name: format!("gfe-{}", metro.name.replace(' ', "")),
            pt: metro
                .pt
                .offset_miles(scatter.sample(&mut rng), scatter.sample(&mut rng)),
            shared_tenancy: false,
            campus_colocated: false,
        })
        .collect()
}

/// The FE nearest to a point, returned as `(index, miles)`.
pub fn nearest_fe(pt: &GeoPoint, fleet: &[FeSite]) -> Option<(usize, f64)> {
    crate::geo::nearest(pt, fleet, |f| f.pt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vantage::{planetlab_like, VantageConfig};

    #[test]
    fn dense_fleet_is_much_larger_than_sparse() {
        let dense = dense_edge(1);
        let sparse = sparse_pop(1, 25);
        assert!(
            dense.len() > 3 * sparse.len(),
            "dense {} vs sparse {}",
            dense.len(),
            sparse.len()
        );
        assert!(dense.len() > 100);
        assert_eq!(sparse.len(), 25);
    }

    #[test]
    fn tenancy_flags() {
        assert!(dense_edge(1).iter().all(|f| f.shared_tenancy));
        assert!(sparse_pop(1, 10).iter().all(|f| !f.shared_tenancy));
        assert!(dense_edge(1).iter().any(|f| f.campus_colocated));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = dense_edge(9);
        let b = dense_edge(9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pt, y.pt);
        }
    }

    #[test]
    fn ids_are_dense() {
        for (i, f) in dense_edge(2).iter().enumerate() {
            assert_eq!(f.id, i);
        }
        for (i, f) in sparse_pop(2, 12).iter().enumerate() {
            assert_eq!(f.id, i);
        }
    }

    #[test]
    fn vantages_are_closer_to_dense_fleet() {
        // The geometric core of Fig. 6: median vantage→nearest-FE distance
        // must be clearly smaller for the dense (Akamai/Bing) fleet.
        let vantages = planetlab_like(5, &VantageConfig::default());
        let dense = dense_edge(5);
        let sparse = sparse_pop(5, 25);
        let mut d_dense: Vec<f64> = vantages
            .iter()
            .map(|v| nearest_fe(&v.pt, &dense).unwrap().1)
            .collect();
        let mut d_sparse: Vec<f64> = vantages
            .iter()
            .map(|v| nearest_fe(&v.pt, &sparse).unwrap().1)
            .collect();
        d_dense.sort_by(|a, b| a.partial_cmp(b).unwrap());
        d_sparse.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med_dense = d_dense[d_dense.len() / 2];
        let med_sparse = d_sparse[d_sparse.len() / 2];
        assert!(
            med_dense < med_sparse,
            "median dense {med_dense} vs sparse {med_sparse}"
        );
    }

    #[test]
    fn nearest_fe_empty_fleet() {
        let p = GeoPoint::new(0.0, 0.0);
        assert!(nearest_fe(&p, &[]).is_none());
    }
}
