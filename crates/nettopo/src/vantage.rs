//! PlanetLab-like vantage-point generation.
//!
//! The paper's clients are 200–250 PlanetLab nodes, i.e. machines inside
//! (or next to) university campus networks, plus "our lab and home
//! machines". Sec. 6 notes the resulting bias: campus access is fast and
//! loss-free, and some Akamai front-ends sit *inside* those campus
//! networks. The generator reproduces that population: vantage points
//! scatter around university metros with mostly `Campus` access, a few
//! `Residential` and `Wireless` nodes standing in for the lab/home
//! machines.

use crate::geo::GeoPoint;
use crate::metro::{university_metros, Metro, Region};
use simcore::dist::{Dist, Sampler};
use simcore::rng::Rng;

/// Last-hop access technology of a vantage point, which determines the
/// access-path profile (latency adder, loss) used for its client↔FE path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// University campus network: low latency, negligible loss (the
    /// PlanetLab default).
    Campus,
    /// Residential DSL/cable: interleaving adds tens of ms (cf. the
    /// reviewer comment citing Maier et al., IMC'09).
    Residential,
    /// Wireless/WiFi last hop: moderate latency, non-negligible loss.
    Wireless,
}

/// A measurement client location.
#[derive(Clone, Debug)]
pub struct Vantage {
    /// Stable identifier (index into the generated set).
    pub id: usize,
    /// Human-readable name, e.g. `"planetlab3.Boston"`.
    pub name: String,
    /// Geographic location.
    pub pt: GeoPoint,
    /// Access technology.
    pub access: AccessKind,
    /// The metro the vantage clusters around (index into
    /// [`crate::metro::WORLD_METROS`]-derived university metros list used
    /// at generation time).
    pub metro_name: &'static str,
    /// Continental region (drives regional result personalisation at
    /// the back-end).
    pub region: Region,
}

/// Configuration for vantage generation.
#[derive(Clone, Debug)]
pub struct VantageConfig {
    /// Total number of vantage points (the paper used 200–250).
    pub count: usize,
    /// Fraction with residential access (the "home machines").
    pub residential_frac: f64,
    /// Fraction with wireless access.
    pub wireless_frac: f64,
    /// Scatter (std, miles) of a vantage around its metro center.
    pub scatter_miles: f64,
}

impl Default for VantageConfig {
    fn default() -> Self {
        VantageConfig {
            count: 230,
            residential_frac: 0.04,
            wireless_frac: 0.02,
            scatter_miles: 15.0,
        }
    }
}

/// Generates a PlanetLab-like vantage set. Deterministic in `seed`.
pub fn planetlab_like(seed: u64, cfg: &VantageConfig) -> Vec<Vantage> {
    let metros = university_metros();
    assert!(!metros.is_empty());
    let mut rng = Rng::from_seed_and_name(seed, "nettopo/vantages");
    let scatter = Dist::Normal {
        mean: 0.0,
        std: cfg.scatter_miles,
    };
    // Weighted metro sampling by cumulative weight.
    let total_w: f64 = metros.iter().map(|m| m.weight).sum();
    let pick_metro = |rng: &mut Rng, metros: &[&'static Metro]| -> &'static Metro {
        let mut u = rng.next_f64() * total_w;
        for m in metros {
            u -= m.weight;
            if u <= 0.0 {
                return m;
            }
        }
        metros[metros.len() - 1]
    };

    let mut out = Vec::with_capacity(cfg.count);
    let mut per_metro_counter: std::collections::HashMap<&str, usize> =
        std::collections::HashMap::new();
    for id in 0..cfg.count {
        let metro = pick_metro(&mut rng, &metros);
        let dn = scatter.sample(&mut rng);
        let de = scatter.sample(&mut rng);
        let pt = metro.pt.offset_miles(dn, de);
        let u = rng.next_f64();
        let access = if u < cfg.wireless_frac {
            AccessKind::Wireless
        } else if u < cfg.wireless_frac + cfg.residential_frac {
            AccessKind::Residential
        } else {
            AccessKind::Campus
        };
        let n = per_metro_counter.entry(metro.name).or_insert(0);
        *n += 1;
        out.push(Vantage {
            id,
            name: format!("planetlab{}.{}", n, metro.name.replace(' ', "")),
            pt,
            access,
            metro_name: metro.name,
            region: metro.region,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metro::Region;
    use crate::metro::WORLD_METROS;

    #[test]
    fn generates_requested_count() {
        let v = planetlab_like(1, &VantageConfig::default());
        assert_eq!(v.len(), 230);
        // IDs are dense and ordered.
        for (i, vt) in v.iter().enumerate() {
            assert_eq!(vt.id, i);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = planetlab_like(7, &VantageConfig::default());
        let b = planetlab_like(7, &VantageConfig::default());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.pt, y.pt);
            assert_eq!(x.access, y.access);
        }
        let c = planetlab_like(8, &VantageConfig::default());
        let same = a.iter().zip(&c).filter(|(x, y)| x.pt == y.pt).count();
        assert!(same < a.len() / 2);
    }

    #[test]
    fn mostly_campus_access() {
        let v = planetlab_like(3, &VantageConfig::default());
        let campus = v.iter().filter(|x| x.access == AccessKind::Campus).count();
        assert!(campus as f64 / v.len() as f64 > 0.85);
    }

    #[test]
    fn vantages_stay_near_their_metro() {
        let v = planetlab_like(5, &VantageConfig::default());
        for vt in &v {
            let metro = WORLD_METROS
                .iter()
                .find(|m| m.name == vt.metro_name)
                .unwrap();
            let d = vt.pt.distance_miles(&metro.pt);
            assert!(d < 120.0, "{} is {d} miles from {}", vt.name, metro.name);
        }
    }

    #[test]
    fn population_is_geographically_diverse() {
        let v = planetlab_like(11, &VantageConfig::default());
        let mut regions = std::collections::HashSet::new();
        for vt in &v {
            let metro = WORLD_METROS
                .iter()
                .find(|m| m.name == vt.metro_name)
                .unwrap();
            regions.insert(metro.region);
        }
        assert!(regions.contains(&Region::NorthAmerica));
        assert!(regions.contains(&Region::Europe));
        assert!(regions.len() >= 3, "regions {regions:?}");
    }

    #[test]
    fn region_matches_home_metro() {
        let v = planetlab_like(12, &VantageConfig::default());
        for vt in &v {
            let metro = WORLD_METROS
                .iter()
                .find(|m| m.name == vt.metro_name)
                .unwrap();
            assert_eq!(vt.region, metro.region, "{}", vt.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let v = planetlab_like(13, &VantageConfig::default());
        let mut names: Vec<&String> = v.iter().map(|x| &x.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), v.len());
    }
}
