//! Geographic coordinates and great-circle distances.
//!
//! Fig. 9 of the paper plots `Tdynamic` against the *geographical distance
//! in miles* between FE and BE sites, so miles are the crate's native
//! distance unit.

/// Mean Earth radius in miles.
pub const EARTH_RADIUS_MILES: f64 = 3958.7613;

/// A point on the Earth's surface.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat_deg: f64,
    /// Longitude in degrees, positive east.
    pub lon_deg: f64,
}

impl GeoPoint {
    /// Constructs a point, normalising longitude into `(−180, 180]` and
    /// clamping latitude into `[−90, 90]`.
    pub fn new(lat_deg: f64, lon_deg: f64) -> GeoPoint {
        let lat = lat_deg.clamp(-90.0, 90.0);
        let mut lon = lon_deg % 360.0;
        if lon > 180.0 {
            lon -= 360.0;
        } else if lon <= -180.0 {
            lon += 360.0;
        }
        GeoPoint {
            lat_deg: lat,
            lon_deg: lon,
        }
    }

    /// Great-circle distance to `other` in miles (haversine formula).
    pub fn distance_miles(&self, other: &GeoPoint) -> f64 {
        let lat1 = self.lat_deg.to_radians();
        let lat2 = other.lat_deg.to_radians();
        let dlat = (other.lat_deg - self.lat_deg).to_radians();
        let dlon = (other.lon_deg - self.lon_deg).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        let c = 2.0 * a.sqrt().asin();
        EARTH_RADIUS_MILES * c
    }

    /// A point offset by approximately `miles_north` / `miles_east` miles
    /// — used to scatter synthetic hosts around a metro center. Accurate
    /// for the small (< 100 mile) offsets it is used with.
    pub fn offset_miles(&self, miles_north: f64, miles_east: f64) -> GeoPoint {
        let dlat = miles_north / EARTH_RADIUS_MILES * (180.0 / std::f64::consts::PI);
        let coslat = self.lat_deg.to_radians().cos().max(0.01);
        let dlon = miles_east / (EARTH_RADIUS_MILES * coslat) * (180.0 / std::f64::consts::PI);
        GeoPoint::new(self.lat_deg + dlat, self.lon_deg + dlon)
    }
}

/// Index of the nearest point in `candidates` to `from`, plus the
/// distance in miles. `None` for an empty candidate list.
pub fn nearest<T>(
    from: &GeoPoint,
    candidates: &[T],
    loc: impl Fn(&T) -> GeoPoint,
) -> Option<(usize, f64)> {
    candidates
        .iter()
        .enumerate()
        .map(|(i, c)| (i, from.distance_miles(&loc(c))))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN distance"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSP: GeoPoint = GeoPoint {
        lat_deg: 44.9778,
        lon_deg: -93.2650,
    }; // Minneapolis (the authors' vantage)
    const NYC: GeoPoint = GeoPoint {
        lat_deg: 40.7128,
        lon_deg: -74.0060,
    };

    #[test]
    fn zero_distance_to_self() {
        assert_eq!(MSP.distance_miles(&MSP), 0.0);
    }

    #[test]
    fn known_city_pair_distance() {
        // Minneapolis–New York ≈ 1,020 miles great-circle.
        let d = MSP.distance_miles(&NYC);
        assert!((d - 1020.0).abs() < 30.0, "distance {d}");
    }

    #[test]
    fn distance_is_symmetric() {
        assert!((MSP.distance_miles(&NYC) - NYC.distance_miles(&MSP)).abs() < 1e-9);
    }

    #[test]
    fn antipodal_distance_is_half_circumference() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 180.0);
        let d = a.distance_miles(&b);
        assert!((d - std::f64::consts::PI * EARTH_RADIUS_MILES).abs() < 1.0);
    }

    #[test]
    fn normalisation() {
        let p = GeoPoint::new(95.0, 270.0);
        assert_eq!(p.lat_deg, 90.0);
        assert_eq!(p.lon_deg, -90.0);
        let q = GeoPoint::new(-10.0, -190.0);
        assert_eq!(q.lon_deg, 170.0);
    }

    #[test]
    fn offset_approximates_distance() {
        let p = MSP.offset_miles(30.0, 0.0);
        let d = MSP.distance_miles(&p);
        assert!((d - 30.0).abs() < 0.5, "offset north gave {d}");
        let q = MSP.offset_miles(0.0, 30.0);
        let dq = MSP.distance_miles(&q);
        assert!((dq - 30.0).abs() < 0.5, "offset east gave {dq}");
    }

    #[test]
    fn nearest_finds_closest() {
        let sites = [NYC, MSP, GeoPoint::new(51.5, -0.12)];
        let from = GeoPoint::new(44.0, -92.0); // near Minneapolis
        let (idx, d) = nearest(&from, &sites, |p| *p).unwrap();
        assert_eq!(idx, 1);
        assert!(d < 120.0);
        let empty: [GeoPoint; 0] = [];
        assert!(nearest(&from, &empty, |p| *p).is_none());
    }
}
