//! Back-end data-center site catalogues.
//!
//! The paper (Sec. 5, refs \[1\] and \[2\]) uses published lists of Google
//! and Microsoft data-center locations to correlate `Tdynamic` with the
//! FE↔BE distance. These are the 2011-era sites relevant to that
//! analysis. The Fig. 9 regression singles out the Bing data center in
//! Virginia and Google's Lenoir, North Carolina site.

use crate::geo::GeoPoint;

/// A back-end data-center site.
#[derive(Clone, Copy, Debug)]
pub struct BeSite {
    /// Site name.
    pub name: &'static str,
    /// Location.
    pub pt: GeoPoint,
}

const fn s(name: &'static str, lat: f64, lon: f64) -> BeSite {
    BeSite {
        name,
        pt: GeoPoint {
            lat_deg: lat,
            lon_deg: lon,
        },
    }
}

/// Google data-center sites (2011-era, from the paper's ref \[1\]).
pub const GOOGLE_BE_SITES: &[BeSite] = &[
    s("Lenoir NC", 35.9140, -81.5390),
    s("The Dalles OR", 45.5946, -121.1787),
    s("Council Bluffs IA", 41.2619, -95.8608),
    s("Berkeley County SC", 33.1960, -80.0131),
    s("Mayes County OK", 36.3020, -95.3110),
    s("Douglas County GA", 33.7515, -84.7477),
    s("Saint-Ghislain BE", 50.4542, 3.8188),
    s("Hamina FI", 60.5693, 27.1878),
];

/// Microsoft (Bing) data-center sites (2011-era, from the paper's
/// ref \[2\]).
pub const BING_BE_SITES: &[BeSite] = &[
    s("Boydton VA", 36.6676, -78.3875),
    s("Chicago IL", 41.8781, -87.6298),
    s("San Antonio TX", 29.4241, -98.4936),
    s("Quincy WA", 47.2343, -119.8526),
    s("Dublin IE", 53.3498, -6.2603),
    s("Amsterdam NL", 52.3676, 4.9041),
];

/// The specific sites the Fig. 9 regression uses.
pub fn fig9_bing_site() -> &'static BeSite {
    &BING_BE_SITES[0] // Virginia
}

/// Google's Lenoir, North Carolina site (the Fig. 9 choice).
pub fn fig9_google_site() -> &'static BeSite {
    &GOOGLE_BE_SITES[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_lists_nonempty_and_valid() {
        for site in GOOGLE_BE_SITES.iter().chain(BING_BE_SITES) {
            assert!((-90.0..=90.0).contains(&site.pt.lat_deg), "{}", site.name);
            assert!((-180.0..=180.0).contains(&site.pt.lon_deg), "{}", site.name);
        }
        assert!(GOOGLE_BE_SITES.len() >= 6);
        assert!(BING_BE_SITES.len() >= 4);
    }

    #[test]
    fn fig9_sites_are_the_paper_choices() {
        assert_eq!(fig9_bing_site().name, "Boydton VA");
        assert_eq!(fig9_google_site().name, "Lenoir NC");
    }

    #[test]
    fn fig9_sites_are_near_each_other() {
        // Both regression anchors are in the US Southeast; the paper's
        // distance axes (0-400/0-500 miles) only make sense if nearby FEs
        // exist at small distances.
        let d = fig9_bing_site().pt.distance_miles(&fig9_google_site().pt);
        assert!(d < 400.0, "distance {d}");
    }

    #[test]
    fn names_unique_within_each_list() {
        for list in [GOOGLE_BE_SITES, BING_BE_SITES] {
            let mut names: Vec<&str> = list.iter().map(|s| s.name).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), list.len());
        }
    }
}
