//! A catalogue of world metro areas used to site vantage points, FE
//! servers and data centers.
//!
//! The weights approximate the PlanetLab footprint of 2011: heavily North
//! American and European (university-hosted nodes), with a meaningful
//! Asian and smaller South American / Oceanian presence. The catalogue is
//! deliberately static data — experiments must not depend on external
//! files.

use crate::geo::GeoPoint;

/// Continental region of a metro.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Region {
    /// United States and Canada.
    NorthAmerica,
    /// Europe.
    Europe,
    /// Asia.
    Asia,
    /// Central and South America.
    SouthAmerica,
    /// Australia and New Zealand.
    Oceania,
}

/// A metro area: a population/deployment anchor on the map.
#[derive(Clone, Copy, Debug)]
pub struct Metro {
    /// Human-readable name.
    pub name: &'static str,
    /// Location of the metro center.
    pub pt: GeoPoint,
    /// Continental region.
    pub region: Region,
    /// Relative weight for vantage-point generation (PlanetLab-era
    /// university density) — higher means more vantage points nearby.
    pub weight: f64,
    /// True if the metro hosts major research universities (PlanetLab
    /// sites cluster there, and Akamai placed caches inside those campus
    /// networks — a bias the paper's Sec. 6 explicitly discusses).
    pub university_hub: bool,
}

const fn m(
    name: &'static str,
    lat: f64,
    lon: f64,
    region: Region,
    weight: f64,
    university_hub: bool,
) -> Metro {
    Metro {
        name,
        pt: GeoPoint {
            lat_deg: lat,
            lon_deg: lon,
        },
        region,
        weight,
        university_hub,
    }
}

/// The embedded metro catalogue (61 metros).
pub const WORLD_METROS: &[Metro] = &[
    // --- North America (PlanetLab-dense) ---
    m("Boston", 42.3601, -71.0589, Region::NorthAmerica, 3.0, true),
    m(
        "New York",
        40.7128,
        -74.0060,
        Region::NorthAmerica,
        2.5,
        true,
    ),
    m(
        "Philadelphia",
        39.9526,
        -75.1652,
        Region::NorthAmerica,
        1.5,
        true,
    ),
    m(
        "Washington DC",
        38.9072,
        -77.0369,
        Region::NorthAmerica,
        2.0,
        true,
    ),
    m(
        "Pittsburgh",
        40.4406,
        -79.9959,
        Region::NorthAmerica,
        1.5,
        true,
    ),
    m(
        "Atlanta",
        33.7490,
        -84.3880,
        Region::NorthAmerica,
        1.2,
        true,
    ),
    m("Miami", 25.7617, -80.1918, Region::NorthAmerica, 0.8, false),
    m(
        "Chicago",
        41.8781,
        -87.6298,
        Region::NorthAmerica,
        2.2,
        true,
    ),
    m(
        "Minneapolis",
        44.9778,
        -93.2650,
        Region::NorthAmerica,
        1.5,
        true,
    ),
    m(
        "St. Louis",
        38.6270,
        -90.1994,
        Region::NorthAmerica,
        0.8,
        true,
    ),
    m(
        "Houston",
        29.7604,
        -95.3698,
        Region::NorthAmerica,
        1.0,
        true,
    ),
    m(
        "Dallas",
        32.7767,
        -96.7970,
        Region::NorthAmerica,
        1.0,
        false,
    ),
    m(
        "Denver",
        39.7392,
        -104.9903,
        Region::NorthAmerica,
        0.9,
        true,
    ),
    m(
        "Salt Lake City",
        40.7608,
        -111.8910,
        Region::NorthAmerica,
        0.7,
        true,
    ),
    m(
        "Phoenix",
        33.4484,
        -112.0740,
        Region::NorthAmerica,
        0.6,
        false,
    ),
    m(
        "Seattle",
        47.6062,
        -122.3321,
        Region::NorthAmerica,
        1.8,
        true,
    ),
    m(
        "Portland",
        45.5152,
        -122.6784,
        Region::NorthAmerica,
        0.8,
        false,
    ),
    m(
        "San Francisco",
        37.7749,
        -122.4194,
        Region::NorthAmerica,
        2.5,
        true,
    ),
    m(
        "Los Angeles",
        34.0522,
        -118.2437,
        Region::NorthAmerica,
        1.8,
        true,
    ),
    m(
        "San Diego",
        32.7157,
        -117.1611,
        Region::NorthAmerica,
        1.0,
        true,
    ),
    m(
        "Toronto",
        43.6532,
        -79.3832,
        Region::NorthAmerica,
        1.5,
        true,
    ),
    m(
        "Montreal",
        45.5019,
        -73.5674,
        Region::NorthAmerica,
        1.0,
        true,
    ),
    m(
        "Vancouver",
        49.2827,
        -123.1207,
        Region::NorthAmerica,
        0.9,
        true,
    ),
    // --- Europe ---
    m("London", 51.5074, -0.1278, Region::Europe, 2.2, true),
    m("Cambridge UK", 52.2053, 0.1218, Region::Europe, 1.2, true),
    m("Paris", 48.8566, 2.3522, Region::Europe, 1.8, true),
    m("Amsterdam", 52.3676, 4.9041, Region::Europe, 1.5, true),
    m("Brussels", 50.8503, 4.3517, Region::Europe, 0.8, true),
    m("Frankfurt", 50.1109, 8.6821, Region::Europe, 1.5, false),
    m("Berlin", 52.5200, 13.4050, Region::Europe, 1.4, true),
    m("Munich", 48.1351, 11.5820, Region::Europe, 1.0, true),
    m("Zurich", 47.3769, 8.5417, Region::Europe, 1.2, true),
    m("Milan", 45.4642, 9.1900, Region::Europe, 0.9, true),
    m("Rome", 41.9028, 12.4964, Region::Europe, 0.7, true),
    m("Madrid", 40.4168, -3.7038, Region::Europe, 0.9, true),
    m("Barcelona", 41.3874, 2.1686, Region::Europe, 0.8, true),
    m("Lisbon", 38.7223, -9.1393, Region::Europe, 0.5, true),
    m("Dublin", 53.3498, -6.2603, Region::Europe, 0.6, true),
    m("Stockholm", 59.3293, 18.0686, Region::Europe, 1.0, true),
    m("Oslo", 59.9139, 10.7522, Region::Europe, 0.5, true),
    m("Copenhagen", 55.6761, 12.5683, Region::Europe, 0.7, true),
    m("Helsinki", 60.1699, 24.9384, Region::Europe, 0.7, true),
    m("Warsaw", 52.2297, 21.0122, Region::Europe, 0.7, true),
    m("Prague", 50.0755, 14.4378, Region::Europe, 0.6, true),
    m("Vienna", 48.2082, 16.3738, Region::Europe, 0.6, true),
    m("Athens", 37.9838, 23.7275, Region::Europe, 0.5, true),
    // --- Asia ---
    m("Tokyo", 35.6762, 139.6503, Region::Asia, 1.8, true),
    m("Osaka", 34.6937, 135.5023, Region::Asia, 0.8, true),
    m("Seoul", 37.5665, 126.9780, Region::Asia, 1.2, true),
    m("Beijing", 39.9042, 116.4074, Region::Asia, 1.2, true),
    m("Shanghai", 31.2304, 121.4737, Region::Asia, 0.9, true),
    m("Hong Kong", 22.3193, 114.1694, Region::Asia, 0.9, true),
    m("Taipei", 25.0330, 121.5654, Region::Asia, 0.8, true),
    m("Singapore", 1.3521, 103.8198, Region::Asia, 1.0, true),
    m("Bangalore", 12.9716, 77.5946, Region::Asia, 0.6, true),
    m("Tel Aviv", 32.0853, 34.7818, Region::Asia, 0.6, true),
    // --- South America ---
    m(
        "Sao Paulo",
        -23.5505,
        -46.6333,
        Region::SouthAmerica,
        0.7,
        true,
    ),
    m(
        "Buenos Aires",
        -34.6037,
        -58.3816,
        Region::SouthAmerica,
        0.4,
        true,
    ),
    m(
        "Santiago",
        -33.4489,
        -70.6693,
        Region::SouthAmerica,
        0.3,
        true,
    ),
    // --- Oceania ---
    m("Sydney", -33.8688, 151.2093, Region::Oceania, 0.7, true),
    m("Melbourne", -37.8136, 144.9631, Region::Oceania, 0.5, true),
];

/// Metros filtered to those hosting major research universities.
pub fn university_metros() -> Vec<&'static Metro> {
    WORLD_METROS.iter().filter(|m| m.university_hub).collect()
}

/// The `n` highest-weight metros ("major POPs") — used for sparse
/// Google-like FE placement.
pub fn top_metros(n: usize) -> Vec<&'static Metro> {
    let mut v: Vec<&Metro> = WORLD_METROS.iter().collect();
    v.sort_by(|a, b| b.weight.partial_cmp(&a.weight).expect("NaN weight"));
    v.truncate(n);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_has_sixty_one_metros() {
        assert_eq!(WORLD_METROS.len(), 61);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = WORLD_METROS.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), WORLD_METROS.len());
    }

    #[test]
    fn coordinates_are_valid() {
        for m in WORLD_METROS {
            assert!((-90.0..=90.0).contains(&m.pt.lat_deg), "{}", m.name);
            assert!((-180.0..=180.0).contains(&m.pt.lon_deg), "{}", m.name);
            assert!(m.weight > 0.0, "{}", m.name);
        }
    }

    #[test]
    fn footprint_is_planetlab_like() {
        let na: f64 = WORLD_METROS
            .iter()
            .filter(|m| m.region == Region::NorthAmerica)
            .map(|m| m.weight)
            .sum();
        let total: f64 = WORLD_METROS.iter().map(|m| m.weight).sum();
        // North America holds roughly 40-55% of the PlanetLab weight.
        let share = na / total;
        assert!((0.35..0.60).contains(&share), "NA share {share}");
    }

    #[test]
    fn top_metros_sorted_by_weight() {
        let top = top_metros(5);
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].weight >= w[1].weight);
        }
        assert_eq!(top[0].name, "Boston");
    }

    #[test]
    fn university_metros_subset() {
        let uni = university_metros();
        assert!(uni.len() > 40);
        assert!(uni.iter().all(|m| m.university_hub));
    }
}
