//! Per-path latency / jitter / loss / bandwidth models.
//!
//! A path's fixed one-way delay is derived from great-circle distance via
//! a *route inflation* factor (real routes are longer than geodesics) and
//! the speed of light in fiber, plus a fixed per-path base (first/last
//! mile, switching). On top of that, every packet draws an independent
//! jitter term and an independent loss coin per direction.
//!
//! Profiles capture the path classes the paper distinguishes:
//!
//! * campus access to a nearby FE (the PlanetLab default — fast, clean);
//! * residential and wireless access (Sec. 6's discussion of loss and of
//!   DSL latency);
//! * FE↔BE over the **public Internet** (Bing→its data centers through
//!   Akamai: more inflation, jitter and loss);
//! * FE↔BE over a **private WAN** (Google's internal network: "a
//!   dedicated connection between FE and BE servers via 'internal'
//!   network usually provides better connection", Sec. 4.2).

use crate::geo::GeoPoint;
use simcore::dist::Dist;
use simcore::time::SimDuration;

/// One-way propagation delay per great-circle mile in fiber
/// (≈ 200,000 km/s → ≈ 8.2 µs per mile).
pub const FIBER_MS_PER_MILE_OWD: f64 = 0.0082;

/// A path class: how geography translates into packet behaviour.
#[derive(Clone, Debug)]
pub struct PathProfile {
    /// Profile name (for reports).
    pub name: &'static str,
    /// Route stretch relative to the great circle (≥ 1).
    pub inflation: f64,
    /// Fixed base one-way delay independent of distance, in ms
    /// (last-mile, switching, interleaving).
    pub base_owd_ms: f64,
    /// Per-packet extra one-way delay, in ms (drawn independently per
    /// packet; non-negative).
    pub jitter_ms: Dist,
    /// Per-packet, per-direction loss probability.
    pub loss: f64,
    /// Bottleneck bandwidth in Mbit/s (drives serialization delay).
    pub bw_mbps: f64,
}

impl PathProfile {
    /// Campus/university access network (the PlanetLab population).
    pub fn campus_access() -> PathProfile {
        PathProfile {
            name: "campus-access",
            inflation: 2.2,
            base_owd_ms: 1.2,
            jitter_ms: Dist::TruncatedBelow {
                lo: 0.0,
                inner: Box::new(Dist::Exponential { mean: 0.15 }),
            },
            loss: 0.00005,
            bw_mbps: 100.0,
        }
    }

    /// Residential DSL/cable access: ~25–30 ms of interleaving latency on
    /// the last mile (Maier et al., IMC'09, cited in the reviews).
    pub fn residential_access() -> PathProfile {
        PathProfile {
            name: "residential-access",
            inflation: 1.7,
            base_owd_ms: 14.0,
            jitter_ms: Dist::TruncatedBelow {
                lo: 0.0,
                inner: Box::new(Dist::Exponential { mean: 1.5 }),
            },
            loss: 0.0008,
            bw_mbps: 16.0,
        }
    }

    /// Wireless/WiFi last hop: the Sec. 6 loss-tradeoff scenario.
    pub fn wireless_access() -> PathProfile {
        PathProfile {
            name: "wireless-access",
            inflation: 1.7,
            base_owd_ms: 4.0,
            jitter_ms: Dist::TruncatedBelow {
                lo: 0.0,
                inner: Box::new(Dist::Exponential { mean: 2.0 }),
            },
            loss: 0.01,
            bw_mbps: 25.0,
        }
    }

    /// FE↔BE over public Internet transit (the Akamai→Bing leg).
    pub fn public_transit() -> PathProfile {
        PathProfile {
            name: "public-transit",
            inflation: 2.0,
            base_owd_ms: 1.5,
            jitter_ms: Dist::TruncatedBelow {
                lo: 0.0,
                inner: Box::new(Dist::LogNormal {
                    mu: -0.7, // median ≈ 0.5 ms
                    sigma: 1.0,
                }),
            },
            loss: 0.0015,
            bw_mbps: 400.0,
        }
    }

    /// FE↔BE over a private WAN (the Google-internal leg).
    pub fn private_wan() -> PathProfile {
        PathProfile {
            name: "private-wan",
            inflation: 1.3,
            base_owd_ms: 0.5,
            jitter_ms: Dist::TruncatedBelow {
                lo: 0.0,
                inner: Box::new(Dist::Exponential { mean: 0.08 }),
            },
            loss: 0.00002,
            bw_mbps: 2000.0,
        }
    }
}

/// A concrete path between two endpoints: the profile applied to their
/// geography.
#[derive(Clone, Debug)]
pub struct PathModel {
    /// Fixed one-way delay (propagation + base), in ms.
    pub base_owd_ms: f64,
    /// Per-packet jitter distribution (one-way extra delay, ms).
    pub jitter_ms: Dist,
    /// Per-packet, per-direction loss probability.
    pub loss: f64,
    /// Bottleneck bandwidth in Mbit/s.
    pub bw_mbps: f64,
    /// The great-circle distance this model was derived from (miles).
    pub distance_miles: f64,
}

impl PathModel {
    /// Builds the path between `a` and `b` under `profile`.
    pub fn between(a: &GeoPoint, b: &GeoPoint, profile: &PathProfile) -> PathModel {
        let distance_miles = a.distance_miles(b);
        let prop = distance_miles * profile.inflation * FIBER_MS_PER_MILE_OWD;
        PathModel {
            base_owd_ms: profile.base_owd_ms + prop,
            jitter_ms: profile.jitter_ms.clone(),
            loss: profile.loss,
            bw_mbps: profile.bw_mbps,
            distance_miles,
        }
    }

    /// A direct path model from explicit parameters (used by unit tests
    /// and calibration sweeps that want an exact RTT).
    pub fn from_rtt_ms(rtt_ms: f64, profile: &PathProfile) -> PathModel {
        PathModel {
            base_owd_ms: rtt_ms / 2.0,
            jitter_ms: profile.jitter_ms.clone(),
            loss: profile.loss,
            bw_mbps: profile.bw_mbps,
            distance_miles: 0.0,
        }
    }

    /// Nominal RTT (2 × fixed one-way delay, ignoring jitter and
    /// serialization).
    pub fn nominal_rtt_ms(&self) -> f64 {
        2.0 * self.base_owd_ms
    }

    /// Nominal RTT as a duration.
    pub fn nominal_rtt(&self) -> SimDuration {
        SimDuration::from_millis_f64(self.nominal_rtt_ms())
    }

    /// Serialization time for a packet of `bytes` at the bottleneck.
    pub fn serialization(&self, bytes: u32) -> SimDuration {
        let ms = (bytes as f64 * 8.0) / (self.bw_mbps * 1000.0);
        SimDuration::from_millis_f64(ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msp() -> GeoPoint {
        GeoPoint::new(44.9778, -93.2650)
    }
    fn nyc() -> GeoPoint {
        GeoPoint::new(40.7128, -74.0060)
    }

    #[test]
    fn propagation_scales_with_distance() {
        let prof = PathProfile::campus_access();
        let near = PathModel::between(&msp(), &msp().offset_miles(10.0, 0.0), &prof);
        let far = PathModel::between(&msp(), &nyc(), &prof);
        assert!(far.base_owd_ms > near.base_owd_ms + 5.0);
        assert!(far.distance_miles > 900.0);
    }

    #[test]
    fn transcontinental_rtt_is_plausible() {
        // MSP→NYC over campus profile: ~1,020 miles × 2.2 × 0.0082 × 2
        // ≈ 37 ms RTT + base — the right ballpark for a 2011 regional
        // Internet path.
        let p = PathModel::between(&msp(), &nyc(), &PathProfile::campus_access());
        let rtt = p.nominal_rtt_ms();
        assert!((30.0..48.0).contains(&rtt), "rtt {rtt}");
    }

    #[test]
    fn private_wan_beats_public_transit() {
        let a = msp();
        let b = nyc();
        let pub_path = PathModel::between(&a, &b, &PathProfile::public_transit());
        let wan_path = PathModel::between(&a, &b, &PathProfile::private_wan());
        assert!(wan_path.base_owd_ms < pub_path.base_owd_ms);
        assert!(wan_path.loss < pub_path.loss);
        assert!(wan_path.bw_mbps > pub_path.bw_mbps);
    }

    #[test]
    fn from_rtt_is_exact() {
        let p = PathModel::from_rtt_ms(86.6, &PathProfile::campus_access());
        assert!((p.nominal_rtt_ms() - 86.6).abs() < 1e-12);
    }

    #[test]
    fn serialization_time() {
        let p = PathModel::from_rtt_ms(10.0, &PathProfile::campus_access());
        // 1500 bytes at 100 Mbps = 0.12 ms.
        let t = p.serialization(1500);
        assert!((t.as_millis_f64() - 0.12).abs() < 0.001, "{t:?}");
    }

    #[test]
    fn wireless_is_lossy() {
        assert!(PathProfile::wireless_access().loss > 100.0 * PathProfile::campus_access().loss);
    }

    #[test]
    fn residential_adds_interleaving_latency() {
        let campus = PathModel::from_rtt_ms(0.0, &PathProfile::campus_access());
        let _ = campus;
        let res = PathProfile::residential_access();
        let cam = PathProfile::campus_access();
        assert!(res.base_owd_ms > cam.base_owd_ms + 10.0);
    }
}
