//! Scheduled fault plans: scripted outages, brownouts and loss episodes.
//!
//! The paper measures a *healthy* content-distribution platform; this
//! module supplies the machinery to measure an unhealthy one. A
//! [`FaultPlan`] is a seed-independent, fully scripted schedule of fault
//! windows over the entities of a service scenario — front-end servers,
//! back-end sites and individual paths — expressed in **scenario indices**
//! (the position of an FE or BE in the placement lists), not simulator
//! node ids. The service layer translates the plan into packet-level
//! mechanics (`tcpsim::LinkFault`, connection aborts) and control-plane
//! behaviour (health-aware DNS, failover) when the simulation is built.
//!
//! All windows are half-open `[start, end)`. An empty plan is the
//! default and must leave every simulation trajectory byte-identical to
//! a build without the fault subsystem at all.

use simcore::time::SimTime;

/// Parameters of a Gilbert–Elliott burst-loss episode.
///
/// The chain advances once per matching packet: in the *good* state a
/// packet may flip the chain to *bad* with probability `p_enter`; in the
/// *bad* state it may flip back with probability `p_exit`; packets
/// observed in the bad state are dropped with probability `bad_loss`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstLossParams {
    /// Probability of entering the bad (bursty) state, per packet.
    pub p_enter: f64,
    /// Probability of leaving the bad state, per packet.
    pub p_exit: f64,
    /// Drop probability while in the bad state.
    pub bad_loss: f64,
}

impl BurstLossParams {
    /// A moderately bursty episode: short bad runs with heavy in-burst
    /// loss — the classic access-network interference signature.
    pub fn moderate() -> BurstLossParams {
        BurstLossParams {
            p_enter: 0.02,
            p_exit: 0.25,
            bad_loss: 0.5,
        }
    }

    /// Advances the Gilbert–Elliott chain one packet and reports whether
    /// that packet is dropped. `bad` is the chain state (false = good);
    /// the RNG draw order (exit-or-enter first, then the in-bad loss
    /// coin) matches the packet-level implementation in `tcpsim`, so the
    /// reference semantics are testable here without a simulator.
    pub fn advance(&self, bad: &mut bool, rng: &mut simcore::rng::Rng) -> bool {
        if *bad {
            if rng.chance(self.p_exit) {
                *bad = false;
            }
        } else if rng.chance(self.p_enter) {
            *bad = true;
        }
        *bad && rng.chance(self.bad_loss)
    }
}

/// What fails during a [`FaultWindow`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// A front-end server is completely unreachable: its node blackholes
    /// all traffic and health-aware DNS steers new queries away once the
    /// previous answer's TTL expires.
    FeOutage {
        /// Scenario index of the front-end.
        fe: usize,
    },
    /// A front-end is degraded but alive: request processing is slowed by
    /// `slowdown` (> 1.0). DNS keeps mapping clients to it.
    FeBrownout {
        /// Scenario index of the front-end.
        fe: usize,
        /// Multiplier applied to FE processing delays (must be >= 1.0).
        slowdown: f64,
    },
    /// A back-end site is down: its node blackholes all traffic, so
    /// front-ends fail over to their next-nearest live site.
    BeOutage {
        /// Scenario index of the back-end site.
        be: usize,
    },
    /// The persistent FE↔BE connections between one front-end and one
    /// back-end are dropped at the window start (the window length is
    /// irrelevant): pooled connections are aborted and the next fetch
    /// pays a cold reconnect.
    ConnDrop {
        /// Scenario index of the front-end.
        fe: usize,
        /// Scenario index of the back-end site.
        be: usize,
    },
    /// A Gilbert–Elliott burst-loss episode on one client's access path
    /// to a front-end.
    ClientBurstLoss {
        /// Scenario index of the client (vantage point).
        client: usize,
        /// Scenario index of the front-end.
        fe: usize,
        /// Episode parameters.
        params: BurstLossParams,
    },
    /// A Gilbert–Elliott burst-loss episode on a front-end's path to a
    /// back-end site.
    FeBeBurstLoss {
        /// Scenario index of the front-end.
        fe: usize,
        /// Scenario index of the back-end site.
        be: usize,
        /// Episode parameters.
        params: BurstLossParams,
    },
    /// A front-end loses serving capacity without slowing individual
    /// requests: the concurrency knee of the service's load model is
    /// scaled by `factor` (in (0, 1]) while the window is active — e.g.
    /// half the worker pool crashes. Only meaningful when the service
    /// config enables a load model; inert otherwise.
    FeCapacityDip {
        /// Scenario index of the front-end.
        fe: usize,
        /// Multiplier on the FE's load-model capacity (0 < factor <= 1).
        factor: f64,
    },
}

/// One scheduled fault: a [`FaultKind`] active over `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultWindow {
    /// What fails.
    pub kind: FaultKind,
    /// When the fault begins (inclusive).
    pub start: SimTime,
    /// When the fault ends (exclusive).
    pub end: SimTime,
}

impl FaultWindow {
    /// True if the window is active at `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// A scripted schedule of fault windows for one scenario run.
///
/// The plan is deliberately *not* randomized: reproducing a failure
/// episode exactly — same outage, same second — is what makes the
/// recovery behaviour assertable in tests and experiments. Randomness
/// only enters through burst-loss episodes, which draw from the
/// simulator's dedicated fault RNG stream.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// An empty plan: no faults, byte-identical trajectories.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// True if the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// All scheduled windows, in insertion order.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    fn push(mut self, kind: FaultKind, start: SimTime, end: SimTime) -> FaultPlan {
        assert!(start <= end, "fault window must not end before it starts");
        self.windows.push(FaultWindow { kind, start, end });
        self
    }

    /// Schedules a complete outage of front-end `fe` over `[start, end)`.
    pub fn fe_outage(self, fe: usize, start: SimTime, end: SimTime) -> FaultPlan {
        self.push(FaultKind::FeOutage { fe }, start, end)
    }

    /// Schedules a brownout of front-end `fe`: processing slowed by
    /// `slowdown` (>= 1.0) over `[start, end)`.
    pub fn fe_brownout(self, fe: usize, start: SimTime, end: SimTime, slowdown: f64) -> FaultPlan {
        assert!(slowdown >= 1.0, "a brownout slows processing down");
        self.push(FaultKind::FeBrownout { fe, slowdown }, start, end)
    }

    /// Schedules a complete outage of back-end site `be` over
    /// `[start, end)`.
    pub fn be_outage(self, be: usize, start: SimTime, end: SimTime) -> FaultPlan {
        self.push(FaultKind::BeOutage { be }, start, end)
    }

    /// Drops the persistent connections between front-end `fe` and
    /// back-end `be` at time `at`.
    pub fn conn_drop(self, fe: usize, be: usize, at: SimTime) -> FaultPlan {
        self.push(FaultKind::ConnDrop { fe, be }, at, at)
    }

    /// Schedules a burst-loss episode on client `client`'s path to
    /// front-end `fe` over `[start, end)`.
    pub fn client_burst_loss(
        self,
        client: usize,
        fe: usize,
        start: SimTime,
        end: SimTime,
        params: BurstLossParams,
    ) -> FaultPlan {
        self.push(
            FaultKind::ClientBurstLoss { client, fe, params },
            start,
            end,
        )
    }

    /// Schedules a burst-loss episode on front-end `fe`'s path to
    /// back-end site `be` over `[start, end)`.
    pub fn fe_be_burst_loss(
        self,
        fe: usize,
        be: usize,
        start: SimTime,
        end: SimTime,
        params: BurstLossParams,
    ) -> FaultPlan {
        self.push(FaultKind::FeBeBurstLoss { fe, be, params }, start, end)
    }

    /// True if front-end `fe` is in a full-outage window at `t`.
    pub fn fe_down(&self, fe: usize, t: SimTime) -> bool {
        self.windows
            .iter()
            .any(|w| matches!(w.kind, FaultKind::FeOutage { fe: f } if f == fe) && w.active_at(t))
    }

    /// True if back-end site `be` is in an outage window at `t`.
    pub fn be_down(&self, be: usize, t: SimTime) -> bool {
        self.windows
            .iter()
            .any(|w| matches!(w.kind, FaultKind::BeOutage { be: b } if b == be) && w.active_at(t))
    }

    /// Schedules a capacity dip of front-end `fe`: its load-model
    /// concurrency knee is scaled by `factor` over `[start, end)`.
    pub fn fe_capacity_dip(
        self,
        fe: usize,
        start: SimTime,
        end: SimTime,
        factor: f64,
    ) -> FaultPlan {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "a capacity dip removes capacity: factor must be in (0, 1]"
        );
        self.push(FaultKind::FeCapacityDip { fe, factor }, start, end)
    }

    /// Combined load-model capacity factor of front-end `fe` at `t`: the
    /// product of all active capacity-dip windows (1.0 when healthy).
    pub fn fe_capacity_factor(&self, fe: usize, t: SimTime) -> f64 {
        self.windows
            .iter()
            .filter_map(|w| match w.kind {
                FaultKind::FeCapacityDip { fe: f, factor } if f == fe && w.active_at(t) => {
                    Some(factor)
                }
                _ => None,
            })
            .product::<f64>()
            .min(1.0)
    }

    /// Combined processing slowdown of front-end `fe` at `t`: the product
    /// of all active brownout windows (1.0 when healthy).
    pub fn fe_slowdown(&self, fe: usize, t: SimTime) -> f64 {
        self.windows
            .iter()
            .filter_map(|w| match w.kind {
                FaultKind::FeBrownout { fe: f, slowdown } if f == fe && w.active_at(t) => {
                    Some(slowdown)
                }
                _ => None,
            })
            .product::<f64>()
            .max(1.0)
    }

    /// True if *any* window (of any kind) ever targets front-end `fe` with
    /// a full outage — used to decide whether DNS must bother with health
    /// checks at all.
    pub fn has_fe_outages(&self) -> bool {
        self.windows
            .iter()
            .any(|w| matches!(w.kind, FaultKind::FeOutage { .. }))
    }

    /// True if any window ever targets a back-end site with an outage.
    pub fn has_be_outages(&self) -> bool {
        self.windows
            .iter()
            .any(|w| matches!(w.kind, FaultKind::BeOutage { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimDuration;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn empty_plan_reports_everything_healthy() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert!(!plan.fe_down(0, t(10)));
        assert!(!plan.be_down(0, t(10)));
        assert_eq!(plan.fe_slowdown(0, t(10)), 1.0);
        assert!(!plan.has_fe_outages());
        assert!(!plan.has_be_outages());
    }

    #[test]
    fn windows_are_half_open() {
        let plan = FaultPlan::new().fe_outage(3, t(10), t(20));
        assert!(!plan.fe_down(3, t(9)));
        assert!(plan.fe_down(3, t(10)));
        assert!(plan.fe_down(3, t(19)));
        assert!(!plan.fe_down(3, t(20)));
        // A different FE is unaffected.
        assert!(!plan.fe_down(2, t(15)));
    }

    #[test]
    fn brownout_slowdowns_compose_multiplicatively() {
        let plan = FaultPlan::new()
            .fe_brownout(1, t(0), t(100), 2.0)
            .fe_brownout(1, t(50), t(100), 3.0);
        assert_eq!(plan.fe_slowdown(1, t(10)), 2.0);
        assert_eq!(plan.fe_slowdown(1, t(60)), 6.0);
        assert_eq!(plan.fe_slowdown(1, t(200)), 1.0);
        assert_eq!(plan.fe_slowdown(0, t(60)), 1.0);
    }

    #[test]
    fn outage_presence_flags() {
        let plan = FaultPlan::new().be_outage(0, t(5), t(6));
        assert!(!plan.has_fe_outages());
        assert!(plan.has_be_outages());
        let plan = plan.fe_outage(1, t(7), t(8));
        assert!(plan.has_fe_outages());
    }

    #[test]
    fn conn_drop_is_a_point_event() {
        let plan = FaultPlan::new().conn_drop(2, 1, t(30));
        let w = plan.windows()[0];
        assert_eq!(w.start, w.end);
        assert!(matches!(w.kind, FaultKind::ConnDrop { fe: 2, be: 1 }));
    }

    #[test]
    #[should_panic(expected = "must not end before")]
    fn reversed_window_panics() {
        let _ = FaultPlan::new().fe_outage(0, t(10), t(5));
    }

    #[test]
    fn capacity_dips_compose_and_default_healthy() {
        let plan = FaultPlan::new()
            .fe_capacity_dip(2, t(10), t(20), 0.5)
            .fe_capacity_dip(2, t(15), t(25), 0.5);
        assert_eq!(plan.fe_capacity_factor(2, t(5)), 1.0);
        assert_eq!(plan.fe_capacity_factor(2, t(12)), 0.5);
        assert_eq!(plan.fe_capacity_factor(2, t(17)), 0.25);
        assert_eq!(plan.fe_capacity_factor(2, t(22)), 0.5);
        assert_eq!(plan.fe_capacity_factor(2, t(30)), 1.0);
        // A different FE is unaffected; a dip is not an outage/brownout.
        assert_eq!(plan.fe_capacity_factor(0, t(12)), 1.0);
        assert!(!plan.fe_down(2, t(12)));
        assert_eq!(plan.fe_slowdown(2, t(12)), 1.0);
    }

    #[test]
    #[should_panic(expected = "factor must be in")]
    fn capacity_dip_rejects_gain() {
        let _ = FaultPlan::new().fe_capacity_dip(0, t(0), t(1), 1.5);
    }

    // ---- Gilbert–Elliott edge coverage ------------------------------
    //
    // The chain itself runs packet-by-packet inside tcpsim; these tests
    // pin the *reference semantics* of `BurstLossParams::advance` at its
    // degenerate corners, where an off-by-one in the draw order would be
    // invisible to the integration tests.

    use simcore::rng::Rng;

    /// Drives `advance` for `n` packets and returns the drop pattern.
    fn drive(params: BurstLossParams, seed: u64, n: usize) -> Vec<bool> {
        let mut rng = Rng::from_seed_and_name(seed, "nettopo/ge-test");
        let mut bad = false;
        (0..n).map(|_| params.advance(&mut bad, &mut rng)).collect()
    }

    #[test]
    fn ge_never_enters_bad_state_at_p_enter_zero() {
        let p = BurstLossParams {
            p_enter: 0.0,
            p_exit: 0.5,
            bad_loss: 1.0,
        };
        assert!(drive(p, 1, 10_000).iter().all(|&d| !d));
    }

    #[test]
    fn ge_absorbs_into_bad_state_at_p_enter_one_p_exit_zero() {
        // Enters bad on the first packet and never leaves; with
        // bad_loss = 1 every packet from the first onward is dropped.
        let p = BurstLossParams {
            p_enter: 1.0,
            p_exit: 0.0,
            bad_loss: 1.0,
        };
        assert!(drive(p, 2, 10_000).iter().all(|&d| d));
        // bad_loss = 0: permanently bad yet lossless — the state machine
        // and the loss coin are independent draws.
        let p0 = BurstLossParams { bad_loss: 0.0, ..p };
        assert!(drive(p0, 3, 10_000).iter().all(|&d| !d));
    }

    #[test]
    fn ge_exit_packet_is_never_dropped_at_p_exit_one() {
        // p_exit = 1 means the chain leaves bad on the very packet after
        // entering: no packet can ever be observed in the bad state, so
        // nothing drops even with bad_loss = 1.
        let p = BurstLossParams {
            p_enter: 1.0,
            p_exit: 1.0,
            bad_loss: 1.0,
        };
        let drops = drive(p, 4, 10_000);
        // Odd packets enter bad (and drop), even packets exit first.
        let dropped = drops.iter().filter(|&&d| d).count();
        assert_eq!(dropped, 5_000, "enter/exit must alternate exactly");
    }

    #[test]
    fn ge_mean_burst_length_tracks_inverse_p_exit() {
        // With bad_loss = 1 every bad-state packet drops, so maximal
        // runs of consecutive drops are exactly the bad-state bursts.
        // Burst length is geometric with mean 1/p_exit.
        let p = BurstLossParams {
            p_enter: 0.05,
            p_exit: 0.25,
            bad_loss: 1.0,
        };
        let drops = drive(p, 5, 200_000);
        let mut bursts = Vec::new();
        let mut run = 0usize;
        for &d in &drops {
            if d {
                run += 1;
            } else if run > 0 {
                bursts.push(run);
                run = 0;
            }
        }
        if run > 0 {
            bursts.push(run);
        }
        assert!(bursts.len() > 1_000, "need many bursts for a stable mean");
        let mean = bursts.iter().sum::<usize>() as f64 / bursts.len() as f64;
        assert!(
            (mean - 4.0).abs() < 0.3,
            "mean burst length {mean} vs 1/p_exit = 4"
        );
    }

    #[test]
    fn ge_is_deterministic_and_chunking_invariant() {
        // Same seed, same params → identical drop pattern; and driving
        // the chain in arbitrary chunks (as sharded campaign workers do
        // with their per-world fault streams) changes nothing, because
        // the state lives entirely in (bad, rng).
        let p = BurstLossParams::moderate();
        let a = drive(p, 42, 5_000);
        let b = drive(p, 42, 5_000);
        assert_eq!(a, b);
        let mut rng = Rng::from_seed_and_name(42, "nettopo/ge-test");
        let mut bad = false;
        let mut chunked = Vec::new();
        for chunk in [1usize, 7, 500, 1492, 3000] {
            for _ in 0..chunk {
                chunked.push(p.advance(&mut bad, &mut rng));
            }
        }
        assert_eq!(chunked, a);
        // Distinct seeds decorrelate the episodes.
        let c = drive(p, 43, 5_000);
        assert_ne!(a, c);
    }
}
